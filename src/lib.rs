//! # fedbiad
//!
//! A complete Rust reproduction of **FedBIAD** — *Communication-Efficient
//! and Accuracy-Guaranteed Federated Learning with Bayesian Inference-Based
//! Adaptive Dropout* (Xue et al., IPDPS 2023, arXiv:2307.07172) — including
//! every substrate the paper's evaluation depends on:
//!
//! * a from-scratch neural-network stack (MLP + 2-layer LSTM language
//!   model with hand-written BPTT) over a dense f32 tensor library;
//! * an FL simulation framework with client sampling, weighted
//!   aggregation, a wireless link model (14.0 Mbps up / 110.6 Mbps down)
//!   and LTTR/TTA accounting;
//! * synthetic stand-ins for MNIST / FMNIST / PTB / WikiText-2 / Reddit;
//! * the FedBIAD algorithm (spike-and-slab adaptive row dropout,
//!   Algorithm 1) plus all six baselines (FedAvg, FedDrop, AFD, FedMP,
//!   FjORD, HeteroFL) and four sketched compressors (DGC, signSGD, FedPAQ,
//!   STC);
//! * the Theorem-1 generalization-bound calculator.
//!
//! ## Quick start
//!
//! ```
//! use fedbiad::fl::runner::{Experiment, ExperimentConfig};
//! use fedbiad::fl::workload::{build, Scale, Workload};
//! use fedbiad::core::{FedBiad, FedBiadConfig};
//!
//! let bundle = build(Workload::MnistLike, Scale::Smoke, 42);
//! let cfg = ExperimentConfig {
//!     rounds: 3,
//!     train: bundle.train,
//!     eval_topk: bundle.eval_topk,
//!     ..Default::default()
//! };
//! let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 2));
//! let log = Experiment::new(bundle.model.as_ref(), &bundle.data, algo, cfg).run();
//! assert_eq!(log.records.len(), 3);
//! println!("final top-1 accuracy: {:.1}%", log.final_accuracy_pct());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries that regenerate every table and
//! figure of the paper.

/// Zero-overhead tracing spans, counters and trace exporters (re-export
/// of `fedbiad-telemetry`). No-op unless built with the crate's
/// `enabled` feature (the bench harness turns it on).
pub use fedbiad_telemetry as telemetry;

/// Dense linear algebra (re-export of `fedbiad-tensor`).
pub use fedbiad_tensor as tensor;

/// Neural-network substrate (re-export of `fedbiad-nn`).
pub use fedbiad_nn as nn;

/// Synthetic datasets + partitioners (re-export of `fedbiad-data`).
pub use fedbiad_data as data;

/// Sketched compressors (re-export of `fedbiad-compress`).
pub use fedbiad_compress as compress;

/// FL simulation framework (re-export of `fedbiad-fl`).
pub use fedbiad_fl as fl;

/// FedBIAD + baselines + theory (re-export of `fedbiad-core`).
pub use fedbiad_core as core;

/// Declarative scenario engine (re-export of `fedbiad-scenario`).
pub use fedbiad_scenario as scenario;

/// Discrete-event federation simulator (re-export of `fedbiad-sim`).
pub use fedbiad_sim as sim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use fedbiad_core::baselines::{Afd, FedAvg, FedDrop, FedMp, Fjord, HeteroFl};
    pub use fedbiad_core::{FedBiad, FedBiadConfig, PatternSampling};
    pub use fedbiad_data::{ClientData, FedDataset};
    pub use fedbiad_fl::runner::{Experiment, ExperimentConfig};
    pub use fedbiad_fl::workload::{build, Scale, Workload};
    pub use fedbiad_fl::{ExperimentLog, NetworkModel};
    pub use fedbiad_nn::{Model, ParamSet};
    pub use fedbiad_sim::{
        DeadlineOverSelect, FedBuff, HeterogeneityProfile, SimConfig, SimReport, Simulator,
        SyncBarrier,
    };
}
