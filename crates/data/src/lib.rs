//! # fedbiad-data
//!
//! Synthetic dataset generators and federated partitioners for the FedBIAD
//! reproduction.
//!
//! The paper evaluates on MNIST, FMNIST (images, 1000 non-IID clients) and
//! PTB / WikiText-2 / Reddit (next-word prediction, 100 clients; Reddit is
//! naturally non-IID). Those corpora are not available offline, so this
//! crate builds *synthetic equivalents* that preserve the properties the
//! experiments actually exercise (see DESIGN.md §3):
//!
//! * [`synth_image`]: class-conditional 28×28 image generator with a
//!   controllable class-separability knob — "MNIST-like" is easier than
//!   "FMNIST-like", matching the paper's hardness ordering;
//! * [`synth_text`]: Zipf-vocabulary Markov language generator with a
//!   latent topic state, so an LSTM genuinely benefits from its recurrent
//!   weights (the structure FedBIAD can compress but FedDrop/AFD cannot);
//! * [`partition`]: IID, label-shard and Dirichlet label-skew partitioners
//!   plus contiguous text splitting; Reddit-like non-IID-ness comes from
//!   per-user generator parameters.
//!
//! Everything is deterministic given a seed.

pub mod dataset;
pub mod partition;
pub mod synth_image;
pub mod synth_text;

pub use dataset::{ClientData, FedDataset, ImageSet, TextSet};
pub use synth_image::LazyClients;
