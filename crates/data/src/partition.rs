//! Federated partitioners: how a global dataset is split across K clients.
//!
//! The paper uses 1000 clients with a non-IID label-skew partition for
//! MNIST/FMNIST (following its reference \[28\], the Dirichlet strategy),
//! IID random splits for PTB/WikiText-2 (100 clients, "randomly sample data
//! without overlap"), and a natural per-user partition for Reddit with
//! unequal sample counts.

use crate::dataset::{ImageSet, TextSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Image partition strategies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ImagePartition {
    /// Uniform random split.
    Iid,
    /// McMahan-style shards: sort by label, slice into
    /// `clients * shards_per_client` shards, deal each client
    /// `shards_per_client` shards (each client sees few classes).
    Shards {
        /// Shards dealt to each client (2 in the original FedAvg paper).
        shards_per_client: usize,
    },
    /// Dirichlet label-skew: for each class, split its samples across
    /// clients with proportions drawn from Dir(α). Small α = more skew.
    Dirichlet {
        /// Concentration parameter α.
        alpha: f32,
    },
}

/// Split an image set into `clients` shards.
///
/// ```
/// use fedbiad_data::partition::{partition_images, ImagePartition};
/// use fedbiad_data::synth_image::SyntheticImageSpec;
///
/// let mut spec = SyntheticImageSpec::mnist_like();
/// spec.side = 8;
/// spec.train_n = 64;
/// spec.test_n = 16;
/// let (train, _test) = spec.generate(42);
/// let shards = partition_images(&train, 4, &ImagePartition::Dirichlet { alpha: 0.3 }, 42);
/// assert_eq!(shards.len(), 4);
/// assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 64);
/// ```
pub fn partition_images(
    set: &ImageSet,
    clients: usize,
    strategy: &ImagePartition,
    seed: u64,
) -> Vec<ImageSet> {
    assert!(clients > 0, "need at least one client");
    let mut rng = stream(seed, StreamTag::Partition, 0, 0);
    let assignment: Vec<usize> = match strategy {
        ImagePartition::Iid => {
            let mut idx: Vec<usize> = (0..set.len()).collect();
            idx.shuffle(&mut rng);
            let mut owner = vec![0usize; set.len()];
            for (pos, &i) in idx.iter().enumerate() {
                owner[i] = pos % clients;
            }
            owner
        }
        ImagePartition::Shards { shards_per_client } => {
            let total_shards = clients * shards_per_client;
            let mut idx: Vec<usize> = (0..set.len()).collect();
            // Sort by label (stable on index for determinism).
            idx.sort_by_key(|&i| (set.y[i], i));
            // Deal shards to clients in shuffled order.
            let mut shard_ids: Vec<usize> = (0..total_shards).collect();
            shard_ids.shuffle(&mut rng);
            let shard_len = set.len().div_ceil(total_shards);
            let mut owner = vec![0usize; set.len()];
            for (pos, &i) in idx.iter().enumerate() {
                let shard = (pos / shard_len).min(total_shards - 1);
                owner[i] = shard_ids[shard] % clients;
            }
            owner
        }
        ImagePartition::Dirichlet { alpha } => {
            let classes = set.y.iter().map(|&y| y as usize + 1).max().unwrap_or(1);
            let mut owner = vec![0usize; set.len()];
            for c in 0..classes {
                let members: Vec<usize> =
                    (0..set.len()).filter(|&i| set.y[i] as usize == c).collect();
                if members.is_empty() {
                    continue;
                }
                let props = dirichlet(clients, *alpha, &mut rng);
                // Convert proportions to cumulative boundaries over the
                // shuffled member list.
                let mut shuffled = members.clone();
                shuffled.shuffle(&mut rng);
                let mut start = 0usize;
                for (k, &p) in props.iter().enumerate() {
                    let take = if k + 1 == clients {
                        shuffled.len() - start
                    } else {
                        ((p as f64) * shuffled.len() as f64).round() as usize
                    };
                    let end = (start + take).min(shuffled.len());
                    for &i in &shuffled[start..end] {
                        owner[i] = k;
                    }
                    start = end;
                }
            }
            owner
        }
    };

    let mut shards: Vec<ImageSet> = (0..clients).map(|_| ImageSet::empty(set.dim)).collect();
    for i in 0..set.len() {
        shards[assignment[i]].push(set.sample(i), set.y[i]);
    }
    shards
}

/// Sample from Dir(α, …, α) via normalised Gamma(α, 1) draws
/// (Marsaglia–Tsang for α ≥ 1, boost trick for α < 1).
fn dirichlet(k: usize, alpha: f32, rng: &mut impl Rng) -> Vec<f32> {
    let mut g: Vec<f32> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let sum: f32 = g.iter().sum::<f32>().max(1e-12);
    for v in &mut g {
        *v /= sum;
    }
    g
}

fn gamma_sample(alpha: f32, rng: &mut impl Rng) -> f32 {
    if alpha < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) · U^(1/α).
        let u: f32 = rng.gen::<f32>().max(1e-12);
        return gamma_sample(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = fedbiad_tensor::init::gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.gen::<f32>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Split a token stream into `clients` contiguous chunks ("randomly sample
/// data without overlap and allocate to 100 clients", §V-A — contiguous
/// chunks of a stationary stream are exchangeable, i.e. IID across
/// clients).
pub fn partition_text_contiguous(set: &TextSet, clients: usize) -> Vec<TextSet> {
    assert!(clients > 0);
    let per = set.tokens.len() / clients;
    assert!(per > set.seq_len, "not enough tokens per client");
    (0..clients)
        .map(|k| TextSet {
            tokens: set.tokens[k * per..(k + 1) * per].to_vec(),
            seq_len: set.seq_len,
        })
        .collect()
}

/// Per-user token counts for the Reddit-like dataset: "the top 100 users
/// with more data are chosen as clients, so that different clients have
/// different sample sizes" — a truncated Zipf profile over users.
pub fn reddit_user_sizes(users: usize, total_tokens: usize, seq_len: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..users)
        .map(|u| 1.0 / (1.0 + u as f64).powf(0.7))
        .collect();
    let sum: f64 = weights.iter().sum();
    let min_tokens = (seq_len + 1) * 2; // every user must yield ≥ 2 windows
    weights
        .iter()
        .map(|w| ((w / sum) * total_tokens as f64) as usize)
        .map(|n| n.max(min_tokens))
        .collect()
}

/// Label-distribution skew measure used in tests and experiment logs:
/// mean over clients of the total-variation distance between the client's
/// label histogram and the global histogram. 0 = perfectly IID.
pub fn label_skew(shards: &[ImageSet], classes: usize) -> f32 {
    let mut global = vec![0f64; classes];
    let mut total = 0f64;
    for s in shards {
        for &y in &s.y {
            global[y as usize] += 1.0;
            total += 1.0;
        }
    }
    for g in &mut global {
        *g /= total.max(1.0);
    }
    let mut skew = 0f64;
    let mut counted = 0usize;
    for s in shards {
        if s.is_empty() {
            continue;
        }
        let mut h = vec![0f64; classes];
        for &y in &s.y {
            h[y as usize] += 1.0;
        }
        let n = s.len() as f64;
        let tv: f64 = h
            .iter()
            .zip(&global)
            .map(|(a, g)| (a / n - g).abs())
            .sum::<f64>()
            / 2.0;
        skew += tv;
        counted += 1;
    }
    (skew / counted.max(1) as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled_set(n: usize, classes: usize) -> ImageSet {
        let mut s = ImageSet::empty(2);
        for i in 0..n {
            s.push(&[i as f32, 0.0], (i % classes) as u32);
        }
        s
    }

    #[test]
    fn iid_partition_conserves_samples_and_balances() {
        let set = labelled_set(1000, 10);
        let shards = partition_images(&set, 10, &ImagePartition::Iid, 1);
        assert_eq!(shards.iter().map(ImageSet::len).sum::<usize>(), 1000);
        for s in &shards {
            assert_eq!(s.len(), 100);
        }
        assert!(label_skew(&shards, 10) < 0.15);
    }

    #[test]
    fn shards_partition_is_more_skewed_than_iid() {
        let set = labelled_set(2000, 10);
        let iid = partition_images(&set, 20, &ImagePartition::Iid, 2);
        let sh = partition_images(
            &set,
            20,
            &ImagePartition::Shards {
                shards_per_client: 2,
            },
            2,
        );
        assert_eq!(sh.iter().map(ImageSet::len).sum::<usize>(), 2000);
        assert!(
            label_skew(&sh, 10) > 2.0 * label_skew(&iid, 10),
            "shards {} vs iid {}",
            label_skew(&sh, 10),
            label_skew(&iid, 10)
        );
    }

    #[test]
    fn dirichlet_small_alpha_is_very_skewed() {
        let set = labelled_set(2000, 10);
        let lo = partition_images(&set, 20, &ImagePartition::Dirichlet { alpha: 0.1 }, 3);
        let hi = partition_images(&set, 20, &ImagePartition::Dirichlet { alpha: 100.0 }, 3);
        assert_eq!(lo.iter().map(ImageSet::len).sum::<usize>(), 2000);
        assert_eq!(hi.iter().map(ImageSet::len).sum::<usize>(), 2000);
        assert!(label_skew(&lo, 10) > label_skew(&hi, 10));
    }

    #[test]
    fn partition_is_deterministic() {
        let set = labelled_set(500, 5);
        let a = partition_images(&set, 7, &ImagePartition::Dirichlet { alpha: 0.5 }, 9);
        let b = partition_images(&set, 7, &ImagePartition::Dirichlet { alpha: 0.5 }, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.y, y.y);
            assert_eq!(x.x, y.x);
        }
    }

    #[test]
    fn text_contiguous_split_covers_stream() {
        let t = TextSet {
            tokens: (0..1000).collect(),
            seq_len: 10,
        };
        let parts = partition_text_contiguous(&t, 8);
        assert_eq!(parts.len(), 8);
        assert!(parts.iter().all(|p| p.tokens.len() == 125));
        assert_eq!(parts[0].tokens[0], 0);
        assert_eq!(parts[1].tokens[0], 125);
    }

    #[test]
    fn reddit_sizes_are_unequal_and_positive() {
        let sizes = reddit_user_sizes(50, 100_000, 20);
        assert_eq!(sizes.len(), 50);
        assert!(sizes[0] > sizes[49], "head user should have more data");
        assert!(sizes.iter().all(|&s| s >= 42));
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = stream(1, StreamTag::Partition, 0, 9);
        for alpha in [0.1f32, 0.5, 1.0, 10.0] {
            let d = dirichlet(16, alpha, &mut rng);
            let s: f32 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "alpha {alpha}: sum {s}");
            assert!(d.iter().all(|&v| v >= 0.0));
        }
    }
}
