//! Zipf–Markov synthetic language generator ("PTB-like", "WikiText-2-like",
//! "Reddit-like").
//!
//! Text is emitted by a Markov chain over a Zipf-ranked vocabulary with a
//! slowly switching latent *topic* state: the successor distribution of a
//! token depends on `(token, topic)`. The latent state gives the stream
//! genuine long-range structure, so an LSTM's recurrent weights carry real
//! information — which is precisely what makes the paper's RNN experiments
//! interesting (FedBIAD can compress recurrent matrices, FedDrop/AFD
//! cannot).
//!
//! Top-k predictability is controlled by `concentration`: the successor
//! distribution of each `(token, topic)` is a geometric-decay over
//! `successors` candidates, so the Bayes-optimal top-3 accuracy is roughly
//! the sum of the top-3 successor weights. The defaults are tuned so a
//! small LSTM lands in the paper's 25–35 % top-3 band.

use crate::dataset::TextSet;
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic language.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticTextSpec {
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of latent topic states.
    pub topics: usize,
    /// Successor candidates per (token, topic).
    pub successors: usize,
    /// Geometric decay of successor weights in (0,1); higher = flatter =
    /// less predictable.
    pub decay: f32,
    /// Probability of switching topic at each step.
    pub topic_switch_prob: f32,
    /// Training tokens to emit.
    pub tokens_train: usize,
    /// Test tokens to emit.
    pub tokens_test: usize,
    /// BPTT window length.
    pub seq_len: usize,
    /// Zipf exponent used when drawing successor candidates (frequent
    /// tokens are likelier successors, like real text).
    pub zipf_exponent: f64,
}

impl SyntheticTextSpec {
    /// PTB-sized language (scaled-down default; paper-scale vocab is
    /// 10,600 — see `LstmLmModel::paper_ptb`). Decay 0.7 puts the
    /// Bayes-optimal top-3 accuracy near 66 %, leaving a wide learnable
    /// band above the ≈25 % unigram baseline, so the paper's 25–35 %
    /// top-3 numbers correspond to partially-converged models exactly as
    /// on real PTB.
    pub fn ptb_like() -> Self {
        Self {
            vocab: 400,
            topics: 4,
            successors: 24,
            decay: 0.70,
            topic_switch_prob: 0.02,
            tokens_train: 60_000,
            tokens_test: 12_000,
            seq_len: 16,
            zipf_exponent: 1.0,
        }
    }

    /// WikiText-2-sized: larger vocabulary, ≈2× corpus (paper §V-A).
    pub fn wikitext2_like() -> Self {
        Self {
            vocab: 1_000,
            topics: 4,
            successors: 24,
            decay: 0.70,
            topic_switch_prob: 0.02,
            tokens_train: 120_000,
            tokens_test: 24_000,
            seq_len: 16,
            zipf_exponent: 1.05,
        }
    }

    /// Reddit-like: PTB-sized vocabulary; the non-IID structure comes from
    /// [`SyntheticTextSpec::generate_user`] with per-user parameters.
    pub fn reddit_like() -> Self {
        Self {
            vocab: 400,
            topics: 6,
            successors: 24,
            decay: 0.70,
            topic_switch_prob: 0.02,
            tokens_train: 60_000,
            tokens_test: 12_000,
            seq_len: 16,
            zipf_exponent: 1.0,
        }
    }

    /// Build the global successor table for `seed`.
    pub fn language(&self, seed: u64) -> Language {
        let mut rng = stream(seed, StreamTag::Data, 0, 1);
        Language::build(self, &mut rng)
    }

    /// Generate a (train, test) pair from the *global* language (IID
    /// corpora: PTB-like / WikiText-2-like).
    pub fn generate(&self, seed: u64) -> (TextSet, TextSet) {
        let lang = self.language(seed);
        let mut rng = stream(seed, StreamTag::Data, 0, 2);
        let train = lang.emit(self.tokens_train, None, &mut rng);
        let test = lang.emit(self.tokens_test, None, &mut rng);
        (
            TextSet {
                tokens: train,
                seq_len: self.seq_len,
            },
            TextSet {
                tokens: test,
                seq_len: self.seq_len,
            },
        )
    }

    /// Generate one *user's* stream from the global language with a
    /// user-specific topic bias (Reddit-like non-IID-ness): the user mostly
    /// stays in their home topic, so their token distribution is skewed.
    pub fn generate_user(&self, lang: &Language, seed: u64, user: u64, tokens: usize) -> TextSet {
        let mut rng = stream(seed, StreamTag::Data, 1, user);
        let home_topic = (user as usize) % self.topics;
        let toks = lang.emit(tokens, Some(home_topic), &mut rng);
        TextSet {
            tokens: toks,
            seq_len: self.seq_len,
        }
    }
}

/// Materialised successor table: for each `(token, topic)`, `successors`
/// candidate next-tokens with geometric weights.
pub struct Language {
    spec: SyntheticTextSpec,
    /// `succ[(topic * vocab + token) * successors + rank]` = candidate id.
    succ: Vec<u32>,
    /// Cumulative weights per rank (shared across rows): `cum[rank]`.
    cum: Vec<f32>,
}

impl Language {
    fn build(spec: &SyntheticTextSpec, rng: &mut impl Rng) -> Self {
        let v = spec.vocab;
        // Zipf CDF over the vocabulary for drawing candidates.
        let mut zipf_cdf = Vec::with_capacity(v);
        let mut acc = 0.0f64;
        for r in 0..v {
            acc += 1.0 / ((r + 1) as f64).powf(spec.zipf_exponent);
            zipf_cdf.push(acc);
        }
        let total = acc;

        let mut succ = vec![0u32; spec.topics * v * spec.successors];
        for row in succ.chunks_exact_mut(spec.successors) {
            for s in row.iter_mut() {
                let u: f64 = rng.gen::<f64>() * total;
                let idx = zipf_cdf.partition_point(|&c| c < u).min(v - 1);
                *s = idx as u32;
            }
        }

        // Geometric weights w_r ∝ decay^r, normalised to a CDF.
        let mut cum = Vec::with_capacity(spec.successors);
        let mut w = 1.0f32;
        let mut tot = 0.0f32;
        for _ in 0..spec.successors {
            tot += w;
            cum.push(tot);
            w *= spec.decay;
        }
        for c in &mut cum {
            *c /= tot;
        }

        Self {
            spec: spec.clone(),
            succ,
            cum,
        }
    }

    /// Successor candidates of `(token, topic)`.
    pub fn successors(&self, token: u32, topic: usize) -> &[u32] {
        let base = (topic * self.spec.vocab + token as usize) * self.spec.successors;
        &self.succ[base..base + self.spec.successors]
    }

    /// Probability weight of rank `r` (shared across rows).
    pub fn rank_prob(&self, r: usize) -> f32 {
        if r == 0 {
            self.cum[0]
        } else {
            self.cum[r] - self.cum[r - 1]
        }
    }

    /// Emit a token stream. With `home_topic = Some(t)`, the walk is biased
    /// to return to topic `t` (user-specific non-IID-ness); with `None`,
    /// topic switches are uniform.
    fn emit(&self, n: usize, home_topic: Option<usize>, rng: &mut impl Rng) -> Vec<u32> {
        let spec = &self.spec;
        let mut out = Vec::with_capacity(n);
        let mut topic = home_topic.unwrap_or(0);
        let mut tok: u32 = rng.gen_range(0..spec.vocab as u32);
        for _ in 0..n {
            out.push(tok);
            if rng.gen::<f32>() < spec.topic_switch_prob {
                topic = match home_topic {
                    // Users hop between their home topic and a random one,
                    // spending most time at home.
                    Some(home) => {
                        if topic != home || rng.gen::<f32>() < 0.3 {
                            home
                        } else {
                            rng.gen_range(0..spec.topics)
                        }
                    }
                    None => rng.gen_range(0..spec.topics),
                };
            }
            // Draw the next token from the geometric successor weights.
            let u: f32 = rng.gen();
            let rank = self
                .cum
                .partition_point(|&c| c < u)
                .min(spec.successors - 1);
            tok = self.successors(tok, topic)[rank];
        }
        out
    }

    /// Bayes-optimal top-k accuracy of the language itself (the sum of the
    /// k largest rank weights) — an upper bound on any model's accuracy,
    /// used to sanity-check experiment configurations.
    pub fn bayes_top_k(&self, k: usize) -> f32 {
        // Rank weights are sorted descending by construction, but candidate
        // draws may repeat a token across ranks, which only *increases*
        // achievable accuracy; this is the conservative bound.
        (0..k.min(self.spec.successors))
            .map(|r| self.rank_prob(r))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_spec() -> SyntheticTextSpec {
        SyntheticTextSpec {
            vocab: 50,
            topics: 2,
            successors: 8,
            decay: 0.6,
            topic_switch_prob: 0.05,
            tokens_train: 5_000,
            tokens_test: 1_000,
            seq_len: 10,
            zipf_exponent: 1.0,
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_vocab() {
        let spec = small_spec();
        let (a, _) = spec.generate(5);
        let (b, _) = spec.generate(5);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.tokens.len(), 5_000);
        assert!(a.tokens.iter().all(|&t| (t as usize) < spec.vocab));
    }

    #[test]
    fn bigram_structure_is_predictable() {
        // An order-1 Markov language must have far better bigram top-1
        // accuracy than chance.
        let spec = small_spec();
        let (train, test) = spec.generate(9);
        let mut bigram: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
        for w in train.tokens.windows(2) {
            *bigram.entry(w[0]).or_default().entry(w[1]).or_default() += 1;
        }
        let mut correct = 0u32;
        let mut total = 0u32;
        for w in test.tokens.windows(2) {
            if let Some(next) = bigram.get(&w[0]) {
                let best = next.iter().max_by_key(|(_, &c)| c).map(|(&t, _)| t);
                if best == Some(w[1]) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f32 / total.max(1) as f32;
        let chance = 1.0 / spec.vocab as f32;
        assert!(acc > 10.0 * chance, "bigram acc {acc} vs chance {chance}");
    }

    #[test]
    fn bayes_bound_is_sane() {
        let spec = small_spec();
        let lang = spec.language(3);
        let b1 = lang.bayes_top_k(1);
        let b3 = lang.bayes_top_k(3);
        assert!(b1 > 0.0 && b1 < 1.0);
        assert!(b3 > b1 && b3 <= 1.0);
    }

    #[test]
    fn users_have_skewed_token_distributions() {
        // Two users with different home topics should emit measurably
        // different unigram distributions (Reddit-like non-IID-ness).
        let spec = small_spec();
        let lang = spec.language(4);
        let a = spec.generate_user(&lang, 4, 0, 4_000);
        let b = spec.generate_user(&lang, 4, 1, 4_000);
        let hist = |t: &TextSet| {
            let mut h = vec![0f32; spec.vocab];
            for &tok in &t.tokens {
                h[tok as usize] += 1.0;
            }
            let n = t.tokens.len() as f32;
            for v in &mut h {
                *v /= n;
            }
            h
        };
        let ha = hist(&a);
        let hb = hist(&b);
        let l1: f32 = ha.iter().zip(&hb).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 > 0.1, "users should differ, L1 = {l1}");
    }

    #[test]
    fn paper_presets_have_expected_relative_sizes() {
        let ptb = SyntheticTextSpec::ptb_like();
        let wt2 = SyntheticTextSpec::wikitext2_like();
        assert!(wt2.vocab > 2 * ptb.vocab || wt2.vocab >= 2000);
        assert_eq!(wt2.tokens_train, 2 * ptb.tokens_train); // "over 2× larger"
    }
}
