//! Class-conditional synthetic image generator ("MNIST-like" /
//! "FMNIST-like").
//!
//! Each class owns a few smooth prototypes built from random Gaussian
//! bumps; a sample is a randomly chosen prototype, randomly translated,
//! plus pixel noise. A `distinctiveness` knob blends class-specific bumps
//! with bumps shared across classes:
//!
//! * MNIST-like: high distinctiveness, low noise → easy (a 1-hidden-layer
//!   MLP reaches high-90s accuracy, as on real MNIST);
//! * FMNIST-like: low distinctiveness, higher noise → measurably harder
//!   (low-80s), matching the paper's ordering (Table I: 95% vs 81-83%).

use crate::dataset::{ClientData, ImageSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic image distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticImageSpec {
    /// Number of classes (paper datasets: 10).
    pub classes: usize,
    /// Image side length (28 → 784 features).
    pub side: usize,
    /// Training samples to generate (split across classes uniformly).
    pub train_n: usize,
    /// Test samples to generate.
    pub test_n: usize,
    /// Prototypes per class (intra-class variation).
    pub prototypes_per_class: usize,
    /// Gaussian bumps per prototype.
    pub bumps: usize,
    /// Blend of class-specific vs shared structure in \[0,1\]; 1 = fully
    /// class-specific (easy), 0 = classes indistinguishable.
    pub distinctiveness: f32,
    /// Std-dev of additive pixel noise.
    pub noise: f32,
    /// Maximum random translation in pixels.
    pub shift_max: usize,
}

impl SyntheticImageSpec {
    /// Easy 10-class task standing in for MNIST. Tuned so a 128-hidden MLP
    /// under 100-client non-IID FL lands in the paper's mid-90s band
    /// (Table I: 94.5–95.2 %) rather than saturating.
    pub fn mnist_like() -> Self {
        Self {
            classes: 10,
            side: 28,
            train_n: 6_000,
            test_n: 1_000,
            prototypes_per_class: 4,
            bumps: 6,
            distinctiveness: 0.82,
            noise: 0.25,
            shift_max: 2,
        }
    }

    /// Harder 10-class task standing in for Fashion-MNIST: prototypes share
    /// most structure across classes and noise is higher (paper band:
    /// low 80s, clearly below the MNIST band).
    pub fn fmnist_like() -> Self {
        Self {
            classes: 10,
            side: 28,
            train_n: 6_000,
            test_n: 1_000,
            prototypes_per_class: 5,
            bumps: 6,
            distinctiveness: 0.62,
            noise: 0.30,
            shift_max: 3,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.side * self.side
    }

    /// Generate (train, test) deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> (ImageSet, ImageSet) {
        let mut rng = stream(seed, StreamTag::Data, 0, 0);
        let protos = self.build_prototypes(&mut rng);
        let train = self.sample_set(self.train_n, &protos, &mut rng);
        let test = self.sample_set(self.test_n, &protos, &mut rng);
        (train, test)
    }

    /// Prototype images per class (blend of shared and class bumps).
    pub(crate) fn build_prototypes(&self, rng: &mut impl Rng) -> Vec<Vec<Vec<f32>>> {
        let dim = self.dim();
        // Shared bumps: one pool reused by every class.
        let shared: Vec<Vec<f32>> = (0..self.prototypes_per_class)
            .map(|_| self.render_bumps(rng))
            .collect();
        (0..self.classes)
            .map(|_| {
                (0..self.prototypes_per_class)
                    .map(|p| {
                        let own = self.render_bumps(rng);
                        let mut img = vec![0.0f32; dim];
                        let d = self.distinctiveness;
                        for i in 0..dim {
                            img[i] = d * own[i] + (1.0 - d) * shared[p][i];
                        }
                        img
                    })
                    .collect()
            })
            .collect()
    }

    /// Render one smooth image from random Gaussian bumps, normalised to
    /// peak 1.0.
    fn render_bumps(&self, rng: &mut impl Rng) -> Vec<f32> {
        let s = self.side as f32;
        let mut img = vec![0.0f32; self.dim()];
        for _ in 0..self.bumps {
            let cx: f32 = rng.gen_range(0.15 * s..0.85 * s);
            let cy: f32 = rng.gen_range(0.15 * s..0.85 * s);
            let sigma: f32 = rng.gen_range(0.06 * s..0.16 * s);
            let amp: f32 = rng.gen_range(0.4..1.0);
            let inv2s2 = 1.0 / (2.0 * sigma * sigma);
            for yy in 0..self.side {
                for xx in 0..self.side {
                    let dx = xx as f32 - cx;
                    let dy = yy as f32 - cy;
                    img[yy * self.side + xx] += amp * (-(dx * dx + dy * dy) * inv2s2).exp();
                }
            }
        }
        let peak = img.iter().copied().fold(0.0f32, f32::max).max(1e-6);
        for v in &mut img {
            *v /= peak;
        }
        img
    }

    pub(crate) fn sample_set(
        &self,
        n: usize,
        protos: &[Vec<Vec<f32>>],
        rng: &mut impl Rng,
    ) -> ImageSet {
        let mut set = ImageSet::empty(self.dim());
        let mut buf = vec![0.0f32; self.dim()];
        for i in 0..n {
            let class = i % self.classes; // balanced classes
            let proto = &protos[class][rng.gen_range(0..self.prototypes_per_class)];
            let sx = rng.gen_range(-(self.shift_max as i32)..=self.shift_max as i32);
            let sy = rng.gen_range(-(self.shift_max as i32)..=self.shift_max as i32);
            for yy in 0..self.side {
                for xx in 0..self.side {
                    let ox = xx as i32 - sx;
                    let oy = yy as i32 - sy;
                    let base =
                        if ox >= 0 && ox < self.side as i32 && oy >= 0 && oy < self.side as i32 {
                            proto[oy as usize * self.side + ox as usize]
                        } else {
                            0.0
                        };
                    let noisy = base + self.noise * fedbiad_tensor::init::gaussian(rng);
                    buf[yy * self.side + xx] = noisy.clamp(0.0, 1.0);
                }
            }
            set.push(&buf, class as u32);
        }
        set
    }
}

/// Sub-stream of `StreamTag::Data` feeding lazy client `c`'s samples
/// (the eager `generate` path owns sub-stream 0).
const LAZY_CLIENT_STREAM: u64 = 1;

/// Sub-stream of `StreamTag::Data` feeding the lazy held-out test set.
const LAZY_TEST_STREAM: u64 = 2;

/// Lazily generated per-client image shards for huge registered
/// populations.
///
/// The eager path materializes every client's `ClientData` up front —
/// O(K · samples) memory, which is what caps the simulator at ~10^4
/// registered clients. `LazyClients` stores only the generator inputs
/// (spec + seed + the class prototypes, a few kB) and derives any
/// client's shard on demand from its dedicated RNG stream
/// `stream(seed, StreamTag::Data, 1, client_id)`, so a lookup costs
/// O(samples_per_client) and the handle itself is O(1) in K.
///
/// Every client holds `samples_per_client` samples with balanced classes
/// (`class = i % classes` inside the shard), so `num_samples` and
/// `min_client_samples` are analytic — no enumeration is ever needed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LazyClients {
    /// Generator parameters shared by every client.
    pub spec: SyntheticImageSpec,
    /// Seed feeding the per-client streams.
    pub seed: u64,
    /// Registered client count K.
    pub num_clients: usize,
    /// Samples per client (constant across clients by construction).
    pub samples_per_client: usize,
    /// Class prototypes, built once (classes × prototypes_per_class
    /// images — kilobytes, not gigabytes).
    protos: Vec<Vec<Vec<f32>>>,
}

impl LazyClients {
    /// Build the shared prototypes and the lazy handle; no per-client
    /// state is allocated.
    pub fn new(
        spec: SyntheticImageSpec,
        seed: u64,
        num_clients: usize,
        samples_per_client: usize,
    ) -> Self {
        let mut rng = stream(seed, StreamTag::Data, 0, 0);
        let protos = spec.build_prototypes(&mut rng);
        Self {
            spec,
            seed,
            num_clients,
            samples_per_client,
            protos,
        }
    }

    /// Client `c`'s shard, generated on demand — a pure function of
    /// (spec, seed, c), so repeated lookups are bit-identical.
    pub fn client_data(&self, c: usize) -> ClientData {
        assert!(
            c < self.num_clients,
            "client {c} out of range (K = {})",
            self.num_clients
        );
        let mut rng = stream(self.seed, StreamTag::Data, LAZY_CLIENT_STREAM, c as u64);
        ClientData::Image(
            self.spec
                .sample_set(self.samples_per_client, &self.protos, &mut rng),
        )
    }

    /// The held-out test set — its own sub-stream, disjoint from every
    /// client's.
    pub fn test_set(&self, test_n: usize) -> ClientData {
        let mut rng = stream(self.seed, StreamTag::Data, LAZY_TEST_STREAM, 0);
        ClientData::Image(self.spec.sample_set(test_n, &self.protos, &mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SyntheticImageSpec {
        SyntheticImageSpec {
            classes: 4,
            side: 8,
            train_n: 200,
            test_n: 80,
            prototypes_per_class: 2,
            bumps: 3,
            distinctiveness: 0.9,
            noise: 0.1,
            shift_max: 1,
        }
    }

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let spec = small_spec();
        let (tr1, te1) = spec.generate(7);
        let (tr2, _) = spec.generate(7);
        assert_eq!(tr1.x, tr2.x);
        assert_eq!(tr1.len(), 200);
        assert_eq!(te1.len(), 80);
        assert_eq!(tr1.dim, 64);
        assert!(tr1.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = small_spec();
        let (a, _) = spec.generate(1);
        let (b, _) = spec.generate(2);
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn classes_are_balanced() {
        let spec = small_spec();
        let (tr, _) = spec.generate(3);
        let mut counts = [0usize; 4];
        for &y in &tr.y {
            counts[y as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 50), "{counts:?}");
    }

    /// A nearest-class-mean classifier must beat chance comfortably on the
    /// easy spec — the datasets have to be learnable for the FL experiments
    /// to be meaningful.
    #[test]
    fn nearest_mean_beats_chance_on_easy_spec() {
        // Average over seeds: any single draw of the tiny 4-class spec can
        // land a pair of look-alike prototypes, so pinning one seed makes
        // the test a lottery on the RNG stream rather than a statement
        // about the generator.
        let spec = small_spec();
        let seeds = [11u64, 12, 13, 14, 15];
        let mut total = 0.0f32;
        for &seed in &seeds {
            let (tr, te) = spec.generate(seed);
            let dim = tr.dim;
            let mut means = vec![vec![0.0f32; dim]; spec.classes];
            let mut counts = vec![0f32; spec.classes];
            for i in 0..tr.len() {
                let c = tr.y[i] as usize;
                for (m, &v) in means[c].iter_mut().zip(tr.sample(i)) {
                    *m += v;
                }
                counts[c] += 1.0;
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c;
                }
            }
            let mut correct = 0;
            for i in 0..te.len() {
                let xs = te.sample(i);
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for (c, m) in means.iter().enumerate() {
                    let d: f32 = m.iter().zip(xs).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best as u32 == te.y[i] {
                    correct += 1;
                }
            }
            let acc = correct as f32 / te.len() as f32;
            assert!(acc > 0.35, "seed {seed} worse than near-chance: {acc}");
            total += acc;
        }
        // Chance on 4 classes is 0.25; the tiny 8×8/3-bump spec hovers
        // around ~0.6 for nearest-mean, so demand a clear 2× margin over
        // chance rather than a knife-edge threshold.
        let mean_acc = total / seeds.len() as f32;
        assert!(
            mean_acc > 0.5,
            "easy spec should be separable, mean acc = {mean_acc}"
        );
    }

    /// The FMNIST-like spec must be harder than the MNIST-like one for the
    /// same classifier (hardness ordering of the paper).
    #[test]
    fn fmnist_like_is_harder_than_mnist_like() {
        let acc_of = |spec: &SyntheticImageSpec| {
            let mut spec = spec.clone();
            spec.train_n = 400;
            spec.test_n = 200;
            let (tr, te) = spec.generate(13);
            let dim = tr.dim;
            let mut means = vec![vec![0.0f32; dim]; spec.classes];
            let mut counts = vec![0f32; spec.classes];
            for i in 0..tr.len() {
                let c = tr.y[i] as usize;
                for (m, &v) in means[c].iter_mut().zip(tr.sample(i)) {
                    *m += v;
                }
                counts[c] += 1.0;
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c.max(1.0);
                }
            }
            let mut correct = 0;
            for i in 0..te.len() {
                let xs = te.sample(i);
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for (c, m) in means.iter().enumerate() {
                    let d: f32 = m.iter().zip(xs).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best as u32 == te.y[i] {
                    correct += 1;
                }
            }
            correct as f32 / te.len() as f32
        };
        let easy = acc_of(&SyntheticImageSpec::mnist_like());
        let hard = acc_of(&SyntheticImageSpec::fmnist_like());
        assert!(
            easy > hard,
            "mnist-like ({easy}) should be easier than fmnist-like ({hard})"
        );
    }
}
