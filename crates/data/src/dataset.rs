//! Dataset containers: image sets, token streams, and the federated bundle.

use serde::{Deserialize, Serialize};

/// A labelled image dataset (features flattened row-major).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ImageSet {
    /// Flat features, length `n * dim`, values in [0, 1].
    pub x: Vec<f32>,
    /// Labels, length `n`.
    pub y: Vec<u32>,
    /// Feature dimension (e.g. 784).
    pub dim: usize,
}

impl ImageSet {
    /// Empty set with the given feature dimension.
    pub fn empty(dim: usize) -> Self {
        Self {
            x: Vec::new(),
            y: Vec::new(),
            dim,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature slice of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.x[i * self.dim..(i + 1) * self.dim]
    }

    /// Append one sample.
    pub fn push(&mut self, features: &[f32], label: u32) {
        assert_eq!(features.len(), self.dim);
        self.x.extend_from_slice(features);
        self.y.push(label);
    }

    /// Copy the samples at `idx` into contiguous batch buffers (reused
    /// across calls to avoid per-batch allocation).
    pub fn gather(&self, idx: &[usize], bx: &mut Vec<f32>, by: &mut Vec<u32>) {
        bx.clear();
        by.clear();
        bx.reserve(idx.len() * self.dim);
        by.reserve(idx.len());
        for &i in idx {
            bx.extend_from_slice(self.sample(i));
            by.push(self.y[i]);
        }
    }
}

/// A token stream for next-word prediction, consumed as non-overlapping
/// windows of `seq_len + 1` tokens (inputs + shifted targets).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TextSet {
    /// Token ids.
    pub tokens: Vec<u32>,
    /// BPTT window length (number of predictions per window).
    pub seq_len: usize,
}

impl TextSet {
    /// Number of complete windows.
    pub fn num_windows(&self) -> usize {
        if self.tokens.len() < self.seq_len + 1 {
            0
        } else {
            // Windows advance by seq_len so that every target position is
            // predicted exactly once (standard LM batching).
            (self.tokens.len() - 1) / self.seq_len
        }
    }

    /// Window `i` as a slice of `seq_len + 1` tokens.
    pub fn window(&self, i: usize) -> &[u32] {
        let start = i * self.seq_len;
        &self.tokens[start..start + self.seq_len + 1]
    }

    /// Borrow the windows at `idx`.
    pub fn gather<'a>(&'a self, idx: &[usize], out: &mut Vec<&'a [u32]>) {
        out.clear();
        out.reserve(idx.len());
        for &i in idx {
            out.push(self.window(i));
        }
    }
}

/// One client's local dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ClientData {
    /// Image classification client.
    Image(ImageSet),
    /// Next-word-prediction client.
    Text(TextSet),
}

impl ClientData {
    /// |D_k| — the sample count used as the aggregation weight in eq. (10).
    /// Images count samples; text counts prediction windows.
    pub fn num_samples(&self) -> usize {
        match self {
            ClientData::Image(s) => s.len(),
            ClientData::Text(t) => t.num_windows(),
        }
    }
}

/// A complete federated benchmark dataset: per-client shards + a held-out
/// global test set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FedDataset {
    /// Dataset name (for logs), e.g. `"mnist-like"`.
    pub name: String,
    /// One shard per client.
    pub clients: Vec<ClientData>,
    /// Global test set.
    pub test: ClientData,
}

impl FedDataset {
    /// Number of clients K.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// min_k |D_k| — the quantity entering m_r in Theorem 1.
    pub fn min_client_samples(&self) -> usize {
        self.clients
            .iter()
            .map(ClientData::num_samples)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_set_push_sample_gather() {
        let mut s = ImageSet::empty(2);
        s.push(&[0.1, 0.2], 1);
        s.push(&[0.3, 0.4], 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(1), &[0.3, 0.4]);
        let mut bx = Vec::new();
        let mut by = Vec::new();
        s.gather(&[1, 0, 1], &mut bx, &mut by);
        assert_eq!(by, vec![0, 1, 0]);
        assert_eq!(bx.len(), 6);
        assert_eq!(&bx[0..2], &[0.3, 0.4]);
    }

    #[test]
    fn text_windows_tile_the_stream() {
        let t = TextSet {
            tokens: (0..21).collect(),
            seq_len: 5,
        };
        assert_eq!(t.num_windows(), 4);
        assert_eq!(t.window(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(t.window(3), &[15, 16, 17, 18, 19, 20]);
        // Consecutive windows share exactly the boundary token (the last
        // target of window i is the first input of window i+1).
        assert_eq!(t.window(0)[5], t.window(1)[0]);
    }

    #[test]
    fn text_too_short_has_no_windows() {
        let t = TextSet {
            tokens: vec![1, 2, 3],
            seq_len: 5,
        };
        assert_eq!(t.num_windows(), 0);
    }

    #[test]
    fn client_data_sample_counts() {
        let img = ClientData::Image(ImageSet {
            x: vec![0.0; 8],
            y: vec![0; 4],
            dim: 2,
        });
        assert_eq!(img.num_samples(), 4);
        let txt = ClientData::Text(TextSet {
            tokens: (0..11).collect(),
            seq_len: 5,
        });
        assert_eq!(txt.num_samples(), 2);
    }

    #[test]
    fn fed_dataset_min_samples() {
        let fd = FedDataset {
            name: "t".into(),
            clients: vec![
                ClientData::Image(ImageSet {
                    x: vec![0.0; 4],
                    y: vec![0; 2],
                    dim: 2,
                }),
                ClientData::Image(ImageSet {
                    x: vec![0.0; 10],
                    y: vec![0; 5],
                    dim: 2,
                }),
            ],
            test: ClientData::Image(ImageSet::empty(2)),
        };
        assert_eq!(fd.num_clients(), 2);
        assert_eq!(fd.min_client_samples(), 2);
    }
}
