//! Dataset containers: image sets, token streams, and the federated bundle.

use crate::synth_image::LazyClients;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// A labelled image dataset (features flattened row-major).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ImageSet {
    /// Flat features, length `n * dim`, values in [0, 1].
    pub x: Vec<f32>,
    /// Labels, length `n`.
    pub y: Vec<u32>,
    /// Feature dimension (e.g. 784).
    pub dim: usize,
}

impl ImageSet {
    /// Empty set with the given feature dimension.
    pub fn empty(dim: usize) -> Self {
        Self {
            x: Vec::new(),
            y: Vec::new(),
            dim,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature slice of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.x[i * self.dim..(i + 1) * self.dim]
    }

    /// Append one sample.
    pub fn push(&mut self, features: &[f32], label: u32) {
        assert_eq!(features.len(), self.dim);
        self.x.extend_from_slice(features);
        self.y.push(label);
    }

    /// Copy the samples at `idx` into contiguous batch buffers (reused
    /// across calls to avoid per-batch allocation).
    pub fn gather(&self, idx: &[usize], bx: &mut Vec<f32>, by: &mut Vec<u32>) {
        bx.clear();
        by.clear();
        bx.reserve(idx.len() * self.dim);
        by.reserve(idx.len());
        for &i in idx {
            bx.extend_from_slice(self.sample(i));
            by.push(self.y[i]);
        }
    }
}

/// A token stream for next-word prediction, consumed as non-overlapping
/// windows of `seq_len + 1` tokens (inputs + shifted targets).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TextSet {
    /// Token ids.
    pub tokens: Vec<u32>,
    /// BPTT window length (number of predictions per window).
    pub seq_len: usize,
}

impl TextSet {
    /// Number of complete windows.
    pub fn num_windows(&self) -> usize {
        if self.tokens.len() < self.seq_len + 1 {
            0
        } else {
            // Windows advance by seq_len so that every target position is
            // predicted exactly once (standard LM batching).
            (self.tokens.len() - 1) / self.seq_len
        }
    }

    /// Window `i` as a slice of `seq_len + 1` tokens.
    pub fn window(&self, i: usize) -> &[u32] {
        let start = i * self.seq_len;
        &self.tokens[start..start + self.seq_len + 1]
    }

    /// Borrow the windows at `idx`.
    pub fn gather<'a>(&'a self, idx: &[usize], out: &mut Vec<&'a [u32]>) {
        out.clear();
        out.reserve(idx.len());
        for &i in idx {
            out.push(self.window(i));
        }
    }
}

/// One client's local dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ClientData {
    /// Image classification client.
    Image(ImageSet),
    /// Next-word-prediction client.
    Text(TextSet),
}

impl ClientData {
    /// |D_k| — the sample count used as the aggregation weight in eq. (10).
    /// Images count samples; text counts prediction windows.
    pub fn num_samples(&self) -> usize {
        match self {
            ClientData::Image(s) => s.len(),
            ClientData::Text(t) => t.num_windows(),
        }
    }
}

/// A complete federated benchmark dataset: per-client shards + a held-out
/// global test set.
///
/// Two storage strategies share this container:
///
/// * **eager** (`lazy = None`) — every client's shard lives in `clients`,
///   O(K · samples) memory; the historical layout, unchanged.
/// * **lazy** (`lazy = Some(..)`) — `clients` is empty and shards are
///   derived on demand from the generator handle, O(1) memory in K. This
///   is what lets the simulator register 10^6 clients while holding only
///   the active cohort.
///
/// All consumers go through [`FedDataset::client`] /
/// [`FedDataset::num_clients`], which dispatch on the strategy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FedDataset {
    /// Dataset name (for logs), e.g. `"mnist-like"`.
    pub name: String,
    /// One shard per client (empty when `lazy` is set).
    pub clients: Vec<ClientData>,
    /// On-demand shard generator for huge registered populations.
    pub lazy: Option<LazyClients>,
    /// Global test set.
    pub test: ClientData,
}

impl FedDataset {
    /// Number of clients K.
    pub fn num_clients(&self) -> usize {
        match &self.lazy {
            Some(l) => l.num_clients,
            None => self.clients.len(),
        }
    }

    /// Client `id`'s shard: borrowed from the eager table, or generated
    /// on demand (bit-identical on every lookup) in lazy mode.
    pub fn client(&self, id: usize) -> Cow<'_, ClientData> {
        match &self.lazy {
            Some(l) => Cow::Owned(l.client_data(id)),
            None => Cow::Borrowed(&self.clients[id]),
        }
    }

    /// min_k |D_k| — the quantity entering m_r in Theorem 1. Analytic in
    /// lazy mode (every lazy client holds the same sample count).
    pub fn min_client_samples(&self) -> usize {
        match &self.lazy {
            Some(l) => l.samples_per_client,
            None => self
                .clients
                .iter()
                .map(ClientData::num_samples)
                .min()
                .unwrap_or(0),
        }
    }

    /// Materialize every shard eagerly — the reference the differential
    /// tests compare the lazy path against. A no-op copy in eager mode.
    pub fn materialize(&self) -> FedDataset {
        match &self.lazy {
            Some(l) => FedDataset {
                name: self.name.clone(),
                clients: (0..l.num_clients).map(|c| l.client_data(c)).collect(),
                lazy: None,
                test: self.test.clone(),
            },
            None => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_set_push_sample_gather() {
        let mut s = ImageSet::empty(2);
        s.push(&[0.1, 0.2], 1);
        s.push(&[0.3, 0.4], 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(1), &[0.3, 0.4]);
        let mut bx = Vec::new();
        let mut by = Vec::new();
        s.gather(&[1, 0, 1], &mut bx, &mut by);
        assert_eq!(by, vec![0, 1, 0]);
        assert_eq!(bx.len(), 6);
        assert_eq!(&bx[0..2], &[0.3, 0.4]);
    }

    #[test]
    fn text_windows_tile_the_stream() {
        let t = TextSet {
            tokens: (0..21).collect(),
            seq_len: 5,
        };
        assert_eq!(t.num_windows(), 4);
        assert_eq!(t.window(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(t.window(3), &[15, 16, 17, 18, 19, 20]);
        // Consecutive windows share exactly the boundary token (the last
        // target of window i is the first input of window i+1).
        assert_eq!(t.window(0)[5], t.window(1)[0]);
    }

    #[test]
    fn text_too_short_has_no_windows() {
        let t = TextSet {
            tokens: vec![1, 2, 3],
            seq_len: 5,
        };
        assert_eq!(t.num_windows(), 0);
    }

    #[test]
    fn client_data_sample_counts() {
        let img = ClientData::Image(ImageSet {
            x: vec![0.0; 8],
            y: vec![0; 4],
            dim: 2,
        });
        assert_eq!(img.num_samples(), 4);
        let txt = ClientData::Text(TextSet {
            tokens: (0..11).collect(),
            seq_len: 5,
        });
        assert_eq!(txt.num_samples(), 2);
    }

    #[test]
    fn fed_dataset_min_samples() {
        let fd = FedDataset {
            name: "t".into(),
            clients: vec![
                ClientData::Image(ImageSet {
                    x: vec![0.0; 4],
                    y: vec![0; 2],
                    dim: 2,
                }),
                ClientData::Image(ImageSet {
                    x: vec![0.0; 10],
                    y: vec![0; 5],
                    dim: 2,
                }),
            ],
            lazy: None,
            test: ClientData::Image(ImageSet::empty(2)),
        };
        assert_eq!(fd.num_clients(), 2);
        assert_eq!(fd.min_client_samples(), 2);
        // Eager accessor borrows (no copy).
        assert!(matches!(fd.client(1), Cow::Borrowed(_)));
        assert_eq!(fd.client(1).num_samples(), 5);
    }

    #[test]
    fn lazy_dataset_matches_its_materialization() {
        use crate::synth_image::{LazyClients, SyntheticImageSpec};
        let spec = SyntheticImageSpec {
            classes: 4,
            side: 6,
            train_n: 0,
            test_n: 0,
            prototypes_per_class: 2,
            bumps: 3,
            distinctiveness: 0.9,
            noise: 0.1,
            shift_max: 1,
        };
        let lazy = LazyClients::new(spec, 11, 17, 8);
        let fd = FedDataset {
            name: "lazy".into(),
            clients: Vec::new(),
            lazy: Some(lazy.clone()),
            test: lazy.test_set(20),
        };
        assert_eq!(fd.num_clients(), 17);
        assert_eq!(fd.min_client_samples(), 8);
        // On-demand lookups are owned, deterministic, and agree with the
        // eager materialization element-wise.
        let eager = fd.materialize();
        assert_eq!(eager.num_clients(), 17);
        assert!(eager.lazy.is_none());
        for id in [0usize, 7, 16] {
            let a = fd.client(id);
            let b = fd.client(id);
            let e = eager.client(id);
            match (a.as_ref(), b.as_ref(), e.as_ref()) {
                (ClientData::Image(x), ClientData::Image(y), ClientData::Image(z)) => {
                    assert_eq!(x.x, y.x, "lazy lookup not reproducible at {id}");
                    assert_eq!(x.x, z.x, "materialization diverges at {id}");
                    assert_eq!(x.y, z.y);
                }
                _ => panic!("image data expected"),
            }
            assert_eq!(a.num_samples(), 8);
        }
        // Distinct clients draw from distinct streams.
        match (fd.client(0).as_ref(), fd.client(1).as_ref()) {
            (ClientData::Image(x), ClientData::Image(y)) => assert_ne!(x.x, y.x),
            _ => panic!("image data expected"),
        }
    }

    #[test]
    fn lazy_dataset_round_trips_through_serde_and_old_json_still_loads() {
        use crate::synth_image::{LazyClients, SyntheticImageSpec};
        let spec = SyntheticImageSpec {
            classes: 2,
            side: 4,
            train_n: 0,
            test_n: 0,
            prototypes_per_class: 1,
            bumps: 2,
            distinctiveness: 0.8,
            noise: 0.05,
            shift_max: 0,
        };
        let lazy = LazyClients::new(spec, 3, 5, 4);
        let fd = FedDataset {
            name: "lazy".into(),
            clients: Vec::new(),
            lazy: Some(lazy.clone()),
            test: lazy.test_set(6),
        };
        let s = serde_json::to_string(&fd).unwrap();
        let back: FedDataset = serde_json::from_str(&s).unwrap();
        assert_eq!(back.num_clients(), 5);
        match (fd.client(2).as_ref(), back.client(2).as_ref()) {
            (ClientData::Image(x), ClientData::Image(y)) => assert_eq!(x.x, y.x),
            _ => panic!("image data expected"),
        }
        // An eager dataset serializes `lazy` as null and round-trips.
        let eager = FedDataset {
            name: "t".into(),
            clients: Vec::new(),
            lazy: None,
            test: ClientData::Image(ImageSet::empty(2)),
        };
        let s = serde_json::to_string(&eager).unwrap();
        let old: FedDataset = serde_json::from_str(&s).unwrap();
        assert!(old.lazy.is_none());
        assert_eq!(old.num_clients(), 0);
    }
}
