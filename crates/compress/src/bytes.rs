//! Wire-size constants and helpers (paper §V-B / Table II conventions).

/// Bytes per transmitted f32 value.
pub const F32_BYTES: u64 = 4;

/// Bytes per transmitted position index — the paper's fairness convention:
/// "the position representation of each parameter occupies 64 bits" \[4\].
pub const POSITION_BYTES: u64 = 8;

/// Bytes of a per-tensor quantisation scale.
pub const SCALE_BYTES: u64 = 4;

/// Wire size of a dense f32 payload.
pub fn dense_bytes(n: usize) -> u64 {
    n as u64 * F32_BYTES
}

/// Wire size of a sparse f32 payload: values + 64-bit positions.
pub fn sparse_f32_bytes(k: usize) -> u64 {
    k as u64 * (F32_BYTES + POSITION_BYTES)
}

/// Wire size of a sparse ternary payload: 1 sign bit per value + 64-bit
/// positions + one shared magnitude.
pub fn sparse_ternary_bytes(k: usize) -> u64 {
    (k as u64).div_ceil(8) + k as u64 * POSITION_BYTES + SCALE_BYTES
}

/// Wire size of a `bits`-wide uniform quantisation of `n` values with one
/// shared scale.
pub fn quantized_bytes(n: usize, bits: u32) -> u64 {
    (n as u64 * bits as u64).div_ceil(8) + SCALE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_is_4n() {
        assert_eq!(dense_bytes(100), 400);
    }

    #[test]
    fn sparse_is_12_per_value() {
        assert_eq!(sparse_f32_bytes(10), 120);
    }

    #[test]
    fn ternary_counts_bits_positions_scale() {
        // 9 values: 2 sign bytes + 72 position bytes + 4 scale bytes.
        assert_eq!(sparse_ternary_bytes(9), 2 + 72 + 4);
    }

    #[test]
    fn quantized_widths() {
        assert_eq!(quantized_bytes(8, 8), 8 + 4); // 8-bit: 1 B per value
        assert_eq!(quantized_bytes(8, 1), 1 + 4); // 1-bit: ⌈8/8⌉
        assert_eq!(quantized_bytes(9, 1), 2 + 4);
    }

    #[test]
    fn save_ratios_match_paper_orders_of_magnitude() {
        // FedPAQ ≈ 4×, SignSGD ≈ 32-33×, DGC at 0.1% ≈ 300×+ (Table II).
        let n = 1_000_000usize;
        let full = dense_bytes(n) as f64;
        assert!((full / quantized_bytes(n, 8) as f64 - 4.0).abs() < 0.1);
        assert!((full / quantized_bytes(n, 1) as f64 - 32.0).abs() < 0.5);
        let k = n / 1000;
        let dgc_ratio = full / sparse_f32_bytes(k) as f64;
        assert!(dgc_ratio > 300.0 && dgc_ratio < 340.0, "{dgc_ratio}");
    }
}
