//! DGC \[4\]: deep gradient compression.
//!
//! Per the original paper, the client keeps a momentum-corrected gradient
//! accumulator; each round it transmits the top-k coordinates of the
//! accumulator as full f32 values with 64-bit positions, zeroing what was
//! sent (the rest stays local — "gradient accumulation"). A warm-up
//! schedule ramps sparsity over the first rounds (75 % → 93.75 % → 98.4 %
//! → 99.6 % → final).

use crate::{bytes, ClientState, Compressed, Compressor};
use fedbiad_tensor::stats;
use rand::rngs::StdRng;

/// Deep gradient compression.
#[derive(Clone, Copy, Debug)]
pub struct Dgc {
    /// Final kept fraction (paper \[4\]: 0.001, i.e. 99.9 % sparsity).
    pub keep_fraction: f32,
    /// Momentum-correction factor m (velocity decay).
    pub momentum: f32,
    /// Warm-up length in rounds.
    pub warmup_rounds: usize,
}

impl Dgc {
    /// The configuration used for Table II (99.9 % sparsity, m = 0.9,
    /// 4-round exponential warm-up).
    pub fn paper() -> Self {
        Self {
            keep_fraction: 0.001,
            momentum: 0.9,
            warmup_rounds: 4,
        }
    }

    /// Kept fraction for `round` under the warm-up schedule.
    pub fn keep_at(&self, round: usize) -> f32 {
        if round >= self.warmup_rounds {
            return self.keep_fraction;
        }
        // Exponential ramp: keep 25% → 6.25% → … down to the target.
        let warm = 0.25f32.powi(round as i32 + 1);
        warm.max(self.keep_fraction)
    }
}

impl Compressor for Dgc {
    fn name(&self) -> &str {
        "dgc"
    }

    fn compress(
        &self,
        state: &mut ClientState,
        delta: &[f32],
        round: usize,
        _rng: &mut StdRng,
    ) -> Compressed {
        let n = delta.len();
        state.ensure_len(n);
        // Momentum correction: v = m·v + g ; accumulate u += v.
        for ((v, u), &g) in state
            .velocity
            .iter_mut()
            .zip(&mut state.residual)
            .zip(delta)
        {
            *v = self.momentum * *v + g;
            *u += *v;
        }
        let keep = self.keep_at(round);
        let k = ((n as f64 * keep as f64).ceil() as usize).clamp(1, n);
        let idx = stats::top_k_abs_indices(&state.residual, k);

        let pairs: Vec<(usize, f32)> = idx.iter().map(|&i| (i, state.residual[i])).collect();
        for &i in &idx {
            // Sent mass leaves the accumulator *and* the velocity (the DGC
            // paper zeroes both at transmitted coordinates).
            state.residual[i] = 0.0;
            state.velocity[i] = 0.0;
        }
        let c = Compressed::from_payload(crate::codec::Payload::sparse_f32(n, pairs));
        debug_assert_eq!(c.wire_bytes, bytes::sparse_f32_bytes(k));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};
    use rand::Rng;

    fn rng() -> StdRng {
        stream(5, StreamTag::Compress, 0, 0)
    }

    #[test]
    fn warmup_schedule_descends_to_target() {
        let d = Dgc::paper();
        let seq: Vec<f32> = (0..6).map(|r| d.keep_at(r)).collect();
        assert!((seq[0] - 0.25).abs() < 1e-6);
        assert!((seq[1] - 0.0625).abs() < 1e-6);
        assert!(seq.windows(2).all(|w| w[1] <= w[0]));
        assert!((seq[5] - 0.001).abs() < 1e-9);
    }

    #[test]
    fn transmits_exact_values_at_topk() {
        let delta = [3.0f32, -0.1, 0.2, -5.0];
        let mut st = ClientState::default();
        let d = Dgc {
            keep_fraction: 0.5,
            momentum: 0.0,
            warmup_rounds: 0,
        };
        let c = d.compress(&mut st, &delta, 0, &mut rng());
        assert_eq!(c.sent_values, 2);
        assert_eq!(c.decoded[3], -5.0);
        assert_eq!(c.decoded[0], 3.0);
        assert_eq!(c.decoded[1], 0.0);
        // Accumulator keeps the rest.
        assert!((st.residual[1] + 0.1).abs() < 1e-6);
        assert_eq!(st.residual[3], 0.0);
    }

    #[test]
    fn momentum_amplifies_unsent_persistent_directions() {
        // A persistent direction that keeps losing the top-k race
        // accumulates super-linearly under momentum correction — the
        // mechanism DGC uses so small-but-consistent gradients are not
        // starved. Coordinate 0 always wins the single slot; coordinate 1
        // accumulates with momentum.
        let delta = [10.0f32, 1.0];
        let d = Dgc {
            keep_fraction: 0.5,
            momentum: 0.9,
            warmup_rounds: 0,
        };
        let mut st = ClientState::default();
        for round in 0..4 {
            let c = d.compress(&mut st, &delta, round, &mut rng());
            assert_eq!(c.decoded[0], 10.0, "round {round} sends coord 0");
        }
        // Without momentum the accumulator would hold exactly 4.0; with
        // m = 0.9 it holds 1 + 1.9 + 2.71 + 3.439 = 9.049.
        assert!(
            st.residual[1] > 4.0 + 1.0,
            "momentum-corrected accumulation {} should exceed linear 4.0",
            st.residual[1]
        );
    }

    #[test]
    fn paper_config_save_ratio_after_warmup() {
        let n = 500_000;
        let mut r = rng();
        let delta: Vec<f32> = (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let d = Dgc::paper();
        let mut st = ClientState::default();
        let c = d.compress(&mut st, &delta, 10, &mut rng());
        let ratio = bytes::dense_bytes(n) as f64 / c.wire_bytes as f64;
        assert!(ratio > 300.0 && ratio < 340.0, "DGC save ratio {ratio}");
    }

    #[test]
    fn nothing_is_lost_sum_conservation() {
        // With momentum 0, decoded + residual must always equal the running
        // sum of deltas (per coordinate).
        let d = Dgc {
            keep_fraction: 0.25,
            momentum: 0.0,
            warmup_rounds: 0,
        };
        let mut st = ClientState::default();
        let mut sent = [0.0f32; 4];
        let deltas = [[1.0f32, -2.0, 0.5, 0.1], [0.3, 0.3, -0.2, 0.9]];
        for (round, dvec) in deltas.iter().enumerate() {
            let c = d.compress(&mut st, dvec, round, &mut rng());
            for (s, &v) in sent.iter_mut().zip(&c.decoded) {
                *s += v;
            }
        }
        for (i, &s) in sent.iter().enumerate() {
            let total: f32 = deltas.iter().map(|d| d[i]).sum();
            assert!(
                (s + st.residual[i] - total).abs() < 1e-6,
                "coordinate {i} leaked mass"
            );
        }
    }
}
