//! signSGD \[11\]: 1-bit sign compression.
//!
//! Each delta coordinate is transmitted as its sign (1 bit); the server
//! reconstruction is `sign(v) · μ` with μ the mean |delta| (one shared
//! 32-bit scale), which preserves the expected step length. Error feedback
//! (residual accumulation, as in EF-signSGD) is applied so quantisation
//! noise does not accumulate destructively — the paper's §I critique of
//! naive sketching.

use crate::{bytes, ClientState, Compressed, Compressor};
use rand::rngs::StdRng;

/// 1-bit sign compressor with error feedback.
#[derive(Clone, Copy, Debug)]
pub struct SignSgd {
    /// Enable error feedback (residual carry-over). Default true.
    pub error_feedback: bool,
}

impl Default for SignSgd {
    fn default() -> Self {
        Self {
            error_feedback: true,
        }
    }
}

impl Compressor for SignSgd {
    fn name(&self) -> &str {
        "signsgd"
    }

    fn compress(
        &self,
        state: &mut ClientState,
        delta: &[f32],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Compressed {
        let n = delta.len();
        state.ensure_len(n);
        // Corrected signal = new delta + residual from previous rounds.
        let corrected: Vec<f32> = if self.error_feedback {
            delta
                .iter()
                .zip(&state.residual)
                .map(|(d, r)| d + r)
                .collect()
        } else {
            delta.to_vec()
        };
        let mu = corrected.iter().map(|v| v.abs()).sum::<f32>() / n.max(1) as f32;
        // Sign bit set ⇔ NOT (v ≥ 0.0) — including NaN, so the decoded
        // vector is bit-for-bit what `if v >= 0.0 { mu } else { -mu }`
        // produced before the codec existed.
        use std::cmp::Ordering;
        let c = Compressed::from_payload(crate::codec::Payload::sign_dense(
            mu,
            corrected.iter().map(|&v| {
                !matches!(
                    v.partial_cmp(&0.0),
                    Some(Ordering::Greater | Ordering::Equal)
                )
            }),
        ));
        if self.error_feedback {
            for ((r, &cv), &d) in state.residual.iter_mut().zip(&corrected).zip(&c.decoded) {
                *r = cv - d;
            }
        }
        debug_assert_eq!(c.wire_bytes, bytes::quantized_bytes(n, 1));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};

    fn rng() -> StdRng {
        stream(3, StreamTag::Compress, 0, 0)
    }

    #[test]
    fn signs_are_preserved_and_magnitude_shared() {
        let delta = [2.0f32, -1.0, 0.5, -0.5];
        let mut st = ClientState::default();
        let c = SignSgd {
            error_feedback: false,
        }
        .compress(&mut st, &delta, 0, &mut rng());
        let mu = 1.0; // mean |delta|
        assert_eq!(c.decoded, vec![mu, -mu, mu, -mu]);
    }

    #[test]
    fn save_ratio_is_about_32x() {
        let n = 1 << 16;
        let c =
            SignSgd::default().compress(&mut ClientState::default(), &vec![0.25; n], 0, &mut rng());
        let ratio = bytes::dense_bytes(n) as f64 / c.wire_bytes as f64;
        assert!(ratio > 31.0 && ratio <= 32.0, "{ratio}");
    }

    #[test]
    fn error_feedback_telescopes_exactly() {
        // The error-feedback invariant: the transmitted mass plus the final
        // residual equals the total true mass, per coordinate — so no
        // signal is permanently lost (the paper's §I noise-accumulation
        // critique does not apply with feedback).
        let delta = [10.0f32, 0.1];
        let mut st = ClientState::default();
        let comp = SignSgd::default();
        let mut sum_decoded = [0.0f64; 2];
        for round in 0..50 {
            let c = comp.compress(&mut st, &delta, round, &mut rng());
            sum_decoded[0] += c.decoded[0] as f64;
            sum_decoded[1] += c.decoded[1] as f64;
        }
        for i in 0..2 {
            let total = sum_decoded[i] + st.residual[i] as f64;
            let want = delta[i] as f64 * 50.0;
            assert!(
                (total - want).abs() < 0.05 * want.abs().max(1.0),
                "coord {i}: decoded+residual {total} vs true {want}"
            );
        }
        // And the residual itself stays bounded (no blow-up).
        assert!(st.residual.iter().all(|r| r.abs() < 20.0));
    }

    #[test]
    fn without_feedback_bias_persists() {
        let delta = [10.0f32, 0.1];
        let mut st = ClientState::default();
        let comp = SignSgd {
            error_feedback: false,
        };
        let mut sum1 = 0.0;
        for round in 0..50 {
            sum1 += comp.compress(&mut st, &delta, round, &mut rng()).decoded[1];
        }
        // Every round decodes coord 1 as +μ = 5.05 — wildly over-counted.
        assert!(sum1 > 50.0);
    }
}
