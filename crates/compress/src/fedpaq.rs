//! FedPAQ \[9\]: periodic averaging with uniform quantisation.
//!
//! The model delta is quantised with a `bits`-wide symmetric uniform
//! quantiser sharing one scale (max-|value|) per upload. The paper's
//! Table II uses the 8-bit variant (≈4× save ratio).

use crate::{bytes, ClientState, Compressed, Compressor};
use rand::rngs::StdRng;

/// Uniform `bits`-wide quantiser.
#[derive(Clone, Copy, Debug)]
pub struct FedPaq {
    /// Quantisation width in bits (paper: 8).
    pub bits: u32,
}

impl FedPaq {
    /// Paper configuration (8-bit).
    pub fn paper() -> Self {
        Self { bits: 8 }
    }
}

impl Compressor for FedPaq {
    fn name(&self) -> &str {
        "fedpaq"
    }

    fn compress(
        &self,
        _state: &mut ClientState,
        delta: &[f32],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Compressed {
        assert!(self.bits >= 2 && self.bits <= 16, "bits out of range");
        let levels = (1i64 << (self.bits - 1)) - 1; // symmetric: ±levels
        let scale = delta.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        // Codes stored offset-binary: code + levels ∈ [0, 2·levels]. The
        // decoder computes `code · (scale / levels)`, the exact expression
        // the pre-codec reconstruction used; a zero scale makes inv_q
        // +0.0 and every code 0, so all-zero inputs still decode to +0.0.
        let codes: Vec<u16> = if scale == 0.0 {
            vec![levels as u16; delta.len()]
        } else {
            let q = levels as f32 / scale;
            delta
                .iter()
                .map(|&v| {
                    let code = (v * q).round().clamp(-(levels as f32), levels as f32);
                    (code as i64 + levels) as u16
                })
                .collect()
        };
        let c = Compressed::from_payload(crate::codec::Payload::Quantized {
            len: delta.len(),
            bits: self.bits as u8,
            scale,
            codes,
        });
        debug_assert_eq!(c.wire_bytes, bytes::quantized_bytes(delta.len(), self.bits));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};
    use rand::Rng;

    fn rng() -> StdRng {
        stream(2, StreamTag::Compress, 0, 0)
    }

    #[test]
    fn quantisation_error_is_bounded_by_step() {
        let mut r = rng();
        let delta: Vec<f32> = (0..257).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let mut st = ClientState::default();
        let c = FedPaq::paper().compress(&mut st, &delta, 0, &mut rng());
        let scale = delta.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = scale / 127.0;
        for (d, o) in c.decoded.iter().zip(&delta) {
            assert!((d - o).abs() <= step / 2.0 + 1e-6);
        }
        assert_eq!(c.wire_bytes, 257 + 4);
    }

    #[test]
    fn save_ratio_is_about_4x() {
        let n = 4096;
        let c = FedPaq::paper().compress(&mut ClientState::default(), &vec![0.5; n], 0, &mut rng());
        let ratio = bytes::dense_bytes(n) as f64 / c.wire_bytes as f64;
        assert!((ratio - 4.0).abs() < 0.05, "{ratio}");
    }

    #[test]
    fn zero_delta_stays_zero() {
        let c = FedPaq::paper().compress(&mut ClientState::default(), &[0.0; 16], 0, &mut rng());
        assert!(c.decoded.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn extremes_map_to_themselves() {
        let delta = [1.0f32, -1.0, 0.0];
        let c = FedPaq::paper().compress(&mut ClientState::default(), &delta, 0, &mut rng());
        assert!((c.decoded[0] - 1.0).abs() < 1e-6);
        assert!((c.decoded[1] + 1.0).abs() < 1e-6);
        assert_eq!(c.decoded[2], 0.0);
    }
}
