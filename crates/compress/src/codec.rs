//! The real wire codec: every upload the server aggregates can travel as
//! actual bytes, not just an analytical byte count.
//!
//! ## Frame layout
//!
//! A [`WireMsg`] is one encoded upload:
//!
//! ```text
//! [0..4)    magic  b"FBWC"
//! [4]       version (currently 1)
//! [5]       body kind: 0 weights-absolute, 1 weights-delta, 2 delta-full
//! [6]       payload tag: 0 dense, 1 sparse-f32, 2 sign-dense,
//!                        3 sparse-sign, 4 quantized
//! [7]       quantisation width in bits (0 unless tag = quantized)
//! [8..16)   payload logical length n (u64 LE)
//! [16..24)  sparse count k (u64 LE; 0 for dense payload kinds)
//! [24..26)  coverage entry count (u16 LE; 0 for delta-full)
//! [26..28)  reserved (0)
//! [28..28+entries)  per-entry coverage kind tags
//!                   (0 full, 1 rows, 2 rows×cols, 3 elements)
//! then the BODY:
//!   coverage pattern bitmaps, entry by entry (kind-dependent length)
//!   payload bytes (format below)
//! ```
//!
//! Everything before the body is *framing* — structural metadata the
//! paper's byte-accounting conventions treat as free (tensor shapes are
//! known to both ends). The **body length equals the analytical
//! `wire_bytes`** reported for the upload, exactly: pattern bitmaps cost
//! 1 bit per label ([`fedbiad_nn::ModelMask::wire_bytes`]) and payloads
//! follow the [`crate::bytes`] conventions (4 B values, 64-bit positions,
//! one 32-bit scale). `tests/byte_accounting.rs` at the workspace root
//! pins this equality for every compressor.
//!
//! ## Payload formats (the [`crate::bytes`] conventions, made real)
//!
//! | tag | body | analytical twin |
//! |-----|------|-----------------|
//! | dense | n × f32 | [`crate::bytes::dense_bytes`] |
//! | sparse-f32 | k × u64 positions, k × f32 values | [`crate::bytes::sparse_f32_bytes`] |
//! | sign-dense | f32 µ, ⌈n/8⌉ sign bytes | [`crate::bytes::quantized_bytes`]`(n, 1)` |
//! | sparse-sign | f32 µ, k × u64 positions, ⌈k/8⌉ sign bytes | [`crate::bytes::sparse_ternary_bytes`] |
//! | quantized | f32 scale, ⌈n·bits/8⌉ packed codes | [`crate::bytes::quantized_bytes`] |
//!
//! ## Exactness contract
//!
//! Decoding is **bit-identical** to the in-memory [`crate::Compressed`]
//! reconstruction: every compressor now builds its [`Payload`] first and
//! derives `decoded` from it, so encode → decode is the identity on the
//! decoded values by construction (`crates/compress/tests/codec_props.rs`).
//! This is what lets the sharded streaming reducer in `fedbiad-fl`
//! reproduce the dense reference aggregation bit for bit while decoding
//! straight from wire bytes.
//!
//! Decoders never panic on foreign bytes: truncated or garbled buffers
//! return a structured [`WireError`].

use fedbiad_nn::mask::BitVec;
use fedbiad_nn::{CoverageMask, ModelMask, ParamSet};
use fedbiad_tensor::ops;

/// Frame magic: "FedBiad Wire Codec".
pub const MAGIC: [u8; 4] = *b"FBWC";
/// Current frame version.
pub const VERSION: u8 = 1;
/// Fixed frame-header length (before the per-entry coverage tags).
pub const HEADER_BYTES: usize = 28;

/// A structural decoding failure. `Display` is the full message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the section a field lives in.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Magic bytes do not match [`MAGIC`].
    BadMagic,
    /// Unsupported frame version.
    BadVersion(u8),
    /// Unknown body-kind / payload / coverage tag.
    BadTag {
        /// Which tag field was invalid.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A header field is inconsistent with the model shapes or with
    /// another field (entry counts, lengths, sparse counts, quant width).
    Inconsistent(&'static str),
    /// Sparse positions are not strictly increasing or exceed the
    /// payload's logical length.
    BadPositions,
    /// Trailing bytes after the frame's computed end.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what, needed, have } => {
                write!(
                    f,
                    "truncated wire frame reading {what}: need {needed} bytes, have {have}"
                )
            }
            WireError::BadMagic => write!(f, "bad wire magic (not an FBWC frame)"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag { what, value } => write!(f, "invalid {what} tag {value}"),
            WireError::Inconsistent(what) => write!(f, "inconsistent wire frame: {what}"),
            WireError::BadPositions => {
                write!(
                    f,
                    "sparse positions must be strictly increasing and in range"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after wire frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// What the body of a [`WireMsg`] means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyKind {
    /// Masked weights β∘U: the payload holds the covered values
    /// themselves, indexed by kept-rank in flatten order.
    WeightsAbsolute,
    /// Sketched masked weights (Fig. 5 combos): the payload holds the
    /// covered-subvector *delta against the broadcast global*; the server
    /// reconstructs `g + δ` on covered positions.
    WeightsDelta,
    /// A full-model delta over the whole flat space (sketched-compression
    /// methods); coverage is implicitly full.
    DeltaFull,
}

impl BodyKind {
    fn tag(self) -> u8 {
        match self {
            BodyKind::WeightsAbsolute => 0,
            BodyKind::WeightsDelta => 1,
            BodyKind::DeltaFull => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, WireError> {
        match t {
            0 => Ok(BodyKind::WeightsAbsolute),
            1 => Ok(BodyKind::WeightsDelta),
            2 => Ok(BodyKind::DeltaFull),
            v => Err(WireError::BadTag {
                what: "body kind",
                value: v,
            }),
        }
    }
}

// ---- payloads ----

/// A compressor's transmitted payload, in structural form. Positions of
/// sparse kinds are **sorted ascending** (constructors sort; decoders
/// reject anything else).
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Dense f32 values (identity compressor / plain masked weights).
    Dense {
        /// The transmitted values.
        values: Vec<f32>,
    },
    /// Exact values at sparse positions, zero elsewhere (DGC).
    SparseF32 {
        /// Logical vector length n.
        len: usize,
        /// Sorted positions of the transmitted values.
        positions: Vec<u64>,
        /// Values aligned with `positions`.
        values: Vec<f32>,
    },
    /// One shared magnitude, one sign bit per coordinate (signSGD):
    /// coordinate i decodes to `-µ` when its bit is set, `+µ` otherwise.
    SignDense {
        /// Logical vector length n.
        len: usize,
        /// Shared magnitude µ.
        mu: f32,
        /// Packed sign bits (bit i at `bytes[i/8] >> (i%8)`).
        negatives: Vec<u8>,
    },
    /// Shared magnitude at sparse positions, zero elsewhere (STC). Sign
    /// bit j applies to `positions[j]`.
    SparseSign {
        /// Logical vector length n.
        len: usize,
        /// Shared magnitude µ.
        mu: f32,
        /// Sorted positions of the transmitted ternary values.
        positions: Vec<u64>,
        /// Packed sign bits aligned with `positions`.
        negatives: Vec<u8>,
    },
    /// Symmetric uniform quantisation (FedPAQ): code c ∈ [-L, L] stored
    /// as the unsigned `c + L` in `bits` bits, L = 2^(bits-1) − 1;
    /// coordinate i decodes to `c · scale/L`.
    Quantized {
        /// Logical vector length n.
        len: usize,
        /// Quantisation width in bits (2..=16).
        bits: u8,
        /// Shared scale (max |value| of the input).
        scale: f32,
        /// Unsigned codes, one per coordinate (not yet bit-packed).
        codes: Vec<u16>,
    },
}

impl Payload {
    /// Build a sparse-f32 payload from unordered (position, value) pairs.
    pub fn sparse_f32(len: usize, mut pairs: Vec<(usize, f32)>) -> Payload {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        Payload::SparseF32 {
            len,
            positions: pairs.iter().map(|&(i, _)| i as u64).collect(),
            values: pairs.iter().map(|&(_, v)| v).collect(),
        }
    }

    /// Build a sparse-sign payload from unordered (position, negative)
    /// pairs and a shared magnitude.
    pub fn sparse_sign(len: usize, mu: f32, mut pairs: Vec<(usize, bool)>) -> Payload {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut negatives = vec![0u8; pairs.len().div_ceil(8)];
        for (j, &(_, neg)) in pairs.iter().enumerate() {
            if neg {
                negatives[j / 8] |= 1 << (j % 8);
            }
        }
        Payload::SparseSign {
            len,
            mu,
            positions: pairs.iter().map(|&(i, _)| i as u64).collect(),
            negatives,
        }
    }

    /// Build a dense-sign payload from per-coordinate negativity.
    pub fn sign_dense(mu: f32, negative: impl ExactSizeIterator<Item = bool>) -> Payload {
        let len = negative.len();
        let mut bytes = vec![0u8; len.div_ceil(8)];
        for (i, neg) in negative.enumerate() {
            if neg {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        Payload::SignDense {
            len,
            mu,
            negatives: bytes,
        }
    }

    /// Logical length of the decoded vector.
    pub fn logical_len(&self) -> usize {
        match self {
            Payload::Dense { values } => values.len(),
            Payload::SparseF32 { len, .. }
            | Payload::SignDense { len, .. }
            | Payload::SparseSign { len, .. }
            | Payload::Quantized { len, .. } => *len,
        }
    }

    /// Number of transmitted values (k for sparse kinds, n otherwise).
    pub fn sent_values(&self) -> u64 {
        match self {
            Payload::SparseF32 { positions, .. } | Payload::SparseSign { positions, .. } => {
                positions.len() as u64
            }
            other => other.logical_len() as u64,
        }
    }

    /// Exact body bytes on the wire — equal, by construction, to the
    /// matching [`crate::bytes`] analytical count.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Dense { values } => crate::bytes::dense_bytes(values.len()),
            Payload::SparseF32 { positions, .. } => crate::bytes::sparse_f32_bytes(positions.len()),
            Payload::SignDense { len, .. } => crate::bytes::quantized_bytes(*len, 1),
            Payload::SparseSign { positions, .. } => {
                crate::bytes::sparse_ternary_bytes(positions.len())
            }
            Payload::Quantized { len, bits, .. } => {
                crate::bytes::quantized_bytes(*len, *bits as u32)
            }
        }
    }

    /// Decode the full dense vector. The canonical reconstruction every
    /// compressor's `decoded` field is derived from.
    pub fn decode_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.logical_len()];
        self.decode_range(0, &mut out);
        out
    }

    /// Decode logical positions `[start, start + out.len())` into `out`.
    /// Bit-identical to the matching slice of [`Payload::decode_dense`].
    pub fn decode_range(&self, start: usize, out: &mut [f32]) {
        let end = start + out.len();
        assert!(end <= self.logical_len(), "decode range out of bounds");
        match self {
            Payload::Dense { values } => out.copy_from_slice(&values[start..end]),
            Payload::SparseF32 {
                positions, values, ..
            } => {
                out.fill(0.0);
                let lo = positions.partition_point(|&p| (p as usize) < start);
                for j in lo..positions.len() {
                    let p = positions[j] as usize;
                    if p >= end {
                        break;
                    }
                    out[p - start] = values[j];
                }
            }
            Payload::SignDense { mu, negatives, .. } => {
                for (o, v) in out.iter_mut().enumerate() {
                    let i = start + o;
                    *v = if negatives[i / 8] >> (i % 8) & 1 == 1 {
                        -mu
                    } else {
                        *mu
                    };
                }
            }
            Payload::SparseSign {
                mu,
                positions,
                negatives,
                ..
            } => {
                out.fill(0.0);
                let lo = positions.partition_point(|&p| (p as usize) < start);
                for j in lo..positions.len() {
                    let p = positions[j] as usize;
                    if p >= end {
                        break;
                    }
                    out[p - start] = if negatives[j / 8] >> (j % 8) & 1 == 1 {
                        -mu
                    } else {
                        *mu
                    };
                }
            }
            Payload::Quantized {
                bits, scale, codes, ..
            } => {
                let levels = (1i32 << (bits - 1)) - 1;
                // Same expression order as the FedPAQ compressor:
                // `code * (scale / levels)`.
                let inv_q = scale / levels as f32;
                for (o, v) in out.iter_mut().enumerate() {
                    let code = codes[start + o] as i32 - levels;
                    *v = code as f32 * inv_q;
                }
            }
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Payload::Dense { .. } => 0,
            Payload::SparseF32 { .. } => 1,
            Payload::SignDense { .. } => 2,
            Payload::SparseSign { .. } => 3,
            Payload::Quantized { .. } => 4,
        }
    }

    fn sparse_k(&self) -> usize {
        match self {
            Payload::SparseF32 { positions, .. } | Payload::SparseSign { positions, .. } => {
                positions.len()
            }
            _ => 0,
        }
    }

    fn quant_bits(&self) -> u8 {
        match self {
            Payload::Quantized { bits, .. } => *bits,
            _ => 0,
        }
    }

    /// Append the body bytes (exactly [`Payload::wire_bytes`] of them).
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Dense { values } => {
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::SparseF32 {
                positions, values, ..
            } => {
                for p in positions {
                    out.extend_from_slice(&p.to_le_bytes());
                }
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::SignDense { mu, negatives, .. } => {
                out.extend_from_slice(&mu.to_le_bytes());
                out.extend_from_slice(negatives);
            }
            Payload::SparseSign {
                mu,
                positions,
                negatives,
                ..
            } => {
                out.extend_from_slice(&mu.to_le_bytes());
                for p in positions {
                    out.extend_from_slice(&p.to_le_bytes());
                }
                out.extend_from_slice(negatives);
            }
            Payload::Quantized {
                len,
                bits,
                scale,
                codes,
                ..
            } => {
                out.extend_from_slice(&scale.to_le_bytes());
                // Bit-pack codes little-endian: code i occupies bits
                // [i·bits, (i+1)·bits) of the packed stream.
                let nbytes = (len * *bits as usize).div_ceil(8);
                let base = out.len();
                out.resize(base + nbytes, 0);
                let packed = &mut out[base..];
                let mut bitpos = 0usize;
                for &c in codes {
                    let mut v = c as u32;
                    let mut left = *bits as usize;
                    while left > 0 {
                        let byte = bitpos / 8;
                        let off = bitpos % 8;
                        let take = (8 - off).min(left);
                        packed[byte] |= ((v & ((1u32 << take) - 1)) as u8) << off;
                        v >>= take;
                        bitpos += take;
                        left -= take;
                    }
                }
            }
        }
    }
}

/// Zero-copy view of an encoded payload: decodes ranges straight from the
/// frame bytes, so the server never materialises a per-client dense
/// vector. All structural validation happens at parse time;
/// range decoding afterwards cannot fail.
#[derive(Clone, Copy, Debug)]
pub struct PayloadView<'a> {
    tag: u8,
    n: usize,
    k: usize,
    bits: u8,
    body: &'a [u8],
}

impl<'a> PayloadView<'a> {
    fn parse(tag: u8, n: usize, k: usize, bits: u8, body: &'a [u8]) -> Result<Self, WireError> {
        // Bound the untrusted header fields *before* any size arithmetic:
        // a hostile k (e.g. u64::MAX) must become a structured error, not
        // a debug-build multiplication overflow. `n` is already bounded
        // by the model size in `WireView::parse`.
        if k > n {
            return Err(WireError::Inconsistent("sparse count exceeds length"));
        }
        let expected: usize = match tag {
            0 => {
                if k != 0 {
                    return Err(WireError::Inconsistent("dense payload with sparse count"));
                }
                4 * n
            }
            1 => 12 * k,
            2 => {
                if k != 0 {
                    return Err(WireError::Inconsistent("dense payload with sparse count"));
                }
                4 + n.div_ceil(8)
            }
            3 => 4 + 8 * k + k.div_ceil(8),
            4 => {
                if !(2..=16).contains(&bits) {
                    return Err(WireError::Inconsistent("quantisation width out of range"));
                }
                if k != 0 {
                    return Err(WireError::Inconsistent("dense payload with sparse count"));
                }
                4 + (n * bits as usize).div_ceil(8)
            }
            v => {
                return Err(WireError::BadTag {
                    what: "payload",
                    value: v,
                })
            }
        };
        if tag != 4 && bits != 0 {
            return Err(WireError::Inconsistent(
                "quant width on non-quantized payload",
            ));
        }
        if body.len() < expected {
            return Err(WireError::Truncated {
                what: "payload body",
                needed: expected,
                have: body.len(),
            });
        }
        if body.len() > expected {
            return Err(WireError::TrailingBytes(body.len() - expected));
        }
        let view = Self {
            tag,
            n,
            k,
            bits,
            body,
        };
        if matches!(tag, 1 | 3) {
            // Positions must be strictly increasing and in range for the
            // binary-searched range decode to be correct.
            let mut prev: Option<usize> = None;
            for j in 0..k {
                let p = view.pos_at(j);
                if p >= n || prev.is_some_and(|q| q >= p) {
                    return Err(WireError::BadPositions);
                }
                prev = Some(p);
            }
        }
        if tag == 4 {
            // Every packed code must sit in the declared symmetric range
            // [0, 2·levels]; a code outside it would decode to a value
            // beyond the transmitted scale (and `to_payload` would then
            // disagree with `decode_range`). Validating here keeps range
            // decoding infallible and the two decode paths identical.
            // Since 2·levels = 2^bits − 2, the only out-of-range value a
            // `bits`-wide field can hold is the all-ones pattern — so the
            // scan reduces to "no code has every bit set". This runs once
            // per upload on the aggregation hot path, so it uses a
            // buffered bit cursor (byte scan at width 8), not the
            // per-element `code_at`; the property test
            // `quant_code_range_is_validated_at_parse` pins it.
            let width = bits as usize;
            let packed = &body[4..4 + (n * width).div_ceil(8)];
            let all_ones = (1u64 << width) - 1;
            let bad = if width == 8 {
                packed.contains(&u8::MAX)
            } else {
                let mut acc = 0u64;
                let mut have = 0usize;
                let mut bytes = packed.iter();
                let mut found = false;
                for _ in 0..n {
                    while have < width {
                        acc |= (*bytes.next().expect("length checked") as u64) << have;
                        have += 8;
                    }
                    if acc & all_ones == all_ones {
                        found = true;
                        break;
                    }
                    acc >>= width;
                    have -= width;
                }
                found
            };
            if bad {
                return Err(WireError::Inconsistent("quant code exceeds level range"));
            }
        }
        Ok(view)
    }

    /// Logical length of the decoded vector.
    pub fn logical_len(&self) -> usize {
        self.n
    }

    /// Raw little-endian value bytes of a dense (tag 0) payload — exactly
    /// `4·n` bytes, value `i` at `[4i, 4i+4)` — or `None` for compressed
    /// payloads. The streaming reducer fuses its accumulate directly over
    /// these bytes, skipping the intermediate decode buffer.
    pub fn dense_values(&self) -> Option<&'a [u8]> {
        (self.tag == 0).then(|| &self.body[..4 * self.n])
    }

    fn pos_section(&self) -> usize {
        match self.tag {
            1 => 0,
            3 => 4,
            _ => unreachable!("positions on dense payload"),
        }
    }

    fn pos_at(&self, j: usize) -> usize {
        let o = self.pos_section() + 8 * j;
        u64::from_le_bytes(self.body[o..o + 8].try_into().expect("8 bytes")) as usize
    }

    fn f32_at(&self, o: usize) -> f32 {
        f32::from_le_bytes(self.body[o..o + 4].try_into().expect("4 bytes"))
    }

    /// Raw (offset-binary) quantisation code of coordinate `i`.
    fn code_at(&self, i: usize) -> u32 {
        debug_assert_eq!(self.tag, 4);
        let packed = &self.body[4..];
        let width = self.bits as usize;
        let mut raw = 0u32;
        let mut got = 0usize;
        let mut bitpos = i * width;
        while got < width {
            let take = (8 - bitpos % 8).min(width - got);
            let part = (packed[bitpos / 8] >> (bitpos % 8)) as u32 & ((1u32 << take) - 1);
            raw |= part << got;
            got += take;
            bitpos += take;
        }
        raw
    }

    /// Index of the first sparse position ≥ `start`.
    fn lower_bound(&self, start: usize) -> usize {
        let (mut lo, mut hi) = (0usize, self.k);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.pos_at(mid) < start {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Decode logical positions `[start, start + out.len())` into `out`,
    /// bit-identical to the matching slice of the compressor's `decoded`
    /// vector.
    pub fn decode_range(&self, start: usize, out: &mut [f32]) {
        let end = start + out.len();
        assert!(end <= self.n, "decode range out of bounds");
        match self.tag {
            0 => {
                let bytes = &self.body[4 * start..4 * end];
                for (v, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                    *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                }
            }
            1 => {
                out.fill(0.0);
                let values = 8 * self.k; // values section offset
                for j in self.lower_bound(start)..self.k {
                    let p = self.pos_at(j);
                    if p >= end {
                        break;
                    }
                    out[p - start] = self.f32_at(values + 4 * j);
                }
            }
            2 => {
                let mu = self.f32_at(0);
                // SIMD sign-expand; bit-identical to the scalar
                // `if bit { -mu } else { mu }` loop (negation is an exact
                // sign flip, which is what the vector body applies).
                ops::sign_apply_from_bits(&self.body[4..], start, mu, out);
            }
            3 => {
                out.fill(0.0);
                let mu = self.f32_at(0);
                let signs = &self.body[4 + 8 * self.k..];
                for j in self.lower_bound(start)..self.k {
                    let p = self.pos_at(j);
                    if p >= end {
                        break;
                    }
                    out[p - start] = if signs[j / 8] >> (j % 8) & 1 == 1 {
                        -mu
                    } else {
                        mu
                    };
                }
            }
            4 => {
                let levels = (1i32 << (self.bits - 1)) - 1;
                // Same expression order as the FedPAQ compressor:
                // `code · (scale / levels)`. Codes were range-checked at
                // parse, so this matches `to_payload` exactly.
                let inv_q = self.f32_at(0) / levels as f32;
                if out.is_empty() {
                    return;
                }
                let packed = &self.body[4..];
                if self.bits == 8 {
                    // Byte-aligned width: each code is one byte — SIMD
                    // widen/subtract/convert (exact per lane).
                    ops::dequant_u8(&packed[start..end], levels, inv_q, out);
                    return;
                }
                // Generic width: one buffered bit cursor across the range
                // instead of recomputing the bit position per element
                // (`code_at` stays as the parse-time validator). The
                // accumulator shifts codes out LSB-first exactly as the
                // per-element extraction assembled them.
                let width = self.bits as usize;
                let mask = (1u64 << width) - 1;
                let phase = (start * width) % 8;
                let mut byte = (start * width) / 8;
                let mut acc = (packed[byte] >> phase) as u64;
                let mut have = 8 - phase;
                byte += 1;
                for v in out.iter_mut() {
                    while have < width {
                        acc |= (packed[byte] as u64) << have;
                        have += 8;
                        byte += 1;
                    }
                    let code = (acc & mask) as u32 as i32 - levels;
                    acc >>= width;
                    have -= width;
                    *v = code as f32 * inv_q;
                }
            }
            _ => unreachable!("tag validated at parse"),
        }
    }

    /// Decode the full dense vector (test/diagnostic convenience).
    pub fn decode_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        self.decode_range(0, &mut out);
        out
    }

    /// Rebuild the structural [`Payload`] (round-trip tests).
    pub fn to_payload(&self) -> Payload {
        match self.tag {
            0 => Payload::Dense {
                values: self.decode_dense(),
            },
            1 => {
                let values = 8 * self.k;
                Payload::SparseF32 {
                    len: self.n,
                    positions: (0..self.k).map(|j| self.pos_at(j) as u64).collect(),
                    values: (0..self.k).map(|j| self.f32_at(values + 4 * j)).collect(),
                }
            }
            2 => Payload::SignDense {
                len: self.n,
                mu: self.f32_at(0),
                negatives: self.body[4..4 + self.n.div_ceil(8)].to_vec(),
            },
            3 => Payload::SparseSign {
                len: self.n,
                mu: self.f32_at(0),
                positions: (0..self.k).map(|j| self.pos_at(j) as u64).collect(),
                negatives: self.body[4 + 8 * self.k..].to_vec(),
            },
            4 => {
                // Codes were range-checked at parse; no clamping needed.
                let codes = (0..self.n).map(|i| self.code_at(i) as u16).collect();
                Payload::Quantized {
                    len: self.n,
                    bits: self.bits,
                    scale: self.f32_at(0),
                    codes,
                }
            }
            _ => unreachable!("tag validated at parse"),
        }
    }
}

// ---- byte-cursor helpers ----

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

// ---- coverage mask codec ----

fn mask_tag(m: &CoverageMask) -> u8 {
    match m {
        CoverageMask::Full => 0,
        CoverageMask::Rows(_) => 1,
        CoverageMask::RowsCols { .. } => 2,
        CoverageMask::Elements(_) => 3,
    }
}

/// Pattern-bitmap bytes of one entry's coverage (its share of the body).
fn mask_pattern_bytes(m: &CoverageMask, out: &mut Vec<u8>) {
    match m {
        CoverageMask::Full => {}
        CoverageMask::Rows(rows) => out.extend_from_slice(&rows.to_le_bytes()),
        CoverageMask::RowsCols { rows, cols } => {
            out.extend_from_slice(&rows.to_le_bytes());
            out.extend_from_slice(&cols.to_le_bytes());
        }
        CoverageMask::Elements(bits) => out.extend_from_slice(&bits.to_le_bytes()),
    }
}

fn decode_mask(
    tag: u8,
    rows: usize,
    cols: usize,
    r: &mut Reader,
) -> Result<CoverageMask, WireError> {
    Ok(match tag {
        0 => CoverageMask::Full,
        1 => CoverageMask::Rows(BitVec::from_le_bytes(
            r.bytes(rows.div_ceil(8), "row bitmap")?,
            rows,
        )),
        2 => {
            let rb = BitVec::from_le_bytes(r.bytes(rows.div_ceil(8), "row bitmap")?, rows);
            let cb = BitVec::from_le_bytes(r.bytes(cols.div_ceil(8), "col bitmap")?, cols);
            CoverageMask::RowsCols { rows: rb, cols: cb }
        }
        3 => CoverageMask::Elements(BitVec::from_le_bytes(
            r.bytes((rows * cols).div_ceil(8), "element bitmap")?,
            rows * cols,
        )),
        v => {
            return Err(WireError::BadTag {
                what: "coverage",
                value: v,
            })
        }
    })
}

/// Covered *matrix* scalars of one `rows × cols` entry under `mask` —
/// the single source of truth for how many weight values an entry
/// contributes to the kept-value stream. The streaming reducer's rank
/// bookkeeping derives from this same function, so the two can never
/// disagree on the stream layout.
pub fn mat_kept(mask: &CoverageMask, rows: usize, cols: usize) -> usize {
    match mask {
        CoverageMask::Full => rows * cols,
        CoverageMask::Rows(r) => r.count_ones() * cols,
        CoverageMask::RowsCols { rows: r, cols: c } => r.count_ones() * c.count_ones(),
        CoverageMask::Elements(b) => b.count_ones(),
    }
}

/// Covered *bias* scalars of an entry with `bias_len` bias elements
/// (0 when the entry has none). Biases follow the entry's matrix values
/// in the kept-value stream; `Elements` masks transmit them in full.
pub fn bias_kept(mask: &CoverageMask, bias_len: usize) -> usize {
    if bias_len == 0 {
        return 0;
    }
    match mask {
        CoverageMask::Full | CoverageMask::Elements(_) => bias_len,
        CoverageMask::Rows(r) | CoverageMask::RowsCols { rows: r, .. } => r.count_ones(),
    }
}

/// Covered scalars of one entry (weights + covered biases) — the number
/// of kept values the entry contributes to the payload.
fn entry_kept(mask: &CoverageMask, rows: usize, cols: usize, has_bias: bool) -> usize {
    mat_kept(mask, rows, cols) + bias_kept(mask, if has_bias { rows } else { 0 })
}

// ---- the frame ----

/// One encoded upload: header + coverage + payload, ready for the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireMsg {
    bytes: Vec<u8>,
}

impl WireMsg {
    /// The raw frame bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstruct from raw bytes (validated lazily by [`WireMsg::view`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// Body length: everything after the framing (header + coverage-kind
    /// tags). This is the number the paper's byte accounting reports —
    /// asserted equal to the upload's analytical `wire_bytes`.
    pub fn body_bytes(&self) -> u64 {
        let entries = if self.bytes.len() >= HEADER_BYTES {
            u16::from_le_bytes([self.bytes[24], self.bytes[25]]) as usize
        } else {
            0
        };
        (self.bytes.len().saturating_sub(HEADER_BYTES + entries)) as u64
    }

    /// Parse and validate against the server's model `shapes`, returning
    /// a zero-copy view. All structural checks happen here; range
    /// decoding afterwards cannot fail.
    pub fn view(&self, shapes: &ParamSet) -> Result<WireView<'_>, WireError> {
        WireView::parse(&self.bytes, shapes)
    }
}

fn encode_frame(kind: BodyKind, masks: Option<&ModelMask>, payload: &Payload) -> WireMsg {
    let entries = masks.map(|m| m.per_entry.len()).unwrap_or(0);
    let mut bytes = Vec::with_capacity(HEADER_BYTES + entries + payload.wire_bytes() as usize);
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(kind.tag());
    bytes.push(payload.tag());
    bytes.push(payload.quant_bits());
    bytes.extend_from_slice(&(payload.logical_len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(payload.sparse_k() as u64).to_le_bytes());
    bytes.extend_from_slice(&(entries as u16).to_le_bytes());
    bytes.extend_from_slice(&[0, 0]);
    if let Some(m) = masks {
        for e in &m.per_entry {
            bytes.push(mask_tag(e));
        }
        for e in &m.per_entry {
            mask_pattern_bytes(e, &mut bytes);
        }
    }
    payload.encode_body(&mut bytes);
    WireMsg { bytes }
}

/// Encode a (masked) weights upload β∘U: coverage bitmaps + the covered
/// values, gathered in [`ParamSet::flatten`] order. The body is exactly
/// `mask.wire_bytes(params)` bytes.
pub fn encode_weights(params: &ParamSet, mask: &ModelMask) -> WireMsg {
    assert_eq!(mask.per_entry.len(), params.num_entries());
    let mut values = Vec::with_capacity(mask.kept_params(params));
    for e in 0..params.num_entries() {
        let m = params.mat(e);
        let cols = m.cols();
        let cov = &mask.per_entry[e];
        match cov {
            CoverageMask::Full => values.extend_from_slice(m.as_slice()),
            _ => {
                for r in 0..m.rows() {
                    let row = m.row(r);
                    match cov {
                        CoverageMask::Rows(rb) => {
                            if rb.get(r) {
                                values.extend_from_slice(row);
                            }
                        }
                        _ => {
                            for (c, &v) in row.iter().enumerate() {
                                if cov.covers(r, c, cols) {
                                    values.push(v);
                                }
                            }
                        }
                    }
                }
            }
        }
        for (r, &v) in params.bias(e).iter().enumerate() {
            if cov.covers_bias(r) {
                values.push(v);
            }
        }
    }
    encode_frame(
        BodyKind::WeightsAbsolute,
        Some(mask),
        &Payload::Dense { values },
    )
}

/// Encode a sketched masked-weights upload (Fig. 5 combos): coverage
/// bitmaps + the compressor's payload over the covered-subvector delta.
pub fn encode_weights_delta(mask: &ModelMask, payload: &Payload) -> WireMsg {
    encode_frame(BodyKind::WeightsDelta, Some(mask), payload)
}

/// Encode a full-space delta upload (sketched-compression methods).
pub fn encode_delta(payload: &Payload) -> WireMsg {
    encode_frame(BodyKind::DeltaFull, None, payload)
}

/// A parsed, validated wire frame: what the streaming reducer consumes.
/// Coverage masks are decoded eagerly (they are bit-sized); payload
/// values are decoded on demand, straight from the frame bytes.
#[derive(Clone, Debug)]
pub struct WireView<'a> {
    /// Body semantics.
    pub kind: BodyKind,
    /// Per-entry coverage (empty for [`BodyKind::DeltaFull`]).
    pub masks: Vec<CoverageMask>,
    /// The decoded-on-demand payload.
    pub payload: PayloadView<'a>,
}

impl<'a> WireView<'a> {
    fn parse(bytes: &'a [u8], shapes: &ParamSet) -> Result<WireView<'a>, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.bytes(4, "magic")?;
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.bytes(1, "version")?[0];
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = BodyKind::from_tag(r.bytes(1, "body kind")?[0])?;
        let ptag = r.bytes(1, "payload tag")?[0];
        let qbits = r.bytes(1, "quant bits")?[0];
        let nb = r.bytes(8, "payload length")?;
        let n = u64::from_le_bytes(nb.try_into().expect("8 bytes")) as usize;
        let kb = r.bytes(8, "sparse count")?;
        let k = u64::from_le_bytes(kb.try_into().expect("8 bytes")) as usize;
        let eb = r.bytes(2, "entry count")?;
        let entries = u16::from_le_bytes([eb[0], eb[1]]) as usize;
        r.bytes(2, "reserved")?;

        if n > shapes.total_params() {
            return Err(WireError::Inconsistent("payload longer than the model"));
        }

        let masks = match kind {
            BodyKind::DeltaFull => {
                if entries != 0 {
                    return Err(WireError::Inconsistent("delta frame carries coverage"));
                }
                if n != shapes.total_params() {
                    return Err(WireError::Inconsistent("delta length must equal the model"));
                }
                Vec::new()
            }
            BodyKind::WeightsAbsolute | BodyKind::WeightsDelta => {
                if entries != shapes.num_entries() {
                    return Err(WireError::Inconsistent("coverage entry count mismatch"));
                }
                let tags = r.bytes(entries, "coverage tags")?.to_vec();
                let mut masks = Vec::with_capacity(entries);
                let mut kept = 0usize;
                for (e, &tag) in tags.iter().enumerate() {
                    let m = shapes.mat(e);
                    let mask = decode_mask(tag, m.rows(), m.cols(), &mut r)?;
                    kept += entry_kept(&mask, m.rows(), m.cols(), shapes.meta(e).has_bias);
                    masks.push(mask);
                }
                if n != kept {
                    return Err(WireError::Inconsistent(
                        "payload length must equal the covered count",
                    ));
                }
                masks
            }
        };

        let payload = PayloadView::parse(ptag, n, k, qbits, r.bytes(r.remaining(), "body")?)?;
        Ok(WireView {
            kind,
            masks,
            payload,
        })
    }

    /// The coverage as a [`ModelMask`] (for [`BodyKind::DeltaFull`]: full).
    pub fn model_mask(&self, shapes: &ParamSet) -> ModelMask {
        if self.masks.is_empty() {
            ModelMask::full(shapes)
        } else {
            ModelMask {
                per_entry: self.masks.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::Matrix;

    fn shapes() -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::from_vec(3, 2, (0..6).map(|v| v as f32).collect()),
            Some(vec![10.0, 11.0, 12.0]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        p.push_entry(
            Matrix::from_vec(2, 2, vec![20.0, 21.0, 22.0, 23.0]),
            None,
            EntryMeta::new("e", LayerKind::Embedding, false, true),
        );
        p
    }

    #[test]
    fn dense_weights_round_trip_in_flatten_order() {
        let p = shapes();
        let mut rows = BitVec::new(3, true);
        rows.set(1, false);
        let mask = ModelMask {
            per_entry: vec![CoverageMask::Rows(rows), CoverageMask::Full],
        };
        let msg = encode_weights(&p, &mask);
        assert_eq!(msg.body_bytes(), mask.wire_bytes(&p));
        let view = msg.view(&p).unwrap();
        assert_eq!(view.kind, BodyKind::WeightsAbsolute);
        assert_eq!(view.masks, mask.per_entry);
        // Kept values: rows 0 and 2 of entry 0 (+ their biases), all of
        // entry 1.
        let want = vec![0.0, 1.0, 4.0, 5.0, 10.0, 12.0, 20.0, 21.0, 22.0, 23.0];
        assert_eq!(view.payload.decode_dense(), want);
    }

    #[test]
    fn payload_range_decode_matches_dense() {
        let payloads = vec![
            Payload::Dense {
                values: vec![1.0, -2.0, 0.0, 4.5],
            },
            Payload::sparse_f32(9, vec![(7, -1.5), (2, 3.0), (4, 0.25)]),
            Payload::sign_dense(0.75, [true, false, false, true, true].into_iter()),
            Payload::sparse_sign(10, 2.5, vec![(9, true), (0, false), (5, true)]),
            Payload::Quantized {
                len: 5,
                bits: 8,
                scale: 1.0,
                codes: vec![0, 127, 254, 200, 13],
            },
            Payload::Quantized {
                len: 7,
                bits: 5,
                scale: 0.5,
                codes: vec![0, 15, 30, 7, 22, 1, 29],
            },
        ];
        for p in payloads {
            let dense = p.decode_dense();
            for start in 0..dense.len() {
                for len in 0..=(dense.len() - start) {
                    let mut out = vec![f32::NAN; len];
                    p.decode_range(start, &mut out);
                    let want = &dense[start..start + len];
                    assert!(
                        out.iter()
                            .zip(want)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{p:?} range {start}+{len}: {out:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_frame_round_trips_every_payload_kind() {
        let p = shapes();
        let n = p.total_params();
        let payloads = vec![
            Payload::Dense {
                values: (0..n).map(|i| i as f32 - 6.0).collect(),
            },
            Payload::sparse_f32(n, vec![(0, 1.0), (n - 1, -1.0)]),
            Payload::sign_dense(0.5, (0..n).map(|i| i % 3 == 0)),
            Payload::sparse_sign(n, 1.25, vec![(3, true), (8, false)]),
            Payload::Quantized {
                len: n,
                bits: 8,
                scale: 2.0,
                codes: (0..n).map(|i| (i * 17 % 255) as u16).collect(),
            },
        ];
        for payload in payloads {
            let msg = encode_delta(&payload);
            assert_eq!(msg.body_bytes(), payload.wire_bytes(), "{payload:?}");
            let view = msg.view(&p).unwrap();
            assert_eq!(view.kind, BodyKind::DeltaFull);
            assert_eq!(view.payload.to_payload(), payload);
            // And the zero-copy range decode agrees with the structural one.
            let dense = payload.decode_dense();
            let viewed = view.payload.decode_dense();
            assert!(dense
                .iter()
                .zip(&viewed)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn garbled_frames_error_instead_of_panicking() {
        let p = shapes();
        let msg = encode_weights(&p, &ModelMask::full(&p));
        // Truncation at every prefix length must be a clean error.
        for cut in 0..msg.as_bytes().len() {
            let truncated = WireMsg::from_bytes(msg.as_bytes()[..cut].to_vec());
            assert!(truncated.view(&p).is_err(), "cut at {cut}");
        }
        // Corrupt magic / version / tags.
        for (pos, what) in [
            (0, "magic"),
            (4, "version"),
            (5, "kind"),
            (6, "payload tag"),
        ] {
            let mut bytes = msg.as_bytes().to_vec();
            bytes[pos] = 0xEE;
            assert!(
                WireMsg::from_bytes(bytes).view(&p).is_err(),
                "corrupt {what}"
            );
        }
        // Unsorted sparse positions.
        let bad = Payload::SparseF32 {
            len: p.total_params(),
            positions: vec![5, 5],
            values: vec![1.0, 2.0],
        };
        let msg = encode_delta(&bad);
        assert_eq!(msg.view(&p).unwrap_err(), WireError::BadPositions);
        // Out-of-range position.
        let bad = Payload::SparseF32 {
            len: p.total_params(),
            positions: vec![p.total_params() as u64],
            values: vec![1.0],
        };
        assert_eq!(
            encode_delta(&bad).view(&p).unwrap_err(),
            WireError::BadPositions
        );
    }

    #[test]
    fn hostile_sparse_count_is_an_error_not_an_overflow() {
        // Regression: a frame whose k header field is u64::MAX used to
        // overflow the expected-size multiplication in debug builds
        // before the k ≤ n bound was checked.
        let p = shapes();
        let msg = encode_delta(&Payload::sparse_f32(p.total_params(), vec![(0, 1.0)]));
        let mut bytes = msg.as_bytes().to_vec();
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            WireMsg::from_bytes(bytes).view(&p).unwrap_err(),
            WireError::Inconsistent("sparse count exceeds length")
        );
    }

    #[test]
    fn out_of_range_quant_codes_are_rejected_at_parse() {
        // Regression: a corrupted 8-bit frame carrying raw code 255
        // (levels = 127, max valid offset code 254) used to pass parse,
        // with decode_range and to_payload then disagreeing on it.
        let payload = Payload::Quantized {
            len: 3,
            bits: 8,
            scale: 1.0,
            codes: vec![0, 254, 100],
        };
        let p = {
            let mut p = ParamSet::new();
            p.push_entry(
                Matrix::full(1, 3, 0.0),
                None,
                EntryMeta::new("flat", LayerKind::DenseHidden, false, true),
            );
            p
        };
        let msg = encode_delta(&payload);
        assert!(msg.view(&p).is_ok());
        let mut bytes = msg.as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] = 255; // third code → 255 > 2·levels
        assert_eq!(
            WireMsg::from_bytes(bytes).view(&p).unwrap_err(),
            WireError::Inconsistent("quant code exceeds level range")
        );
    }

    #[test]
    fn sign_of_negative_zero_survives_the_wire() {
        // −0.0 and +0.0 differ in bits; the codec must preserve the sign
        // bit or the streaming path diverges from the dense reference.
        let payload = Payload::sign_dense(0.0, [false, true].into_iter());
        let dec = payload.decode_dense();
        assert_eq!(dec[0].to_bits(), 0.0f32.to_bits());
        assert_eq!(dec[1].to_bits(), (-0.0f32).to_bits());
    }
}
