//! STC \[5\]: sparse ternary compression.
//!
//! Top-k magnitude selection, then ternarisation: every selected value is
//! transmitted as `sign · μ` where μ is the mean magnitude of the selected
//! set. Wire cost per value: 1 sign bit + one 64-bit position; plus one
//! shared 32-bit μ. Residual error feedback keeps the un-transmitted mass.

use crate::{bytes, ClientState, Compressed, Compressor};
use fedbiad_tensor::stats;
use rand::rngs::StdRng;

/// Sparse ternary compressor.
#[derive(Clone, Copy, Debug)]
pub struct Stc {
    /// Fraction of coordinates transmitted per round (e.g. 0.0033 ⇒
    /// ≈180-200× save ratio, the Table II STC row).
    pub keep_fraction: f32,
}

impl Stc {
    /// Configuration matching Table II's STC save ratios (≈177-206×).
    pub fn paper() -> Self {
        Self {
            keep_fraction: 1.0 / 330.0,
        }
    }
}

impl Compressor for Stc {
    fn name(&self) -> &str {
        "stc"
    }

    fn compress(
        &self,
        state: &mut ClientState,
        delta: &[f32],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Compressed {
        let n = delta.len();
        state.ensure_len(n);
        // Error feedback: compress delta + residual.
        let corrected: Vec<f32> = delta
            .iter()
            .zip(&state.residual)
            .map(|(d, r)| d + r)
            .collect();
        let k = ((n as f64 * self.keep_fraction as f64).ceil() as usize).clamp(1, n);
        let idx = stats::top_k_abs_indices(&corrected, k);
        let mu = idx.iter().map(|&i| corrected[i].abs()).sum::<f32>() / k as f32;

        // Sign bit set ⇔ NOT (v ≥ 0.0), matching the pre-codec ternary
        // reconstruction bit for bit (NaN included).
        use std::cmp::Ordering;
        let pairs: Vec<(usize, bool)> = idx
            .iter()
            .map(|&i| {
                let neg = !matches!(
                    corrected[i].partial_cmp(&0.0),
                    Some(Ordering::Greater | Ordering::Equal)
                );
                (i, neg)
            })
            .collect();
        let c = Compressed::from_payload(crate::codec::Payload::sparse_sign(n, mu, pairs));
        for ((r, &cv), &d) in state.residual.iter_mut().zip(&corrected).zip(&c.decoded) {
            *r = cv - d;
        }
        debug_assert_eq!(c.wire_bytes, bytes::sparse_ternary_bytes(k));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};
    use rand::Rng;

    fn rng() -> StdRng {
        stream(4, StreamTag::Compress, 0, 0)
    }

    #[test]
    fn only_k_values_survive_with_shared_magnitude() {
        let delta = [5.0f32, -4.0, 0.1, 0.2, -0.1, 0.0];
        let mut st = ClientState::default();
        let c = Stc { keep_fraction: 0.3 }.compress(&mut st, &delta, 0, &mut rng());
        assert_eq!(c.sent_values, 2);
        let nz: Vec<f32> = c.decoded.iter().copied().filter(|&v| v != 0.0).collect();
        assert_eq!(nz.len(), 2);
        let mu = (5.0 + 4.0) / 2.0;
        assert!((c.decoded[0] - mu).abs() < 1e-6);
        assert!((c.decoded[1] + mu).abs() < 1e-6);
    }

    #[test]
    fn residual_holds_untransmitted_mass() {
        let delta = [5.0f32, -4.0, 0.1, 0.2, -0.1, 0.0];
        let mut st = ClientState::default();
        let c = Stc { keep_fraction: 0.3 }.compress(&mut st, &delta, 0, &mut rng());
        // Untransmitted coordinates keep full mass in the residual.
        assert!((st.residual[2] - 0.1).abs() < 1e-6);
        assert!((st.residual[3] - 0.2).abs() < 1e-6);
        // Transmitted coordinates keep the ternarisation error.
        assert!((st.residual[0] - (5.0 - c.decoded[0])).abs() < 1e-6);
    }

    #[test]
    fn paper_config_hits_expected_save_ratio() {
        let n = 1_000_000;
        let mut r = rng();
        let delta: Vec<f32> = (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let c = Stc::paper().compress(&mut ClientState::default(), &delta, 0, &mut rng());
        let ratio = bytes::dense_bytes(n) as f64 / c.wire_bytes as f64;
        assert!(ratio > 150.0 && ratio < 230.0, "STC save ratio {ratio}");
    }

    #[test]
    fn repeated_rounds_eventually_transmit_small_coords() {
        // A coordinate below the top-k threshold accumulates in the
        // residual and must eventually be selected.
        let delta = [1.0f32, 0.3, 0.0, 0.0];
        let comp = Stc {
            keep_fraction: 0.25,
        }; // k = 1
        let mut st = ClientState::default();
        let mut coord1_total = 0.0f32;
        for round in 0..12 {
            let c = comp.compress(&mut st, &delta, round, &mut rng());
            coord1_total += c.decoded[1];
        }
        assert!(coord1_total > 0.0, "residual feedback should flush coord 1");
    }
}
