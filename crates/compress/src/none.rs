//! Identity compressor (FedAvg's uncompressed upload).

use crate::{bytes, ClientState, Compressed, Compressor};
use rand::rngs::StdRng;

/// No compression: the delta is transmitted as dense f32.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCompression;

impl Compressor for NoCompression {
    fn name(&self) -> &str {
        "none"
    }

    fn compress(
        &self,
        _state: &mut ClientState,
        delta: &[f32],
        _round: usize,
        _rng: &mut StdRng,
    ) -> Compressed {
        let c = Compressed::from_payload(crate::codec::Payload::Dense {
            values: delta.to_vec(),
        });
        debug_assert_eq!(c.wire_bytes, bytes::dense_bytes(delta.len()));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};

    #[test]
    fn identity_round_trip() {
        let delta = vec![1.0, -2.0, 0.5];
        let mut st = ClientState::default();
        let mut rng = stream(1, StreamTag::Compress, 0, 0);
        let c = NoCompression.compress(&mut st, &delta, 0, &mut rng);
        assert_eq!(c.decoded, delta);
        assert_eq!(c.wire_bytes, 12);
        assert_eq!(c.sent_values, 3);
    }
}
