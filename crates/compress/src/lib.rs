//! # fedbiad-compress
//!
//! Sketched uplink compressors evaluated in the paper's Table II, applied to
//! per-round model *deltas* (local parameters minus the received global —
//! equivalently the accumulated local gradient):
//!
//! * [`fedpaq::FedPaq`] — 8-bit uniform quantisation (FedPAQ, \[9\]);
//! * [`signsgd::SignSgd`] — 1-bit sign compression with error feedback
//!   (signSGD, \[11\]);
//! * [`stc::Stc`] — sparse ternary compression: top-k + shared magnitude
//!   (STC, \[5\]);
//! * [`dgc::Dgc`] — deep gradient compression: momentum correction +
//!   gradient accumulation + top-k with warm-up sparsity schedule (DGC,
//!   \[4\]).
//!
//! **Wire-byte convention** (paper §V-B, Table II): transmitted values are
//! 32-bit floats; sparse methods additionally transmit one 64-bit position
//! per value ("the position representation of each parameter occupies 64
//! bits"); quantised methods transmit their payload at the quantised width
//! plus one 32-bit scale per tensor. [`bytes`] centralises these constants.
//!
//! All compressors implement [`Compressor`] over flat `f32` buffers and
//! carry per-client state ([`ClientState`]) for residual accumulation, so
//! the "noise is accumulated over long-term learning" effect the paper
//! discusses (§I) is faithfully reproduced — and mitigated by error
//! feedback exactly as in the original methods.

#![warn(missing_docs)]

pub mod bytes;
pub mod codec;
pub mod dgc;
pub mod fedpaq;
pub mod none;
pub mod signsgd;
pub mod stc;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Result of compressing a delta vector.
///
/// Every compressor builds its structural [`codec::Payload`] first and
/// derives `decoded` from it ([`codec::Payload::decode_dense`]), so the
/// wire encoding and the in-memory reconstruction can never disagree —
/// the exactness contract the streaming aggregation path relies on.
#[derive(Clone, Debug)]
pub struct Compressed {
    /// Server-side reconstruction (dequantised / densified), same length
    /// as the input. Always equal to `payload.decode_dense()`.
    pub decoded: Vec<f32>,
    /// Exact bytes on the wire (the encoded payload body length).
    pub wire_bytes: u64,
    /// Number of transmitted values (diagnostics).
    pub sent_values: u64,
    /// The transmitted payload in structural form; encode with
    /// [`codec::encode_delta`] / [`codec::encode_weights_delta`].
    pub payload: codec::Payload,
}

impl Compressed {
    /// Build from a payload, deriving the decoded vector, wire bytes and
    /// sent-value count from it.
    pub fn from_payload(payload: codec::Payload) -> Self {
        Self {
            decoded: payload.decode_dense(),
            wire_bytes: payload.wire_bytes(),
            sent_values: payload.sent_values(),
            payload,
        }
    }
}

/// Per-client compressor memory: residual error feedback and (for DGC)
/// momentum velocity. Shared shape across methods; unused fields stay
/// empty.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClientState {
    /// Error-feedback residual (what the last rounds failed to transmit).
    pub residual: Vec<f32>,
    /// DGC momentum velocity.
    pub velocity: Vec<f32>,
}

impl ClientState {
    /// Ensure buffers match the parameter dimension.
    pub fn ensure_len(&mut self, n: usize) {
        if self.residual.len() != n {
            self.residual = vec![0.0; n];
        }
        if self.velocity.len() != n {
            self.velocity = vec![0.0; n];
        }
    }
}

/// A sketched uplink compressor over flat parameter deltas: compress,
/// report exact wire bytes, and keep per-client residual state for
/// error feedback.
///
/// ```
/// use fedbiad_compress::fedpaq::FedPaq;
/// use fedbiad_compress::{ClientState, Compressor};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let q = FedPaq::paper(); // 8-bit uniform quantisation
/// let mut state = ClientState::default();
/// let delta = vec![0.5_f32, -1.0, 0.25, 0.125];
/// let out = q.compress(&mut state, &delta, 0, &mut StdRng::seed_from_u64(1));
/// assert_eq!(out.decoded.len(), delta.len()); // server-side reconstruction
/// assert!(out.wire_bytes < 4 * delta.len() as u64); // beats raw f32
/// ```
pub trait Compressor: Send + Sync {
    /// Method name for logs/tables.
    fn name(&self) -> &str;

    /// Compress `delta` for `round`, using and updating the client's
    /// residual state. `rng` drives any internal sampling (deterministic
    /// per client/round via `fedbiad_tensor::rng::stream`).
    fn compress(
        &self,
        state: &mut ClientState,
        delta: &[f32],
        round: usize,
        rng: &mut StdRng,
    ) -> Compressed;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_state_resizes_lazily() {
        let mut s = ClientState::default();
        s.ensure_len(5);
        assert_eq!(s.residual.len(), 5);
        assert_eq!(s.velocity.len(), 5);
        s.residual[0] = 1.0;
        s.ensure_len(5); // same length: state preserved
        assert_eq!(s.residual[0], 1.0);
        s.ensure_len(3); // resize: reset
        assert_eq!(s.residual, vec![0.0; 3]);
    }
}
