//! Cross-compressor invariants, exercised uniformly through the public
//! `Compressor` trait for all four sketched methods plus the identity
//! compressor: encode→decode shape/byte-count contracts and the
//! `ClientState` error-feedback accounting.

use fedbiad_compress::dgc::Dgc;
use fedbiad_compress::fedpaq::FedPaq;
use fedbiad_compress::none::NoCompression;
use fedbiad_compress::signsgd::SignSgd;
use fedbiad_compress::stc::Stc;
use fedbiad_compress::{bytes, ClientState, Compressor};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::rngs::StdRng;
use rand::Rng;

fn rng(salt: u64) -> StdRng {
    stream(salt, StreamTag::Compress, 0, 0)
}

fn test_delta(n: usize, salt: u64) -> Vec<f32> {
    let mut r = rng(salt);
    (0..n).map(|_| r.gen_range(-2.0f32..2.0)).collect()
}

fn all_compressors() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("none", Box::new(NoCompression)),
        ("fedpaq", Box::new(FedPaq::paper())),
        ("signsgd", Box::new(SignSgd::default())),
        ("stc", Box::new(Stc::paper())),
        ("dgc", Box::new(Dgc::paper())),
    ]
}

/// Decoded output always has the input's shape, a positive wire size no
/// larger than dense f32, and `sent_values ≤ n` — for every compressor,
/// several sizes, several rounds.
#[test]
fn round_trip_shape_and_byte_invariants() {
    for (name, comp) in all_compressors() {
        for &n in &[1usize, 7, 64, 1000] {
            let delta = test_delta(n, 1);
            let mut st = ClientState::default();
            for round in 0..6 {
                let c = comp.compress(&mut st, &delta, round, &mut rng(2));
                assert_eq!(c.decoded.len(), n, "{name} n={n} round {round}: shape");
                assert!(c.wire_bytes > 0, "{name} n={n}: empty wire payload");
                assert!(
                    c.decoded.iter().all(|v| v.is_finite()),
                    "{name}: non-finite decode"
                );
                assert!(
                    c.sent_values <= n as u64,
                    "{name} n={n}: sent {} of {n} values",
                    c.sent_values
                );
                // No compressor may exceed the dense payload by more than
                // its fixed header (scale word) plus per-sent-value
                // position overhead (sparse methods pay 64-bit positions,
                // which on tiny inputs can exceed the dense encoding).
                assert!(
                    c.wire_bytes
                        <= bytes::dense_bytes(n)
                            + bytes::SCALE_BYTES
                            + c.sent_values * bytes::POSITION_BYTES,
                    "{name} n={n}: {} wire bytes for {} dense",
                    c.wire_bytes,
                    bytes::dense_bytes(n)
                );
            }
        }
    }
}

/// Exact wire-byte formulas per method (the Table-II accounting contract).
#[test]
fn wire_bytes_match_published_formulas() {
    let n = 1000usize;
    let delta = test_delta(n, 3);

    let c = NoCompression.compress(&mut ClientState::default(), &delta, 0, &mut rng(4));
    assert_eq!(c.wire_bytes, bytes::dense_bytes(n));

    let c = FedPaq::paper().compress(&mut ClientState::default(), &delta, 0, &mut rng(4));
    assert_eq!(c.wire_bytes, bytes::quantized_bytes(n, 8));

    let c = SignSgd::default().compress(&mut ClientState::default(), &delta, 0, &mut rng(4));
    assert_eq!(c.wire_bytes, bytes::quantized_bytes(n, 1));

    let c = Stc::paper().compress(&mut ClientState::default(), &delta, 0, &mut rng(4));
    assert_eq!(
        c.wire_bytes,
        bytes::sparse_ternary_bytes(c.sent_values as usize)
    );

    let c = Dgc::paper().compress(&mut ClientState::default(), &delta, 10, &mut rng(4));
    assert_eq!(
        c.wire_bytes,
        bytes::sparse_f32_bytes(c.sent_values as usize)
    );
}

/// Error-feedback accounting: for the residual-carrying compressors, after
/// every round `decoded + residual' == delta + residual` per coordinate
/// (no mass created or destroyed by the sketch).
#[test]
fn client_state_error_feedback_conserves_mass_per_round() {
    let n = 128usize;
    let feedback: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("signsgd", Box::new(SignSgd::default())),
        (
            "stc",
            Box::new(Stc {
                keep_fraction: 0.05,
            }),
        ),
        // momentum 0 ⇒ DGC's velocity does not inject extra mass, so the
        // conservation identity holds exactly.
        (
            "dgc",
            Box::new(Dgc {
                keep_fraction: 0.05,
                momentum: 0.0,
                warmup_rounds: 0,
            }),
        ),
    ];
    for (name, comp) in feedback {
        let mut st = ClientState::default();
        for round in 0..8 {
            let delta = test_delta(n, 10 + round as u64);
            let before = st.residual.clone();
            let c = comp.compress(&mut st, &delta, round, &mut rng(5));
            for i in 0..n {
                let carried = if before.is_empty() { 0.0 } else { before[i] };
                let input = delta[i] + carried;
                let output = c.decoded[i] + st.residual[i];
                assert!(
                    (input - output).abs() < 1e-4,
                    "{name} round {round} coord {i}: {input} in vs {output} out"
                );
            }
        }
    }
}

/// Residuals stay bounded over many rounds (error feedback prevents the
/// "noise accumulated over long-term learning" blow-up of §I).
#[test]
fn residuals_stay_bounded_over_long_runs() {
    let n = 64usize;
    let delta = test_delta(n, 20);
    let max_in = delta.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let feedback: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("signsgd", Box::new(SignSgd::default())),
        ("stc", Box::new(Stc { keep_fraction: 0.1 })),
    ];
    for (name, comp) in feedback {
        let mut st = ClientState::default();
        for round in 0..200 {
            comp.compress(&mut st, &delta, round, &mut rng(6));
        }
        let max_res = st.residual.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(
            max_res < 50.0 * max_in,
            "{name}: residual blew up to {max_res} (inputs ≤ {max_in})"
        );
    }
}

/// `none` passthrough: bit-identical decode, dense byte accounting, and an
/// untouched client state.
#[test]
fn none_and_bytes_passthrough() {
    let delta = test_delta(333, 30);
    let mut st = ClientState::default();
    let c = NoCompression.compress(&mut st, &delta, 0, &mut rng(7));
    assert_eq!(c.decoded, delta, "identity decode must be bit-exact");
    assert_eq!(c.wire_bytes, bytes::dense_bytes(delta.len()));
    assert_eq!(c.sent_values, delta.len() as u64);
    assert!(
        st.residual.is_empty() && st.velocity.is_empty(),
        "identity must not touch state"
    );

    // And the byte helpers themselves are consistent.
    assert_eq!(bytes::dense_bytes(0), 0);
    assert_eq!(
        bytes::sparse_f32_bytes(1),
        bytes::F32_BYTES + bytes::POSITION_BYTES
    );
    assert_eq!(
        bytes::sparse_ternary_bytes(8),
        1 + 8 * bytes::POSITION_BYTES + bytes::SCALE_BYTES
    );
    assert_eq!(bytes::quantized_bytes(16, 8), 16 + bytes::SCALE_BYTES);
}

/// Compression is a pure function of (config, state, delta, round, rng) —
/// two identically-seeded runs agree bitwise. This is the per-client
/// determinism the experiment runner's reproducibility contract needs.
#[test]
fn compressors_are_deterministic_given_seed() {
    for (name, comp) in all_compressors() {
        let delta = test_delta(512, 40);
        let run = || {
            let mut st = ClientState::default();
            let mut out = Vec::new();
            for round in 0..5 {
                let c = comp.compress(&mut st, &delta, round, &mut rng(8));
                out.push((c.wire_bytes, c.sent_values, c.decoded));
            }
            (out, st.residual)
        };
        let (a, ra) = run();
        let (b, rb) = run();
        for ((wa, sa, da), (wb, sb, db)) in a.iter().zip(&b) {
            assert_eq!(wa, wb, "{name}: wire bytes diverged");
            assert_eq!(sa, sb, "{name}: sent values diverged");
            assert!(
                da.iter().zip(db).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name}: decoded values diverged"
            );
        }
        assert!(
            ra.iter().zip(&rb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{name}: residual state diverged"
        );
    }
}
