//! Property tests for the wire codec: encode → decode is the *identity*
//! on every compressor payload and every coverage-mask shape (bitwise —
//! the streaming aggregation path depends on exactness, not closeness),
//! and decoders reject truncated/garbled buffers with a structured error
//! instead of panicking.

use fedbiad_compress::codec::{
    encode_delta, encode_weights, encode_weights_delta, BodyKind, Payload, WireMsg,
};
use fedbiad_compress::dgc::Dgc;
use fedbiad_compress::fedpaq::FedPaq;
use fedbiad_compress::none::NoCompression;
use fedbiad_compress::signsgd::SignSgd;
use fedbiad_compress::stc::Stc;
use fedbiad_compress::{ClientState, Compressor};
use fedbiad_nn::mask::BitVec;
use fedbiad_nn::params::{EntryMeta, LayerKind};
use fedbiad_nn::{CoverageMask, ModelMask, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// The five compressors, at configurations that exercise every payload
/// kind (dense, sparse-f32, sign-dense, sparse-sign, quantized).
fn compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(NoCompression),
        Box::new(Dgc {
            keep_fraction: 0.3,
            momentum: 0.9,
            warmup_rounds: 0,
        }),
        Box::new(SignSgd::default()),
        Box::new(Stc { keep_fraction: 0.4 }),
        Box::new(FedPaq { bits: 8 }),
        Box::new(FedPaq { bits: 5 }), // non-byte-aligned bit packing
    ]
}

fn filled(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| {
            // Exact zeros and negative zeros exercise sign handling.
            match rng.gen_range(0u32..8) {
                0 => 0.0,
                1 => -0.0,
                _ => rng.gen_range(-2.0f32..2.0),
            }
        })
        .collect()
}

/// A multi-entry ParamSet with a bias-less entry and a single-row entry.
fn shapes(rows: usize, cols: usize) -> ParamSet {
    let mut p = ParamSet::new();
    p.push_entry(
        Matrix::full(rows, cols, 0.0),
        Some(vec![0.0; rows]),
        EntryMeta::new("w1", LayerKind::DenseHidden, true, true),
    );
    p.push_entry(
        Matrix::full(1, cols, 0.0), // single-row entry
        None,                       // bias-less
        EntryMeta::new("emb", LayerKind::Embedding, false, true),
    );
    p.push_entry(
        Matrix::full(2, rows, 0.0),
        Some(vec![0.0; 2]),
        EntryMeta::new("head", LayerKind::DenseOutput, true, true),
    );
    p
}

fn random_mask(rng: &mut StdRng, p: &ParamSet, allow_empty: bool) -> ModelMask {
    let per_entry = (0..p.num_entries())
        .map(|e| {
            let (rows, cols) = (p.mat(e).rows(), p.mat(e).cols());
            let density = if allow_empty && rng.gen_range(0u32..4) == 0 {
                0.0 // empty coverage: every row dropped
            } else {
                rng.gen_range(0.0f64..=1.0)
            };
            fn rand_bits(rng: &mut StdRng, density: f64, len: usize) -> BitVec {
                let mut bv = BitVec::new(len, false);
                for i in 0..len {
                    if rng.gen_bool(density) {
                        bv.set(i, true);
                    }
                }
                bv
            }
            match rng.gen_range(0u32..4) {
                0 => CoverageMask::Full,
                1 => CoverageMask::Rows(rand_bits(rng, density, rows)),
                2 => CoverageMask::RowsCols {
                    rows: rand_bits(rng, density, rows),
                    cols: rand_bits(rng, density, cols),
                },
                _ => CoverageMask::Elements(rand_bits(rng, density, rows * cols)),
            }
        })
        .collect();
    ModelMask { per_entry }
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

proptest! {
    /// Every compressor's payload round-trips through the full-space
    /// delta frame bit-for-bit, including range decoding at arbitrary
    /// split points.
    #[test]
    fn delta_payloads_round_trip(n in 1usize..300, seed in 0u64..1000, round in 0usize..6) {
        let mut rng = stream(seed, StreamTag::Compress, 7, 7);
        // The frame is validated against a model of matching size: one
        // bias-less n-element entry.
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(1, n, 0.0),
            None,
            EntryMeta::new("flat", LayerKind::DenseHidden, false, true),
        );
        let delta = filled(&mut rng, n);
        for comp in compressors() {
            let mut st = ClientState::default();
            let c = comp.compress(&mut st, &delta, round, &mut rng);
            let msg = encode_delta(&c.payload);
            prop_assert_eq!(msg.body_bytes(), c.wire_bytes, "{} body bytes", comp.name());
            let view = msg.view(&p).unwrap();
            prop_assert_eq!(view.kind, BodyKind::DeltaFull);
            // Identity: the decoded wire equals the in-memory decode.
            assert_bits_eq(&view.payload.decode_dense(), &c.decoded, comp.name());
            // Range decode at a random split equals the dense slices.
            let cut = rng.gen_range(0..=n);
            let mut lo = vec![f32::NAN; cut];
            let mut hi = vec![f32::NAN; n - cut];
            view.payload.decode_range(0, &mut lo);
            view.payload.decode_range(cut, &mut hi);
            assert_bits_eq(&lo, &c.decoded[..cut], "lo range");
            assert_bits_eq(&hi, &c.decoded[cut..], "hi range");
        }
    }

    /// The parse-time quantisation-range check (a buffered bit-cursor on
    /// the hot path) agrees with the definition: a `bits`-wide field is
    /// out of range exactly when it holds the all-ones pattern
    /// (2·levels + 1). A clean payload parses; flipping any single code
    /// to all-ones anywhere in the stream must be rejected.
    #[test]
    fn quant_code_range_is_validated_at_parse(
        n in 1usize..300,
        bits in 2u8..=16,
        seed in 0u64..1000,
    ) {
        let mut rng = stream(seed, StreamTag::Compress, 8, 8);
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(1, n, 0.0),
            None,
            EntryMeta::new("flat", LayerKind::DenseHidden, false, true),
        );
        let levels = (1u32 << (bits - 1)) - 1;
        let codes: Vec<u16> = (0..n)
            .map(|_| rng.gen_range(0..=2 * levels) as u16)
            .collect();
        let payload = |codes: Vec<u16>| Payload::Quantized {
            len: n,
            bits,
            scale: 1.0,
            codes,
        };
        prop_assert!(encode_delta(&payload(codes.clone())).view(&p).is_ok());
        let mut bad = codes;
        let j = rng.gen_range(0..n);
        bad[j] = (2 * levels + 1) as u16; // the all-ones pattern
        prop_assert!(encode_delta(&payload(bad)).view(&p).is_err(), "code {} at {}", 2 * levels + 1, j);
    }

    /// Masked-weights frames round-trip the mask and the kept values for
    /// every coverage shape — including empty coverage, single-row
    /// entries and bias-less entries — and the body length equals the
    /// analytical wire bytes.
    #[test]
    fn weights_frames_round_trip(rows in 1usize..9, cols in 1usize..9, seed in 0u64..1000) {
        let mut rng = stream(seed, StreamTag::Pattern, 3, 3);
        let mut p = shapes(rows, cols);
        let flat = filled(&mut rng, p.total_params());
        p.unflatten_from(&flat);
        let mask = random_mask(&mut rng, &p, true);
        let mut masked = p.clone();
        mask.apply(&mut masked);

        let msg = encode_weights(&masked, &mask);
        prop_assert_eq!(msg.body_bytes(), mask.wire_bytes(&masked));
        let view = msg.view(&p).unwrap();
        prop_assert_eq!(view.kind, BodyKind::WeightsAbsolute);
        prop_assert_eq!(&view.masks, &mask.per_entry);
        // Kept values decode to exactly the covered entries of β∘U, in
        // flatten order.
        let kept: Vec<f32> = {
            let mf = masked.flatten();
            fedbiad_core_free_kept_indices(&masked, &mask).into_iter().map(|i| mf[i]).collect()
        };
        assert_bits_eq(&view.payload.decode_dense(), &kept, "kept values");
    }

    /// A sketched masked-weights frame (the Fig. 5 combo wire format)
    /// carries mask + compressed kept-delta payload; body length equals
    /// payload bytes + pattern overhead.
    #[test]
    fn weights_delta_frames_round_trip(rows in 1usize..8, cols in 1usize..8, seed in 0u64..500) {
        let mut rng = stream(seed, StreamTag::Compress, 9, 9);
        let p = shapes(rows, cols);
        let mask = random_mask(&mut rng, &p, true);
        let kept_count = {
            let full = ModelMask::full(&p);
            let _ = full;
            fedbiad_core_free_kept_indices(&p, &mask).len()
        };
        let kept_delta = filled(&mut rng, kept_count);
        for comp in compressors() {
            if kept_count == 0 {
                continue; // compressors need at least the empty payload; none sends 0 values
            }
            let mut st = ClientState::default();
            let c = comp.compress(&mut st, &kept_delta, 1, &mut rng);
            let msg = encode_weights_delta(&mask, &c.payload);
            let overhead: u64 = mask.wire_bytes(&p) - mask.kept_params(&p) as u64 * 4;
            prop_assert_eq!(msg.body_bytes(), c.wire_bytes + overhead, "{}", comp.name());
            let view = msg.view(&p).unwrap();
            prop_assert_eq!(view.kind, BodyKind::WeightsDelta);
            prop_assert_eq!(&view.masks, &mask.per_entry);
            assert_bits_eq(&view.payload.decode_dense(), &c.decoded, comp.name());
        }
    }

    /// Decoders never panic on foreign bytes: truncation at any length
    /// and random single-byte corruption either parse to a *valid* frame
    /// or return a structured error — they must not panic.
    #[test]
    fn garbled_buffers_error_instead_of_panicking(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..2000,
    ) {
        let mut rng = stream(seed, StreamTag::Init, 1, 1);
        let p = shapes(rows, cols);
        let mask = random_mask(&mut rng, &p, true);
        let mut masked = p.clone();
        mask.apply(&mut masked);
        let msg = encode_weights(&masked, &mask);
        let bytes = msg.as_bytes();

        // Truncation at a random cut is always an error (a shorter frame
        // can never be self-consistent: lengths are derived from the
        // header + shapes).
        let cut = rng.gen_range(0..bytes.len());
        prop_assert!(WireMsg::from_bytes(bytes[..cut].to_vec()).view(&p).is_err());

        // Single-byte corruption must not panic (it may still decode:
        // flipping a value byte is indistinguishable from a different
        // upload).
        let pos = rng.gen_range(0..bytes.len());
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1u8 << rng.gen_range(0u32..8);
        let _ = WireMsg::from_bytes(corrupt).view(&p);

        // Appending trailing garbage is always an error.
        let mut padded = bytes.to_vec();
        padded.push(0xAB);
        prop_assert!(WireMsg::from_bytes(padded).view(&p).is_err());
    }
}

/// Covered flat indices in flatten order (mirrors
/// `fedbiad_core::combo::kept_flat_indices`, re-implemented here because
/// the compress crate sits below core in the DAG).
fn fedbiad_core_free_kept_indices(params: &ParamSet, mask: &ModelMask) -> Vec<usize> {
    let mut out = Vec::new();
    let mut off = 0usize;
    for e in 0..params.num_entries() {
        let m = params.mat(e);
        let cols = m.cols();
        let cov = &mask.per_entry[e];
        for r in 0..m.rows() {
            for c in 0..cols {
                if cov.covers(r, c, cols) {
                    out.push(off + r * cols + c);
                }
            }
        }
        off += m.len();
        let bias_len = params.bias(e).len();
        for r in 0..bias_len {
            if cov.covers_bias(r) {
                out.push(off + r);
            }
        }
        off += bias_len;
    }
    out
}
