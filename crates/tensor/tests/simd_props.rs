//! Property tests for the fused decode + reduce SIMD kernels: every
//! vectorized loop against its scalar reference, **bit-identical** (the
//! kernels are purely vertical, so no tolerance is ever needed).
//!
//! Shapes deliberately stress the dispatch seams: lengths {0, 1, 3,
//! 4095, 4096, 4097} hit the empty case, the all-tail case, and both
//! sides of the 4/8-lane unroll boundary; a 0..4-element prefix offset
//! makes every vector load/store unaligned; and `sign_apply_from_bits`
//! additionally sweeps its bit-level start offset across byte seams.

use fedbiad_tensor::ops;
use fedbiad_tensor::rng::{stream, StreamTag};
use proptest::prelude::*;
use rand::Rng;

fn filled_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = stream(seed, StreamTag::Init, 0, 0);
    (0..len)
        .map(|_| {
            // Sprinkle exact zeros so sign/zero edge cases are exercised.
            if rng.gen_range(0..5) == 0 {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

/// Non-negative "denominator" vector with exact zeros mixed in.
fn weight_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = stream(seed, StreamTag::Init, 0, 1);
    (0..len)
        .map(|_| {
            if rng.gen_range(0..3) == 0 {
                0.0
            } else {
                rng.gen_range(0.5f32..4.0)
            }
        })
        .collect()
}

/// The length set from the issue: empty, all-tail, and 4k ± 1 around the
/// vector unroll boundary.
fn lens() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![0usize, 1, 3, 4095, 4096, 4097])
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}[{i}]: {g} vs {w}");
    }
}

proptest! {
    #[test]
    fn axpy_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let x = filled_vec(len + off, seed);
        let y0 = filled_vec(len + off, seed ^ 0x1);
        let alpha = filled_vec(1, seed ^ 0x2)[0];
        let mut got = y0.clone();
        ops::axpy(alpha, &x[off..], &mut got[off..]);
        let mut want = y0.clone();
        for i in off..y0.len() {
            want[i] += alpha * x[i];
        }
        assert_bits_eq(&got, &want, "axpy");
    }

    #[test]
    fn add_assign_scalar_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let y0 = filled_vec(len + off, seed);
        let w = filled_vec(1, seed ^ 0x3)[0];
        let mut got = y0.clone();
        ops::add_assign_scalar(&mut got[off..], w);
        let mut want = y0.clone();
        for v in &mut want[off..] {
            *v += w;
        }
        assert_bits_eq(&got, &want, "add_assign_scalar");
    }

    /// `+= 0.0` must normalise −0.0 exactly like the scalar loop (the
    /// dropped-element pass of the streaming reducer depends on it).
    #[test]
    fn add_assign_zero_normalises_negative_zero(len in lens(), off in 0usize..4) {
        let mut got = vec![-0.0f32; len + off];
        ops::add_assign_scalar(&mut got[off..], 0.0);
        for (i, v) in got[off..].iter().enumerate() {
            prop_assert_eq!(v.to_bits(), 0.0f32.to_bits(), "index {}", i);
        }
    }

    #[test]
    fn axpy_sum2_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let a = filled_vec(len + off, seed);
        let b = filled_vec(len + off, seed ^ 0x4);
        let y0 = filled_vec(len + off, seed ^ 0x5);
        let w = filled_vec(1, seed ^ 0x6)[0];
        let mut got = y0.clone();
        ops::axpy_sum2(w, &a[off..], &b[off..], &mut got[off..]);
        let mut want = y0.clone();
        for i in off..y0.len() {
            want[i] += w * (a[i] + b[i]);
        }
        assert_bits_eq(&got, &want, "axpy_sum2");
    }

    #[test]
    fn axpy_from_le_bytes_matches_scalar(len in lens(), off in 0usize..4, boff in 0usize..4, seed in 0u64..500) {
        let vals = filled_vec(len, seed);
        // A byte prefix of length `boff` misaligns the wire bytes
        // independently of the accumulator.
        let mut bytes = vec![0u8; boff];
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let y0 = filled_vec(len + off, seed ^ 0x7);
        let alpha = filled_vec(1, seed ^ 0x8)[0];
        let mut got = y0.clone();
        ops::axpy_from_le_bytes(alpha, &bytes[boff..], &mut got[off..]);
        let mut want = y0.clone();
        for (i, v) in vals.iter().enumerate() {
            want[off + i] += alpha * v;
        }
        assert_bits_eq(&got, &want, "axpy_from_le_bytes");
    }

    #[test]
    fn scale_into_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let x = filled_vec(len + off, seed);
        let s = filled_vec(1, seed ^ 0x9)[0];
        let mut got = vec![7.0f32; len + off];
        ops::scale_into(&x[off..], s, &mut got[off..]);
        for i in off..x.len() {
            prop_assert_eq!(got[i].to_bits(), (x[i] * s).to_bits());
        }
    }

    #[test]
    fn div_scalar_into_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let x = filled_vec(len + off, seed);
        let w = weight_vec(1, seed ^ 0xa)[0].max(0.25);
        let mut got = vec![7.0f32; len + off];
        ops::div_scalar_into(&x[off..], w, &mut got[off..]);
        for i in off..x.len() {
            prop_assert_eq!(got[i].to_bits(), (x[i] / w).to_bits());
        }
    }

    #[test]
    fn holders_combine_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let num = filled_vec(len + off, seed);
        let den = weight_vec(len + off, seed ^ 0xb);
        let g0 = filled_vec(len + off, seed ^ 0xc);
        let mut got = g0.clone();
        ops::holders_combine(&num[off..], &den[off..], &mut got[off..]);
        let mut want = g0.clone();
        for i in off..g0.len() {
            if den[i] > 0.0 {
                want[i] = num[i] / den[i];
            }
        }
        assert_bits_eq(&got, &want, "holders_combine");
    }

    #[test]
    fn stale_fill_combine_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let num = filled_vec(len + off, seed);
        let den = weight_vec(len + off, seed ^ 0xd);
        let g0 = filled_vec(len + off, seed ^ 0xe);
        let total_w = 5.5f32;
        let mut got = g0.clone();
        ops::stale_fill_combine(&num[off..], &den[off..], total_w, &mut got[off..]);
        let mut want = g0.clone();
        for i in off..g0.len() {
            want[i] = (num[i] + (total_w - den[i]) * want[i]) / total_w;
        }
        assert_bits_eq(&got, &want, "stale_fill_combine");
    }

    /// The constant-den form must match the array form fed a den array
    /// holding that constant everywhere (how the row-granular streaming
    /// path replaces the materialised denominator).
    #[test]
    fn holders_combine_scalar_matches_array(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let num = filled_vec(len + off, seed);
        let den = weight_vec(1, seed ^ 0x14)[0]; // zero sometimes: no-op case
        let g0 = filled_vec(len + off, seed ^ 0x15);
        let mut got = g0.clone();
        ops::holders_combine_scalar(&num[off..], den, &mut got[off..]);
        let mut want = g0.clone();
        ops::holders_combine(&num[off..], &vec![den; len], &mut want[off..]);
        assert_bits_eq(&got, &want, "holders_combine_scalar");
    }

    #[test]
    fn stale_fill_combine_scalar_matches_array(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let num = filled_vec(len + off, seed);
        let den = weight_vec(1, seed ^ 0x16)[0];
        let g0 = filled_vec(len + off, seed ^ 0x17);
        let total_w = 5.5f32;
        let mut got = g0.clone();
        ops::stale_fill_combine_scalar(&num[off..], den, total_w, &mut got[off..]);
        let mut want = g0.clone();
        ops::stale_fill_combine(&num[off..], &vec![den; len], total_w, &mut want[off..]);
        assert_bits_eq(&got, &want, "stale_fill_combine_scalar");
    }

    #[test]
    #[allow(clippy::neg_multiply)]
    fn diff_into_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let x = filled_vec(len + off, seed);
        let s = filled_vec(len + off, seed ^ 0xf);
        let mut got = vec![7.0f32; len + off];
        ops::diff_into(&x[off..], &s[off..], &mut got[off..]);
        for i in off..x.len() {
            prop_assert_eq!(got[i].to_bits(), (x[i] + (-1.0) * s[i]).to_bits());
        }
    }

    #[test]
    #[allow(clippy::neg_multiply)]
    fn sum2_diff_into_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let b = filled_vec(len + off, seed);
        let k = filled_vec(len + off, seed ^ 0x10);
        let s = filled_vec(len + off, seed ^ 0x11);
        let mut got = vec![7.0f32; len + off];
        ops::sum2_diff_into(&b[off..], &k[off..], &s[off..], &mut got[off..]);
        for i in off..b.len() {
            prop_assert_eq!(got[i].to_bits(), ((b[i] + k[i]) + (-1.0) * s[i]).to_bits());
        }
    }

    /// Sweeps the bit-level start across byte seams (0..17 covers both
    /// sub-byte phases and whole-byte skips) on top of the length set.
    #[test]
    fn sign_apply_matches_scalar(len in lens(), start in 0usize..17, seed in 0u64..500) {
        let mut rng = stream(seed, StreamTag::Init, 1, 0);
        let nbytes = (start + len).div_ceil(8).max(1);
        let signs: Vec<u8> = (0..nbytes).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let mu = filled_vec(1, seed ^ 0x12)[0];
        let mut got = vec![7.0f32; len];
        ops::sign_apply_from_bits(&signs, start, mu, &mut got);
        for (o, v) in got.iter().enumerate() {
            let i = start + o;
            let want = if signs[i / 8] >> (i % 8) & 1 == 1 { -mu } else { mu };
            prop_assert_eq!(v.to_bits(), want.to_bits(), "bit {}", i);
        }
    }

    #[test]
    fn dequant_u8_matches_scalar(len in lens(), off in 0usize..4, seed in 0u64..500) {
        let mut rng = stream(seed, StreamTag::Init, 1, 1);
        let levels = 127i32; // the 8-bit symmetric range the codec uses
        let codes: Vec<u8> = (0..len + off).map(|_| rng.gen_range(0..=2 * levels as u32) as u8).collect();
        let inv_q = filled_vec(1, seed ^ 0x13)[0];
        let mut got = vec![7.0f32; len + off];
        ops::dequant_u8(&codes[off..], levels, inv_q, &mut got[off..]);
        for i in off..codes.len() {
            let want = (codes[i] as i32 - levels) as f32 * inv_q;
            prop_assert_eq!(got[i].to_bits(), want.to_bits());
        }
    }
}
