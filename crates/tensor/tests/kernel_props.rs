//! Property tests for the batched execution-engine kernels: randomized
//! shapes (including the m/n/k = 0 and 1 boundaries and sizes that are
//! not multiples of the 4-wide unroll) against
//!
//! * naive triple-loop references (value correctness, tolerance-checked
//!   because the naive association order differs), and
//! * the per-sample GEMV/GER primitives (the determinism contract:
//!   **bit-identical**, no tolerance).

use fedbiad_tensor::ops;
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

fn filled_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = stream(seed, StreamTag::Init, 0, 0);
    (0..len)
        .map(|_| {
            // Sprinkle exact zeros so the zero-skip paths are exercised.
            if rng.gen_range(0..5) == 0 {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect()
}

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_vec(rows, cols, filled_vec(rows * cols, seed))
}

fn assert_close(got: f32, want: f32, what: &str) {
    let tol = 1e-3f32.max(want.abs() * 1e-4);
    assert!((got - want).abs() <= tol, "{what}: {got} vs {want}");
}

proptest! {
    /// `gemm_nt` row i is bit-identical to `gemv` on sample i, and its
    /// values match the naive inner-product reference.
    #[test]
    fn gemm_nt_matches_gemv_and_naive(
        m in 0usize..10,
        n in 0usize..10,
        k in 0usize..12,
        seed in 0u64..1000,
    ) {
        let a = filled_vec(m * k, seed);
        let b = matrix(n, k, seed ^ 0x11);
        let mut c = vec![0.0f32; m * n];
        ops::gemm_nt(&a, &b, m, &mut c);

        let mut row = vec![0.0f32; n];
        for i in 0..m {
            ops::gemv(&b, &a[i * k..(i + 1) * k], &[], &mut row);
            for j in 0..n {
                prop_assert_eq!(c[i * n + j].to_bits(), row[j].to_bits());
                let naive: f32 = (0..k).map(|p| a[i * k + p] * b.get(j, p)).sum();
                assert_close(c[i * n + j], naive, "gemm_nt vs naive");
            }
        }
    }

    /// `gemm_tn_acc` equals the sample-ascending `ger` sequence bit for
    /// bit (including on a nonzero initial accumulator) and the naive
    /// sum within tolerance.
    #[test]
    fn gemm_tn_acc_matches_ger_and_naive(
        k in 0usize..10,
        m in 0usize..10,
        n in 0usize..12,
        seed in 0u64..1000,
    ) {
        let a = filled_vec(k * m, seed);
        let b = filled_vec(k * n, seed ^ 0x22);
        let init = matrix(m, n, seed ^ 0x33);
        let mut c = init.clone();
        ops::gemm_tn_acc(&a, &b, k, &mut c);

        let mut want = init.clone();
        for s in 0..k {
            ops::ger(&mut want, 1.0, &a[s * m..(s + 1) * m], &b[s * n..(s + 1) * n]);
        }
        for (g, w) in c.as_slice().iter().zip(want.as_slice()) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
        for r in 0..m {
            for j in 0..n {
                let naive: f32 =
                    init.get(r, j) + (0..k).map(|s| a[s * m + r] * b[s * n + j]).sum::<f32>();
                assert_close(c.get(r, j), naive, "gemm_tn_acc vs naive");
            }
        }
    }

    /// `gemm_nn` row i is bit-identical to `gemv_t` on sample i.
    #[test]
    fn gemm_nn_matches_gemv_t(
        m in 0usize..10,
        n in 0usize..12,
        k in 0usize..10,
        seed in 0u64..1000,
    ) {
        let a = filled_vec(m * k, seed);
        let b = matrix(k, n, seed ^ 0x44);
        let mut c = vec![0.0f32; m * n];
        ops::gemm_nn(&a, &b, m, &mut c);
        let mut row = vec![0.0f32; n];
        for i in 0..m {
            ops::gemv_t(&b, &a[i * k..(i + 1) * k], &mut row);
            for j in 0..n {
                prop_assert_eq!(c[i * n + j].to_bits(), row[j].to_bits());
            }
        }
    }

    /// The ordered accumulation with the natural order reproduces
    /// `gemm_tn_acc`, and a row offset shifts which `B` rows are read.
    #[test]
    fn ordered_variants_agree_with_plain(
        k in 1usize..8,
        m in 1usize..8,
        n in 1usize..10,
        off in 0usize..3,
        seed in 0u64..1000,
    ) {
        let a = filled_vec(k * m, seed);
        let b = filled_vec((k + off) * n, seed ^ 0x55);
        let order: Vec<usize> = (0..k).collect();

        let mut plain = Matrix::zeros(m, n);
        ops::gemm_tn_acc(&a, &b[off * n..], k, &mut plain);
        let mut ord = Matrix::zeros(m, n);
        ops::gemm_tn_acc_ord(&a, &b, &order, off, &mut ord);
        for (g, w) in ord.as_slice().iter().zip(plain.as_slice()) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }

        let mut acc_plain = vec![0.0f32; m];
        ops::add_row_sums(&a, k, &mut acc_plain);
        let mut acc_ord = vec![0.0f32; m];
        ops::add_row_sums_ord(&a, &order, &mut acc_ord);
        for (g, w) in acc_ord.iter().zip(&acc_plain) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// `im2col` gathers exactly `x[c, oy+ky, ox+kx]` into position-major
    /// rows with (channel, ky, kx)-ordered columns, for any valid shape
    /// (k = h and k = 1 boundaries included).
    #[test]
    fn im2col_matches_direct_indexing(
        in_ch in 1usize..4,
        h in 1usize..8,
        w in 1usize..8,
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let k = k.min(h).min(w);
        let x = filled_vec(in_ch * h * w, seed);
        let (oh, ow) = (h - k + 1, w - k + 1);
        let ckk = in_ch * k * k;
        let mut patches = vec![0.0f32; oh * ow * ckk];
        ops::im2col(&x, in_ch, h, w, k, &mut patches);
        for oy in 0..oh {
            for ox in 0..ow {
                for c in 0..in_ch {
                    for ky in 0..k {
                        for kx in 0..k {
                            let wi = (c * k + ky) * k + kx;
                            let got = patches[(oy * ow + ox) * ckk + wi];
                            let want = x[c * h * w + (oy + ky) * w + ox + kx];
                            prop_assert_eq!(got.to_bits(), want.to_bits());
                        }
                    }
                }
            }
        }
    }

    /// `col2im_acc` is the adjoint of `im2col`:
    /// ⟨im2col(x), P⟩ = ⟨x, col2im(P)⟩.
    #[test]
    fn col2im_is_the_adjoint_of_im2col(
        h in 1usize..7,
        w in 1usize..7,
        k in 1usize..7,
        seed in 0u64..1000,
    ) {
        let k = k.min(h).min(w);
        let x = filled_vec(h * w, seed);
        let (oh, ow) = (h - k + 1, w - k + 1);
        let p = filled_vec(oh * ow * k * k, seed ^ 0x66);
        let mut patches = vec![0.0f32; p.len()];
        ops::im2col(&x, 1, h, w, k, &mut patches);
        let lhs: f64 = patches.iter().zip(&p).map(|(&a, &b)| (a * b) as f64).sum();
        let mut dx = vec![0.0f32; x.len()];
        ops::col2im_acc(&p, 1, h, w, k, &mut dx);
        let rhs: f64 = x.iter().zip(&dx).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-3 + lhs.abs() * 1e-5, "{} vs {}", lhs, rhs);
    }
}
