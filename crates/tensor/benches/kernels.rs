//! Criterion micro-benches for the tensor kernels: the batched GEMM
//! family against the per-sample GEMV/GER chains they replace. Shapes
//! mirror the lab-scale MLP hot loop (batch 32, 784 → 128).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedbiad_tensor::ops;
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::Matrix;
use rand::Rng;

const M: usize = 32; // batch
const N: usize = 128; // output units
const K: usize = 784; // input features

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = stream(seed, StreamTag::Init, 0, 0);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    m
}

fn bench_forward(c: &mut Criterion) {
    let w = filled(N, K, 1);
    let x = filled(M, K, 2);
    let mut group = c.benchmark_group("forward");
    group.throughput(Throughput::Elements((M * N * K) as u64));
    let mut out = vec![0.0f32; M * N];
    group.bench_with_input(BenchmarkId::new("gemv_loop", M), &(), |b, _| {
        b.iter(|| {
            for i in 0..M {
                ops::gemv(&w, x.row(i), &[], &mut out[i * N..(i + 1) * N]);
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("gemm_nt", M), &(), |b, _| {
        b.iter(|| ops::gemm_nt(x.as_slice(), &w, M, &mut out))
    });
    group.finish();
}

fn bench_grad_accumulation(c: &mut Criterion) {
    let delta = filled(M, N, 3);
    let x = filled(M, K, 4);
    let mut group = c.benchmark_group("grad_acc");
    group.throughput(Throughput::Elements((M * N * K) as u64));
    let mut gw = Matrix::zeros(N, K);
    group.bench_with_input(BenchmarkId::new("ger_loop", M), &(), |b, _| {
        b.iter(|| {
            gw.zero();
            for s in 0..M {
                ops::ger(&mut gw, 1.0, delta.row(s), x.row(s));
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("gemm_tn_acc", M), &(), |b, _| {
        b.iter(|| {
            gw.zero();
            ops::gemm_tn_acc(delta.as_slice(), x.as_slice(), M, &mut gw);
        })
    });
    group.finish();
}

fn bench_backprop(c: &mut Criterion) {
    let w = filled(N, K, 5);
    let delta = filled(M, N, 6);
    let mut group = c.benchmark_group("backprop");
    group.throughput(Throughput::Elements((M * N * K) as u64));
    let mut dx = vec![0.0f32; M * K];
    group.bench_with_input(BenchmarkId::new("gemv_t_loop", M), &(), |b, _| {
        b.iter(|| {
            for s in 0..M {
                ops::gemv_t(&w, delta.row(s), &mut dx[s * K..(s + 1) * K]);
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("gemm_nn", M), &(), |b, _| {
        b.iter(|| ops::gemm_nn(delta.as_slice(), &w, M, &mut dx))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_grad_accumulation,
    bench_backprop
);
criterion_main!(benches);
