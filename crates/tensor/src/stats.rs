//! Reductions and order statistics.
//!
//! The p-quantile ([`quantile`]) is load-bearing for FedBIAD stage two: the
//! threshold λ_r^k is "the p-quantile of E^k" (paper §IV-D), and the top-k
//! selection ([`top_k_indices`]) drives DGC/STC sparsification.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// The `q`-quantile (q ∈ \[0,1\]) with linear interpolation between order
/// statistics, matching the common "linear" convention. Panics on empty
/// input or q outside \[0,1\].
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f32;
        // Single-product form: monotone in `frac` under f32 rounding, unlike
        // `a*(1-frac) + b*frac` which can land a few ULPs outside [a, b].
        // The clamp covers the one remaining rounding case (a + (b-a) > b).
        (sorted[lo] + frac * (sorted[hi] - sorted[lo])).clamp(sorted[lo], sorted[hi])
    }
}

/// Index of the maximum element (first on ties). Panics on empty input.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = xs[0];
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Indices of the `k` largest values of `score(x)`, descending. Determinist
/// tie-break by smaller index. `k` is clamped to the slice length.
pub fn top_k_indices_by(xs: &[f32], k: usize, score: impl Fn(f32) -> f32) -> Vec<usize> {
    let k = k.min(xs.len());
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    // Full sort is O(n log n) but deterministic and simple; selection is not
    // a bottleneck next to GEMV in this workload. select_nth would not give
    // a stable ordering for equal scores.
    idx.sort_by(|&a, &b| {
        score(xs[b])
            .partial_cmp(&score(xs[a]))
            .expect("NaN score")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Indices of the `k` largest values, descending.
pub fn top_k_indices(xs: &[f32], k: usize) -> Vec<usize> {
    top_k_indices_by(xs, k, |v| v)
}

/// Indices of the `k` largest |values|, descending (magnitude top-k for
/// DGC/STC/FedMP).
pub fn top_k_abs_indices(xs: &[f32], k: usize) -> Vec<usize> {
    top_k_indices_by(xs, k, |v| v.abs())
}

/// Stable in-place sort of weighted samples `(value, weight)` by value
/// under the IEEE total order (`f32::total_cmp`). Stability makes the
/// outcome a pure function of the input sequence even with tied values,
/// which is what lets the dense and streaming robust-aggregation engines
/// stay bit-identical: both feed the column in upload order and run this
/// exact sort. NaN values order last deterministically instead of
/// poisoning the comparison.
pub fn sort_weighted_by_value(pairs: &mut [(f32, f32)]) {
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
}

/// Weighted numerator and denominator of the trimmed range
/// `sorted[k..len−k]`: `(Σ wᵢvᵢ, Σ wᵢ)` folded serially in sorted order
/// (the robust engines' bit-exactness contract — both engines call this
/// one kernel). Panics if trimming exceeds the sample (`2k ≥ len`);
/// callers guard that case (it means "keep the previous value").
pub fn trimmed_weighted_sum(sorted: &[(f32, f32)], k: usize) -> (f32, f32) {
    assert!(
        2 * k < sorted.len(),
        "trim depth {k} empties {} samples",
        sorted.len()
    );
    let mut num = 0.0f32;
    let mut den = 0.0f32;
    for &(v, w) in &sorted[k..sorted.len() - k] {
        num += w * v;
        den += w;
    }
    (num, den)
}

/// Weighted lower median of value-sorted samples: the first value whose
/// cumulative weight reaches half the total weight. With unit weights and
/// odd `n` this is the classic median; with even `n` it is the lower of
/// the two middle values (no interpolation — the estimate is always one
/// of the inputs, the property that gives the median its breakdown
/// point). Panics on empty input.
pub fn weighted_lower_median(sorted: &[(f32, f32)]) -> f32 {
    assert!(!sorted.is_empty(), "weighted median of empty slice");
    let total: f32 = sorted.iter().map(|p| p.1).sum();
    let half = 0.5 * total;
    let mut cum = 0.0f32;
    for &(v, w) in sorted {
        cum += w;
        if cum >= half {
            return v;
        }
    }
    sorted[sorted.len() - 1].0
}

/// `true` iff the top-`k` set of `logits` contains `target` (top-k accuracy,
/// the paper uses k=3 for next-word prediction and k=1 for images).
pub fn in_top_k(logits: &[f32], target: usize, k: usize) -> bool {
    debug_assert!(target < logits.len());
    let t = logits[target];
    // Count how many strictly exceed the target logit; ties resolved in the
    // target's favour only for earlier indices (deterministic, matches an
    // argsort-based implementation).
    let mut above = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > t || (v == t && i < target) {
            above += 1;
            if above >= k {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-6);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
    }

    #[test]
    fn top_k_orders_and_breaks_ties_by_index() {
        let xs = [1.0, 9.0, 9.0, 3.0];
        assert_eq!(top_k_indices(&xs, 3), vec![1, 2, 3]);
        assert_eq!(top_k_abs_indices(&[-10.0, 2.0, 5.0], 2), vec![0, 2]);
    }

    #[test]
    fn top_k_clamps_k() {
        assert_eq!(top_k_indices(&[1.0], 5), vec![0]);
    }

    #[test]
    fn sort_weighted_is_stable_and_total() {
        let mut pairs = vec![(2.0, 10.0), (1.0, 20.0), (2.0, 30.0), (f32::NAN, 40.0)];
        sort_weighted_by_value(&mut pairs);
        // Ties keep input order (stability), NaN sorts last.
        assert_eq!(pairs[0], (1.0, 20.0));
        assert_eq!(pairs[1], (2.0, 10.0));
        assert_eq!(pairs[2], (2.0, 30.0));
        assert!(pairs[3].0.is_nan());
    }

    #[test]
    fn trimmed_sum_drops_both_tails() {
        let sorted = [(-100.0, 1.0), (1.0, 2.0), (3.0, 2.0), (900.0, 1.0)];
        let (num, den) = trimmed_weighted_sum(&sorted, 1);
        assert_eq!(num, 2.0 * 1.0 + 2.0 * 3.0);
        assert_eq!(den, 4.0);
        // k = 0 is the plain weighted sum.
        let (num0, den0) = trimmed_weighted_sum(&sorted, 0);
        assert_eq!(num0, -100.0 + 2.0 + 6.0 + 900.0);
        assert_eq!(den0, 6.0);
    }

    #[test]
    #[should_panic(expected = "trim depth")]
    fn trimmed_sum_rejects_emptying_trims() {
        trimmed_weighted_sum(&[(1.0, 1.0), (2.0, 1.0)], 1);
    }

    #[test]
    fn weighted_median_lower_convention() {
        // Odd count, unit weights: the middle value.
        let s = [(1.0, 1.0), (2.0, 1.0), (9.0, 1.0)];
        assert_eq!(weighted_lower_median(&s), 2.0);
        // Even count: the lower middle value, never an interpolation.
        let s = [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (9.0, 1.0)];
        assert_eq!(weighted_lower_median(&s), 2.0);
        // Weights shift the mass: one heavy sample owns the median.
        let s = [(1.0, 1.0), (5.0, 10.0), (9.0, 1.0)];
        assert_eq!(weighted_lower_median(&s), 5.0);
        assert_eq!(weighted_lower_median(&[(7.0, 3.0)]), 7.0);
    }

    #[test]
    fn in_top_k_agrees_with_sorting() {
        let logits = [0.1, 0.9, 0.5, 0.7];
        assert!(in_top_k(&logits, 1, 1));
        assert!(!in_top_k(&logits, 2, 2)); // top-2 = {1,3}
        assert!(in_top_k(&logits, 2, 3));
        assert!(!in_top_k(&logits, 0, 3));
    }
}
