//! BLAS-like kernels: GEMV, GEMM, AXPY, dot products, outer-product
//! accumulation — plus the batched execution-engine kernels
//! ([`gemm_nt`], [`gemm_nn`], [`gemm_tn_acc`], [`im2col`]) that process a
//! whole mini-batch per call.
//!
//! These are the hot loops of local training, so they are written over
//! plain slices (bounds checks elided by iterator shape) and parallelised
//! with rayon over row panels.
//!
//! # Bit contract of the batched kernels
//!
//! The repo's determinism contract (ARCHITECTURE.md) requires the batched
//! mini-batch path to reproduce the per-sample reference **bit for bit**.
//! Every batched kernel therefore pins its per-output association order to
//! the per-sample primitive it replaces:
//!
//! * [`gemm_nt`] row `i` ≡ [`gemv`] of sample `i` (same 4-lane [`dot`];
//!   `dot4`'s shared pass over the weight row changes loads, not sums);
//! * [`gemm_nn`] row `i` ≡ [`gemv_t`] of sample `i` (zero-skip AXPY over
//!   weight rows in ascending order);
//! * [`gemm_tn_acc`] ≡ the sample-ascending sequence of [`ger`] rank-1
//!   updates (each output row accumulates its AXPYs in sample order,
//!   skipping zero coefficients exactly like `ger`);
//! * [`add_bias_cols`]/[`add_bias_rows`] exploit that IEEE-754 addition is
//!   commutative in its result bits, so `dot + bias` ≡ `bias + dot`;
//! * the `_ord` variants replay an explicit row-visit order — the BPTT
//!   accumulation order (window-major, step-descending) of the sequential
//!   LSTM reference.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// `y += alpha * x` over equal-length slices.
///
/// Vertical arithmetic: the SSE2/AVX bodies apply the identical per-lane
/// `y[i] += alpha · x[i]` the scalar tail does, so every width produces
/// the same bits.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 is baseline, AVX runtime-verified; accesses stay
        // inside the equal-length slices.
        unsafe {
            done = if avx_available() {
                axpy_avx(alpha, x, y)
            } else {
                axpy_sse(alpha, x, y)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..y.len() {
        y[i] += alpha * x[i];
    }
}

/// SSE2 body of [`axpy`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn axpy_sse(alpha: f32, x: &[f32], y: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 4;
    let av = _mm_set1_ps(alpha);
    for c in 0..chunks {
        let i = c * 4;
        let p = y.as_mut_ptr().add(i);
        let v = _mm_add_ps(
            _mm_loadu_ps(p),
            _mm_mul_ps(av, _mm_loadu_ps(x.as_ptr().add(i))),
        );
        _mm_storeu_ps(p, v);
    }
    chunks * 4
}

/// AVX body of [`axpy`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_avx(alpha: f32, x: &[f32], y: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 8;
    let av = _mm256_set1_ps(alpha);
    for c in 0..chunks {
        let i = c * 8;
        let p = y.as_mut_ptr().add(i);
        let v = _mm256_add_ps(
            _mm256_loadu_ps(p),
            _mm256_mul_ps(av, _mm256_loadu_ps(x.as_ptr().add(i))),
        );
        _mm256_storeu_ps(p, v);
    }
    chunks * 8
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // 4-way unrolled accumulation: keeps several FMA chains in flight and is
    // deterministic (fixed association order), unlike a parallel reduction.
    let mut acc = [0.0f32; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared L2 norm of a slice.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// `y = W x + b` (GEMV). `b` may be empty to skip the bias.
///
/// Shapes: `W: m×n`, `x: n`, `b: m` (or empty), `y: m`.
pub fn gemv(w: &Matrix, x: &[f32], b: &[f32], y: &mut [f32]) {
    assert_eq!(w.cols(), x.len(), "gemv: W.cols != x.len");
    assert_eq!(w.rows(), y.len(), "gemv: W.rows != y.len");
    assert!(b.is_empty() || b.len() == y.len(), "gemv: bad bias length");
    for (r, yr) in y.iter_mut().enumerate() {
        let base = if b.is_empty() { 0.0 } else { b[r] };
        *yr = base + dot(w.row(r), x);
    }
}

/// `y = Wᵀ x` (transposed GEMV). Shapes: `W: m×n`, `x: m`, `y: n`.
///
/// Used by backprop to push deltas through a layer without materialising
/// the transpose.
pub fn gemv_t(w: &Matrix, x: &[f32], y: &mut [f32]) {
    assert_eq!(w.rows(), x.len(), "gemv_t: W.rows != x.len");
    assert_eq!(w.cols(), y.len(), "gemv_t: W.cols != y.len");
    y.fill(0.0);
    for (r, &xr) in x.iter().enumerate() {
        if xr != 0.0 {
            axpy(xr, w.row(r), y);
        }
    }
}

/// Rank-1 update `W += alpha * u vᵀ` (GER). Shapes: `W: m×n`, `u: m`, `v: n`.
///
/// This is how weight gradients accumulate: `dW += delta ⊗ input`.
pub fn ger(w: &mut Matrix, alpha: f32, u: &[f32], v: &[f32]) {
    assert_eq!(w.rows(), u.len(), "ger: W.rows != u.len");
    assert_eq!(w.cols(), v.len(), "ger: W.cols != v.len");
    for (r, &ur) in u.iter().enumerate() {
        let coeff = alpha * ur;
        if coeff != 0.0 {
            axpy(coeff, v, w.row_mut(r));
        }
    }
}

/// Minimum number of output elements before `gemm` fans out to rayon.
/// Below this the spawn/steal overhead dominates.
const GEMM_PAR_THRESHOLD: usize = 64 * 64;

/// One-shot AVX capability snapshot, hoisted out of the per-row kernel
/// dispatch (`is_x86_feature_detected!` is a cached atomic load, but the
/// inner GEMM loops call `dot4`/`axpy4` per output group — a plain bool
/// passed down costs nothing).
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let has = std::arch::is_x86_feature_detected!("avx");
            STATE.store(if has { 1 } else { 2 }, Ordering::Relaxed);
            has
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn avx_available() -> bool {
    false
}

/// `C = A B` (GEMM), blocked over K and parallelised over row panels of C.
///
/// Shapes: `A: m×k`, `B: k×n`, `C: m×n`. The kernel iterates `k` in the
/// outer position and accumulates AXPYs into each output row, which walks
/// both `B` and `C` row-major — cache-friendly without an explicit pack.
///
/// ```
/// use fedbiad_tensor::ops::gemm;
/// use fedbiad_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let mut c = Matrix::zeros(2, 2);
/// gemm(&a, &b, &mut c);
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dims differ");
    assert_eq!(a.rows(), c.rows(), "gemm: C rows");
    assert_eq!(b.cols(), c.cols(), "gemm: C cols");
    gemm_nn(a.as_slice(), b, a.rows(), c.as_mut_slice());
}

/// Four simultaneous dot products sharing one pass over `w`.
///
/// Each output keeps [`dot`]'s private 4-lane association (lane `l`
/// accumulates elements `l mod 4`, lanes summed left-to-right, tail
/// last), so the four results are bit-identical to four separate `dot`
/// calls — the sharing changes how often `w` is loaded, not any sum.
///
/// On x86-64 the inner loop is written with baseline SSE2 intrinsics
/// (`mulps`/`addps` are *vertical* per-lane f32 operations, so the
/// rounding of every lane is exactly the scalar computation's); LLVM's
/// auto-vectorizer proved too fragile across codegen-unit layouts for a
/// kernel this hot. Other targets use the portable scalar form.
#[inline]
fn dot4(x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32], w: &[f32], avx: bool) -> [f32; 4] {
    let n = w.len();
    debug_assert!(x0.len() == n && x1.len() == n && x2.len() == n && x3.len() == n);
    let chunks = n / 4;
    let acc: [[f32; 4]; 4];

    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 is part of the x86-64 baseline; AVX is verified at
        // runtime. All unaligned loads stay inside the equal-length
        // slices (i + 4 <= chunks*4 <= n), checked by the debug_assert
        // above and the slice types.
        unsafe {
            if avx {
                acc = dot4_avx(x0, x1, x2, x3, w, chunks);
            } else {
                acc = dot4_sse(x0, x1, x2, x3, w, chunks);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = avx;
        let mut a = [[0.0f32; 4]; 4];
        for ((((wc, c0), c1), c2), c3) in w
            .chunks_exact(4)
            .zip(x0.chunks_exact(4))
            .zip(x1.chunks_exact(4))
            .zip(x2.chunks_exact(4))
            .zip(x3.chunks_exact(4))
        {
            for l in 0..4 {
                a[0][l] += c0[l] * wc[l];
                a[1][l] += c1[l] * wc[l];
                a[2][l] += c2[l] * wc[l];
                a[3][l] += c3[l] * wc[l];
            }
        }
        acc = a;
    }

    let mut out = [0.0f32; 4];
    for (s, xs) in [x0, x1, x2, x3].into_iter().enumerate() {
        let mut tail = 0.0;
        for i in chunks * 4..n {
            tail += xs[i] * w[i];
        }
        out[s] = acc[s][0] + acc[s][1] + acc[s][2] + acc[s][3] + tail;
    }
    out
}

/// SSE2 inner loop of [`dot4`]: one 4-lane accumulator per sample,
/// vertical `mulps`/`addps` — lane `l` performs exactly the scalar
/// `acc[l] += x[b+l] * w[b+l]` sequence.
///
/// # Safety
/// Caller guarantees the five slices have equal length ≥ `chunks * 4`.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn dot4_sse(
    x0: &[f32],
    x1: &[f32],
    x2: &[f32],
    x3: &[f32],
    w: &[f32],
    chunks: usize,
) -> [[f32; 4]; 4] {
    use std::arch::x86_64::*;
    let mut a0 = _mm_setzero_ps();
    let mut a1 = _mm_setzero_ps();
    let mut a2 = _mm_setzero_ps();
    let mut a3 = _mm_setzero_ps();
    for c in 0..chunks {
        let i = c * 4;
        let wv = _mm_loadu_ps(w.as_ptr().add(i));
        a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_loadu_ps(x0.as_ptr().add(i)), wv));
        a1 = _mm_add_ps(a1, _mm_mul_ps(_mm_loadu_ps(x1.as_ptr().add(i)), wv));
        a2 = _mm_add_ps(a2, _mm_mul_ps(_mm_loadu_ps(x2.as_ptr().add(i)), wv));
        a3 = _mm_add_ps(a3, _mm_mul_ps(_mm_loadu_ps(x3.as_ptr().add(i)), wv));
    }
    let mut acc = [[0.0f32; 4]; 4];
    _mm_storeu_ps(acc[0].as_mut_ptr(), a0);
    _mm_storeu_ps(acc[1].as_mut_ptr(), a1);
    _mm_storeu_ps(acc[2].as_mut_ptr(), a2);
    _mm_storeu_ps(acc[3].as_mut_ptr(), a3);
    acc
}

/// AVX inner loop of [`dot4`]: two samples share one 256-bit register
/// (`[s·lanes | s'·lanes]`) with the `w` chunk broadcast to both halves.
/// Every lane still runs its own sequential 4-lane chunk accumulation —
/// `vmulps`/`vaddps` are vertical, so the result bits equal the SSE and
/// scalar forms; the packing only halves the instruction count.
///
/// # Safety
/// Caller guarantees the five slices have equal length ≥ `chunks * 4`
/// and that the CPU supports AVX.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dot4_avx(
    x0: &[f32],
    x1: &[f32],
    x2: &[f32],
    x3: &[f32],
    w: &[f32],
    chunks: usize,
) -> [[f32; 4]; 4] {
    use std::arch::x86_64::*;
    let mut a01 = _mm256_setzero_ps();
    let mut a23 = _mm256_setzero_ps();
    for c in 0..chunks {
        let i = c * 4;
        // No `&__m128` from the raw pointer here: the slice data is only
        // 4-byte aligned and misaligned references are UB (and abort
        // under debug assertions). Unaligned load, then mirror.
        let wx = _mm_loadu_ps(w.as_ptr().add(i));
        let wv = _mm256_set_m128(wx, wx);
        let x01 = _mm256_loadu2_m128(x1.as_ptr().add(i), x0.as_ptr().add(i));
        a01 = _mm256_add_ps(a01, _mm256_mul_ps(x01, wv));
        let x23 = _mm256_loadu2_m128(x3.as_ptr().add(i), x2.as_ptr().add(i));
        a23 = _mm256_add_ps(a23, _mm256_mul_ps(x23, wv));
    }
    let mut lanes01 = [0.0f32; 8];
    let mut lanes23 = [0.0f32; 8];
    _mm256_storeu_ps(lanes01.as_mut_ptr(), a01);
    _mm256_storeu_ps(lanes23.as_mut_ptr(), a23);
    let mut acc = [[0.0f32; 4]; 4];
    acc[0].copy_from_slice(&lanes01[..4]);
    acc[1].copy_from_slice(&lanes01[4..]);
    acc[2].copy_from_slice(&lanes23[..4]);
    acc[3].copy_from_slice(&lanes23[4..]);
    acc
}

/// Batched forward GEMM `C = A·Bᵀ`.
///
/// Shapes: `A: m×k` (row per sample, row-major slice), `B: n×k` (row per
/// output unit — a weight matrix as stored), `C: m×n`. Row `i` of `C` is
/// bit-identical to `gemv(B, A.row(i), [], ·)`: each output is the same
/// 4-lane [`dot`]. Rows are processed in blocks of four sharing one pass
/// over each weight row (`dot4`), which is where the batched path's
/// single-thread speedup comes from; blocks parallelise over rayon.
pub fn gemm_nt(a: &[f32], b: &Matrix, m: usize, c: &mut [f32]) {
    let k = b.cols();
    let n = b.rows();
    assert_eq!(a.len(), m * k, "gemm_nt: A must be m×k");
    assert_eq!(c.len(), m * n, "gemm_nt: C must be m×n");
    if m == 0 || n == 0 {
        return;
    }
    let blocks = m / 4;
    let avx = avx_available();
    let (head, rest) = c.split_at_mut(blocks * 4 * n);
    let block_kernel = |(blk, cb): (usize, &mut [f32])| {
        let i0 = blk * 4;
        let x0 = &a[i0 * k..(i0 + 1) * k];
        let x1 = &a[(i0 + 1) * k..(i0 + 2) * k];
        let x2 = &a[(i0 + 2) * k..(i0 + 3) * k];
        let x3 = &a[(i0 + 3) * k..(i0 + 4) * k];
        for j in 0..n {
            let out = dot4(x0, x1, x2, x3, b.row(j), avx);
            cb[j] = out[0];
            cb[n + j] = out[1];
            cb[2 * n + j] = out[2];
            cb[3 * n + j] = out[3];
        }
    };
    if head.len() >= GEMM_PAR_THRESHOLD {
        head.par_chunks_exact_mut(4 * n)
            .enumerate()
            .for_each(block_kernel);
    } else {
        head.chunks_exact_mut(4 * n)
            .enumerate()
            .for_each(block_kernel);
    }
    for (r, crow) in rest.chunks_exact_mut(n).enumerate() {
        let i = blocks * 4 + r;
        let x = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv = dot(x, b.row(j));
        }
    }
}

/// Batched backprop GEMM `C = A·B` over slice inputs.
///
/// Shapes: `A: m×k` (row per sample), `B: k×n` (a weight matrix), `C:
/// m×n`. Row `i` of `C` is bit-identical to `gemv_t(B, A.row(i), ·)`:
/// zero-filled, then AXPYs over `B`'s rows in ascending order, skipping
/// zero coefficients. ([`gemm`] is this kernel over `Matrix` operands.)
pub fn gemm_nn(a: &[f32], b: &Matrix, m: usize, c: &mut [f32]) {
    let k = b.rows();
    let n = b.cols();
    assert_eq!(a.len(), m * k, "gemm_nn: A must be m×k");
    assert_eq!(c.len(), m * n, "gemm_nn: C must be m×n");
    if m == 0 || n == 0 {
        return;
    }
    let avx = avx_available();
    let row_kernel = |(i, crow): (usize, &mut [f32])| {
        crow.fill(0.0);
        // Coefficients for row `i` are contiguous, so the shared fused
        // kernel applies with coefficient stride 1.
        acc_row_kernel(&a[i * k..(i + 1) * k], b.as_slice(), 1, n, 0, k, crow, avx);
    };
    if c.len() >= GEMM_PAR_THRESHOLD {
        c.par_chunks_exact_mut(n).enumerate().for_each(row_kernel);
    } else {
        c.chunks_exact_mut(n).enumerate().for_each(row_kernel);
    }
}

/// Four fused AXPYs `y += k0·x0; y += k1·x1; y += k2·x2; y += k3·x3`.
///
/// Each element performs the exact operation sequence of four separate
/// [`axpy`] calls — the intermediates just live in a register instead of
/// round-tripping through memory, which every IEEE-754 operation rounds
/// identically either way. Callers must ensure all four coefficients are
/// nonzero so the zero-skip contract of the accumulation kernels holds.
#[allow(clippy::too_many_arguments)]
#[inline]
fn axpy4(
    k0: f32,
    x0: &[f32],
    k1: f32,
    x1: &[f32],
    k2: f32,
    x2: &[f32],
    k3: f32,
    x3: &[f32],
    y: &mut [f32],
    avx: bool,
) {
    let n = y.len();
    debug_assert!(x0.len() == n && x1.len() == n && x2.len() == n && x3.len() == n);
    let done;

    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 is baseline, AVX runtime-verified; all accesses
        // stay inside the equal-length slices. The element update is pure
        // vertical arithmetic, so any vector width carries the same bits.
        unsafe {
            done = if avx {
                axpy4_avx(k0, x0, k1, x1, k2, x2, k3, x3, y)
            } else {
                axpy4_sse(k0, x0, k1, x1, k2, x2, k3, x3, y)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = avx;
        done = 0;
    }

    for i in done..n {
        let mut v = y[i];
        v += k0 * x0[i];
        v += k1 * x1[i];
        v += k2 * x2[i];
        v += k3 * x3[i];
        y[i] = v;
    }
}

/// SSE2 body of [`axpy4`]; returns how many leading elements were
/// processed (a multiple of 4).
///
/// # Safety
/// Caller guarantees the five slices have equal length.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn axpy4_sse(
    k0: f32,
    x0: &[f32],
    k1: f32,
    x1: &[f32],
    k2: f32,
    x2: &[f32],
    k3: f32,
    x3: &[f32],
    y: &mut [f32],
) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 4;
    let kv0 = _mm_set1_ps(k0);
    let kv1 = _mm_set1_ps(k1);
    let kv2 = _mm_set1_ps(k2);
    let kv3 = _mm_set1_ps(k3);
    for c in 0..chunks {
        let i = c * 4;
        let mut v = _mm_loadu_ps(y.as_ptr().add(i));
        v = _mm_add_ps(v, _mm_mul_ps(kv0, _mm_loadu_ps(x0.as_ptr().add(i))));
        v = _mm_add_ps(v, _mm_mul_ps(kv1, _mm_loadu_ps(x1.as_ptr().add(i))));
        v = _mm_add_ps(v, _mm_mul_ps(kv2, _mm_loadu_ps(x2.as_ptr().add(i))));
        v = _mm_add_ps(v, _mm_mul_ps(kv3, _mm_loadu_ps(x3.as_ptr().add(i))));
        _mm_storeu_ps(y.as_mut_ptr().add(i), v);
    }
    chunks * 4
}

/// AVX body of [`axpy4`]: identical vertical arithmetic at 8 lanes;
/// returns how many leading elements were processed (a multiple of 8).
///
/// # Safety
/// Caller guarantees the five slices have equal length and AVX support.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx")]
unsafe fn axpy4_avx(
    k0: f32,
    x0: &[f32],
    k1: f32,
    x1: &[f32],
    k2: f32,
    x2: &[f32],
    k3: f32,
    x3: &[f32],
    y: &mut [f32],
) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 8;
    let kv0 = _mm256_set1_ps(k0);
    let kv1 = _mm256_set1_ps(k1);
    let kv2 = _mm256_set1_ps(k2);
    let kv3 = _mm256_set1_ps(k3);
    for c in 0..chunks {
        let i = c * 8;
        let mut v = _mm256_loadu_ps(y.as_ptr().add(i));
        v = _mm256_add_ps(v, _mm256_mul_ps(kv0, _mm256_loadu_ps(x0.as_ptr().add(i))));
        v = _mm256_add_ps(v, _mm256_mul_ps(kv1, _mm256_loadu_ps(x1.as_ptr().add(i))));
        v = _mm256_add_ps(v, _mm256_mul_ps(kv2, _mm256_loadu_ps(x2.as_ptr().add(i))));
        v = _mm256_add_ps(v, _mm256_mul_ps(kv3, _mm256_loadu_ps(x3.as_ptr().add(i))));
        _mm256_storeu_ps(y.as_mut_ptr().add(i), v);
    }
    chunks * 8
}

/// One output row's accumulation over sample rows `s0..s0+cnt` of `A`/`B`
/// — the shared inner loop of [`gemm_tn_acc`]: 4-sample groups whose
/// coefficients are all nonzero run fused ([`axpy4`]); any group with a
/// zero falls back to the per-sample zero-skip AXPYs. Both orders execute
/// the identical f32 operation sequence on each element.
#[inline]
#[allow(clippy::too_many_arguments)]
fn acc_row_kernel(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    r: usize,
    k: usize,
    crow: &mut [f32],
    avx: bool,
) {
    let mut s = 0;
    while s + 4 <= k {
        let k0 = a[s * m + r];
        let k1 = a[(s + 1) * m + r];
        let k2 = a[(s + 2) * m + r];
        let k3 = a[(s + 3) * m + r];
        if k0 != 0.0 && k1 != 0.0 && k2 != 0.0 && k3 != 0.0 {
            axpy4(
                k0,
                &b[s * n..(s + 1) * n],
                k1,
                &b[(s + 1) * n..(s + 2) * n],
                k2,
                &b[(s + 2) * n..(s + 3) * n],
                k3,
                &b[(s + 3) * n..(s + 4) * n],
                crow,
                avx,
            );
        } else {
            for (t, coeff) in [k0, k1, k2, k3].into_iter().enumerate() {
                if coeff != 0.0 {
                    axpy(coeff, &b[(s + t) * n..(s + t + 1) * n], crow);
                }
            }
        }
        s += 4;
    }
    while s < k {
        let coeff = a[s * m + r];
        if coeff != 0.0 {
            axpy(coeff, &b[s * n..(s + 1) * n], crow);
        }
        s += 1;
    }
}

/// Batched gradient accumulation `C += Aᵀ·B`, sample rows ascending.
///
/// Shapes: `A: k×m` (row per sample of coefficients, e.g. deltas), `B:
/// k×n` (row per sample of inputs), `C: m×n` (a gradient matrix,
/// accumulated into). Row `r` of `C` receives
/// `axpy(A[s][r], B.row(s), ·)` for `s = 0..k` — exactly the AXPY
/// sequence the sample-ascending [`ger`] loop of the per-sample reference
/// applies to that row, including the skip of zero coefficients. Unlike
/// the per-sample loop, each gradient row stays hot in cache while all
/// `k` samples accumulate into it (one pass over `C` instead of `k`).
pub fn gemm_tn_acc(a: &[f32], b: &[f32], k: usize, c: &mut Matrix) {
    let m = c.rows();
    let n = c.cols();
    assert_eq!(a.len(), k * m, "gemm_tn_acc: A must be k×m");
    assert_eq!(b.len(), k * n, "gemm_tn_acc: B must be k×n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let avx = avx_available();
    let row_kernel = |(r, crow): (usize, &mut [f32])| acc_row_kernel(a, b, m, n, r, k, crow, avx);
    let len = c.len();
    if len >= GEMM_PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_exact_mut(n)
            .enumerate()
            .for_each(row_kernel);
    } else {
        c.as_mut_slice()
            .chunks_exact_mut(n)
            .enumerate()
            .for_each(row_kernel);
    }
}

/// [`gemm_tn_acc`] with an explicit row-visit `order` (row indices into
/// `A`); `B`'s row for visited row `s` is `s + b_row_off`.
///
/// BPTT accumulates gradients window-major and step-*descending* while
/// the batched time loop produces rows step-major — this kernel replays
/// the sequential reference's order. `b_row_off` lets `B` be a state
/// buffer whose block `t+1` holds step `t`'s output (hidden states).
pub fn gemm_tn_acc_ord(a: &[f32], b: &[f32], order: &[usize], b_row_off: usize, c: &mut Matrix) {
    let m = c.rows();
    let n = c.cols();
    if m == 0 || n == 0 || order.is_empty() {
        return;
    }
    if let Some(&max) = order.iter().max() {
        assert!((max + 1) * m <= a.len(), "gemm_tn_acc_ord: A too short");
        assert!(
            (max + b_row_off + 1) * n <= b.len(),
            "gemm_tn_acc_ord: B too short"
        );
    }
    let row_kernel = |(r, crow): (usize, &mut [f32])| {
        for &s in order {
            let coeff = a[s * m + r];
            if coeff != 0.0 {
                let br = s + b_row_off;
                axpy(coeff, &b[br * n..(br + 1) * n], crow);
            }
        }
    };
    if c.len() >= GEMM_PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_exact_mut(n)
            .enumerate()
            .for_each(row_kernel);
    } else {
        c.as_mut_slice()
            .chunks_exact_mut(n)
            .enumerate()
            .for_each(row_kernel);
    }
}

/// Bias-gradient accumulation: `acc += Σ_rows A`, rows ascending.
///
/// Implemented as the same `axpy(1.0, row, acc)` sequence the per-sample
/// reference applies, so the bits match.
pub fn add_row_sums(a: &[f32], rows: usize, acc: &mut [f32]) {
    let n = acc.len();
    assert_eq!(a.len(), rows * n, "add_row_sums: A must be rows×acc.len()");
    for s in 0..rows {
        axpy(1.0, &a[s * n..(s + 1) * n], acc);
    }
}

/// [`add_row_sums`] with an explicit row-visit order (BPTT bias grads).
pub fn add_row_sums_ord(a: &[f32], order: &[usize], acc: &mut [f32]) {
    let n = acc.len();
    if n == 0 {
        return;
    }
    for &s in order {
        axpy(1.0, &a[s * n..(s + 1) * n], acc);
    }
}

/// Batched bias-add, column-broadcast: `C[i][j] += bias[j]` for every row
/// `i` of the `m×bias.len()` row-major buffer `c`.
///
/// `dot + bias` carries the same bits as `gemv`'s `bias + dot` because
/// IEEE-754 addition is commutative in its rounded result.
pub fn add_bias_cols(c: &mut [f32], bias: &[f32]) {
    if bias.is_empty() {
        return;
    }
    for row in c.chunks_exact_mut(bias.len()) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Batched bias-add, row-broadcast: `C[i][j] += bias[i]` over an
/// `bias.len()×cols` buffer (conv layout: one row per filter).
pub fn add_bias_rows(c: &mut [f32], cols: usize, bias: &[f32]) {
    if bias.is_empty() || cols == 0 {
        return;
    }
    assert_eq!(c.len(), bias.len() * cols, "add_bias_rows: C shape");
    for (row, &b) in c.chunks_exact_mut(cols).zip(bias) {
        for v in row {
            *v += b;
        }
    }
}

/// im2col patch extraction for a valid (no-padding) `k×k` convolution.
///
/// Input `x` is a `in_ch×h×w` feature map (channel-major). `out` receives
/// one row per output position `(oy, ox)` in row-major order, with
/// `in_ch·k·k` columns ordered `(channel, ky, kx)` — the exact flattened
/// filter layout, so `y[f][pos] = bias[f] + dot(filter_row, patch_row)`.
/// A pure gather: no arithmetic, hence no rounding concerns.
pub fn im2col(x: &[f32], in_ch: usize, h: usize, w: usize, k: usize, out: &mut [f32]) {
    assert!(h >= k && w >= k, "im2col: kernel larger than input");
    let (oh, ow) = (h - k + 1, w - k + 1);
    let ckk = in_ch * k * k;
    assert_eq!(x.len(), in_ch * h * w, "im2col: input shape");
    assert_eq!(out.len(), oh * ow * ckk, "im2col: output shape");
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &mut out[(oy * ow + ox) * ckk..][..ckk];
            let mut wi = 0;
            for c in 0..in_ch {
                let plane = &x[c * h * w..(c + 1) * h * w];
                for ky in 0..k {
                    let src = &plane[(oy + ky) * w + ox..][..k];
                    row[wi..wi + k].copy_from_slice(src);
                    wi += k;
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add patch-space gradients back onto the
/// `in_ch×h×w` input gradient (`dx` is accumulated into, not zeroed).
pub fn col2im_acc(dpatches: &[f32], in_ch: usize, h: usize, w: usize, k: usize, dx: &mut [f32]) {
    assert!(h >= k && w >= k, "col2im_acc: kernel larger than input");
    let (oh, ow) = (h - k + 1, w - k + 1);
    let ckk = in_ch * k * k;
    assert_eq!(dpatches.len(), oh * ow * ckk, "col2im_acc: patch shape");
    assert_eq!(dx.len(), in_ch * h * w, "col2im_acc: dx shape");
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &dpatches[(oy * ow + ox) * ckk..][..ckk];
            let mut wi = 0;
            for c in 0..in_ch {
                let base = c * h * w;
                for ky in 0..k {
                    let dst = &mut dx[base + (oy + ky) * w + ox..][..k];
                    for (d, &g) in dst.iter_mut().zip(&row[wi..wi + k]) {
                        *d += g;
                    }
                    wi += k;
                }
            }
        }
    }
}

/// Clip `g` so its global L2 norm is at most `max_norm`; returns the scale
/// that was applied (1.0 when no clipping happened, 0.0 when a non-finite
/// gradient was dropped).
///
/// This is the "SGD with the clipped gradient norm" the paper uses for the
/// LSTM language models (§V-A). A NaN/Inf norm means the step would
/// poison the model — and `NaN > max_norm` is false, so the old code fell
/// through to the "no clipping" branch and let it. Non-finite norms now
/// zero the gradient (the step becomes a no-op) and return 0.0.
pub fn clip_norm(g: &mut [f32], max_norm: f32) -> f32 {
    let norm = norm_sq(g).sqrt();
    if !norm.is_finite() {
        g.fill(0.0);
        return 0.0;
    }
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for v in g.iter_mut() {
            *v *= scale;
        }
        scale
    } else {
        1.0
    }
}

// ---- fused decode + reduce helpers (streaming aggregation) -------------
//
// The server's sharded streaming reducer (`fedbiad-fl`) and the wire
// codec's range decoders (`fedbiad-compress`) share these element-wise
// kernels. Every operation here is purely *vertical* — output lane `i`
// depends only on element `i` of each operand, with no cross-lane
// arithmetic — so the SSE2/AVX bodies execute the exact same IEEE-754
// operation per element as their scalar tails and produce bit-identical
// results lane for lane. That is what lets the streaming engine run 4/8
// lanes at a time while staying inside the bit-identical-to-dense
// contract (`tests/aggregation_equivalence.rs`); the property suite in
// `crates/tensor/tests/simd_props.rs` pins each kernel against its scalar
// reference over awkward lengths and unaligned offsets.
//
// The two bit-manipulating decoders (`sign_apply_from_bits`,
// `dequant_u8`) are SSE2-only: widening them needs 256-bit *integer*
// lanes, which is AVX2 — outside the AVX1 runtime-detect contract the
// rest of this file uses. Both are decode-bound on byte inputs, so the
// 128-bit integer path already saturates them.

/// `y[i] += w` for every element: the coverage-denominator update, and —
/// with `w = 0.0` — the dense reference's `+= w·0` normalisation pass
/// over dropped elements (it turns a `−0.0` accumulator into `+0.0`
/// exactly like the reference axpy does).
pub fn add_assign_scalar(y: &mut [f32], w: f32) {
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 is baseline, AVX runtime-verified; accesses stay
        // inside `y`. Vertical arithmetic: identical bits at any width.
        unsafe {
            done = if avx_available() {
                add_assign_scalar_avx(y, w)
            } else {
                add_assign_scalar_sse(y, w)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for v in &mut y[done..] {
        *v += w;
    }
}

/// SSE2 body of [`add_assign_scalar`]; returns elements processed.
///
/// # Safety
/// x86_64 only (SSE2 baseline).
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn add_assign_scalar_sse(y: &mut [f32], w: f32) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 4;
    let wv = _mm_set1_ps(w);
    for c in 0..chunks {
        let p = y.as_mut_ptr().add(c * 4);
        _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), wv));
    }
    chunks * 4
}

/// AVX body of [`add_assign_scalar`]; returns elements processed.
///
/// # Safety
/// Caller guarantees AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn add_assign_scalar_avx(y: &mut [f32], w: f32) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 8;
    let wv = _mm256_set1_ps(w);
    for c in 0..chunks {
        let p = y.as_mut_ptr().add(c * 8);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), wv));
    }
    chunks * 8
}

/// `y[i] += w·(a[i] + b[i])`: the WeightsDelta accumulate, where the
/// client's absolute weights are reconstructed as base + delta on the fly.
pub fn axpy_sum2(w: f32, a: &[f32], b: &[f32], y: &mut [f32]) {
    assert!(
        a.len() == y.len() && b.len() == y.len(),
        "axpy_sum2 length mismatch"
    );
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal-length
        // slices checked above. Vertical arithmetic.
        unsafe {
            done = if avx_available() {
                axpy_sum2_avx(w, a, b, y)
            } else {
                axpy_sum2_sse(w, a, b, y)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..y.len() {
        y[i] += w * (a[i] + b[i]);
    }
}

/// SSE2 body of [`axpy_sum2`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn axpy_sum2_sse(w: f32, a: &[f32], b: &[f32], y: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 4;
    let wv = _mm_set1_ps(w);
    for c in 0..chunks {
        let i = c * 4;
        let s = _mm_add_ps(
            _mm_loadu_ps(a.as_ptr().add(i)),
            _mm_loadu_ps(b.as_ptr().add(i)),
        );
        let p = y.as_mut_ptr().add(i);
        _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), _mm_mul_ps(wv, s)));
    }
    chunks * 4
}

/// AVX body of [`axpy_sum2`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_sum2_avx(w: f32, a: &[f32], b: &[f32], y: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 8;
    let wv = _mm256_set1_ps(w);
    for c in 0..chunks {
        let i = c * 8;
        let s = _mm256_add_ps(
            _mm256_loadu_ps(a.as_ptr().add(i)),
            _mm256_loadu_ps(b.as_ptr().add(i)),
        );
        let p = y.as_mut_ptr().add(i);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(wv, s)));
    }
    chunks * 8
}

/// `y[i] += alpha · f32::from_le_bytes(bytes[4i..4i+4])`: the fused
/// decode + accumulate over a dense-f32 wire payload, skipping the
/// intermediate decode buffer entirely. `bytes.len()` must be `4·y.len()`.
///
/// The little-endian byte-to-f32 reinterpretation is a pure bit copy, so
/// on x86_64 (little-endian) an unaligned vector load over the byte
/// stream yields exactly the lanes the scalar `from_le_bytes` loop sees.
pub fn axpy_from_le_bytes(alpha: f32, bytes: &[u8], y: &mut [f32]) {
    assert_eq!(
        bytes.len(),
        4 * y.len(),
        "axpy_from_le_bytes length mismatch"
    );
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; the length check
        // above bounds every 4-byte group. Unaligned loads are explicit.
        unsafe {
            done = if avx_available() {
                axpy_from_le_bytes_avx(alpha, bytes, y)
            } else {
                axpy_from_le_bytes_sse(alpha, bytes, y)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..y.len() {
        let b = &bytes[4 * i..4 * i + 4];
        y[i] += alpha * f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    }
}

/// SSE2 body of [`axpy_from_le_bytes`]; returns elements processed.
///
/// # Safety
/// Caller guarantees `bytes.len() == 4·y.len()`.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn axpy_from_le_bytes_sse(alpha: f32, bytes: &[u8], y: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 4;
    let av = _mm_set1_ps(alpha);
    for c in 0..chunks {
        let x = _mm_loadu_ps(bytes.as_ptr().add(c * 16) as *const f32);
        let p = y.as_mut_ptr().add(c * 4);
        _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), _mm_mul_ps(av, x)));
    }
    chunks * 4
}

/// AVX body of [`axpy_from_le_bytes`]; returns elements processed.
///
/// # Safety
/// Caller guarantees `bytes.len() == 4·y.len()` and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_from_le_bytes_avx(alpha: f32, bytes: &[u8], y: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = y.len() / 8;
    let av = _mm256_set1_ps(alpha);
    for c in 0..chunks {
        let x = _mm256_loadu_ps(bytes.as_ptr().add(c * 32) as *const f32);
        let p = y.as_mut_ptr().add(c * 8);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(av, x)));
    }
    chunks * 8
}

/// `out[i] = x[i] · s`: the zeros-pull matrix combine (`num · (1/W)` with
/// a precomputed reciprocal, exactly as the dense reference writes it).
pub fn scale_into(x: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "scale_into length mismatch");
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                scale_into_avx(x, s, out)
            } else {
                scale_into_sse(x, s, out)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..out.len() {
        out[i] = x[i] * s;
    }
}

/// SSE2 body of [`scale_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn scale_into_sse(x: &[f32], s: f32, out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 4;
    let sv = _mm_set1_ps(s);
    for c in 0..chunks {
        let i = c * 4;
        _mm_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm_mul_ps(_mm_loadu_ps(x.as_ptr().add(i)), sv),
        );
    }
    chunks * 4
}

/// AVX body of [`scale_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn scale_into_avx(x: &[f32], s: f32, out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 8;
    let sv = _mm256_set1_ps(s);
    for c in 0..chunks {
        let i = c * 8;
        _mm256_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm256_mul_ps(_mm256_loadu_ps(x.as_ptr().add(i)), sv),
        );
    }
    chunks * 8
}

/// `out[i] = x[i] / w`: the zeros-pull bias combine (the dense reference
/// divides biases directly instead of multiplying by the reciprocal).
pub fn div_scalar_into(x: &[f32], w: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "div_scalar_into length mismatch");
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                div_scalar_into_avx(x, w, out)
            } else {
                div_scalar_into_sse(x, w, out)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..out.len() {
        out[i] = x[i] / w;
    }
}

/// SSE2 body of [`div_scalar_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn div_scalar_into_sse(x: &[f32], w: f32, out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 4;
    let wv = _mm_set1_ps(w);
    for c in 0..chunks {
        let i = c * 4;
        _mm_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm_div_ps(_mm_loadu_ps(x.as_ptr().add(i)), wv),
        );
    }
    chunks * 4
}

/// AVX body of [`div_scalar_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn div_scalar_into_avx(x: &[f32], w: f32, out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 8;
    let wv = _mm256_set1_ps(w);
    for c in 0..chunks {
        let i = c * 8;
        _mm256_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm256_div_ps(_mm256_loadu_ps(x.as_ptr().add(i)), wv),
        );
    }
    chunks * 8
}

/// Holders-only combine: `g[i] = num[i] / den[i]` where `den[i] > 0.0`,
/// untouched elsewhere. The vector bodies divide every lane and select
/// with the comparison mask — masked-out lanes may compute ±inf/NaN but
/// are discarded, and x86 float division does not trap.
pub fn holders_combine(num: &[f32], den: &[f32], g: &mut [f32]) {
    assert!(
        num.len() == g.len() && den.len() == g.len(),
        "holders_combine length mismatch"
    );
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        // Selected lanes compute the scalar expression exactly.
        unsafe {
            done = if avx_available() {
                holders_combine_avx(num, den, g)
            } else {
                holders_combine_sse(num, den, g)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..g.len() {
        if den[i] > 0.0 {
            g[i] = num[i] / den[i];
        }
    }
}

/// SSE2 body of [`holders_combine`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn holders_combine_sse(num: &[f32], den: &[f32], g: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 4;
    let zero = _mm_setzero_ps();
    for c in 0..chunks {
        let i = c * 4;
        let d = _mm_loadu_ps(den.as_ptr().add(i));
        let mask = _mm_cmpgt_ps(d, zero);
        let q = _mm_div_ps(_mm_loadu_ps(num.as_ptr().add(i)), d);
        let p = g.as_mut_ptr().add(i);
        let old = _mm_loadu_ps(p);
        _mm_storeu_ps(p, _mm_or_ps(_mm_and_ps(mask, q), _mm_andnot_ps(mask, old)));
    }
    chunks * 4
}

/// AVX body of [`holders_combine`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn holders_combine_avx(num: &[f32], den: &[f32], g: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 8;
    let zero = _mm256_setzero_ps();
    for c in 0..chunks {
        let i = c * 8;
        let d = _mm256_loadu_ps(den.as_ptr().add(i));
        let mask = _mm256_cmp_ps::<{ _CMP_GT_OQ }>(d, zero);
        let q = _mm256_div_ps(_mm256_loadu_ps(num.as_ptr().add(i)), d);
        let p = g.as_mut_ptr().add(i);
        _mm256_storeu_ps(p, _mm256_blendv_ps(_mm256_loadu_ps(p), q, mask));
    }
    chunks * 8
}

/// Stale-fill combine: `g[i] = (num[i] + (W − den[i]) · g[i]) / W`, the
/// dense reference's exact expression and operation order.
pub fn stale_fill_combine(num: &[f32], den: &[f32], total_w: f32, g: &mut [f32]) {
    assert!(
        num.len() == g.len() && den.len() == g.len(),
        "stale_fill_combine length mismatch"
    );
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                stale_fill_combine_avx(num, den, total_w, g)
            } else {
                stale_fill_combine_sse(num, den, total_w, g)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..g.len() {
        g[i] = (num[i] + (total_w - den[i]) * g[i]) / total_w;
    }
}

/// SSE2 body of [`stale_fill_combine`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn stale_fill_combine_sse(num: &[f32], den: &[f32], total_w: f32, g: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 4;
    let wv = _mm_set1_ps(total_w);
    for c in 0..chunks {
        let i = c * 4;
        let p = g.as_mut_ptr().add(i);
        let fill = _mm_mul_ps(
            _mm_sub_ps(wv, _mm_loadu_ps(den.as_ptr().add(i))),
            _mm_loadu_ps(p),
        );
        let v = _mm_div_ps(_mm_add_ps(_mm_loadu_ps(num.as_ptr().add(i)), fill), wv);
        _mm_storeu_ps(p, v);
    }
    chunks * 4
}

/// AVX body of [`stale_fill_combine`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stale_fill_combine_avx(num: &[f32], den: &[f32], total_w: f32, g: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 8;
    let wv = _mm256_set1_ps(total_w);
    for c in 0..chunks {
        let i = c * 8;
        let p = g.as_mut_ptr().add(i);
        let fill = _mm256_mul_ps(
            _mm256_sub_ps(wv, _mm256_loadu_ps(den.as_ptr().add(i))),
            _mm256_loadu_ps(p),
        );
        let v = _mm256_div_ps(
            _mm256_add_ps(_mm256_loadu_ps(num.as_ptr().add(i)), fill),
            wv,
        );
        _mm256_storeu_ps(p, v);
    }
    chunks * 8
}

/// [`holders_combine`] with a constant denominator: `g[i] = num[i] / den`
/// when `den > 0`, untouched otherwise. For row-granular coverage the
/// denominator is constant over each row extent, so the caller can skip
/// materialising (and re-reading) a full den array; per element this
/// divides by the same value the array form would load, so results are
/// bit-identical.
pub fn holders_combine_scalar(num: &[f32], den: f32, g: &mut [f32]) {
    assert!(
        num.len() == g.len(),
        "holders_combine_scalar length mismatch"
    );
    // No holder rows: leave `g` untouched, matching the array form's
    // per-element `den[i] > 0.0` test (false for 0, negatives and NaN).
    if den <= 0.0 || den.is_nan() {
        return;
    }
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                holders_combine_scalar_avx(num, den, g)
            } else {
                holders_combine_scalar_sse(num, den, g)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..g.len() {
        g[i] = num[i] / den;
    }
}

/// SSE2 body of [`holders_combine_scalar`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn holders_combine_scalar_sse(num: &[f32], den: f32, g: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 4;
    let d = _mm_set1_ps(den);
    for c in 0..chunks {
        let i = c * 4;
        _mm_storeu_ps(
            g.as_mut_ptr().add(i),
            _mm_div_ps(_mm_loadu_ps(num.as_ptr().add(i)), d),
        );
    }
    chunks * 4
}

/// AVX body of [`holders_combine_scalar`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn holders_combine_scalar_avx(num: &[f32], den: f32, g: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 8;
    let d = _mm256_set1_ps(den);
    for c in 0..chunks {
        let i = c * 8;
        _mm256_storeu_ps(
            g.as_mut_ptr().add(i),
            _mm256_div_ps(_mm256_loadu_ps(num.as_ptr().add(i)), d),
        );
    }
    chunks * 8
}

/// [`stale_fill_combine`] with a constant denominator:
/// `g[i] = (num[i] + (W − den) · g[i]) / W`. Same bit-identity argument
/// as [`holders_combine_scalar`]: `W − den` matches `W − den[i]` exactly
/// when the array would hold `den` everywhere.
pub fn stale_fill_combine_scalar(num: &[f32], den: f32, total_w: f32, g: &mut [f32]) {
    assert!(
        num.len() == g.len(),
        "stale_fill_combine_scalar length mismatch"
    );
    let fill_w = total_w - den;
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                stale_fill_combine_scalar_avx(num, fill_w, total_w, g)
            } else {
                stale_fill_combine_scalar_sse(num, fill_w, total_w, g)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..g.len() {
        g[i] = (num[i] + fill_w * g[i]) / total_w;
    }
}

/// SSE2 body of [`stale_fill_combine_scalar`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn stale_fill_combine_scalar_sse(
    num: &[f32],
    fill_w: f32,
    total_w: f32,
    g: &mut [f32],
) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 4;
    let fw = _mm_set1_ps(fill_w);
    let wv = _mm_set1_ps(total_w);
    for c in 0..chunks {
        let i = c * 4;
        let p = g.as_mut_ptr().add(i);
        let fill = _mm_mul_ps(fw, _mm_loadu_ps(p));
        let v = _mm_div_ps(_mm_add_ps(_mm_loadu_ps(num.as_ptr().add(i)), fill), wv);
        _mm_storeu_ps(p, v);
    }
    chunks * 4
}

/// AVX body of [`stale_fill_combine_scalar`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stale_fill_combine_scalar_avx(
    num: &[f32],
    fill_w: f32,
    total_w: f32,
    g: &mut [f32],
) -> usize {
    use std::arch::x86_64::*;
    let chunks = g.len() / 8;
    let fw = _mm256_set1_ps(fill_w);
    let wv = _mm256_set1_ps(total_w);
    for c in 0..chunks {
        let i = c * 8;
        let p = g.as_mut_ptr().add(i);
        let fill = _mm256_mul_ps(fw, _mm256_loadu_ps(p));
        let v = _mm256_div_ps(
            _mm256_add_ps(_mm256_loadu_ps(num.as_ptr().add(i)), fill),
            wv,
        );
        _mm256_storeu_ps(p, v);
    }
    chunks * 8
}

/// `out[i] = x[i] + (−1.0) · s[i]` — the staleness merge's Δ = value −
/// snapshot, spelled in the dense reference's `axpy(-1.0, …)` form (which
/// is bit-identical to subtraction: negation is an exact sign flip).
#[allow(clippy::neg_multiply)]
pub fn diff_into(x: &[f32], s: &[f32], out: &mut [f32]) {
    assert!(
        x.len() == out.len() && s.len() == out.len(),
        "diff_into length mismatch"
    );
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                diff_into_avx(x, s, out)
            } else {
                diff_into_sse(x, s, out)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..out.len() {
        out[i] = x[i] + (-1.0) * s[i];
    }
}

/// SSE2 body of [`diff_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn diff_into_sse(x: &[f32], s: &[f32], out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 4;
    let neg = _mm_set1_ps(-1.0);
    for c in 0..chunks {
        let i = c * 4;
        let v = _mm_add_ps(
            _mm_loadu_ps(x.as_ptr().add(i)),
            _mm_mul_ps(neg, _mm_loadu_ps(s.as_ptr().add(i))),
        );
        _mm_storeu_ps(out.as_mut_ptr().add(i), v);
    }
    chunks * 4
}

/// AVX body of [`diff_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn diff_into_avx(x: &[f32], s: &[f32], out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 8;
    let neg = _mm256_set1_ps(-1.0);
    for c in 0..chunks {
        let i = c * 8;
        let v = _mm256_add_ps(
            _mm256_loadu_ps(x.as_ptr().add(i)),
            _mm256_mul_ps(neg, _mm256_loadu_ps(s.as_ptr().add(i))),
        );
        _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
    }
    chunks * 8
}

/// `out[i] = (b[i] + k[i]) + (−1.0) · s[i]` — the WeightsDelta variant of
/// [`diff_into`]: reconstruct base + delta, then subtract the snapshot.
#[allow(clippy::neg_multiply)]
pub fn sum2_diff_into(b: &[f32], k: &[f32], s: &[f32], out: &mut [f32]) {
    assert!(
        b.len() == out.len() && k.len() == out.len() && s.len() == out.len(),
        "sum2_diff_into length mismatch"
    );
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 baseline / AVX runtime-verified; equal lengths.
        unsafe {
            done = if avx_available() {
                sum2_diff_into_avx(b, k, s, out)
            } else {
                sum2_diff_into_sse(b, k, s, out)
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..out.len() {
        out[i] = (b[i] + k[i]) + (-1.0) * s[i];
    }
}

/// SSE2 body of [`sum2_diff_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn sum2_diff_into_sse(b: &[f32], k: &[f32], s: &[f32], out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 4;
    let neg = _mm_set1_ps(-1.0);
    for c in 0..chunks {
        let i = c * 4;
        let rec = _mm_add_ps(
            _mm_loadu_ps(b.as_ptr().add(i)),
            _mm_loadu_ps(k.as_ptr().add(i)),
        );
        let v = _mm_add_ps(rec, _mm_mul_ps(neg, _mm_loadu_ps(s.as_ptr().add(i))));
        _mm_storeu_ps(out.as_mut_ptr().add(i), v);
    }
    chunks * 4
}

/// AVX body of [`sum2_diff_into`]; returns elements processed.
///
/// # Safety
/// Caller guarantees equal slice lengths and AVX support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn sum2_diff_into_avx(b: &[f32], k: &[f32], s: &[f32], out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 8;
    let neg = _mm256_set1_ps(-1.0);
    for c in 0..chunks {
        let i = c * 8;
        let rec = _mm256_add_ps(
            _mm256_loadu_ps(b.as_ptr().add(i)),
            _mm256_loadu_ps(k.as_ptr().add(i)),
        );
        let v = _mm256_add_ps(rec, _mm256_mul_ps(neg, _mm256_loadu_ps(s.as_ptr().add(i))));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
    }
    chunks * 8
}

/// Sign-expand decode: `out[o] = −mu` if bit `start_bit + o` of the
/// LSB-first bitmap `signs` is set, else `mu` — the signSGD payload's
/// decode loop. Negation is an exact sign-bit flip, so the vector body
/// XORs the sign bit under the bitmap-derived mask instead of blending.
///
/// SSE2-only (see module note: byte→lane expansion at 256 bits is AVX2).
pub fn sign_apply_from_bits(signs: &[u8], start_bit: usize, mu: f32, out: &mut [f32]) {
    assert!(
        (start_bit + out.len()).div_ceil(8) <= signs.len(),
        "sign_apply_from_bits bitmap too short"
    );
    let mut o = 0usize;
    // Scalar up to the first byte boundary so the vector body reads whole
    // bytes (8 lanes each).
    while o < out.len() && !(start_bit + o).is_multiple_of(8) {
        let i = start_bit + o;
        out[o] = if signs[i / 8] >> (i % 8) & 1 == 1 {
            -mu
        } else {
            mu
        };
        o += 1;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 is baseline; the assertion above bounds every
        // byte access, and `o` is byte-aligned here.
        o += unsafe { sign_apply_sse(&signs[(start_bit + o) / 8..], mu, &mut out[o..]) };
    }
    for (rel, v) in out[o..].iter_mut().enumerate() {
        let i = start_bit + o + rel;
        *v = if signs[i / 8] >> (i % 8) & 1 == 1 {
            -mu
        } else {
            mu
        };
    }
}

/// SSE2 body of [`sign_apply_from_bits`] over a byte-aligned window;
/// returns elements processed (a multiple of 8).
///
/// # Safety
/// Caller guarantees `signs` holds at least `out.len() / 8` bytes.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn sign_apply_sse(signs: &[u8], mu: f32, out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let bytes = out.len() / 8;
    let mu_v = _mm_set1_ps(mu);
    let signbit = _mm_castsi128_ps(_mm_set1_epi32(i32::MIN));
    let lo_bits = _mm_set_epi32(8, 4, 2, 1);
    let hi_bits = _mm_set_epi32(128, 64, 32, 16);
    for (c, &sign_byte) in signs.iter().enumerate().take(bytes) {
        let b = _mm_set1_epi32(sign_byte as i32);
        // All-ones lane mask where the lane's bit is set in byte `b`.
        let m_lo = _mm_cmpeq_epi32(_mm_and_si128(b, lo_bits), lo_bits);
        let m_hi = _mm_cmpeq_epi32(_mm_and_si128(b, hi_bits), hi_bits);
        // bit set ⇒ flip mu's sign bit (exactly `-mu`).
        let v_lo = _mm_xor_ps(mu_v, _mm_and_ps(_mm_castsi128_ps(m_lo), signbit));
        let v_hi = _mm_xor_ps(mu_v, _mm_and_ps(_mm_castsi128_ps(m_hi), signbit));
        _mm_storeu_ps(out.as_mut_ptr().add(c * 8), v_lo);
        _mm_storeu_ps(out.as_mut_ptr().add(c * 8 + 4), v_hi);
    }
    bytes * 8
}

/// 8-bit dequantize: `out[i] = (codes[i] as i32 − levels) as f32 · inv_q`
/// — the FedPAQ decode at the byte-aligned width, where each code is one
/// byte. Integer→f32 conversion of values this small is exact, and the
/// multiply rounds identically per lane.
///
/// SSE2-only (see module note).
pub fn dequant_u8(codes: &[u8], levels: i32, inv_q: f32, out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequant_u8 length mismatch");
    let done;
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: SSE2 is baseline; equal lengths checked above.
        done = unsafe { dequant_u8_sse(codes, levels, inv_q, out) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        done = 0;
    }
    for i in done..out.len() {
        out[i] = (codes[i] as i32 - levels) as f32 * inv_q;
    }
}

/// SSE2 body of [`dequant_u8`]; returns elements processed (a multiple
/// of 8): load 8 codes, widen u8→u16→i32, subtract, convert, scale.
///
/// # Safety
/// Caller guarantees equal slice lengths.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn dequant_u8_sse(codes: &[u8], levels: i32, inv_q: f32, out: &mut [f32]) -> usize {
    use std::arch::x86_64::*;
    let chunks = out.len() / 8;
    let lv = _mm_set1_epi32(levels);
    let qv = _mm_set1_ps(inv_q);
    let zero = _mm_setzero_si128();
    for c in 0..chunks {
        let raw = _mm_loadl_epi64(codes.as_ptr().add(c * 8) as *const __m128i);
        let w16 = _mm_unpacklo_epi8(raw, zero);
        let lo = _mm_sub_epi32(_mm_unpacklo_epi16(w16, zero), lv);
        let hi = _mm_sub_epi32(_mm_unpackhi_epi16(w16, zero), lv);
        _mm_storeu_ps(
            out.as_mut_ptr().add(c * 8),
            _mm_mul_ps(_mm_cvtepi32_ps(lo), qv),
        );
        _mm_storeu_ps(
            out.as_mut_ptr().add(c * 8 + 4),
            _mm_mul_ps(_mm_cvtepi32_ps(hi), qv),
        );
    }
    chunks * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f32> = (0..13).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..13).map(|i| (i * 2) as f32).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-3);
    }

    #[test]
    fn gemv_with_and_without_bias() {
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [1.0, 1.0];
        let mut y = [0.0; 2];
        gemv(&w, &x, &[], &mut y);
        assert_eq!(y, [3.0, 7.0]);
        gemv(&w, &x, &[10.0, 20.0], &mut y);
        assert_eq!(y, [13.0, 27.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv_t(&w, &x, &mut y);
        let wt = w.transpose();
        let mut y2 = [0.0; 3];
        gemv(&wt, &x, &[], &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn ger_accumulates_outer_product() {
        let mut w = Matrix::zeros(2, 3);
        ger(&mut w, 2.0, &[1.0, 3.0], &[1.0, 0.0, -1.0]);
        assert_eq!(w.row(0), &[2.0, 0.0, -2.0]);
        assert_eq!(w.row(1), &[6.0, 0.0, -6.0]);
    }

    #[test]
    fn gemm_small_matches_naive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        let mut c = Matrix::zeros(3, 3);
        gemm(&a, &b, &mut c);
        assert_eq!(c, naive_gemm(&a, &b));
    }

    #[test]
    fn gemm_large_parallel_matches_naive() {
        // Cross the parallel threshold to exercise the rayon path.
        let n = 80;
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, ((i * 7 + j * 3) % 11) as f32 - 5.0);
                b.set(i, j, ((i * 5 + j * 2) % 13) as f32 - 6.0);
            }
        }
        let mut c = Matrix::zeros(n, n);
        gemm(&a, &b, &mut c);
        let want = naive_gemm(&a, &b);
        for (x, y) in c.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn clip_norm_scales_only_when_needed() {
        let mut g = [3.0, 4.0];
        let s = clip_norm(&mut g, 10.0);
        assert_eq!(s, 1.0);
        assert_eq!(g, [3.0, 4.0]);
        let s = clip_norm(&mut g, 1.0);
        assert!((s - 0.2).abs() < 1e-6);
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_handles_zero_gradient() {
        let mut g = [0.0, 0.0];
        assert_eq!(clip_norm(&mut g, 1.0), 1.0);
        assert_eq!(g, [0.0, 0.0]);
    }

    #[test]
    fn clip_norm_drops_non_finite_gradients() {
        // Regression: NaN > max_norm is false, so the old code returned
        // 1.0 and let the caller step on a poisoned gradient.
        let mut g = [1.0, f32::NAN, 2.0];
        assert_eq!(clip_norm(&mut g, 1.0), 0.0);
        assert_eq!(g, [0.0, 0.0, 0.0]);

        let mut g = [f32::INFINITY, 1.0];
        assert_eq!(clip_norm(&mut g, 1.0), 0.0);
        assert_eq!(g, [0.0, 0.0]);

        // Finite elements whose squared sum overflows f32 also count.
        let mut g = [f32::MAX, f32::MAX];
        assert_eq!(clip_norm(&mut g, 1.0), 0.0);
        assert_eq!(g, [0.0, 0.0]);
    }

    fn filled(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    #[test]
    fn gemm_nt_rows_match_gemv_bitwise() {
        // Shapes straddling the 4-row blocks and the dot unroll width.
        for (m, n, k) in [(1, 3, 5), (4, 4, 4), (7, 5, 9), (9, 2, 1), (3, 1, 0)] {
            let w = filled(n, k, |r, c| ((r * 13 + c * 7) % 17) as f32 * 0.37 - 2.0);
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 11) % 23) as f32 * 0.21 - 1.8)
                .collect();
            let mut c = vec![0.0f32; m * n];
            gemm_nt(&a, &w, m, &mut c);
            let mut want = vec![0.0f32; n];
            for i in 0..m {
                gemv(&w, &a[i * k..(i + 1) * k], &[], &mut want);
                for j in 0..n {
                    assert_eq!(
                        c[i * n + j].to_bits(),
                        want[j].to_bits(),
                        "({m},{n},{k}) row {i} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_nn_rows_match_gemv_t_bitwise() {
        for (m, n, k) in [(1, 4, 3), (5, 7, 6), (8, 1, 2)] {
            let w = filled(k, n, |r, c| ((r * 5 + c * 3) % 13) as f32 * 0.41 - 1.9);
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 7) % 11) as f32 * 0.3 - 1.2)
                .collect();
            let mut c = vec![0.0f32; m * n];
            gemm_nn(&a, &w, m, &mut c);
            let mut want = vec![0.0f32; n];
            for i in 0..m {
                gemv_t(&w, &a[i * k..(i + 1) * k], &mut want);
                assert_eq!(
                    c[i * n..(i + 1) * n]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "({m},{n},{k}) row {i}"
                );
            }
        }
    }

    #[test]
    fn gemm_tn_acc_matches_ger_sequence_bitwise() {
        let (k, m, n) = (6usize, 4usize, 5usize);
        let a: Vec<f32> = (0..k * m)
            .map(|i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    (i as f32) * 0.13 - 2.0
                }
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.07 - 1.0).collect();
        let mut c = Matrix::full(m, n, 0.25);
        let mut want = c.clone();
        gemm_tn_acc(&a, &b, k, &mut c);
        for s in 0..k {
            ger(
                &mut want,
                1.0,
                &a[s * m..(s + 1) * m],
                &b[s * n..(s + 1) * n],
            );
        }
        assert_eq!(
            c.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ordered_accumulation_replays_the_given_order() {
        // Three contributions whose sum depends on association order
        // (1.0 absorbs a single 4e-8 but not their 8e-8 pair): verify the
        // _ord kernels follow `order`, not storage order.
        let a = [1.0f32, 4.0e-8, 4.0e-8];
        let b = [1.0f32, 1.0, 1.0];
        let mut fwd = Matrix::zeros(1, 1);
        gemm_tn_acc_ord(&a, &b, &[0, 1, 2], 0, &mut fwd);
        let mut rev = Matrix::zeros(1, 1);
        gemm_tn_acc_ord(&a, &b, &[2, 1, 0], 0, &mut rev);
        assert_ne!(fwd.get(0, 0).to_bits(), rev.get(0, 0).to_bits());

        let mut acc_fwd = vec![0.0f32; 1];
        add_row_sums_ord(&a, &[0, 1, 2], &mut acc_fwd);
        let mut acc_seq = vec![0.0f32; 1];
        add_row_sums(&a, 3, &mut acc_seq);
        assert_eq!(acc_fwd, acc_seq);
        let mut acc_rev = vec![0.0f32; 1];
        add_row_sums_ord(&a, &[2, 1, 0], &mut acc_rev);
        assert_ne!(acc_rev[0].to_bits(), acc_seq[0].to_bits());
    }

    #[test]
    fn bias_broadcasts_add_along_the_right_axis() {
        let mut c = vec![0.0f32; 6];
        add_bias_cols(&mut c, &[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let mut c = vec![0.0f32; 6];
        add_bias_rows(&mut c, 3, &[1.0, 2.0]);
        assert_eq!(c, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        // Empty bias is a no-op (layers without biases).
        let mut c = vec![5.0f32; 2];
        add_bias_cols(&mut c, &[]);
        add_bias_rows(&mut c, 2, &[]);
        assert_eq!(c, vec![5.0, 5.0]);
    }

    #[test]
    fn im2col_col2im_round_trip_counts_overlaps() {
        // 1×3×3 input, 2×2 kernel: interior cells belong to several
        // patches; col2im of im2col multiplies each cell by its patch
        // multiplicity.
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut patches = vec![0.0f32; 4 * 4];
        im2col(&x, 1, 3, 3, 2, &mut patches);
        assert_eq!(patches[0..4], [1.0, 2.0, 4.0, 5.0]);
        assert_eq!(patches[12..16], [5.0, 6.0, 8.0, 9.0]);
        let mut back = vec![0.0f32; 9];
        col2im_acc(&patches, 1, 3, 3, 2, &mut back);
        let mult = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
        for i in 0..9 {
            assert_eq!(back[i], x[i] * mult[i], "cell {i}");
        }
    }
}
