//! BLAS-like kernels: GEMV, GEMM, AXPY, dot products and outer-product
//! accumulation.
//!
//! These are the hot loops of local training — a client's forward/backward
//! pass is a chain of `gemv`/`ger` calls — so they are written over plain
//! slices (bounds checks elided by iterator shape) and `gemm` is blocked and
//! parallelised with rayon over row panels.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // 4-way unrolled accumulation: keeps several FMA chains in flight and is
    // deterministic (fixed association order), unlike a parallel reduction.
    let mut acc = [0.0f32; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared L2 norm of a slice.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// `y = W x + b` (GEMV). `b` may be empty to skip the bias.
///
/// Shapes: `W: m×n`, `x: n`, `b: m` (or empty), `y: m`.
pub fn gemv(w: &Matrix, x: &[f32], b: &[f32], y: &mut [f32]) {
    assert_eq!(w.cols(), x.len(), "gemv: W.cols != x.len");
    assert_eq!(w.rows(), y.len(), "gemv: W.rows != y.len");
    assert!(b.is_empty() || b.len() == y.len(), "gemv: bad bias length");
    for (r, yr) in y.iter_mut().enumerate() {
        let base = if b.is_empty() { 0.0 } else { b[r] };
        *yr = base + dot(w.row(r), x);
    }
}

/// `y = Wᵀ x` (transposed GEMV). Shapes: `W: m×n`, `x: m`, `y: n`.
///
/// Used by backprop to push deltas through a layer without materialising
/// the transpose.
pub fn gemv_t(w: &Matrix, x: &[f32], y: &mut [f32]) {
    assert_eq!(w.rows(), x.len(), "gemv_t: W.rows != x.len");
    assert_eq!(w.cols(), y.len(), "gemv_t: W.cols != y.len");
    y.fill(0.0);
    for (r, &xr) in x.iter().enumerate() {
        if xr != 0.0 {
            axpy(xr, w.row(r), y);
        }
    }
}

/// Rank-1 update `W += alpha * u vᵀ` (GER). Shapes: `W: m×n`, `u: m`, `v: n`.
///
/// This is how weight gradients accumulate: `dW += delta ⊗ input`.
pub fn ger(w: &mut Matrix, alpha: f32, u: &[f32], v: &[f32]) {
    assert_eq!(w.rows(), u.len(), "ger: W.rows != u.len");
    assert_eq!(w.cols(), v.len(), "ger: W.cols != v.len");
    for (r, &ur) in u.iter().enumerate() {
        let coeff = alpha * ur;
        if coeff != 0.0 {
            axpy(coeff, v, w.row_mut(r));
        }
    }
}

/// Minimum number of output elements before `gemm` fans out to rayon.
/// Below this the spawn/steal overhead dominates.
const GEMM_PAR_THRESHOLD: usize = 64 * 64;

/// `C = A B` (GEMM), blocked over K and parallelised over row panels of C.
///
/// Shapes: `A: m×k`, `B: k×n`, `C: m×n`. The kernel iterates `k` in the
/// outer position and accumulates AXPYs into each output row, which walks
/// both `B` and `C` row-major — cache-friendly without an explicit pack.
///
/// ```
/// use fedbiad_tensor::ops::gemm;
/// use fedbiad_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let mut c = Matrix::zeros(2, 2);
/// gemm(&a, &b, &mut c);
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dims differ");
    assert_eq!(a.rows(), c.rows(), "gemm: C rows");
    assert_eq!(b.cols(), c.cols(), "gemm: C cols");
    let n = b.cols();

    let row_kernel = |(r, crow): (usize, &mut [f32])| {
        crow.fill(0.0);
        let arow = a.row(r);
        for (p, &apv) in arow.iter().enumerate() {
            if apv != 0.0 {
                axpy(apv, b.row(p), crow);
            }
        }
    };

    if c.len() >= GEMM_PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_exact_mut(n)
            .enumerate()
            .for_each(row_kernel);
    } else {
        c.as_mut_slice()
            .chunks_exact_mut(n)
            .enumerate()
            .for_each(row_kernel);
    }
}

/// Clip `g` so its global L2 norm is at most `max_norm`; returns the scale
/// that was applied (1.0 when no clipping happened).
///
/// This is the "SGD with the clipped gradient norm" the paper uses for the
/// LSTM language models (§V-A).
pub fn clip_norm(g: &mut [f32], max_norm: f32) -> f32 {
    let norm = norm_sq(g).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for v in g.iter_mut() {
            *v *= scale;
        }
        scale
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f32> = (0..13).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..13).map(|i| (i * 2) as f32).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-3);
    }

    #[test]
    fn gemv_with_and_without_bias() {
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [1.0, 1.0];
        let mut y = [0.0; 2];
        gemv(&w, &x, &[], &mut y);
        assert_eq!(y, [3.0, 7.0]);
        gemv(&w, &x, &[10.0, 20.0], &mut y);
        assert_eq!(y, [13.0, 27.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv_t(&w, &x, &mut y);
        let wt = w.transpose();
        let mut y2 = [0.0; 3];
        gemv(&wt, &x, &[], &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn ger_accumulates_outer_product() {
        let mut w = Matrix::zeros(2, 3);
        ger(&mut w, 2.0, &[1.0, 3.0], &[1.0, 0.0, -1.0]);
        assert_eq!(w.row(0), &[2.0, 0.0, -2.0]);
        assert_eq!(w.row(1), &[6.0, 0.0, -6.0]);
    }

    #[test]
    fn gemm_small_matches_naive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        let mut c = Matrix::zeros(3, 3);
        gemm(&a, &b, &mut c);
        assert_eq!(c, naive_gemm(&a, &b));
    }

    #[test]
    fn gemm_large_parallel_matches_naive() {
        // Cross the parallel threshold to exercise the rayon path.
        let n = 80;
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, ((i * 7 + j * 3) % 11) as f32 - 5.0);
                b.set(i, j, ((i * 5 + j * 2) % 13) as f32 - 6.0);
            }
        }
        let mut c = Matrix::zeros(n, n);
        gemm(&a, &b, &mut c);
        let want = naive_gemm(&a, &b);
        for (x, y) in c.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn clip_norm_scales_only_when_needed() {
        let mut g = [3.0, 4.0];
        let s = clip_norm(&mut g, 10.0);
        assert_eq!(s, 1.0);
        assert_eq!(g, [3.0, 4.0]);
        let s = clip_norm(&mut g, 1.0);
        assert!((s - 0.2).abs() < 1e-6);
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_handles_zero_gradient() {
        let mut g = [0.0, 0.0];
        assert_eq!(clip_norm(&mut g, 1.0), 1.0);
        assert_eq!(g, [0.0, 0.0]);
    }
}
