//! Reusable scratch-buffer arena for the batched execution engine.
//!
//! Every batched forward/backward pass needs a handful of activation,
//! gate and delta buffers whose shapes repeat exactly from one local
//! iteration to the next. A [`Workspace`] owns those buffers between
//! iterations: kernels *check out* zero-filled storage with
//! [`Workspace::take`]/[`Workspace::take_matrix`] and return it with the
//! matching `give` call, so the steady-state round loop performs **no
//! data-sized allocations** — after the first (warm-up) iteration every
//! checkout is served from the pool. [`Workspace::churn`] counts the
//! checkouts that had to allocate or grow, which is what the arena's
//! regression tests pin to zero after warm-up.
//!
//! The arena is deliberately *not* thread-safe: each client's local run
//! owns one `Workspace` (the per-client arena), mirroring how the round
//! loop hands each rayon worker disjoint client state.

use crate::matrix::Matrix;

/// A pool of reusable `f32`/`usize` buffers (and `Vec<Matrix>` shells).
#[derive(Debug, Default)]
pub struct Workspace {
    f32_pool: Vec<Vec<f32>>,
    usize_pool: Vec<Vec<usize>>,
    shells: Vec<Vec<Matrix>>,
    churn: u64,
}

/// Best-fit checkout from `pool`: the smallest buffer whose capacity
/// already covers `len`, so big buffers are not wasted on small asks.
fn take_from<T: Clone>(pool: &mut Vec<Vec<T>>, len: usize, fill: T, churn: &mut u64) -> Vec<T> {
    let mut best: Option<(usize, usize)> = None;
    for (i, b) in pool.iter().enumerate() {
        let cap = b.capacity();
        if cap >= len && best.is_none_or(|(_, c)| cap < c) {
            best = Some((i, cap));
        }
    }
    match best {
        Some((i, _)) => {
            let mut v = pool.swap_remove(i);
            v.clear();
            v.resize(len, fill);
            v
        }
        None => {
            *churn += 1;
            vec![fill; len]
        }
    }
}

impl Workspace {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a zero-filled `f32` buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        take_from(&mut self.f32_pool, len, 0.0, &mut self.churn)
    }

    /// Return a buffer checked out with [`Workspace::take`].
    pub fn give(&mut self, buf: Vec<f32>) {
        self.f32_pool.push(buf);
    }

    /// Check out a zero-filled `rows × cols` matrix.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Return a matrix checked out with [`Workspace::take_matrix`].
    pub fn give_matrix(&mut self, m: Matrix) {
        self.give(m.into_vec());
    }

    /// Check out a zero-filled `usize` buffer (argmax indices, row orders).
    pub fn take_usize(&mut self, len: usize) -> Vec<usize> {
        take_from(&mut self.usize_pool, len, 0, &mut self.churn)
    }

    /// Return a buffer checked out with [`Workspace::take_usize`].
    pub fn give_usize(&mut self, buf: Vec<usize>) {
        self.usize_pool.push(buf);
    }

    /// Check out an empty `Vec<Matrix>` shell (per-layer buffer lists).
    /// The shell's own heap block is recycled, so growing it to a
    /// previously seen layer count allocates nothing.
    pub fn take_shell(&mut self) -> Vec<Matrix> {
        match self.shells.pop() {
            Some(mut s) => {
                debug_assert!(s.is_empty());
                s.clear();
                s
            }
            None => {
                self.churn += 1;
                Vec::new()
            }
        }
    }

    /// Return a shell: its matrices drain back into the `f32` pool and
    /// the emptied `Vec` is kept for the next [`Workspace::take_shell`].
    pub fn give_shell(&mut self, mut shell: Vec<Matrix>) {
        for m in shell.drain(..) {
            self.give_matrix(m);
        }
        self.shells.push(shell);
    }

    /// Number of checkouts that could not be served from the pool and had
    /// to allocate. Constant across iterations ⇒ the steady-state loop is
    /// allocation-free.
    pub fn churn(&self) -> u64 {
        self.churn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_and_sized() {
        let mut ws = Workspace::new();
        let mut b = ws.take(5);
        assert_eq!(b, vec![0.0; 5]);
        b[0] = 7.0;
        ws.give(b);
        // Recycled storage comes back zeroed.
        let b = ws.take(3);
        assert_eq!(b, vec![0.0; 3]);
    }

    #[test]
    fn steady_state_has_zero_churn() {
        let mut ws = Workspace::new();
        // Warm-up iteration: three shapes, interleaved with a matrix.
        let iteration = |ws: &mut Workspace| {
            let a = ws.take(128);
            let m = ws.take_matrix(8, 16);
            let b = ws.take(32);
            let idx = ws.take_usize(8);
            ws.give(a);
            ws.give_matrix(m);
            ws.give(b);
            ws.give_usize(idx);
        };
        iteration(&mut ws);
        let warm = ws.churn();
        for _ in 0..10 {
            iteration(&mut ws);
        }
        assert_eq!(ws.churn(), warm, "steady-state checkouts must not allocate");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(4);
        let large = ws.take(1024);
        ws.give(large);
        ws.give(small);
        let churn = ws.churn();
        // A 4-element ask must reuse the 4-capacity buffer, leaving the
        // 1024-capacity one for the next large ask.
        let b = ws.take(4);
        assert!(b.capacity() < 1024);
        let big = ws.take(1024);
        assert_eq!(big.len(), 1024);
        assert_eq!(ws.churn(), churn, "both asks served from the pool");
    }

    #[test]
    fn shells_recycle_matrices() {
        let mut ws = Workspace::new();
        let mut shell = ws.take_shell();
        shell.push(ws.take_matrix(4, 4));
        shell.push(ws.take_matrix(2, 8));
        ws.give_shell(shell);
        let warm = ws.churn();
        let mut shell = ws.take_shell();
        shell.push(ws.take_matrix(4, 4));
        shell.push(ws.take_matrix(2, 8));
        ws.give_shell(shell);
        assert_eq!(ws.churn(), warm);
    }
}
