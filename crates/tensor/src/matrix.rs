//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the single parameter container used throughout the
//! reproduction: model weights, gradients and server-side aggregates are all
//! `Matrix` values. Row orientation matters here — FedBIAD's dropping
//! pattern β acts on *rows* of weight matrices (paper §III-C), so the row
//! accessors ([`Matrix::row`], [`Matrix::row_mut`]) are the primitives the
//! algorithm layer builds on.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a zero-filled `rows × cols` matrix.
    ///
    /// `vec![0.0; n]` is the fastest way to obtain zeroed storage (the
    /// allocator can hand back pre-zeroed pages).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build a matrix from an existing buffer. Panics if the buffer length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Build from a row-major nested slice; handy in tests.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline(always)]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor. Debug-asserted bounds; hot code should prefer
    /// [`Matrix::row`] + slice iteration.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable row slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols;
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutable row slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Two disjoint mutable rows (used by in-place row swaps/updates).
    /// Panics if `a == b`.
    pub fn rows_mut2(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "rows must be distinct");
        let c = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi * c);
        let lo_row = &mut first[lo * c..(lo + 1) * c];
        let hi_row = &mut second[..c];
        if a < b {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Zero the matrix in place (gradient reset between iterations —
    /// reuses the allocation, per the "reusing collections" guidance).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Zero a single row in place (row dropout).
    #[inline]
    pub fn zero_row(&mut self, r: usize) {
        self.row_mut(r).fill(0.0);
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other` element-wise. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` element-wise (AXPY on the whole buffer).
    pub fn axpy_assign(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        crate::ops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Scale every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let src = self.row(r);
            for (c, &v) in src.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_and_axpy() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 3.0);
        a.axpy_assign(0.5, &b);
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn zero_row_clears_only_that_row() {
        let mut m = Matrix::full(3, 2, 7.0);
        m.zero_row(1);
        assert_eq!(m.row(0), &[7.0, 7.0]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert_eq!(m.row(2), &[7.0, 7.0]);
    }

    #[test]
    fn rows_mut2_returns_disjoint_rows_in_order() {
        let mut m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        {
            let (a, b) = m.rows_mut2(2, 0);
            a[0] = 30.0;
            b[0] = 10.0;
        }
        assert_eq!(m.row(0), &[10.0]);
        assert_eq!(m.row(2), &[30.0]);
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
