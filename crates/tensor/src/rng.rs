//! Deterministic RNG streams.
//!
//! Every stochastic component of the reproduction — data synthesis,
//! partitioning, client sampling, dropping-pattern sampling, spike-and-slab
//! reparameterisation noise — derives its own [`StdRng`] from a
//! `(seed, tag, round, client)` tuple via [`stream`]. Two consequences:
//!
//! 1. experiments are bit-reproducible regardless of rayon scheduling,
//!    because no RNG is shared across threads, and
//! 2. changing one component's draw count cannot perturb another component
//!    (no accidental stream coupling).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Component tags for RNG stream separation. The numeric values are part of
/// the reproducibility contract — do not reorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamTag {
    /// Dataset synthesis.
    Data = 1,
    /// Partitioning data across clients.
    Partition = 2,
    /// Server-side client sampling per round.
    ClientSampling = 3,
    /// Dropping-pattern sampling (Z_S^N draws).
    Pattern = 4,
    /// Spike-and-slab reparameterisation noise θ = U + s̃·ε.
    PosteriorNoise = 5,
    /// Model weight initialisation.
    Init = 6,
    /// Mini-batch shuffling during local training.
    Batch = 7,
    /// Baseline-specific randomness (e.g. FedDrop unit choice).
    Baseline = 8,
    /// Compressor-internal randomness (e.g. DGC threshold sampling).
    Compress = 9,
    /// Static per-client heterogeneity sampling in the discrete-event
    /// simulator (compute-speed multiplier, link class).
    SimProfile = 10,
    /// Server-policy-internal randomness in the simulator (e.g. FedBuff
    /// replacement-client sampling).
    SimPolicy = 11,
    /// Per-dispatch compute-time jitter in the simulator.
    SimJitter = 12,
    /// Per-run seed derivation in the declarative scenario engine
    /// (`fedbiad-scenario`): `round` carries the run index, `client` the
    /// replicate index.
    Scenario = 13,
    /// Static byzantine-membership draw (`round` is always 0 — adversaries
    /// do not rotate between rounds).
    Adversary = 14,
    /// Per-`(round, client)` churn draws: offline first, mid-round dropout
    /// second, in that fixed order.
    Churn = 15,
}

/// SplitMix64 finaliser: scrambles a 64-bit state into a well-mixed output.
/// Used to turn structured `(seed, tag, round, client)` tuples into
/// independent-looking seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent RNG stream for `(seed, tag, round, client)`.
///
/// `round`/`client` may be 0 for components that are not per-round or
/// per-client.
///
/// ```
/// use fedbiad_tensor::rng::{stream, StreamTag};
/// use rand::Rng;
///
/// // Same tuple ⇒ same stream (bit-reproducible anywhere)…
/// let a: u64 = stream(42, StreamTag::Pattern, 3, 7).gen();
/// assert_eq!(a, stream(42, StreamTag::Pattern, 3, 7).gen());
/// // …different component ⇒ decoupled stream.
/// let b: u64 = stream(42, StreamTag::Batch, 3, 7).gen();
/// assert_ne!(a, b);
/// ```
pub fn stream(seed: u64, tag: StreamTag, round: u64, client: u64) -> StdRng {
    let mut s = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    s = splitmix64(s ^ (tag as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
    s = splitmix64(s ^ round.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    s = splitmix64(s ^ client.wrapping_mul(0x5899_65CC_7537_4CC3));
    StdRng::seed_from_u64(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_tuple_same_stream() {
        let mut a = stream(42, StreamTag::Pattern, 3, 7);
        let mut b = stream(42, StreamTag::Pattern, 3, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_components_decouple() {
        let mut a = stream(42, StreamTag::Pattern, 3, 7);
        let mut b = stream(42, StreamTag::PosteriorNoise, 3, 7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_clients_decouple() {
        let mut a = stream(42, StreamTag::Batch, 1, 0);
        let mut b = stream(42, StreamTag::Batch, 1, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // One-bit input changes should flip roughly half the output bits.
        let x = splitmix64(0);
        let y = splitmix64(1);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped}");
    }
}
