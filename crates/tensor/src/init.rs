//! Deterministic weight initialisers.

use crate::matrix::Matrix;
use rand::Rng;

/// Uniform(-limit, limit) fill.
pub fn uniform(m: &mut Matrix, limit: f32, rng: &mut impl Rng) {
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-limit..limit);
    }
}

/// Xavier/Glorot-uniform: limit = sqrt(6 / (fan_in + fan_out)).
///
/// `fan_in`/`fan_out` are passed explicitly because for bundled-bias rows
/// (see `fedbiad-nn::params`) the matrix shape is not the layer fan.
pub fn xavier(m: &mut Matrix, fan_in: usize, fan_out: usize, rng: &mut impl Rng) {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(m, limit, rng);
}

/// Standard normal fill scaled by `std`.
pub fn normal(m: &mut Matrix, std: f32, rng: &mut impl Rng) {
    for v in m.as_mut_slice() {
        *v = std * gaussian(rng);
    }
}

/// One standard-normal sample via Box–Muller (avoids a rand_distr
/// dependency; two uniforms per sample, second discarded for simplicity).
#[inline]
pub fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 > f32::MIN_POSITIVE {
            let u2: f32 = rng.gen::<f32>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamTag};

    #[test]
    fn xavier_respects_limit() {
        let mut m = Matrix::zeros(64, 32);
        let mut rng = stream(1, StreamTag::Init, 0, 0);
        xavier(&mut m, 32, 64, &mut rng);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(m.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = stream(7, StreamTag::Init, 0, 0);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!(m.abs() < 0.05, "mean {m}");
        assert!((v - 1.0).abs() < 0.1, "var {v}");
    }

    #[test]
    fn init_is_deterministic_per_stream() {
        let mut a = Matrix::zeros(4, 4);
        let mut b = Matrix::zeros(4, 4);
        normal(&mut a, 0.1, &mut stream(9, StreamTag::Init, 0, 3));
        normal(&mut b, 0.1, &mut stream(9, StreamTag::Init, 0, 3));
        assert_eq!(a, b);
    }
}
