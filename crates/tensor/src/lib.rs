//! # fedbiad-tensor
//!
//! Dense `f32` linear-algebra substrate for the FedBIAD reproduction.
//!
//! This crate deliberately implements only what the federated-learning stack
//! above it needs — row-major matrices, matrix–vector and matrix–matrix
//! products, element-wise kernels, reductions, quantiles and deterministic
//! random initialisation — but implements those pieces carefully:
//!
//! * hot loops are written over slices so the compiler can elide bounds
//!   checks (see the Rust Performance Book guidance on bounds checks),
//! * [`ops::gemm`] is blocked and parallelised with rayon,
//! * all randomness flows through [`rng::stream`] so every experiment is
//!   bit-reproducible regardless of thread scheduling.
//!
//! The crate has no opinion about neural networks; that lives in
//! `fedbiad-nn`.

#![warn(missing_docs)]

pub mod init;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;
pub mod workspace;

pub use matrix::Matrix;
pub use workspace::Workspace;
