//! Quick manual timing probe for the batched kernels (dev aid).
use fedbiad_tensor::ops;
use fedbiad_tensor::Matrix;
use std::time::Instant;

fn main() {
    const K: usize = 784;
    const N: usize = 128;
    const M: usize = 32;
    let mut w = Matrix::zeros(N, K);
    for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
        *v = (i % 17) as f32 * 0.1;
    }
    let x: Vec<f32> = (0..M * K).map(|i| (i % 13) as f32 * 0.1).collect();
    let mut c = vec![0.0f32; M * N];
    let reps = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        for i in 0..M {
            ops::gemv(&w, &x[i * K..(i + 1) * K], &[], &mut c[i * N..(i + 1) * N]);
        }
    }
    println!(
        "gemv loop: {:.2} GMAC/s",
        reps as f64 * (M * N * K) as f64 / t0.elapsed().as_secs_f64() / 1e9
    );
    let t0 = Instant::now();
    for _ in 0..reps {
        ops::gemm_nt(&x, &w, M, &mut c);
    }
    println!(
        "gemm_nt:   {:.2} GMAC/s",
        reps as f64 * (M * N * K) as f64 / t0.elapsed().as_secs_f64() / 1e9
    );
    let t0 = Instant::now();
    for _ in 0..reps {
        for i in 0..M {
            let xs = &x[i * K..(i + 1) * K];
            for j in 0..N {
                c[i * N + j] = ops::dot(xs, w.row(j));
            }
        }
    }
    println!(
        "dot loop:  {:.2} GMAC/s",
        reps as f64 * (M * N * K) as f64 / t0.elapsed().as_secs_f64() / 1e9
    );
    println!("{}", c.iter().sum::<f32>());
}
