//! Client heterogeneity: per-client compute speed and link profiles.
//!
//! Each simulated client is an actor with its own compute-speed
//! multiplier and its own uplink/downlink profile, sampled once per
//! experiment from a [`HeterogeneityProfile`] via the dedicated
//! `StreamTag::SimProfile` RNG stream — so heterogeneity is reproducible
//! and decoupled from every other random component.

use fedbiad_fl::NetworkModel;
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A wireless link class with representative OpenSignal-style numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    /// The paper's T-Mobile 5G profile (14.0 up / 110.6 down) + 20 ms RTT.
    FiveG,
    /// A mid-band LTE profile: 10 up / 40 down, 50 ms RTT.
    Lte,
    /// Home Wi-Fi: 40 up / 90 down, 10 ms RTT.
    WiFi,
}

impl LinkClass {
    /// The link model for this class.
    pub fn network(self) -> NetworkModel {
        match self {
            LinkClass::FiveG => NetworkModel::t_mobile_5g().with_rtt(0.02),
            LinkClass::Lte => NetworkModel {
                uplink_mbps: 10.0,
                downlink_mbps: 40.0,
                rtt_seconds: 0.05,
            },
            LinkClass::WiFi => NetworkModel {
                uplink_mbps: 40.0,
                downlink_mbps: 90.0,
                rtt_seconds: 0.01,
            },
        }
    }
}

/// One client actor's static characteristics.
#[derive(Clone, Copy, Debug)]
pub struct ClientProfile {
    /// Local-compute slowdown relative to a nominal device (1.0 =
    /// nominal, 10.0 = ten times slower).
    pub compute_multiplier: f64,
    /// The client's own link.
    pub net: NetworkModel,
}

/// How a cohort's per-client profiles are generated.
#[derive(Clone, Copy, Debug)]
pub enum HeterogeneityProfile {
    /// Identical clients on one link, zero compute jitter — the reference
    /// configuration under which the simulator reproduces the lock-step
    /// runner bit-for-bit.
    Homogeneous {
        /// The link every client uses.
        net: NetworkModel,
    },
    /// A mixed mobile cohort: links sampled 40 % 5G / 35 % LTE / 25 %
    /// Wi-Fi, compute multiplier log-uniform in `[1, compute_spread]`.
    MixedMobile {
        /// Upper bound of the log-uniform compute-multiplier draw.
        compute_spread: f64,
        /// Relative per-dispatch compute jitter (0.1 = ±10 %).
        jitter: f64,
    },
    /// A mostly-nominal 5G cohort in which a fixed fraction of clients is
    /// `slowdown`× slower — the classic straggler scenario.
    Stragglers {
        /// Probability that a client is a straggler.
        fraction: f64,
        /// Compute multiplier of a straggler.
        slowdown: f64,
        /// Relative per-dispatch compute jitter.
        jitter: f64,
    },
}

impl HeterogeneityProfile {
    /// The homogeneous reference on the paper's 5G link (zero RTT).
    pub fn homogeneous_5g() -> Self {
        HeterogeneityProfile::Homogeneous {
            net: NetworkModel::t_mobile_5g(),
        }
    }

    /// Short name for tables and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            HeterogeneityProfile::Homogeneous { .. } => "homogeneous",
            HeterogeneityProfile::MixedMobile { .. } => "mixed-mobile",
            HeterogeneityProfile::Stragglers { .. } => "stragglers",
        }
    }

    /// Relative per-dispatch compute jitter.
    pub fn jitter(&self) -> f64 {
        match self {
            HeterogeneityProfile::Homogeneous { .. } => 0.0,
            HeterogeneityProfile::MixedMobile { jitter, .. } => *jitter,
            HeterogeneityProfile::Stragglers { jitter, .. } => *jitter,
        }
    }

    /// One client's static profile, derived on demand (deterministic in
    /// `(seed, client)` — each client owns its own
    /// `StreamTag::SimProfile` stream, so materialising client 10⁶ − 1
    /// never touches the other 10⁶ − 1 profiles). This is the simulator's
    /// O(cohort)-memory entry point; [`HeterogeneityProfile::sample`] is a
    /// thin eager wrapper over it.
    pub fn profile_for(&self, seed: u64, client: usize) -> ClientProfile {
        let mut rng = stream(seed, StreamTag::SimProfile, 0, client as u64);
        match *self {
            HeterogeneityProfile::Homogeneous { net } => ClientProfile {
                compute_multiplier: 1.0,
                net,
            },
            HeterogeneityProfile::MixedMobile { compute_spread, .. } => {
                let u: f64 = rng.gen();
                let link = if u < 0.40 {
                    LinkClass::FiveG
                } else if u < 0.75 {
                    LinkClass::Lte
                } else {
                    LinkClass::WiFi
                };
                let v: f64 = rng.gen();
                let mult = (v * compute_spread.max(1.0).ln()).exp();
                ClientProfile {
                    compute_multiplier: mult,
                    net: link.network(),
                }
            }
            HeterogeneityProfile::Stragglers {
                fraction, slowdown, ..
            } => {
                let u: f64 = rng.gen();
                ClientProfile {
                    compute_multiplier: if u < fraction { slowdown } else { 1.0 },
                    net: LinkClass::FiveG.network(),
                }
            }
        }
    }

    /// Sample the whole population's static profiles eagerly
    /// (deterministic in `seed`; element `c` is exactly
    /// [`HeterogeneityProfile::profile_for`]`(seed, c)`). Fine for tests
    /// and small cohorts; at million-client scale use `profile_for`
    /// directly.
    pub fn sample(&self, seed: u64, num_clients: usize) -> Vec<ClientProfile> {
        (0..num_clients)
            .map(|c| self.profile_for(seed, c))
            .collect()
    }
}

/// Virtual-time cost model for client compute and server aggregation.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Virtual seconds a *nominal* client spends per model weight per
    /// local iteration. Default 1 µs — a few ms per smoke-scale round, so
    /// compute and transmission are the same order of magnitude, as on
    /// real handsets.
    pub seconds_per_weight_iter: f64,
    /// Virtual seconds per server aggregation (default 0: aggregation is
    /// off the critical path for the cohort sizes simulated here).
    pub agg_seconds: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            seconds_per_weight_iter: 1e-6,
            agg_seconds: 0.0,
        }
    }
}

impl CostModel {
    /// Virtual local-training seconds for one dispatch.
    pub fn local_seconds(
        &self,
        total_weights: usize,
        local_iters: usize,
        compute_multiplier: f64,
    ) -> f64 {
        self.seconds_per_weight_iter
            * (total_weights as f64)
            * (local_iters.max(1) as f64)
            * compute_multiplier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_per_client() {
        let p = HeterogeneityProfile::Stragglers {
            fraction: 0.3,
            slowdown: 10.0,
            jitter: 0.1,
        };
        let a = p.sample(7, 64);
        let b = p.sample(7, 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.compute_multiplier, y.compute_multiplier);
        }
        let n_slow = a.iter().filter(|c| c.compute_multiplier > 1.0).count();
        assert!(n_slow > 5 && n_slow < 40, "{n_slow} stragglers of 64");
    }

    #[test]
    fn sample_is_elementwise_profile_for() {
        // The eager wrapper and the on-demand accessor must stay
        // bit-identical per element — `sample` is documented as a thin
        // wrapper, and the simulator's lazy path depends on it.
        for p in [
            HeterogeneityProfile::homogeneous_5g(),
            HeterogeneityProfile::MixedMobile {
                compute_spread: 8.0,
                jitter: 0.1,
            },
            HeterogeneityProfile::Stragglers {
                fraction: 0.3,
                slowdown: 10.0,
                jitter: 0.1,
            },
        ] {
            let eager = p.sample(13, 97);
            for (c, e) in eager.iter().enumerate() {
                let lazy = p.profile_for(13, c);
                assert_eq!(
                    e.compute_multiplier.to_bits(),
                    lazy.compute_multiplier.to_bits(),
                    "{} client {c}",
                    p.name()
                );
                assert_eq!(e.net.uplink_mbps.to_bits(), lazy.net.uplink_mbps.to_bits());
                assert_eq!(
                    e.net.downlink_mbps.to_bits(),
                    lazy.net.downlink_mbps.to_bits()
                );
                assert_eq!(e.net.rtt_seconds.to_bits(), lazy.net.rtt_seconds.to_bits());
            }
        }
    }

    #[test]
    fn homogeneous_is_uniform() {
        let p = HeterogeneityProfile::homogeneous_5g();
        let cohort = p.sample(3, 16);
        assert!(cohort.iter().all(|c| c.compute_multiplier == 1.0));
        assert_eq!(p.jitter(), 0.0);
    }

    #[test]
    fn mixed_mobile_spreads_compute_and_links() {
        let p = HeterogeneityProfile::MixedMobile {
            compute_spread: 8.0,
            jitter: 0.1,
        };
        let cohort = p.sample(11, 128);
        let mults: Vec<f64> = cohort.iter().map(|c| c.compute_multiplier).collect();
        assert!(mults.iter().cloned().fold(f64::MIN, f64::max) > 2.0);
        assert!(mults.iter().all(|&m| (1.0..=8.0).contains(&m)));
        let uplinks: std::collections::BTreeSet<u64> =
            cohort.iter().map(|c| c.net.uplink_mbps.to_bits()).collect();
        assert!(uplinks.len() >= 2, "expected a link mix");
    }

    #[test]
    fn cost_model_scales_linearly() {
        let c = CostModel::default();
        let base = c.local_seconds(1000, 10, 1.0);
        assert!((c.local_seconds(1000, 10, 10.0) - 10.0 * base).abs() < 1e-12);
        assert!((c.local_seconds(2000, 10, 1.0) - 2.0 * base).abs() < 1e-15);
    }
}
