//! The discrete-event simulator: a virtual clock driving client actors
//! and a pluggable [`ServerPolicy`].
//!
//! ## How a dispatch becomes an arrival
//!
//! When the policy dispatches a set of clients, the simulator runs their
//! *real* local updates immediately (in parallel, through the same
//! [`fedbiad_fl::round`] ingredients as the lock-step runner — this is
//! what makes results exact rather than modelled) and schedules one
//! arrival event per client at
//!
//! ```text
//! now + download(global)/downlink + RTT          (broadcast)
//!     + compute · multiplier · jitter            (local training)
//!     + upload(wire_bytes)/uplink + RTT          (upload)
//! ```
//!
//! using that client's own link and compute profile. Aggregation
//! semantics, evaluation, and round records are shared with the legacy
//! runner, so the synchronous-barrier policy on a homogeneous cohort
//! reproduces `Experiment::run` bit-for-bit (`tests/sim_equivalence.rs`).
//!
//! ## Determinism
//!
//! Every event time is derived from seed-indexed RNG streams and fixed
//! f64 arithmetic; the event queue breaks ties FIFO; aggregation inputs
//! are sorted by client id. The full event trace is therefore
//! bit-identical across thread counts (`tests/thread_determinism.rs`).

use crate::event::{EventQueue, TraceEvent, TraceKind};
use crate::policy::{Action, PolicyEvent, ServerPolicy, ServerView};
use crate::profile::{CostModel, HeterogeneityProfile};
use fedbiad_data::FedDataset;
use fedbiad_fl::adversary::{churn_fate, corrupt_upload, is_adversary, ChurnFate};
use fedbiad_fl::aggregate::{merge_staleness_weighted, upload_has_non_finite, StalenessUpload};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo};
use fedbiad_fl::metrics::{ExperimentLog, RoundRecord};
use fedbiad_fl::round::{
    eval_due, eval_or_carry, resolve_cohort, run_local_updates, summarize_results, ClientStates,
    CohortError,
};
use fedbiad_fl::runner::ExperimentConfig;
use fedbiad_nn::{Model, ParamSet};
use fedbiad_telemetry::{counter, gauge, span};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Simulation configuration: the experiment base plus the virtual world.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// The experiment configuration shared with the lock-step runner
    /// (`rounds` = number of aggregations to record).
    pub base: ExperimentConfig,
    /// Cohort heterogeneity.
    pub heterogeneity: HeterogeneityProfile,
    /// Virtual compute/aggregation cost model.
    pub cost: CostModel,
    /// Hard cap on processed events (guards against a policy that stops
    /// making progress).
    pub max_events: usize,
}

impl SimConfig {
    /// Config with default cost model and event cap.
    pub fn new(base: ExperimentConfig, heterogeneity: HeterogeneityProfile) -> Self {
        Self {
            base,
            heterogeneity,
            cost: CostModel::default(),
            max_events: 1_000_000,
        }
    }
}

/// What a simulation run produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// The experiment log, shaped exactly like the lock-step runner's
    /// (timing fields hold *virtual* seconds).
    pub log: ExperimentLog,
    /// Server-policy name.
    pub policy: String,
    /// Heterogeneity-profile name.
    pub profile: String,
    /// Virtual time at which each recorded round's aggregation committed.
    pub round_end_seconds: Vec<f64>,
    /// Virtual time when the simulation stopped.
    pub total_virtual_seconds: f64,
    /// The full event trace (the determinism artifact).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Virtual seconds until `target_acc` is first reached, `None` if
    /// never — the simulator's first-class TTA (no post-hoc link formula
    /// needed; the clock already saw every transmission).
    pub fn time_to_accuracy(&self, target_acc: f64) -> Option<f64> {
        self.log
            .records
            .iter()
            .zip(&self.round_end_seconds)
            .find(|(r, _)| r.test_acc >= target_acc)
            .map(|(_, t)| *t)
    }
}

/// A discrete-event federated experiment: one (model, dataset,
/// algorithm, policy) quadruple.
pub struct Simulator<'a, A: FlAlgorithm, P: ServerPolicy> {
    /// The model architecture.
    pub model: &'a dyn Model,
    /// Federated data.
    pub data: &'a FedDataset,
    /// The FL method under test.
    pub algo: A,
    /// The server policy driving dispatch/aggregation timing.
    pub policy: P,
    /// Configuration.
    pub cfg: SimConfig,
}

enum SimEvent {
    Arrival { dispatch_id: u64 },
    Timer { id: u64 },
}

/// An upload in transit: the result is computed eagerly at dispatch (the
/// data it depends on is frozen then); the event queue only delays its
/// *visibility* to the server.
struct InFlightEntry {
    dispatch_id: u64,
    client: usize,
    /// Global-model version the client trained from (staleness base).
    version: u64,
    result: LocalResult,
    /// The dispatched global, for delta-based staleness merging. `None`
    /// when the policy never buffers deltas (`needs_snapshots()` false).
    snapshot: Option<Arc<ParamSet>>,
    /// The upload never reaches the buffer: lost to mid-round churn, or
    /// rejected by the value-finiteness screen on receipt. Decided at
    /// dispatch (the draws are deterministic); the arrival event still
    /// fires so policies observe the client finishing.
    lost: bool,
}

struct Buffered {
    client: usize,
    version: u64,
    result: LocalResult,
    snapshot: Option<Arc<ParamSet>>,
}

struct Engine<'a, A: FlAlgorithm> {
    model: &'a dyn Model,
    data: &'a FedDataset,
    algo: A,
    cfg: SimConfig,
    cohort: usize,
    /// Whether dispatches must snapshot the global (policy merges deltas).
    snapshots_enabled: bool,
    global: ParamSet,
    states: ClientStates<A>,
    last_rctx: Option<A::RoundCtx>,
    queue: EventQueue<SimEvent>,
    now: f64,
    version: u64,
    dispatch_seq: usize,
    next_dispatch_id: u64,
    in_flight: Vec<InFlightEntry>,
    dropped: HashMap<u64, usize>,
    buffer: Vec<Buffered>,
    records: Vec<RoundRecord>,
    round_end_seconds: Vec<f64>,
    trace: Vec<TraceEvent>,
}

impl<'a, A: FlAlgorithm, P: ServerPolicy> Simulator<'a, A, P> {
    /// Construct a simulator.
    pub fn new(
        model: &'a dyn Model,
        data: &'a FedDataset,
        algo: A,
        policy: P,
        cfg: SimConfig,
    ) -> Self {
        Self {
            model,
            data,
            algo,
            policy,
            cfg,
        }
    }

    /// Run until `cfg.base.rounds` rounds are recorded (or the event
    /// queue drains) and return the report. Panics on a degenerate cohort
    /// configuration; use [`Simulator::try_run`] for the structured error.
    pub fn run(self) -> SimReport {
        self.try_run().expect("cohort configuration invalid")
    }

    /// [`Simulator::run`] with structured cohort errors instead of
    /// panics — a million-client scenario would rather learn `cohort 0`
    /// at startup than deep inside the event loop.
    pub fn try_run(self) -> Result<SimReport, CohortError> {
        let k = self.data.num_clients();
        let cohort = resolve_cohort(k, self.cfg.base.client_fraction, self.cfg.base.cohort)?;
        let seed = self.cfg.base.seed;

        // Same initialisation stream as the lock-step runner.
        let mut init_rng = stream(seed, StreamTag::Init, 0, 0);
        let global = self.model.init_params(&mut init_rng);

        let mut engine = Engine {
            model: self.model,
            data: self.data,
            algo: self.algo,
            cohort,
            snapshots_enabled: self.policy.needs_snapshots(),
            cfg: self.cfg,
            global,
            states: ClientStates::new(),
            last_rctx: None,
            queue: EventQueue::new(),
            now: 0.0,
            version: 0,
            dispatch_seq: 0,
            next_dispatch_id: 0,
            in_flight: Vec::new(),
            dropped: HashMap::new(),
            buffer: Vec::new(),
            records: Vec::new(),
            round_end_seconds: Vec::new(),
            trace: Vec::new(),
        };
        let mut policy = self.policy;

        engine.drive(&mut policy, PolicyEvent::Start);

        let mut processed = 0usize;
        while engine.records.len() < engine.cfg.base.rounds {
            let Some(ev) = engine.queue.pop() else {
                // Queue drained with rounds still owed. Under an active
                // churn/adversary model that is a legitimate stall — every
                // upload of the open round was lost, so no event is left
                // for the policy to react to. Commit a defined no-op round
                // and let the policy reopen on `Recorded`. Without those
                // models, a drained queue means the policy stopped making
                // progress: preserve the historical truncated-log exit.
                let models_active =
                    engine.cfg.base.churn.is_some() || engine.cfg.base.adversary.is_some();
                if models_active && engine.in_flight.is_empty() && engine.buffer.is_empty() {
                    let round = engine.commit_round(engine.records.len(), &[]);
                    engine.drive(&mut policy, PolicyEvent::Recorded { round });
                    continue;
                }
                break;
            };
            counter!("sim.events_dequeued", 1u64);
            gauge!("sim.queue_depth", engine.queue.len());
            processed += 1;
            assert!(
                processed <= engine.cfg.max_events,
                "simulator exceeded max_events = {} (policy stopped making progress?)",
                engine.cfg.max_events
            );
            engine.now = engine.now.max(ev.time);
            match ev.payload {
                SimEvent::Arrival { dispatch_id } => {
                    if let Some(pos) = engine
                        .in_flight
                        .iter()
                        .position(|e| e.dispatch_id == dispatch_id)
                    {
                        let entry = engine.in_flight.remove(pos);
                        let client = entry.client;
                        if entry.lost {
                            // Churn ate the upload (or the screen rejected
                            // it): nothing enters the buffer, but the
                            // policy still observes the client finishing —
                            // barriers must close on lost clients too.
                            engine.push_trace(TraceKind::ChurnLost, client);
                        } else {
                            engine.push_trace(TraceKind::Arrival, client);
                            engine.buffer.push(Buffered {
                                client: entry.client,
                                version: entry.version,
                                result: entry.result,
                                snapshot: entry.snapshot,
                            });
                        }
                        engine.drive(&mut policy, PolicyEvent::Arrived { client });
                    } else if let Some(client) = engine.dropped.remove(&dispatch_id) {
                        // The round this upload belonged to was closed by
                        // a deadline; the server ignores it.
                        engine.push_trace(TraceKind::LateArrival, client);
                    } else {
                        unreachable!("arrival for unknown dispatch {dispatch_id}");
                    }
                }
                SimEvent::Timer { id } => {
                    engine.push_trace(TraceKind::Timer, usize::MAX);
                    engine.drive(&mut policy, PolicyEvent::Timer { id });
                }
            }
        }

        Ok(SimReport {
            log: ExperimentLog {
                dataset: engine.data.name.clone(),
                method: engine.algo.name(),
                seed,
                records: engine.records,
            },
            policy: policy.name(),
            profile: engine.cfg.heterogeneity.name().to_string(),
            round_end_seconds: engine.round_end_seconds,
            total_virtual_seconds: engine.now,
            trace: engine.trace,
        })
    }
}

impl<'a, A: FlAlgorithm> Engine<'a, A> {
    fn push_trace(&mut self, kind: TraceKind, client: usize) {
        self.trace.push(TraceEvent {
            time: self.now,
            kind,
            client,
            rounds_done: self.records.len(),
        });
    }

    fn in_flight_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.in_flight.iter().map(|e| e.client).collect();
        ids.sort_unstable();
        ids
    }

    /// Clients whose dropped uploads are still on the virtual wire.
    fn transit_dropped_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.dropped.values().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Feed `first` to the policy and execute the resulting actions,
    /// including the `Recorded` follow-up events aggregations produce.
    fn drive<P: ServerPolicy>(&mut self, policy: &mut P, first: PolicyEvent) {
        let mut pending = VecDeque::new();
        pending.push_back(first);
        while let Some(ev) = pending.pop_front() {
            if self.records.len() >= self.cfg.base.rounds {
                return;
            }
            let actions = {
                let ids = self.in_flight_ids();
                let transit_dropped = self.transit_dropped_ids();
                let view = ServerView {
                    now: self.now,
                    seed: self.cfg.base.seed,
                    num_clients: self.data.num_clients(),
                    cohort: self.cohort,
                    sampler: self.cfg.base.sampler,
                    rounds_total: self.cfg.base.rounds,
                    rounds_done: self.records.len(),
                    buffered: self.buffer.len(),
                    in_flight: &ids,
                    transit_dropped: &transit_dropped,
                };
                policy.react(ev, &view)
            };
            for action in actions {
                if self.records.len() >= self.cfg.base.rounds {
                    return;
                }
                match action {
                    Action::Dispatch(ids) => {
                        if let Some(round) = self.dispatch(&ids) {
                            pending.push_back(PolicyEvent::Recorded { round });
                        }
                    }
                    Action::AggregateRound => {
                        let round = self.aggregate_round();
                        pending.push_back(PolicyEvent::Recorded { round });
                    }
                    Action::AggregateBuffered { alpha, server_lr } => {
                        let round = self.aggregate_buffered(alpha, server_lr);
                        pending.push_back(PolicyEvent::Recorded { round });
                    }
                    Action::DropInFlight => {
                        counter!("sim.clients_dropped", self.in_flight.len());
                        for e in self.in_flight.drain(..) {
                            self.dropped.insert(e.dispatch_id, e.client);
                        }
                    }
                    Action::SetTimer { delay, id } => {
                        assert!(delay >= 0.0, "negative timer delay");
                        self.queue.push(self.now + delay, SimEvent::Timer { id });
                    }
                }
            }
        }
    }

    /// Broadcast the current global to `ids`, run their local updates
    /// (in parallel), and schedule each upload's arrival on the virtual
    /// clock.
    ///
    /// Returns `Some(round)` only when an active churn model collapsed a
    /// non-empty dispatch to nothing with the server otherwise idle: the
    /// round can never close on its own, so a defined no-op round is
    /// committed on the spot and the caller must drive `Recorded`.
    fn dispatch(&mut self, ids: &[usize]) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        let seed = self.cfg.base.seed;
        let round_now = self.records.len();
        let mut ids: Vec<usize> = ids.to_vec();
        if let Some(ch) = self.cfg.base.churn {
            // Offline clients never even start: the policy's selection is
            // thinned before any work (or virtual traffic) happens.
            ids.retain(|&id| churn_fate(seed, round_now, id, ch) != ChurnFate::Offline);
        }
        if ids.is_empty() {
            if self.in_flight.is_empty() && self.buffer.is_empty() {
                return Some(self.commit_round(round_now, &[]));
            }
            return None;
        }
        let ids = &ids[..];
        debug_assert!(
            ids.iter()
                .all(|id| self.in_flight.iter().all(|e| e.client != *id)),
            "dispatching a client that is already in flight"
        );
        debug_assert!(
            ids.iter().all(|id| !self.dropped.values().any(|c| c == id)),
            "dispatching a client whose dropped upload is still in transit"
        );
        // The algorithm's RoundInfo tracks *committed* rounds, so
        // round-scheduled behavior (FedBIAD's stage boundary, data
        // growth, anything keyed on round/total_rounds) advances exactly
        // as it would in the lock-step runner, under every policy. An
        // async policy may dispatch the same client more than once
        // within one committed round; such a client reuses its per-round
        // RNG streams for that round (its batches repeat until the next
        // aggregation commits) — the schedule fidelity matters more.
        let info = RoundInfo {
            round: self.records.len(),
            total_rounds: self.cfg.base.rounds,
            seed,
            agg: self.cfg.base.agg,
        };
        let dispatch_idx = self.dispatch_seq as u64;
        self.dispatch_seq += 1;

        let rctx = self.algo.begin_round(info, &self.global);
        let mut work = self
            .states
            .checkout(ids, &self.algo, self.model, &self.global);
        let mut results = {
            let _stage = span!("round.train", clients = ids.len());
            run_local_updates(
                &self.algo,
                self.model,
                self.data,
                &self.cfg.base.train,
                info,
                &rctx,
                &self.global,
                &mut work,
            )
        };
        self.states.restore(work);
        self.last_rctx = Some(rctx);

        if let Some(adv) = self.cfg.base.adversary {
            for (id, res) in results.iter_mut() {
                if is_adversary(seed, adv.fraction, *id) {
                    res.upload = corrupt_upload(&self.global, &res.upload, adv.mode)
                        .expect("corrupting a well-formed upload");
                }
            }
        }

        let snapshot = self
            .snapshots_enabled
            .then(|| Arc::new(self.global.clone()));
        let download_bytes = self.global.total_bytes();
        let total_weights = self.model.arch().total_weights;
        let jitter = self.cfg.heterogeneity.jitter();
        for (id, mut res) in results {
            // Profiles derive on demand from the per-client stream: the
            // engine holds no O(registered-clients) profile table.
            let prof = self.cfg.heterogeneity.profile_for(seed, id);
            let jitter_mult = if jitter > 0.0 {
                let mut jrng = stream(seed, StreamTag::SimJitter, dispatch_idx, id as u64);
                1.0 + jitter * (2.0 * jrng.gen::<f64>() - 1.0)
            } else {
                1.0
            };
            let compute = self.cfg.cost.local_seconds(
                total_weights,
                self.cfg.base.train.local_iters,
                prof.compute_multiplier,
            ) * jitter_mult;
            // Record the *virtual* local time: it is what the simulated
            // clock (and thus TTA) is made of.
            res.local_seconds = compute;
            let arrival = self.now
                + prof.net.download_message_seconds(download_bytes)
                + compute
                + prof.net.upload_message_seconds(res.upload.wire_bytes);
            // Loss is decided now (the draws are deterministic in
            // (round, client)), but takes effect only when the arrival
            // event fires — the wire still carries the bytes, the link
            // still spends the time, and the policy still sees the
            // client finish.
            let dropout = self
                .cfg
                .base
                .churn
                .is_some_and(|ch| churn_fate(seed, round_now, id, ch) == ChurnFate::Dropout);
            let screened = self.cfg.base.adversary.is_some()
                && upload_has_non_finite(&self.global, &res.upload).unwrap_or(true);
            let dispatch_id = self.next_dispatch_id;
            self.next_dispatch_id += 1;
            self.queue.push(arrival, SimEvent::Arrival { dispatch_id });
            self.in_flight.push(InFlightEntry {
                dispatch_id,
                client: id,
                version: self.version,
                result: res,
                snapshot: snapshot.clone(),
                lost: dropout || screened,
            });
            self.push_trace(TraceKind::Dispatch, id);
        }
        None
    }

    /// Drain the buffer into the algorithm's own aggregation (inputs in
    /// ascending client-id order — the lock-step runner's order), then
    /// evaluate and commit a round record. Returns the round index.
    fn aggregate_round(&mut self) -> usize {
        if self.buffer.is_empty() {
            // Every upload of the round was lost to churn or rejected by
            // the value screen: a defined no-op — the global is untouched
            // and the record notes zero contributors.
            return self.commit_round(self.records.len(), &[]);
        }
        self.buffer.sort_by_key(|b| b.client);
        let results: Vec<(usize, LocalResult)> = self
            .buffer
            .drain(..)
            .map(|b| (b.client, b.result))
            .collect();
        let round = self.records.len();
        let info = RoundInfo {
            round,
            total_rounds: self.cfg.base.rounds,
            seed: self.cfg.base.seed,
            agg: self.cfg.base.agg,
        };
        let rctx = self
            .last_rctx
            .as_ref()
            .expect("aggregate before any dispatch");
        {
            let _stage = span!("round.aggregate", clients = results.len());
            counter!("sim.merges_sync", 1u64);
            self.algo.aggregate(info, rctx, &mut self.global, &results);
        }
        self.commit_round(round, &results)
    }

    /// FedBuff merge: `global += lr · Σ wᵢΔᵢ / Σ wᵢ` with
    /// `wᵢ = |Dᵢ|/(1+τᵢ)^α`, where Δᵢ is the upload relative to the
    /// global the client was dispatched with (masked uploads contribute
    /// deltas only on their covered rows). Then evaluate and commit.
    ///
    /// The merge arithmetic itself lives in
    /// [`fedbiad_fl::aggregate::merge_staleness_weighted`], shared between
    /// the dense reference and the sharded streaming engine.
    fn aggregate_buffered(&mut self, alpha: f64, server_lr: f64) -> usize {
        if self.buffer.is_empty() {
            // Same defined no-op as `aggregate_round`: nothing survived,
            // nothing merges, the version does not advance.
            return self.commit_round(self.records.len(), &[]);
        }
        self.buffer.sort_by_key(|b| b.client);
        let drained: Vec<Buffered> = self.buffer.drain(..).collect();
        let items: Vec<StalenessUpload> = drained
            .iter()
            .map(|b| {
                let staleness = (self.version - b.version) as f64;
                StalenessUpload {
                    weight: b.result.num_samples as f64 / (1.0 + staleness).powf(alpha),
                    upload: &b.result.upload,
                    snapshot: b.snapshot.as_deref(),
                }
            })
            .collect();
        {
            let _stage = span!("round.aggregate", clients = items.len());
            counter!("sim.merges_staleness", 1u64);
            merge_staleness_weighted(&mut self.global, &items, server_lr, self.cfg.base.agg)
                .expect("buffered-async merge failed");
        }
        drop(items);
        let round = self.records.len();
        let results: Vec<(usize, LocalResult)> =
            drained.into_iter().map(|b| (b.client, b.result)).collect();
        self.commit_round(round, &results)
    }

    /// Shared bookkeeping after any aggregation: version bump, virtual
    /// aggregation cost, evaluation (or carry-forward), round record.
    fn commit_round(&mut self, round: usize, results: &[(usize, LocalResult)]) -> usize {
        // A no-op round (zero contributors) leaves the global — and hence
        // the staleness version — untouched and spends no virtual
        // aggregation time; there was nothing to merge.
        let agg_seconds = if results.is_empty() {
            0.0
        } else {
            self.version += 1;
            self.now += self.cfg.cost.agg_seconds;
            self.cfg.cost.agg_seconds
        };
        let stats = {
            let _stage = span!("round.upload");
            summarize_results(results)
        };
        let due = eval_due(round, self.cfg.base.rounds, self.cfg.base.eval_every);
        let (test_loss, test_acc) = {
            let _stage = span!("round.eval", due = due);
            eval_or_carry(
                &self.algo,
                self.model,
                &self.global,
                &self.data.test,
                self.cfg.base.eval_topk,
                self.cfg.base.eval_max_samples,
                due,
                self.records.last(),
            )
        };
        self.records.push(RoundRecord {
            round,
            train_loss: stats.train_loss,
            test_loss,
            test_acc,
            upload_bytes_mean: stats.upload_bytes_mean,
            upload_bytes_max: stats.upload_bytes_max,
            download_bytes: self.global.total_bytes(),
            local_seconds_mean: stats.local_seconds_mean,
            local_seconds_max: stats.local_seconds_max,
            // The simulator's agg_seconds is *virtual* (cost model), not
            // wall clock — see fl::timing's clock taxonomy.
            agg_seconds,
            peak_rss_bytes: fedbiad_fl::metrics::peak_rss_bytes(),
            rss_bytes: fedbiad_fl::metrics::current_rss_bytes(),
            contributors: results.len(),
        });
        self.round_end_seconds.push(self.now);
        self.push_trace(TraceKind::Aggregate, usize::MAX);
        round
    }
}
