//! The deterministic discrete-event queue: a binary heap over virtual
//! time with **stable tie-breaking**.
//!
//! Two events scheduled for the same virtual instant pop in the order
//! they were pushed (a monotone sequence number breaks the tie), so the
//! event trace is a pure function of the schedule — never of heap
//! internals or thread scheduling.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time.
#[derive(Clone, Debug)]
pub struct Scheduled<T> {
    /// Virtual time in seconds.
    pub time: f64,
    /// Push order — the tie-breaker for simultaneous events.
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equals the LOWEST sequence number (FIFO).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at virtual `time`; returns its sequence number.
    pub fn push(&mut self, time: f64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        seq
    }

    /// Pop the earliest event (FIFO among simultaneous ones).
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One line of the simulator's event trace — the reproducibility
/// artifact compared across thread counts in `tests/thread_determinism.rs`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time (seconds) at which the event was processed.
    pub time: f64,
    /// What happened.
    pub kind: TraceKind,
    /// Client id, or `usize::MAX` for server-only events.
    pub client: usize,
    /// Round records committed so far when the event fired.
    pub rounds_done: usize,
}

/// Trace event kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The server broadcast the global model to a client.
    Dispatch,
    /// A client upload arrived and was buffered.
    Arrival,
    /// A client upload arrived after its round was closed and was dropped.
    LateArrival,
    /// A client's upload was lost to mid-round churn (or rejected by the
    /// value-finiteness screen): the transmission window elapsed but
    /// nothing entered the buffer.
    ChurnLost,
    /// A policy timer fired.
    Timer,
    /// An aggregation committed a round record.
    Aggregate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_ties_and_times_are_stable() {
        let mut q = EventQueue::new();
        q.push(2.0, "t2-first");
        q.push(1.0, "t1");
        q.push(2.0, "t2-second");
        q.push(0.5, "t05");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, ["t05", "t1", "t2-first", "t2-second"]);
    }
}
