//! Pluggable server policies for the discrete-event simulator.
//!
//! A [`ServerPolicy`] is a small state machine: the simulator feeds it
//! [`PolicyEvent`]s (start, upload arrivals, timers, committed rounds)
//! and it answers with [`Action`]s (dispatch clients, aggregate, arm
//! timers, drop stragglers). Three policies ship:
//!
//! * [`SyncBarrier`] — the lock-step loop of `fedbiad_fl::runner`,
//!   expressed as a policy: dispatch ⌊κK⌋ clients, wait for *all* of
//!   them, aggregate. With homogeneous clients this reproduces the
//!   legacy runner's records bit-for-bit.
//! * [`DeadlineOverSelect`] — over-select `γ·⌊κK⌋` clients, close the
//!   round at a fixed deadline, and drop whatever is still in flight
//!   (straggler mitigation by redundancy).
//! * [`FedBuff`] — buffered asynchronous aggregation: a constant number
//!   of clients train concurrently; every `K` buffered uploads are merged
//!   as staleness-weighted deltas and the finished client is immediately
//!   re-dispatched on the *new* global.

use fedbiad_fl::round::{sample_clients_with, SamplerKind};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// What the simulator tells a policy.
#[derive(Clone, Copy, Debug)]
pub enum PolicyEvent {
    /// The simulation is starting (virtual time 0).
    Start,
    /// A dispatched client's upload arrived and was buffered. The client
    /// is no longer in flight.
    Arrived {
        /// The client whose upload arrived.
        client: usize,
    },
    /// A timer armed via [`Action::SetTimer`] fired.
    Timer {
        /// The id the policy chose when arming it.
        id: u64,
    },
    /// An aggregation committed round record `round`.
    Recorded {
        /// The 0-based index of the committed round.
        round: usize,
    },
}

/// What a policy tells the simulator to do.
#[derive(Clone, Debug)]
pub enum Action {
    /// Broadcast the current global model to these clients and start
    /// their local work. Clients must not already be in flight.
    Dispatch(Vec<usize>),
    /// Aggregate every buffered upload through the algorithm's own
    /// `aggregate` (inputs sorted by client id — the lock-step runner's
    /// order), then evaluate and commit a round record.
    AggregateRound,
    /// FedBuff merge: apply the buffered uploads as staleness-weighted
    /// deltas (`global += lr · Σ wᵢΔᵢ / Σ wᵢ` with
    /// `wᵢ = |Dᵢ|/(1+τᵢ)^alpha`), then evaluate and commit a round record.
    AggregateBuffered {
        /// Staleness exponent α.
        alpha: f64,
        /// Server learning rate η_g.
        server_lr: f64,
    },
    /// Discard every in-flight dispatch: their uploads are dropped on
    /// arrival (the clients still did the work — only the server ignores
    /// it).
    DropInFlight,
    /// Arm a timer at `now + delay`.
    SetTimer {
        /// Seconds from now.
        delay: f64,
        /// Id handed back in [`PolicyEvent::Timer`].
        id: u64,
    },
}

/// Read-only server state a policy may consult when reacting.
#[derive(Clone, Copy, Debug)]
pub struct ServerView<'a> {
    /// Current virtual time.
    pub now: f64,
    /// Experiment seed.
    pub seed: u64,
    /// Total number of clients K.
    pub num_clients: usize,
    /// The lock-step cohort size ⌊κK⌋ ∨ 1.
    pub cohort: usize,
    /// How cohorts are drawn from the population. [`SamplerKind::Shuffle`]
    /// is the legacy O(K) permutation (bit-identical to the lock-step
    /// runner); [`SamplerKind::Sparse`] draws in O(cohort) for
    /// million-client populations.
    pub sampler: SamplerKind,
    /// Rounds the experiment will record in total.
    pub rounds_total: usize,
    /// Round records committed so far.
    pub rounds_done: usize,
    /// Uploads currently buffered at the server.
    pub buffered: usize,
    /// Clients currently in flight, ascending.
    pub in_flight: &'a [usize],
    /// Clients whose *dropped* uploads are still in transit (the server
    /// already closed their round but the bytes are on the virtual
    /// wire), ascending. Re-dispatching one would model a physically
    /// impossible double transmission.
    pub transit_dropped: &'a [usize],
}

/// A server policy: decides dispatching and aggregation timing.
pub trait ServerPolicy: Send {
    /// Name for tables and JSON output.
    fn name(&self) -> String;

    /// React to `ev` given the current server state.
    fn react(&mut self, ev: PolicyEvent, view: &ServerView) -> Vec<Action>;

    /// Whether this policy issues [`Action::AggregateBuffered`] and thus
    /// needs a snapshot of the dispatched global per in-flight client
    /// (the staleness-delta base). Policies that only ever use
    /// [`Action::AggregateRound`] keep the default `false` and skip the
    /// per-dispatch model clone.
    fn needs_snapshots(&self) -> bool {
        false
    }
}

impl ServerPolicy for Box<dyn ServerPolicy> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn react(&mut self, ev: PolicyEvent, view: &ServerView) -> Vec<Action> {
        (**self).react(ev, view)
    }

    fn needs_snapshots(&self) -> bool {
        (**self).needs_snapshots()
    }
}

/// The synchronous barrier: dispatch the round's cohort, wait for every
/// upload, aggregate. The legacy runner as a policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncBarrier;

impl ServerPolicy for SyncBarrier {
    fn name(&self) -> String {
        "sync".into()
    }

    fn react(&mut self, ev: PolicyEvent, view: &ServerView) -> Vec<Action> {
        match ev {
            PolicyEvent::Start | PolicyEvent::Recorded { .. } => {
                if view.rounds_done < view.rounds_total {
                    vec![Action::Dispatch(sample_clients_with(
                        view.sampler,
                        view.seed,
                        view.rounds_done,
                        view.num_clients,
                        view.cohort,
                    ))]
                } else {
                    vec![]
                }
            }
            PolicyEvent::Arrived { .. } => {
                if view.in_flight.is_empty() && view.buffered > 0 {
                    vec![Action::AggregateRound]
                } else {
                    vec![]
                }
            }
            PolicyEvent::Timer { .. } => vec![],
        }
    }
}

/// Deadline-based over-selection: dispatch `γ·cohort` clients, close the
/// round `deadline` seconds after dispatch, drop stragglers.
#[derive(Clone, Copy, Debug)]
pub struct DeadlineOverSelect {
    /// Over-selection factor γ ≥ 1.
    pub over_select: f64,
    /// Seconds after dispatch at which the barrier closes.
    pub deadline: f64,
    /// Monotone epoch used as the timer id, so a stale timer from an
    /// already-closed round is ignored.
    epoch: u64,
}

impl DeadlineOverSelect {
    /// New policy with over-selection factor `over_select` and a fixed
    /// per-round `deadline` in virtual seconds.
    pub fn new(over_select: f64, deadline: f64) -> Self {
        assert!(over_select >= 1.0, "over_select must be ≥ 1");
        assert!(deadline > 0.0, "deadline must be positive");
        Self {
            over_select,
            deadline,
            epoch: 0,
        }
    }

    fn open_round(&mut self, view: &ServerView) -> Vec<Action> {
        if view.rounds_done >= view.rounds_total {
            return vec![];
        }
        let n =
            ((view.cohort as f64 * self.over_select).ceil() as usize).clamp(1, view.num_clients);
        self.epoch += 1;
        // A dropped straggler whose upload is still in transit sits this
        // round out — it cannot transmit two uploads at once.
        let mut ids = sample_clients_with(
            view.sampler,
            view.seed,
            view.rounds_done,
            view.num_clients,
            n,
        );
        ids.retain(|id| !view.transit_dropped.contains(id));
        vec![
            Action::Dispatch(ids),
            Action::SetTimer {
                delay: self.deadline,
                id: self.epoch,
            },
        ]
    }
}

impl ServerPolicy for DeadlineOverSelect {
    fn name(&self) -> String {
        format!("deadline(x{:.2},{:.2}s)", self.over_select, self.deadline)
    }

    fn react(&mut self, ev: PolicyEvent, view: &ServerView) -> Vec<Action> {
        match ev {
            PolicyEvent::Start | PolicyEvent::Recorded { .. } => self.open_round(view),
            PolicyEvent::Arrived { .. } => {
                if view.in_flight.is_empty() && view.buffered > 0 {
                    // Everyone made it before the deadline; the stale
                    // timer is invalidated by bumping the epoch.
                    self.epoch += 1;
                    vec![Action::AggregateRound]
                } else {
                    vec![]
                }
            }
            PolicyEvent::Timer { id } => {
                if id != self.epoch {
                    return vec![]; // stale timer of a closed round
                }
                if view.buffered > 0 {
                    self.epoch += 1;
                    vec![Action::DropInFlight, Action::AggregateRound]
                } else if !view.in_flight.is_empty() {
                    // Nothing arrived yet: extend rather than commit an
                    // empty round.
                    vec![Action::SetTimer {
                        delay: self.deadline,
                        id,
                    }]
                } else {
                    // Nothing buffered and nothing in flight: the round
                    // opened with an empty cohort (every sampled client
                    // had a dropped upload in transit). Reopen it so the
                    // simulation keeps making progress.
                    self.open_round(view)
                }
            }
        }
    }
}

/// FedBuff-style buffered asynchronous aggregation with
/// staleness-weighted merging.
pub struct FedBuff {
    /// Aggregate once this many uploads are buffered.
    pub buffer_k: usize,
    /// Number of clients kept training concurrently.
    pub concurrency: usize,
    /// Staleness exponent α of `w = |D|/(1+τ)^α`.
    pub alpha: f64,
    /// Server learning rate η_g.
    pub server_lr: f64,
    rng: Option<StdRng>,
}

impl FedBuff {
    /// New FedBuff policy. `buffer_k` uploads per merge, `concurrency`
    /// clients in flight.
    pub fn new(buffer_k: usize, concurrency: usize) -> Self {
        assert!(buffer_k > 0, "buffer_k must be positive");
        assert!(
            concurrency >= buffer_k,
            "concurrency must be ≥ buffer_k or the buffer can never fill"
        );
        Self {
            buffer_k,
            concurrency,
            alpha: 0.5,
            server_lr: 1.0,
            rng: None,
        }
    }

    /// Override the staleness exponent.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Override the server learning rate.
    pub fn with_server_lr(mut self, lr: f64) -> Self {
        self.server_lr = lr;
        self
    }

    /// Uniform draw of a client that is not currently in flight
    /// (`in_flight` is ascending). Returns `None` if every client is busy.
    fn sample_idle(&mut self, view: &ServerView) -> Option<usize> {
        let idle = view.num_clients - view.in_flight.len();
        if idle == 0 {
            return None;
        }
        let rng = self.rng.as_mut().expect("rng initialised at Start");
        if view.sampler == SamplerKind::Sparse {
            // Rejection sampling against the (sorted, cohort-sized) busy
            // set: expected O(K/idle) draws and no O(K) scan, which is
            // what keeps FedBuff usable at K = 10⁶. The draw sequence
            // differs from the legacy scan below — Sparse is a new
            // opt-in regime with no historical digests to preserve.
            loop {
                let c = rng.gen_range(0..view.num_clients);
                if view.in_flight.binary_search(&c).is_err() {
                    return Some(c);
                }
            }
        }
        let mut nth = rng.gen_range(0..idle);
        let mut busy = view.in_flight.iter().peekable();
        for id in 0..view.num_clients {
            if busy.peek() == Some(&&id) {
                busy.next();
                continue;
            }
            if nth == 0 {
                return Some(id);
            }
            nth -= 1;
        }
        unreachable!("idle count and in_flight disagree")
    }
}

impl ServerPolicy for FedBuff {
    fn name(&self) -> String {
        format!("fedbuff(k{},c{})", self.buffer_k, self.concurrency)
    }

    fn needs_snapshots(&self) -> bool {
        true
    }

    fn react(&mut self, ev: PolicyEvent, view: &ServerView) -> Vec<Action> {
        match ev {
            PolicyEvent::Start => {
                let mut rng = stream(view.seed, StreamTag::SimPolicy, 0, 0);
                let want = self.concurrency.min(view.num_clients);
                let mut ids: Vec<usize> = if view.sampler == SamplerKind::Sparse {
                    // Floyd's sampling: the initial cohort costs
                    // O(concurrency), not an O(K) shuffle.
                    let k = view.num_clients;
                    let mut set = HashSet::with_capacity(want);
                    for j in (k - want)..k {
                        let t = rng.gen_range(0..=j);
                        if !set.insert(t) {
                            set.insert(j);
                        }
                    }
                    set.into_iter().collect()
                } else {
                    let mut all: Vec<usize> = (0..view.num_clients).collect();
                    all.shuffle(&mut rng);
                    all.truncate(want);
                    all
                };
                ids.sort_unstable();
                self.rng = Some(rng);
                vec![Action::Dispatch(ids)]
            }
            PolicyEvent::Arrived { .. } => {
                let mut actions = Vec::new();
                if view.buffered >= self.buffer_k && view.rounds_done < view.rounds_total {
                    actions.push(Action::AggregateBuffered {
                        alpha: self.alpha,
                        server_lr: self.server_lr,
                    });
                }
                // Replace the finished client so the concurrency level
                // holds; the replacement trains on the post-merge global.
                if view.rounds_done < view.rounds_total {
                    if let Some(next) = self.sample_idle(view) {
                        actions.push(Action::Dispatch(vec![next]));
                    }
                }
                actions
            }
            PolicyEvent::Timer { .. } | PolicyEvent::Recorded { .. } => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(in_flight: &[usize]) -> ServerView<'_> {
        ServerView {
            now: 0.0,
            seed: 1,
            num_clients: 10,
            cohort: 3,
            sampler: SamplerKind::Shuffle,
            rounds_total: 5,
            rounds_done: 0,
            buffered: 0,
            in_flight,
            transit_dropped: &[],
        }
    }

    #[test]
    fn sync_barrier_waits_for_everyone() {
        let mut p = SyncBarrier;
        let start = p.react(PolicyEvent::Start, &view(&[]));
        assert!(matches!(&start[0], Action::Dispatch(ids) if ids.len() == 3));
        // Two still in flight: no aggregation yet.
        let mut v = view(&[4, 7]);
        v.buffered = 1;
        assert!(p.react(PolicyEvent::Arrived { client: 1 }, &v).is_empty());
        // Last one in: aggregate.
        let mut v = view(&[]);
        v.buffered = 3;
        let acts = p.react(PolicyEvent::Arrived { client: 4 }, &v);
        assert!(matches!(acts[0], Action::AggregateRound));
    }

    #[test]
    fn deadline_drops_stragglers_on_timer() {
        let mut p = DeadlineOverSelect::new(1.5, 10.0);
        let acts = p.react(PolicyEvent::Start, &view(&[]));
        // ⌈3 × 1.5⌉ = 5 clients + a timer.
        assert!(matches!(&acts[0], Action::Dispatch(ids) if ids.len() == 5));
        assert!(matches!(acts[1], Action::SetTimer { .. }));
        let Action::SetTimer { id, .. } = acts[1] else {
            unreachable!()
        };
        // Deadline fires with 3 of 5 in: drop the rest, aggregate.
        let mut v = view(&[2, 8]);
        v.buffered = 3;
        let acts = p.react(PolicyEvent::Timer { id }, &v);
        assert!(matches!(acts[0], Action::DropInFlight));
        assert!(matches!(acts[1], Action::AggregateRound));
        // The same timer again is stale now.
        assert!(p.react(PolicyEvent::Timer { id }, &v).is_empty());
    }

    #[test]
    fn fedbuff_flushes_at_k_and_redispatches() {
        let mut p = FedBuff::new(2, 4);
        let acts = p.react(PolicyEvent::Start, &view(&[]));
        let Action::Dispatch(initial) = &acts[0] else {
            panic!("expected dispatch")
        };
        assert_eq!(initial.len(), 4);
        assert!(initial.windows(2).all(|w| w[0] < w[1]));
        // One buffered (below k): only a replacement dispatch.
        let mut v = view(&[1, 2, 3]);
        v.buffered = 1;
        let acts = p.react(PolicyEvent::Arrived { client: 0 }, &v);
        assert_eq!(acts.len(), 1);
        let Action::Dispatch(repl) = &acts[0] else {
            panic!("expected replacement dispatch")
        };
        assert_eq!(repl.len(), 1);
        assert!(!v.in_flight.contains(&repl[0]), "{repl:?} is busy");
        // Buffer reaches k: merge first, then replace.
        let mut v = view(&[2, 3, 5]);
        v.buffered = 2;
        let acts = p.react(PolicyEvent::Arrived { client: 1 }, &v);
        assert!(matches!(acts[0], Action::AggregateBuffered { .. }));
        assert!(matches!(acts[1], Action::Dispatch(_)));
    }

    #[test]
    fn over_selection_beyond_population_clamps_to_k() {
        // γ·cohort above K must dispatch exactly K clients, not panic or
        // sample out of range: 3 × 4 = 12 > K = 10.
        let mut p = DeadlineOverSelect::new(4.0, 10.0);
        let acts = p.react(PolicyEvent::Start, &view(&[]));
        let Action::Dispatch(ids) = &acts[0] else {
            panic!("expected dispatch")
        };
        assert_eq!(ids.len(), 10);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "every client exactly once");
    }

    #[test]
    fn sparse_fedbuff_start_and_idle_sampling_stay_o_cohort() {
        // A million-client view: the Shuffle path would allocate a 10⁶
        // permutation here; Sparse must finish instantly with just the
        // concurrency-sized cohort.
        let mut p = FedBuff::new(2, 16);
        let mut v = view(&[]);
        v.num_clients = 1_000_000;
        v.sampler = SamplerKind::Sparse;
        let acts = p.react(PolicyEvent::Start, &v);
        let Action::Dispatch(ids) = &acts[0] else {
            panic!("expected dispatch")
        };
        assert_eq!(ids.len(), 16);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        assert!(ids.iter().all(|&c| c < 1_000_000));
        // Determinism: the same seed draws the same initial cohort.
        let mut p2 = FedBuff::new(2, 16);
        let acts2 = p2.react(PolicyEvent::Start, &v);
        let Action::Dispatch(ids2) = &acts2[0] else {
            panic!("expected dispatch")
        };
        assert_eq!(ids, ids2);
        // Idle sampling rejects the busy set without scanning 0..K.
        let busy: Vec<usize> = ids.clone();
        let mut bv = view(&busy);
        bv.num_clients = 1_000_000;
        bv.sampler = SamplerKind::Sparse;
        for _ in 0..32 {
            let c = p.sample_idle(&bv).expect("plenty idle");
            assert!(busy.binary_search(&c).is_err(), "{c} is busy");
        }
    }

    #[test]
    fn fedbuff_idle_sampling_skips_busy_clients() {
        let mut p = FedBuff::new(1, 1);
        p.rng = Some(stream(9, StreamTag::SimPolicy, 0, 0));
        // Only client 6 is idle.
        let busy: Vec<usize> = (0..10).filter(|&i| i != 6).collect();
        let v = view(&busy);
        for _ in 0..8 {
            assert_eq!(p.sample_idle(&v), Some(6));
        }
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(p.sample_idle(&view(&all)), None);
    }
}
