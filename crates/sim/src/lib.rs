//! # fedbiad-sim
//!
//! A deterministic **discrete-event federation simulator** on top of the
//! `fedbiad-fl` round ingredients: each client is an actor with its own
//! compute-speed multiplier and uplink/downlink profile, the server runs
//! a pluggable dispatch/aggregation policy, and a virtual clock turns
//! Time-To-Accuracy from a post-hoc formula into a first-class simulated
//! quantity.
//!
//! * [`event`] — virtual clock + binary-heap event queue with stable
//!   (FIFO) tie-breaking, and the serialisable event trace;
//! * [`profile`] — heterogeneity: 5G/LTE/Wi-Fi link classes, compute
//!   multipliers, straggler cohorts, and the virtual cost model;
//! * [`policy`] — the [`ServerPolicy`] trait and the three shipped
//!   policies: synchronous barrier (the legacy runner as a policy),
//!   deadline-based over-selection with straggler dropping, and
//!   FedBuff-style buffered asynchronous aggregation with
//!   staleness-weighted merging;
//! * [`simulator`] — the engine: eager local updates (bit-identical to
//!   the lock-step runner) whose *visibility* to the server is delayed by
//!   per-client link/compute times on the virtual clock.
//!
//! ```
//! use fedbiad_core::baselines::FedAvg;
//! use fedbiad_fl::runner::ExperimentConfig;
//! use fedbiad_fl::workload::{build, Scale, Workload};
//! use fedbiad_sim::{HeterogeneityProfile, SimConfig, Simulator, SyncBarrier};
//!
//! let bundle = build(Workload::MnistLike, Scale::Smoke, 42);
//! let base = ExperimentConfig {
//!     rounds: 2,
//!     train: bundle.train,
//!     eval_topk: bundle.eval_topk,
//!     ..Default::default()
//! };
//! let cfg = SimConfig::new(base, HeterogeneityProfile::homogeneous_5g());
//! let report = Simulator::new(
//!     bundle.model.as_ref(),
//!     &bundle.data,
//!     FedAvg::new(),
//!     SyncBarrier,
//!     cfg,
//! )
//! .run();
//! assert_eq!(report.log.records.len(), 2);
//! println!("virtual seconds: {:.2}", report.total_virtual_seconds);
//! ```

pub mod event;
pub mod policy;
pub mod profile;
pub mod simulator;

pub use event::{EventQueue, TraceEvent, TraceKind};
pub use policy::{
    Action, DeadlineOverSelect, FedBuff, PolicyEvent, ServerPolicy, ServerView, SyncBarrier,
};
pub use profile::{ClientProfile, CostModel, HeterogeneityProfile, LinkClass};
pub use simulator::{SimConfig, SimReport, Simulator};
