//! The global collector: per-thread event buffers behind a runtime
//! enable flag, with the whole implementation swapped for inert stubs
//! when the `enabled` cargo feature is off.

use crate::export::Capture;

/// One recorded telemetry event, stamped with the monotonic nanosecond
/// timestamp (relative to the process-wide telemetry epoch) and the
/// recording thread's telemetry tid.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the telemetry epoch (first telemetry touch).
    pub ts_ns: u64,
    /// Telemetry thread id (small dense integers, first touch order).
    pub tid: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `args` carries the `key = value` pairs from the
    /// `span!` call site.
    Begin {
        /// Span name (static call-site string, e.g. `"agg.shard"`).
        name: &'static str,
        /// Call-site arguments, in call-site order.
        args: Vec<(&'static str, i64)>,
    },
    /// The span of the same name (innermost open one on this thread)
    /// closed.
    End {
        /// Span name matching the `Begin`.
        name: &'static str,
    },
    /// An additive counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// One gauge/histogram sample.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
}

/// RAII guard returned by [`span!`](crate::span): records the span's
/// `End` event when dropped. Inert (a ZST in feature-off builds) when no
/// capture was active at the `Begin`.
#[must_use = "binding the guard defines the span's extent; an unbound guard drops immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: Option<&'static str>,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Capture, Event, EventKind, SpanGuard};
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// Runtime capture gate; every macro checks this first.
    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Dense telemetry tids, assigned on each thread's first event.
    static NEXT_TID: AtomicU32 = AtomicU32::new(1);
    /// All thread buffers ever registered (threads may outlive captures,
    /// so buffers are kept and cleared rather than removed).
    static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
    /// Timestamp origin: the first telemetry touch in the process.
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    struct ThreadBuf {
        tid: u32,
        events: Mutex<Vec<(u64, EventKind)>>,
    }

    thread_local! {
        static LOCAL: Arc<ThreadBuf> = {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
            });
            lock(&REGISTRY).push(Arc::clone(&buf));
            buf
        };
    }

    /// Poison-tolerant lock: a panicking instrumented thread must not
    /// wedge telemetry for the rest of the process (tests rely on this).
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    fn push(kind: EventKind) {
        let ts_ns = now_ns();
        LOCAL.with(|buf| lock(&buf.events).push((ts_ns, kind)));
    }

    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn begin_capture() {
        EPOCH.get_or_init(Instant::now);
        for buf in lock(&REGISTRY).iter() {
            lock(&buf.events).clear();
        }
        ENABLED.store(true, Ordering::SeqCst);
    }

    pub fn end_capture() -> Capture {
        ENABLED.store(false, Ordering::SeqCst);
        let mut events = Vec::new();
        // Concatenate per-thread buffers in tid order, then stable-sort
        // by timestamp: per-thread program order survives timestamp
        // ties, and cross-thread ties resolve by tid — deterministic for
        // any given set of recorded (ts, tid) pairs.
        let mut bufs: Vec<_> = lock(&REGISTRY).iter().cloned().collect();
        bufs.sort_by_key(|b| b.tid);
        for buf in bufs {
            let drained: Vec<_> = std::mem::take(&mut *lock(&buf.events));
            events.extend(drained.into_iter().map(|(ts_ns, kind)| Event {
                ts_ns,
                tid: buf.tid,
                kind,
            }));
        }
        events.sort_by_key(|e| e.ts_ns);
        Capture { events }
    }

    impl SpanGuard {
        pub(super) fn begin_impl(name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
            push(EventKind::Begin {
                name,
                args: args.to_vec(),
            });
            SpanGuard { name: Some(name) }
        }

        pub(super) const fn inert_impl() -> SpanGuard {
            SpanGuard { name: None }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            // Only close spans that opened inside a capture, and only
            // while that capture is still running: a span straddling
            // `end_capture` must not leak its `End` into the next one.
            if let Some(name) = self.name {
                if is_enabled() {
                    push(EventKind::End { name });
                }
            }
        }
    }

    pub fn add_counter(name: &'static str, delta: u64) {
        push(EventKind::Counter { name, delta });
    }

    pub fn record_gauge(name: &'static str, value: f64) {
        push(EventKind::Gauge { name, value });
    }
}

#[cfg(feature = "enabled")]
pub use enabled_api::*;

#[cfg(feature = "enabled")]
mod enabled_api {
    use super::{imp, Capture, SpanGuard};

    /// Whether the collector is compiled into this build (the `enabled`
    /// cargo feature). Here: `true`.
    pub const fn compiled() -> bool {
        true
    }

    /// Whether a capture is currently running. One relaxed atomic load;
    /// the macros check this before evaluating any arguments.
    pub fn is_enabled() -> bool {
        imp::is_enabled()
    }

    /// Clear all per-thread buffers and start recording.
    pub fn begin_capture() {
        imp::begin_capture()
    }

    /// Stop recording and drain every thread's buffer into a [`Capture`]
    /// sorted by timestamp (per-thread order preserved on ties).
    pub fn end_capture() -> Capture {
        imp::end_capture()
    }

    /// Record a counter increment. Prefer the [`counter!`](crate::counter)
    /// macro, which skips the call (and the delta expression) when no
    /// capture is active.
    pub fn add_counter(name: &'static str, delta: u64) {
        imp::add_counter(name, delta)
    }

    /// Record a gauge sample. Prefer the [`gauge!`](crate::gauge) macro,
    /// which skips the call (and the value expression) when no capture
    /// is active.
    pub fn record_gauge(name: &'static str, value: f64) {
        imp::record_gauge(name, value)
    }

    impl SpanGuard {
        /// Record a `Begin` event now; the guard records the matching
        /// `End` on drop. Prefer the [`span!`](crate::span) macro.
        pub fn begin(name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
            SpanGuard::begin_impl(name, args)
        }

        /// A guard that records nothing.
        pub const fn inert() -> SpanGuard {
            SpanGuard::inert_impl()
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use disabled_api::*;

#[cfg(not(feature = "enabled"))]
mod disabled_api {
    use super::{Capture, SpanGuard};

    /// Whether the collector is compiled into this build (the `enabled`
    /// cargo feature). Here: `false` — every macro folds to a no-op.
    pub const fn compiled() -> bool {
        false
    }

    /// Always `false` in a feature-off build: `const`, so the
    /// `if is_enabled()` inside each macro is dead code the optimiser
    /// deletes along with the instrumentation body.
    pub const fn is_enabled() -> bool {
        false
    }

    /// No-op in a feature-off build.
    pub fn begin_capture() {}

    /// Returns an empty [`Capture`] in a feature-off build.
    pub fn end_capture() -> Capture {
        Capture { events: Vec::new() }
    }

    /// No-op in a feature-off build.
    pub fn add_counter(_name: &'static str, _delta: u64) {}

    /// No-op in a feature-off build.
    pub fn record_gauge(_name: &'static str, _value: f64) {}

    impl SpanGuard {
        /// No-op in a feature-off build (the guard is a ZST).
        pub const fn begin(_name: &'static str, _args: &[(&'static str, i64)]) -> SpanGuard {
            SpanGuard {}
        }

        /// No-op in a feature-off build (the guard is a ZST).
        pub const fn inert() -> SpanGuard {
            SpanGuard {}
        }
    }
}
