//! # fedbiad-telemetry
//!
//! Zero-overhead instrumentation for the FedBIAD workspace: hierarchical
//! **spans**, additive **counters**, and sampled **gauges/histograms**,
//! recorded into per-thread buffers and exported as a Chrome-trace
//! `trace.json` (openable in Perfetto / `chrome://tracing`), a JSONL
//! event stream, or a plain-text summary table (p50/p95/max per span).
//!
//! ## The two gates
//!
//! * **Compile-time** — the `enabled` cargo feature (off by default).
//!   Without it every macro expands to a branch on a `const false`, so
//!   the optimiser deletes the instrumentation outright: hot kernels pay
//!   *zero* cost, pinned by the `telemetry/*` entries in
//!   `BENCH_kernels.json`. `fedbiad-bench` turns the feature on, so the
//!   harness binaries (and, via feature unification, any workspace-wide
//!   build) carry the collector.
//! * **Run-time** — [`begin_capture`]/[`end_capture`]. Even when
//!   compiled in, a macro costs one relaxed atomic load while no capture
//!   is active; its value arguments are not evaluated.
//!
//! ## Determinism contract
//!
//! Telemetry is *observational*: it records monotonic timestamps and
//! values but never branches the computation, draws from an experiment
//! RNG stream, or reorders work. Experiment results are therefore
//! bit-identical with capture on or off, at any thread count — pinned by
//! `tests/golden_trace.rs` and `tests/thread_determinism.rs` at the
//! workspace root.
//!
//! ## Usage
//!
//! ```
//! use fedbiad_telemetry as telemetry;
//!
//! telemetry::begin_capture();
//! {
//!     let _round = telemetry::span!("round", round = 0);
//!     let _stage = telemetry::span!("round.train");
//!     telemetry::counter!("round.upload_bytes", 4096u64);
//!     telemetry::gauge!("sim.queue_depth", 3.0);
//! }
//! let capture = telemetry::end_capture();
//! let trace_json = capture.chrome_trace();
//! let summary = capture.summary();
//! if telemetry::compiled() {
//!     assert!(summary.span("round.train").is_some());
//!     assert!(trace_json.contains("\"ph\":\"B\""));
//! }
//! ```

#![warn(missing_docs)]

mod collector;
mod export;

pub use collector::{
    add_counter, begin_capture, compiled, end_capture, is_enabled, record_gauge, Event, EventKind,
    SpanGuard,
};
pub use export::{Capture, CounterTotal, GaugeStats, SpanStats, Summary};

/// Open a span: records a `Begin` event now and the matching `End` when
/// the returned guard drops. Optional `key = value` arguments (cast to
/// `i64`) are attached to the `Begin` event and surface in the Chrome
/// trace's `args`.
///
/// Bind the guard — `let _span = span!("name");` — or the span closes
/// immediately. Argument expressions are **not evaluated** unless a
/// capture is active.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::is_enabled() {
            $crate::SpanGuard::begin($name, &[$((stringify!($k), ($v) as i64)),*])
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// Add `delta` (cast to `u64`) to the named counter. Counters are
/// additive across threads; the exporters report per-capture totals.
/// The delta expression is **not evaluated** unless a capture is active.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::is_enabled() {
            $crate::add_counter($name, ($delta) as u64);
        }
    };
}

/// Record one sample (cast to `f64`) of the named gauge/histogram; the
/// summary reports p50/p95/max over a capture's samples. The value
/// expression is **not evaluated** unless a capture is active.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::is_enabled() {
            $crate::record_gauge($name, ($value) as f64);
        }
    };
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    //! The no-op contract of the default (feature-off) build.

    #[test]
    fn disabled_build_reports_not_compiled_and_never_enabled() {
        assert!(!crate::compiled());
        assert!(!crate::is_enabled());
        crate::begin_capture();
        assert!(!crate::is_enabled(), "begin_capture must stay inert");
    }

    #[test]
    fn disabled_macros_record_nothing_and_evaluate_nothing() {
        crate::begin_capture();
        let mut evaluated = false;
        {
            let _span = crate::span!(
                "agg.shard",
                shard = {
                    evaluated = true;
                    7
                }
            );
            crate::counter!("bytes", {
                evaluated = true;
                123u64
            });
            crate::gauge!("depth", {
                evaluated = true;
                1.0
            });
        }
        let cap = crate::end_capture();
        assert!(!evaluated, "disabled macros must not evaluate arguments");
        assert!(cap.events.is_empty());
        assert!(cap.summary().spans.is_empty());
    }

    #[test]
    fn disabled_span_guard_is_a_zst() {
        assert_eq!(std::mem::size_of::<crate::SpanGuard>(), 0);
    }

    #[test]
    fn disabled_exporters_emit_valid_empty_artifacts() {
        crate::begin_capture();
        let cap = crate::end_capture();
        let trace = cap.chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert_eq!(cap.jsonl(), "");
        assert!(cap.summary().render_table().contains("no spans recorded"));
    }
}

#[cfg(all(test, feature = "enabled"))]
mod enabled_tests {
    /// The collector is process-global; capture-touching tests must not
    /// interleave.
    static CAPTURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn enabled_build_round_trips_spans_and_counters() {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::begin_capture();
        {
            let _outer = crate::span!("outer", idx = 1);
            let _inner = crate::span!("inner");
            crate::counter!("n", 2u64);
            crate::counter!("n", 3u64);
            crate::gauge!("depth", 4.0);
        }
        let cap = crate::end_capture();
        assert!(!crate::is_enabled(), "end_capture disables");
        let summary = cap.summary();
        assert_eq!(summary.span("outer").unwrap().count, 1);
        assert_eq!(summary.span("inner").unwrap().count, 1);
        let n = summary
            .counters
            .iter()
            .find(|c| c.name == "n")
            .expect("counter n");
        assert_eq!(n.total, 5);
        let d = summary.gauges.iter().find(|g| g.name == "depth").unwrap();
        assert_eq!(d.count, 1);
        assert_eq!(d.max, 4.0);
    }

    #[test]
    fn no_capture_means_no_events_and_no_argument_evaluation() {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!crate::is_enabled());
        let mut evaluated = false;
        {
            let _s = crate::span!(
                "s",
                v = {
                    evaluated = true;
                    1
                }
            );
        }
        assert!(!evaluated);
        crate::begin_capture();
        let cap = crate::end_capture();
        assert!(cap.events.is_empty(), "pre-capture events must not leak in");
    }
}
