//! Exporters over a drained [`Capture`]: Chrome trace JSON, a JSONL
//! event stream, and a plain-text summary (p50/p95/max per span,
//! counter totals, gauge distributions). All JSON is hand-written —
//! this crate is deliberately dependency-free.

use crate::collector::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// All events recorded between one `begin_capture`/`end_capture` pair,
/// sorted by timestamp (per-thread order preserved on ties).
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// The recorded events.
    pub events: Vec<Event>,
}

/// Duration statistics for one span name within a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Completed (Begin/End-paired) instances.
    pub count: u64,
    /// Median duration, nanoseconds (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile duration, nanoseconds (nearest-rank).
    pub p95_ns: u64,
    /// Longest instance, nanoseconds.
    pub max_ns: u64,
    /// Sum over all instances, nanoseconds.
    pub total_ns: u64,
}

/// Per-capture total for one counter name.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTotal {
    /// Counter name.
    pub name: String,
    /// Sum of all deltas, across threads.
    pub total: u64,
}

/// Sample statistics for one gauge name within a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStats {
    /// Gauge name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Median sample (nearest-rank).
    pub p50: f64,
    /// 95th-percentile sample (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

/// Aggregated view of a [`Capture`]: spans, counters and gauges, each
/// sorted by name for deterministic output.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Per-span duration statistics, sorted by name.
    pub spans: Vec<SpanStats>,
    /// Per-counter totals, sorted by name.
    pub counters: Vec<CounterTotal>,
    /// Per-gauge sample statistics, sorted by name.
    pub gauges: Vec<GaugeStats>,
}

impl Capture {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render as a Chrome trace (the JSON object format), loadable in
    /// Perfetto / `chrome://tracing`. Spans become `ph:"B"`/`ph:"E"`
    /// duration events; counters and gauges become `ph:"C"` counter
    /// events. Timestamps are microseconds with nanosecond precision.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut running: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts_us = ev.ts_ns as f64 / 1000.0;
            match &ev.kind {
                EventKind::Begin { name, args } => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"fedbiad\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
                        json_str(name),
                        ev.tid,
                        ts_us
                    );
                    if !args.is_empty() {
                        out.push_str(",\"args\":{");
                        for (j, (k, v)) in args.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{}:{}", json_str(k), v);
                        }
                        out.push('}');
                    }
                    out.push('}');
                }
                EventKind::End { name } => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"fedbiad\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{:.3}}}",
                        json_str(name),
                        ev.tid,
                        ts_us
                    );
                }
                EventKind::Counter { name, delta } => {
                    // Chrome counter tracks plot the running value, so
                    // accumulate deltas into a monotone series.
                    let total = running.entry(name).or_insert(0);
                    *total += delta;
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"fedbiad\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                        json_str(name),
                        ev.tid,
                        ts_us,
                        total
                    );
                }
                EventKind::Gauge { name, value } => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"fedbiad\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                        json_str(name),
                        ev.tid,
                        ts_us,
                        json_f64(*value)
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Render as a JSONL event stream: one JSON object per line, in
    /// capture order, with `ts_ns`, `tid`, `type` and type-specific
    /// fields. Empty captures render as an empty string.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 80);
        for ev in &self.events {
            match &ev.kind {
                EventKind::Begin { name, args } => {
                    let _ = write!(
                        out,
                        "{{\"ts_ns\":{},\"tid\":{},\"type\":\"begin\",\"name\":{}",
                        ev.ts_ns,
                        ev.tid,
                        json_str(name)
                    );
                    if !args.is_empty() {
                        out.push_str(",\"args\":{");
                        for (j, (k, v)) in args.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{}:{}", json_str(k), v);
                        }
                        out.push('}');
                    }
                    out.push('}');
                }
                EventKind::End { name } => {
                    let _ = write!(
                        out,
                        "{{\"ts_ns\":{},\"tid\":{},\"type\":\"end\",\"name\":{}}}",
                        ev.ts_ns,
                        ev.tid,
                        json_str(name)
                    );
                }
                EventKind::Counter { name, delta } => {
                    let _ = write!(
                        out,
                        "{{\"ts_ns\":{},\"tid\":{},\"type\":\"counter\",\"name\":{},\"delta\":{}}}",
                        ev.ts_ns,
                        ev.tid,
                        json_str(name),
                        delta
                    );
                }
                EventKind::Gauge { name, value } => {
                    let _ = write!(
                        out,
                        "{{\"ts_ns\":{},\"tid\":{},\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
                        ev.ts_ns,
                        ev.tid,
                        json_str(name),
                        json_f64(*value)
                    );
                }
            }
            out.push('\n');
        }
        out
    }

    /// Aggregate into a [`Summary`]. Span instances are matched per
    /// thread: an `End` closes the innermost open `Begin` of the same
    /// name on its thread; unmatched events (spans cut off by
    /// `end_capture`) are dropped from the statistics.
    pub fn summary(&self) -> Summary {
        let mut durations: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        // Per-thread stack of open (name, start_ts) pairs.
        let mut stacks: BTreeMap<u32, Vec<(&'static str, u64)>> = BTreeMap::new();

        for ev in &self.events {
            match &ev.kind {
                EventKind::Begin { name, .. } => {
                    stacks.entry(ev.tid).or_default().push((name, ev.ts_ns));
                }
                EventKind::End { name } => {
                    let stack = stacks.entry(ev.tid).or_default();
                    if let Some(pos) = stack.iter().rposition(|(n, _)| n == name) {
                        let (_, start) = stack.remove(pos);
                        durations
                            .entry(name)
                            .or_default()
                            .push(ev.ts_ns.saturating_sub(start));
                    }
                }
                EventKind::Counter { name, delta } => {
                    *counters.entry(name).or_insert(0) += delta;
                }
                EventKind::Gauge { name, value } => {
                    gauges.entry(name).or_default().push(*value);
                }
            }
        }

        Summary {
            spans: durations
                .into_iter()
                .map(|(name, mut ds)| {
                    ds.sort_unstable();
                    SpanStats {
                        name: name.to_string(),
                        count: ds.len() as u64,
                        p50_ns: nearest_rank(&ds, 50),
                        p95_ns: nearest_rank(&ds, 95),
                        max_ns: *ds.last().unwrap_or(&0),
                        total_ns: ds.iter().sum(),
                    }
                })
                .collect(),
            counters: counters
                .into_iter()
                .map(|(name, total)| CounterTotal {
                    name: name.to_string(),
                    total,
                })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, mut vs)| {
                    vs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    GaugeStats {
                        name: name.to_string(),
                        count: vs.len() as u64,
                        p50: nearest_rank_f(&vs, 50),
                        p95: nearest_rank_f(&vs, 95),
                        max: *vs.last().unwrap_or(&0.0),
                    }
                })
                .collect(),
        }
    }
}

impl Summary {
    /// Look up one span's statistics by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up one counter's total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
    }

    /// Render the end-of-run plain-text summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty() {
            out.push_str("telemetry: no spans recorded\n");
            return out;
        }
        if !self.spans.is_empty() {
            let name_w = self
                .spans
                .iter()
                .map(|s| s.name.len())
                .chain(["span".len()])
                .max()
                .unwrap_or(4);
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
                "span", "count", "p50", "p95", "max", "total"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
                    s.name,
                    s.count,
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p95_ns),
                    fmt_ns(s.max_ns),
                    fmt_ns(s.total_ns)
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounter totals:");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<28} {}", c.name, c.total);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges (p50 / p95 / max over samples):");
            for g in &self.gauges {
                let _ = writeln!(
                    out,
                    "  {:<28} n={:<6} {:.3} / {:.3} / {:.3}",
                    g.name, g.count, g.p50, g.p95, g.max
                );
            }
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn nearest_rank(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Nearest-rank percentile over an ascending-sorted slice of floats.
fn nearest_rank_f(sorted: &[f64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Human duration: picks ns/µs/ms/s to keep 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// JSON string literal with escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number for an `f64`: finite values print losslessly via `{}`,
/// non-finite values (invalid JSON) degrade to 0.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits the decimal point for integral floats; keep it so
        // strict parsers see a float where the schema expects one.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 50), 50);
        assert_eq!(nearest_rank(&v, 95), 95);
        assert_eq!(nearest_rank(&[7], 50), 7);
        assert_eq!(nearest_rank(&[], 95), 0);
    }

    #[test]
    fn json_str_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_always_prints_a_float() {
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "0.0");
    }

    #[test]
    fn summary_matches_innermost_open_span_and_drops_unmatched() {
        let ev = |ts_ns, kind| Event {
            ts_ns,
            tid: 1,
            kind,
        };
        let cap = Capture {
            events: vec![
                ev(
                    0,
                    EventKind::Begin {
                        name: "outer",
                        args: vec![],
                    },
                ),
                ev(
                    10,
                    EventKind::Begin {
                        name: "inner",
                        args: vec![],
                    },
                ),
                ev(30, EventKind::End { name: "inner" }),
                ev(100, EventKind::End { name: "outer" }),
                // Unmatched Begin: capture ended mid-span.
                ev(
                    110,
                    EventKind::Begin {
                        name: "cut",
                        args: vec![],
                    },
                ),
                // Unmatched End: no open span of this name.
                ev(120, EventKind::End { name: "stray" }),
            ],
        };
        let s = cap.summary();
        assert_eq!(s.span("outer").unwrap().total_ns, 100);
        assert_eq!(s.span("inner").unwrap().total_ns, 20);
        assert!(s.span("cut").is_none());
        assert!(s.span("stray").is_none());
    }
}
