//! Property tests on the collector invariants (feature `enabled` only):
//!
//! 1. **Nesting well-formedness** — for any randomly shaped span tree,
//!    every recorded `End` closes the innermost open `Begin` of the same
//!    name on its thread, and nothing is left open.
//! 2. **Monotonic timestamps** — captured events are globally
//!    non-decreasing in `ts_ns` (the drain sorts stably), and each
//!    span's duration is non-negative.
//! 3. **Counter additivity across threads** — the summary total of a
//!    counter equals the arithmetic sum of every delta added, no matter
//!    how the adds are split across threads.
#![cfg(feature = "enabled")]

use fedbiad_telemetry as tele;
use fedbiad_telemetry::EventKind;
use proptest::prelude::*;
use std::sync::Mutex;

/// The collector is process-global; capture-touching tests must not
/// interleave (proptest cases in one binary run on multiple threads).
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

/// Open `depths[i]` nested spans, then close them, recursively — a cheap
/// way to realise an arbitrary nesting shape from a flat seed vector.
fn nest(depths: &[u8]) {
    let Some((&d, rest)) = depths.split_first() else {
        return;
    };
    // Span names cycle through a small static set (names are &'static str).
    const NAMES: [&str; 4] = ["a", "b", "c", "d"];
    let _span = tele::span!(NAMES[(d % 4) as usize], depth = d);
    if d % 2 == 0 {
        tele::counter!("work", d as u64);
    }
    nest(rest);
}

proptest! {
    #[test]
    fn spans_nest_well_formed_for_any_shape(depths in proptest::collection::vec(0u8..8, 0..24)) {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        tele::begin_capture();
        nest(&depths);
        let cap = tele::end_capture();

        // Replay the event stream with a per-tid stack.
        let mut stacks: std::collections::HashMap<u32, Vec<&'static str>> = Default::default();
        let mut begins = 0usize;
        for ev in &cap.events {
            match &ev.kind {
                EventKind::Begin { name, .. } => {
                    stacks.entry(ev.tid).or_default().push(name);
                    begins += 1;
                }
                EventKind::End { name } => {
                    let top = stacks.get_mut(&ev.tid).and_then(|s| s.pop());
                    prop_assert_eq!(top, Some(*name), "End must close the innermost Begin");
                }
                _ => {}
            }
        }
        for stack in stacks.values() {
            prop_assert!(stack.is_empty(), "capture left spans open: {:?}", stack);
        }
        prop_assert_eq!(begins, depths.len(), "one span per seed element");
    }

    #[test]
    fn timestamps_are_monotone_and_durations_non_negative(depths in proptest::collection::vec(0u8..8, 1..16)) {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        tele::begin_capture();
        nest(&depths);
        let cap = tele::end_capture();

        let mut last = 0u64;
        for ev in &cap.events {
            prop_assert!(ev.ts_ns >= last, "capture order must be time order");
            last = ev.ts_ns;
        }
        for s in &cap.summary().spans {
            prop_assert!(s.max_ns >= s.p50_ns, "percentiles out of order for {}", s.name);
            prop_assert!(s.total_ns > 0 || s.count == 0 || s.max_ns == 0);
        }
    }

    #[test]
    fn counter_totals_are_additive_across_threads(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000, 0..8), 1..5)
    ) {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        tele::begin_capture();
        let workers: Vec<_> = per_thread
            .iter()
            .map(|deltas| {
                let deltas = deltas.clone();
                std::thread::spawn(move || {
                    for d in deltas {
                        tele::counter!("bytes", d);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let cap = tele::end_capture();

        let expected: u64 = per_thread.iter().flatten().sum();
        let total = cap.summary().counter("bytes").unwrap_or(0);
        prop_assert_eq!(total, expected, "counter total must equal the sum of all deltas");
    }
}
