//! Exporter snapshot tests (feature `enabled` only): a small multi-thread
//! capture must round-trip through the Chrome-trace and JSONL exporters
//! into *parseable, schema-valid* JSON — every event carries `pid`/`tid`,
//! `B`/`E` events pair up per thread, counters plot as `C` phases, and
//! the text summary renders the p50/p95 columns.
#![cfg(feature = "enabled")]

use fedbiad_telemetry as tele;
use serde_json::Value;
use std::sync::Mutex;

/// The collector is process-global; capture-touching tests must not
/// interleave.
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

fn as_num(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        other => panic!("expected a number, got {other:?}"),
    }
}

/// A deterministic-shape workload: nested round spans on the main thread
/// plus shard spans and counters from two worker threads.
fn sample_capture() -> tele::Capture {
    tele::begin_capture();
    {
        let _run = tele::span!("run", index = 0);
        for round in 0..3i64 {
            let _round = tele::span!("round", round = round);
            {
                let _agg = tele::span!("round.aggregate", clients = 4);
                tele::counter!("agg.decode_bytes", 128u64);
            }
            tele::gauge!("sim.queue_depth", round * 2);
        }
        let workers: Vec<_> = (0..2i64)
            .map(|i| {
                std::thread::spawn(move || {
                    let _shard = tele::span!("agg.shard", shard = i);
                    tele::counter!("agg.shards_reduced", 1u64);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    }
    tele::end_capture()
}

#[test]
fn chrome_trace_is_schema_valid_with_paired_events_and_pid_tid() {
    let cap = {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sample_capture()
    };
    let root = serde_json::parse_value_str(&cap.chrome_trace()).expect("trace JSON must parse");

    assert_eq!(
        field(&root, "displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = field(&root, "traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Per-tid stacks: every E closes the innermost open B of that thread.
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = Default::default();
    let mut span_names = std::collections::HashSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for e in events {
        let name = field(e, "name")
            .and_then(|v| v.as_str())
            .expect("every event has a name");
        let ph = field(e, "ph").and_then(|v| v.as_str()).expect("phase");
        assert_eq!(as_num(field(e, "pid").expect("pid present")), 1.0);
        let tid = as_num(field(e, "tid").expect("tid present")) as i64;
        let ts = as_num(field(e, "ts").expect("ts present"));
        assert!(ts >= 0.0);
        assert!(ts >= last_ts, "events must be emitted in time order");
        last_ts = ts;
        match ph {
            "B" => {
                stacks.entry(tid).or_default().push(name.to_string());
                span_names.insert(name.to_string());
            }
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E `{name}` on tid {tid} with no open B"));
                assert_eq!(top, name, "E must close the innermost B (tid {tid})");
            }
            "C" => {
                // Counter samples plot running totals; args must exist.
                assert!(field(e, "args").is_some(), "counter `{name}` lacks args");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left unclosed spans: {stack:?}");
    }
    for expected in ["run", "round", "round.aggregate", "agg.shard"] {
        assert!(span_names.contains(expected), "span `{expected}` missing");
    }

    // The two worker spans come from distinct threads, distinct from main.
    let shard_tids: std::collections::HashSet<i64> = events
        .iter()
        .filter(|e| field(e, "name").and_then(|v| v.as_str()) == Some("agg.shard"))
        .map(|e| as_num(field(e, "tid").unwrap()) as i64)
        .collect();
    assert_eq!(shard_tids.len(), 2, "one tid per worker thread");
}

#[test]
fn jsonl_stream_parses_line_by_line_with_monotonic_timestamps() {
    let cap = {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sample_capture()
    };
    let jsonl = cap.jsonl();
    let mut last_ns = 0.0f64;
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let v = serde_json::parse_value_str(line).expect("each JSONL line parses");
        let ts = as_num(field(&v, "ts_ns").expect("ts_ns present"));
        assert!(ts >= last_ns, "JSONL must be time-ordered");
        last_ns = ts;
        lines += 1;
    }
    assert_eq!(lines, cap.events.len(), "one line per event");
}

#[test]
fn summary_table_renders_percentile_columns() {
    let cap = {
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sample_capture()
    };
    let table = cap.summary().render_table();
    for needle in [
        "p50",
        "p95",
        "round.aggregate",
        "agg.shard",
        "counter totals",
    ] {
        assert!(table.contains(needle), "summary lacks `{needle}`:\n{table}");
    }
    let s = cap.summary();
    assert_eq!(s.span("round").unwrap().count, 3);
    assert_eq!(s.counter("agg.decode_bytes"), Some(384));
    assert_eq!(s.counter("agg.shards_reduced"), Some(2));
}
