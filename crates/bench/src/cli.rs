//! Minimal CLI flag parsing shared by the harness binaries (no external
//! dependency; flags are `--key value`).

use crate::methods::RunOpts;
use fedbiad_fl::workload::{Scale, Workload};
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct Cli {
    /// `--rounds N` (default per binary).
    pub rounds: Option<usize>,
    /// `--seed N` (default 42).
    pub seed: u64,
    /// Whether `--seed` was given explicitly (spec-override plumbing).
    pub seed_explicit: bool,
    /// `--scale smoke|lab` (default lab).
    pub scale: Scale,
    /// Whether `--scale` was given explicitly (spec-override plumbing).
    pub scale_explicit: bool,
    /// `--workloads a,b,c` (default: binary-specific).
    pub workloads: Option<Vec<Workload>>,
    /// `--eval-max N` test-sample cap (default 2000).
    pub eval_max: usize,
    /// Whether `--eval-max` was given explicitly (spec-override plumbing).
    pub eval_max_explicit: bool,
    /// `--methods a,b` restriction (default: binary-specific set).
    pub methods: Option<Vec<String>>,
    /// `--json-out PATH`: additionally serialize the full experiment
    /// logs (round records + invocation) to this path.
    pub json_out: Option<PathBuf>,
    /// `--policies sync,deadline,fedbuff` (sim binaries only).
    pub policies: Option<Vec<String>>,
    /// `--profiles homogeneous,mixed,stragglers` (sim binaries only).
    pub profiles: Option<Vec<String>>,
    /// `--fraction F`: client participation fraction κ (default 0.1).
    pub fraction: Option<f32>,
    /// `--target A`: TTA target accuracy override (sim binaries only).
    pub target: Option<f64>,
    /// `--trace-out DIR` (`scenario` only): capture telemetry and write
    /// one Chrome trace + JSONL stream per run into DIR.
    pub trace_out: Option<PathBuf>,
}

impl Cli {
    /// Apply the shared overrides (`--eval-max`, `--fraction`) to a set
    /// of run options.
    pub fn apply(&self, mut opts: RunOpts) -> RunOpts {
        opts.eval_max_samples = self.eval_max;
        if let Some(f) = self.fraction {
            opts.client_fraction = f;
        }
        opts
    }

    /// Map the explicitly given flags onto scenario-spec overrides, so
    /// the thin wrapper binaries (and `scenario` itself) can tweak a
    /// bundled spec from the command line. Name-resolution failures
    /// return the same actionable messages the spec loader uses.
    pub fn scenario_overrides(&self) -> Result<fedbiad_scenario::Overrides, String> {
        let methods = match &self.methods {
            None => None,
            Some(names) => Some(
                names
                    .iter()
                    .map(|n| {
                        fedbiad_scenario::Method::parse(n)
                            .ok_or_else(|| format!("unknown method {n}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let policies = match &self.policies {
            None => None,
            Some(names) => Some(
                names
                    .iter()
                    .map(|n| {
                        fedbiad_scenario::PolicyChoice::parse(n)
                            .ok_or_else(|| format!("unknown policy {n} (sync|deadline|fedbuff)"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let profiles = match &self.profiles {
            None => None,
            Some(names) => Some(
                names
                    .iter()
                    .map(|n| {
                        fedbiad_scenario::ProfileChoice::parse(n).ok_or_else(|| {
                            format!("unknown profile {n} (homogeneous|mixed|stragglers)")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        Ok(fedbiad_scenario::Overrides {
            rounds: self.rounds,
            seed: self.seed_explicit.then_some(self.seed),
            scale: self.scale_explicit.then_some(self.scale),
            eval_max: self.eval_max_explicit.then_some(self.eval_max),
            fraction: self.fraction,
            workloads: self.workloads.clone(),
            methods,
            policies,
            profiles,
            target: self.target,
        })
    }

    /// Parse from `std::env::args`. Unknown flags abort with a message.
    pub fn parse() -> Cli {
        Self::parse_from(std::env::args().skip(1).collect())
    }

    /// Parse from an explicit vector (testable).
    pub fn parse_from(args: Vec<String>) -> Cli {
        let mut cli = Cli {
            rounds: None,
            seed: 42,
            seed_explicit: false,
            scale: Scale::Lab,
            scale_explicit: false,
            workloads: None,
            eval_max: 2_000,
            eval_max_explicit: false,
            methods: None,
            json_out: None,
            policies: None,
            profiles: None,
            fraction: None,
            target: None,
            trace_out: None,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut val = || {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--rounds" => cli.rounds = Some(val().parse().expect("--rounds: integer")),
                "--seed" => {
                    cli.seed = val().parse().expect("--seed: integer");
                    cli.seed_explicit = true;
                }
                "--eval-max" => {
                    cli.eval_max = val().parse().expect("--eval-max: integer");
                    cli.eval_max_explicit = true;
                }
                "--scale" => {
                    cli.scale_explicit = true;
                    cli.scale = match val().as_str() {
                        "smoke" => Scale::Smoke,
                        "lab" => Scale::Lab,
                        other => {
                            eprintln!("unknown scale {other} (smoke|lab)");
                            std::process::exit(2);
                        }
                    }
                }
                "--methods" => {
                    cli.methods = Some(val().split(',').map(|s| s.to_string()).collect());
                }
                "--json-out" => cli.json_out = Some(PathBuf::from(val())),
                "--policies" => {
                    cli.policies = Some(val().split(',').map(|s| s.to_string()).collect());
                }
                "--profiles" => {
                    cli.profiles = Some(val().split(',').map(|s| s.to_string()).collect());
                }
                "--fraction" => cli.fraction = Some(val().parse().expect("--fraction: float")),
                "--target" => cli.target = Some(val().parse().expect("--target: float")),
                "--trace-out" => cli.trace_out = Some(PathBuf::from(val())),
                "--workloads" => {
                    let list = val();
                    cli.workloads = Some(
                        list.split(',')
                            .map(|s| {
                                parse_workload(s).unwrap_or_else(|| {
                                    eprintln!("unknown workload {s}");
                                    std::process::exit(2);
                                })
                            })
                            .collect(),
                    );
                }
                "--help" | "-h" => {
                    println!(
                        "flags: --rounds N  --seed N  --scale smoke|lab  \
                         --workloads mnist,fmnist,ptb,wikitext2,reddit  \
                         --methods fedavg,fedbiad,...  --eval-max N  \
                         --json-out PATH  --policies sync,deadline,fedbuff  \
                         --profiles homogeneous,mixed,stragglers  \
                         --fraction F  --target A  --trace-out DIR"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        cli
    }
}

/// Parse a workload name (short forms accepted); see [`Workload::parse`].
pub fn parse_workload(s: &str) -> Option<Workload> {
    Workload::parse(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let c = Cli::parse_from(vec![]);
        assert_eq!(c.seed, 42);
        assert_eq!(c.scale, Scale::Lab);
        let c = Cli::parse_from(
            [
                "--rounds",
                "7",
                "--seed",
                "9",
                "--scale",
                "smoke",
                "--workloads",
                "ptb,reddit",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(c.rounds, Some(7));
        assert_eq!(c.seed, 9);
        assert_eq!(c.scale, Scale::Smoke);
        assert_eq!(
            c.workloads,
            Some(vec![Workload::PtbLike, Workload::RedditLike])
        );
    }

    #[test]
    fn json_out_and_sim_flags_parse() {
        let c = Cli::parse_from(
            [
                "--json-out",
                "/tmp/out.json",
                "--policies",
                "sync,fedbuff",
                "--profiles",
                "stragglers",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(c.json_out, Some(PathBuf::from("/tmp/out.json")));
        assert_eq!(
            c.policies,
            Some(vec!["sync".to_string(), "fedbuff".to_string()])
        );
        assert_eq!(c.profiles, Some(vec!["stragglers".to_string()]));
        assert_eq!(Cli::parse_from(vec![]).json_out, None);
    }

    #[test]
    fn trace_out_parses() {
        let c = Cli::parse_from(
            ["--trace-out", "/tmp/traces"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(c.trace_out, Some(PathBuf::from("/tmp/traces")));
        assert_eq!(Cli::parse_from(vec![]).trace_out, None);
    }

    #[test]
    fn workload_short_names() {
        assert_eq!(parse_workload("wt2"), Some(Workload::WikiText2Like));
        assert_eq!(parse_workload("MNIST"), Some(Workload::MnistLike));
        assert_eq!(parse_workload("bogus"), None);
    }
}
