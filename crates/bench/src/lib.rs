//! # fedbiad-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V). One binary per artifact:
//!
//! | binary        | paper artifact | what it prints |
//! |---------------|----------------|----------------|
//! | `fig2`        | Fig. 2         | PTB test loss/top-3 acc vs rounds, 5 methods |
//! | `table1`      | Table I        | acc / upload size / save ratio, 7 methods × 5 datasets |
//! | `table2`      | Table II       | sketched compressors × 5 datasets |
//! | `fig6`        | Fig. 6         | train-loss & test-acc curves (MNIST, WikiText-2) |
//! | `fig7`        | Fig. 7         | LTTR + TTA bars |
//! | `fig8`        | Fig. 8         | accuracy + TTA vs dropout rate (Reddit) |
//! | `theory_bound`| Thm. 1         | bound vs measured generalization gap |
//! | `ablation`    | DESIGN.md §4   | design-choice ablations |
//! | `sim_tta`     | (beyond paper) | discrete-event TTA: policies × heterogeneity × methods |
//! | `scenario`    | (beyond paper) | run any declarative spec from `scenarios/` |
//!
//! Each binary accepts `--rounds`, `--seed`, `--scale smoke|lab` and
//! writes machine-readable JSON to `target/experiments/`. The `fig2` and
//! `sim_tta` binaries are thin wrappers over bundled scenario specs
//! (`scenarios/fig2.toml`, `scenarios/sim_tta.toml`) executed by the
//! `fedbiad-scenario` engine; the method registry and simulation runner
//! live there too and are re-exported here under their old paths.

pub mod cli;
pub mod gate;
pub mod output;

pub use fedbiad_scenario::methods;
pub use fedbiad_scenario::simrun;

pub use methods::{run_method, Method};
pub use simrun::{run_sim_method, PolicyChoice};
