//! Experiment output: aligned tables on stdout + JSON under
//! `target/experiments/`, plus the `--json-out` full-trajectory dump.

use fedbiad_fl::ExperimentLog;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory for machine-readable results.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Persist a set of logs as JSON (one file per artifact).
pub fn save_logs(artifact: &str, logs: &[ExperimentLog]) -> PathBuf {
    let path = experiments_dir().join(format!("{artifact}.json"));
    let body = serde_json::to_string_pretty(logs).expect("serialise logs");
    fs::write(&path, body).expect("write experiment json");
    path
}

/// What `--json-out` writes: the full per-round trajectories plus the
/// exact invocation that produced them, so any BENCH_*.json capture is
/// self-describing.
#[derive(Clone, Debug, Serialize)]
pub struct BenchDump {
    /// The artifact name (`fig2`, `table1`, …).
    pub artifact: String,
    /// The binary's full argv (the run configuration).
    pub argv: Vec<String>,
    /// The complete experiment logs (config ids + round records).
    pub logs: Vec<ExperimentLog>,
}

/// Save to the default artifact location and, when `--json-out` was
/// given, additionally write the full [`BenchDump`] there.
pub fn save_logs_and_export(
    artifact: &str,
    logs: &[ExperimentLog],
    json_out: Option<&Path>,
) -> PathBuf {
    let default_path = save_logs(artifact, logs);
    if let Some(path) = json_out {
        export_dump(artifact, logs, path);
    }
    default_path
}

/// Write the full [`BenchDump`] for `logs` to `path`.
pub fn export_dump(artifact: &str, logs: &[ExperimentLog], path: &Path) {
    let dump = BenchDump {
        artifact: artifact.to_string(),
        argv: std::env::args().collect(),
        logs: logs.to_vec(),
    };
    let body = serde_json::to_string_pretty(&dump).expect("serialise bench dump");
    fs::write(path, body).expect("write --json-out file");
    println!("full ExperimentLog JSON written to {}", path.display());
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..ncol {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            s
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "acc"]);
        t.row(vec!["FedBIAD".into(), "95.20".into()]);
        t.row(vec!["FedAvg".into(), "95.06".into()]);
        let s = t.render();
        assert!(s.contains("FedBIAD  95.20"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
