//! Experiment output: aligned tables on stdout + JSON under
//! `target/experiments/`.

use fedbiad_fl::ExperimentLog;
use std::fs;
use std::path::PathBuf;

/// Directory for machine-readable results.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Persist a set of logs as JSON (one file per artifact).
pub fn save_logs(artifact: &str, logs: &[ExperimentLog]) -> PathBuf {
    let path = experiments_dir().join(format!("{artifact}.json"));
    let body = serde_json::to_string_pretty(logs).expect("serialise logs");
    fs::write(&path, body).expect("write experiment json");
    path
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..ncol {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            s
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "acc"]);
        t.row(vec!["FedBIAD".into(), "95.20".into()]);
        t.row(vec!["FedAvg".into(), "95.06".into()]);
        let s = t.render();
        assert!(s.contains("FedBIAD  95.20"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
