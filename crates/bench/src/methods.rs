//! Method registry: build + run any algorithm of Tables I/II against a
//! workload.

use fedbiad_compress::dgc::Dgc;
use fedbiad_compress::fedpaq::FedPaq;
use fedbiad_compress::signsgd::SignSgd;
use fedbiad_compress::stc::Stc;
use fedbiad_core::baselines::{Afd, FedAvg, FedDrop, FedMp, Fjord, HeteroFl};
use fedbiad_core::{FedBiad, FedBiadConfig};
use fedbiad_fl::runner::{Experiment, ExperimentConfig};
use fedbiad_fl::workload::WorkloadBundle;
use fedbiad_fl::ExperimentLog;
use std::sync::Arc;

/// Every method appearing in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// FedAvg \[1\].
    FedAvg,
    /// FedDrop \[12\].
    FedDrop,
    /// AFD \[15\].
    Afd,
    /// FedMP \[27\].
    FedMp,
    /// FjORD \[14\].
    Fjord,
    /// HeteroFL \[43\].
    HeteroFl,
    /// FedBIAD (this paper).
    FedBiad,
    /// FedPAQ \[9\] (8-bit quantisation).
    FedPaq,
    /// signSGD \[11\] (1-bit).
    SignSgd,
    /// STC \[5\] (sparse ternary).
    Stc,
    /// DGC \[4\] (deep gradient compression).
    Dgc,
    /// AFD combined with DGC.
    AfdDgc,
    /// FjORD combined with DGC.
    FjordDgc,
    /// FedBIAD combined with DGC.
    FedBiadDgc,
}

impl Method {
    /// Table I row order.
    pub fn table1() -> [Method; 7] {
        [
            Method::FedAvg,
            Method::FedDrop,
            Method::Afd,
            Method::FedMp,
            Method::Fjord,
            Method::HeteroFl,
            Method::FedBiad,
        ]
    }

    /// Table II column order.
    pub fn table2() -> [Method; 7] {
        [
            Method::FedPaq,
            Method::SignSgd,
            Method::Stc,
            Method::Dgc,
            Method::AfdDgc,
            Method::FjordDgc,
            Method::FedBiadDgc,
        ]
    }

    /// Fig. 2 methods (the motivation experiment).
    pub fn fig2() -> [Method; 5] {
        [
            Method::FedAvg,
            Method::FedDrop,
            Method::Afd,
            Method::Fjord,
            Method::FedBiad,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::FedAvg => "FedAvg",
            Method::FedDrop => "FedDrop",
            Method::Afd => "AFD",
            Method::FedMp => "FedMP",
            Method::Fjord => "FjORD",
            Method::HeteroFl => "HeteroFL",
            Method::FedBiad => "FedBIAD",
            Method::FedPaq => "FedPAQ",
            Method::SignSgd => "SignSGD",
            Method::Stc => "STC",
            Method::Dgc => "DGC",
            Method::AfdDgc => "AFD+DGC",
            Method::FjordDgc => "Fjord+DGC",
            Method::FedBiadDgc => "FedBIAD+DGC",
        }
    }

    /// Parse a CLI name (case-insensitive).
    pub fn parse(s: &str) -> Option<Method> {
        let all = [
            Method::FedAvg,
            Method::FedDrop,
            Method::Afd,
            Method::FedMp,
            Method::Fjord,
            Method::HeteroFl,
            Method::FedBiad,
            Method::FedPaq,
            Method::SignSgd,
            Method::Stc,
            Method::Dgc,
            Method::AfdDgc,
            Method::FjordDgc,
            Method::FedBiadDgc,
        ];
        let needle = s.to_ascii_lowercase().replace(['-', '_', '+'], "");
        all.into_iter()
            .find(|m| m.name().to_ascii_lowercase().replace('+', "") == needle)
    }
}

/// Options shared by all harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Global rounds R.
    pub rounds: usize,
    /// Stage boundary R_b for FedBIAD (paper: R−5).
    pub stage_boundary: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Evaluate every k rounds.
    pub eval_every: usize,
    /// Cap evaluated test samples (0 = all).
    pub eval_max_samples: usize,
    /// Client participation fraction κ (paper: 0.1).
    pub client_fraction: f32,
}

impl RunOpts {
    /// Apply the shared CLI overrides (`--eval-max`, `--fraction`).
    pub fn apply_cli(mut self, cli: &crate::cli::Cli) -> Self {
        self.eval_max_samples = cli.eval_max;
        if let Some(f) = cli.fraction {
            self.client_fraction = f;
        }
        self
    }

    /// Paper-style defaults for `rounds` (R_b = R − 5, κ = 0.1).
    pub fn for_rounds(rounds: usize, seed: u64) -> Self {
        Self {
            rounds,
            stage_boundary: rounds.saturating_sub(5).max(1),
            seed,
            eval_every: 1,
            eval_max_samples: 2_000,
            client_fraction: 0.1,
        }
    }
}

/// Run `method` on `bundle` and return the log.
pub fn run_method(method: Method, bundle: &WorkloadBundle, opts: RunOpts) -> ExperimentLog {
    let cfg = ExperimentConfig {
        rounds: opts.rounds,
        client_fraction: opts.client_fraction,
        seed: opts.seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: opts.eval_every,
        eval_max_samples: opts.eval_max_samples,
    };
    let p = bundle.dropout_rate;
    let model = bundle.model.as_ref();
    let data = &bundle.data;
    let dgc = || Arc::new(Dgc::paper());
    match method {
        Method::FedAvg => Experiment::new(model, data, FedAvg::new(), cfg).run(),
        Method::FedDrop => Experiment::new(model, data, FedDrop::new(p), cfg).run(),
        Method::Afd => Experiment::new(model, data, Afd::new(p), cfg).run(),
        Method::FedMp => Experiment::new(model, data, FedMp::new(p), cfg).run(),
        Method::Fjord => Experiment::new(model, data, Fjord::new(p), cfg).run(),
        Method::HeteroFl => Experiment::new(model, data, HeteroFl::new(p), cfg).run(),
        Method::FedBiad => {
            let algo = FedBiad::new(FedBiadConfig::paper(p, opts.stage_boundary));
            Experiment::new(model, data, algo, cfg).run()
        }
        Method::FedPaq => Experiment::new(
            model,
            data,
            FedAvg::with_sketch(Arc::new(FedPaq::paper())),
            cfg,
        )
        .run(),
        Method::SignSgd => Experiment::new(
            model,
            data,
            FedAvg::with_sketch(Arc::new(SignSgd::default())),
            cfg,
        )
        .run(),
        Method::Stc => Experiment::new(
            model,
            data,
            FedAvg::with_sketch(Arc::new(Stc::paper())),
            cfg,
        )
        .run(),
        Method::Dgc => Experiment::new(model, data, FedAvg::with_sketch(dgc()), cfg).run(),
        Method::AfdDgc => Experiment::new(model, data, Afd::with_sketch(p, dgc()), cfg).run(),
        Method::FjordDgc => Experiment::new(model, data, Fjord::with_sketch(p, dgc()), cfg).run(),
        Method::FedBiadDgc => {
            let algo = FedBiad::with_sketch(FedBiadConfig::paper(p, opts.stage_boundary), dgc());
            Experiment::new(model, data, algo, cfg).run()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for m in Method::table1().into_iter().chain(Method::table2()) {
            assert_eq!(Method::parse(m.name()), Some(m), "{}", m.name());
        }
        assert_eq!(Method::parse("fedbiad+dgc"), Some(Method::FedBiadDgc));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn run_opts_sets_paper_stage_boundary() {
        let o = RunOpts::for_rounds(60, 1);
        assert_eq!(o.stage_boundary, 55);
        let tiny = RunOpts::for_rounds(3, 1);
        assert!(tiny.stage_boundary >= 1);
    }
}
