//! Fig. 6: training-loss and test-accuracy curves vs rounds on MNIST (a)
//! and WikiText-2 (b) for all seven Table-I methods.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin fig6 -- [--rounds 60] [--seed 42]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::methods::{run_method, Method, RunOpts};
use fedbiad_bench::output::save_logs_and_export;
use fedbiad_fl::workload::{build, Workload};

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(60);
    let workloads = cli
        .workloads
        .clone()
        .unwrap_or_else(|| vec![Workload::MnistLike, Workload::WikiText2Like]);
    let mut all = Vec::new();

    for w in workloads {
        let bundle = build(w, cli.scale, cli.seed);
        println!("\n=== Fig. 6 — {} ({} rounds) ===", w.name(), rounds);
        let mut logs = Vec::new();
        for m in Method::table1() {
            let opts = cli.apply(RunOpts::for_rounds(rounds, cli.seed));
            logs.push(run_method(m, &bundle, opts));
            println!("  finished {}", m.name());
        }

        // Print the curves as fixed-step series (the JSON has every round).
        let step = (rounds / 10).max(1);
        println!("\ntrain loss:");
        for log in &logs {
            let series: Vec<String> = log
                .records
                .iter()
                .step_by(step)
                .map(|r| format!("{:.3}", r.train_loss))
                .collect();
            println!("  {:<12} {}", log.method, series.join(" "));
        }
        println!("test accuracy (%):");
        for log in &logs {
            let series: Vec<String> = log
                .records
                .iter()
                .step_by(step)
                .map(|r| format!("{:.1}", r.test_acc * 100.0))
                .collect();
            println!("  {:<12} {}", log.method, series.join(" "));
        }
        all.extend(logs);
    }

    let path = save_logs_and_export("fig6", &all, cli.json_out.as_deref());
    println!("\nfull per-round series in {}", path.display());
}
