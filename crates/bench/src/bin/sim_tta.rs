//! Discrete-event Time-To-Accuracy sweep: server policies ×
//! heterogeneity profiles × methods, on the `fedbiad-sim` virtual clock.
//!
//! Unlike `fig7` (which derives TTA post-hoc from the link formula),
//! every number here comes from a simulated clock that saw each client's
//! own download, compute, and upload — so straggler effects, deadline
//! drops, and buffered-async staleness are first-class.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin sim_tta -- \
//!     [--rounds 15] [--seed 42] [--scale smoke|lab] \
//!     [--workloads mnist,...] [--methods fedavg,fedbiad,...] \
//!     [--policies sync,deadline,fedbuff] \
//!     [--profiles homogeneous,mixed,stragglers] \
//!     [--json-out PATH]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::methods::{Method, RunOpts};
use fedbiad_bench::output::{experiments_dir, export_dump, Table};
use fedbiad_bench::simrun::{parse_profile, run_sim_method, PolicyChoice};
use fedbiad_fl::workload::{build, Workload};
use serde::Serialize;

/// One point of a virtual-clock accuracy trajectory.
#[derive(Clone, Copy, Debug, Serialize)]
struct TtaPoint {
    /// Virtual seconds at which the round's aggregation committed.
    seconds: f64,
    /// Test accuracy after that aggregation.
    test_acc: f64,
}

/// One (workload, method, policy, profile) cell of the sweep.
#[derive(Clone, Debug, Serialize)]
struct SimTtaRow {
    workload: String,
    method: String,
    policy: String,
    profile: String,
    target_acc: f64,
    /// Virtual seconds to the target, `None` if never reached.
    tta_virtual_seconds: Option<f64>,
    final_acc: f64,
    total_virtual_seconds: f64,
    rounds: usize,
    /// The full virtual-clock accuracy curve.
    curve: Vec<TtaPoint>,
}

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(15);
    let workloads = cli
        .workloads
        .clone()
        .unwrap_or_else(|| vec![Workload::MnistLike]);
    let methods: Vec<Method> = match &cli.methods {
        Some(names) => names
            .iter()
            .map(|n| {
                Method::parse(n).unwrap_or_else(|| {
                    eprintln!("unknown method {n}");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => vec![Method::FedAvg, Method::FedPaq, Method::FedBiad],
    };
    let policies: Vec<PolicyChoice> = match &cli.policies {
        Some(names) => names
            .iter()
            .map(|n| {
                PolicyChoice::parse(n).unwrap_or_else(|| {
                    eprintln!("unknown policy {n} (sync|deadline|fedbuff)");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => PolicyChoice::all().to_vec(),
    };
    // Validate profiles up-front, like methods/policies: a typo must
    // abort before any simulation time is spent.
    let profile_names: Vec<String> = cli
        .profiles
        .clone()
        .unwrap_or_else(|| vec!["homogeneous".into(), "stragglers".into()]);
    let profiles: Vec<fedbiad_sim::HeterogeneityProfile> = profile_names
        .iter()
        .map(|n| {
            parse_profile(n).unwrap_or_else(|| {
                eprintln!("unknown profile {n} (homogeneous|mixed|stragglers)");
                std::process::exit(2);
            })
        })
        .collect();

    let mut rows: Vec<SimTtaRow> = Vec::new();
    let mut all_logs: Vec<fedbiad_fl::ExperimentLog> = Vec::new();
    for w in workloads {
        let bundle = build(w, cli.scale, cli.seed);
        println!(
            "\n=== sim_tta — {} (target acc {:.0} %, {} rounds) ===",
            w.name(),
            cli.target.unwrap_or(bundle.target_acc) * 100.0,
            rounds
        );
        let mut t = Table::new(&[
            "Method",
            "Policy",
            "Profile",
            "TTA (virt s)",
            "final acc%",
            "total (virt s)",
        ]);
        for &m in &methods {
            for &pc in &policies {
                for profile in &profiles {
                    let opts = RunOpts::for_rounds(rounds, cli.seed).apply_cli(&cli);
                    let report = run_sim_method(m, &bundle, opts, pc, *profile);
                    let target_acc = cli.target.unwrap_or(bundle.target_acc);
                    let tta = report.time_to_accuracy(target_acc);
                    let final_acc = report.log.records.last().map(|r| r.test_acc).unwrap_or(0.0);
                    let mut log = report.log.clone();
                    log.method = format!("{} @{} [{}]", m.name(), report.policy, report.profile);
                    all_logs.push(log);
                    t.row(vec![
                        m.name().into(),
                        report.policy.clone(),
                        report.profile.clone(),
                        tta.map(|x| format!("{x:.2}"))
                            .unwrap_or_else(|| "not reached".into()),
                        format!("{:.2}", final_acc * 100.0),
                        format!("{:.2}", report.total_virtual_seconds),
                    ]);
                    rows.push(SimTtaRow {
                        workload: w.name().into(),
                        method: m.name().into(),
                        policy: report.policy.clone(),
                        profile: report.profile.clone(),
                        target_acc,
                        tta_virtual_seconds: tta,
                        final_acc,
                        total_virtual_seconds: report.total_virtual_seconds,
                        rounds: report.log.records.len(),
                        curve: report
                            .log
                            .records
                            .iter()
                            .zip(&report.round_end_seconds)
                            .map(|(r, &s)| TtaPoint {
                                seconds: s,
                                test_acc: r.test_acc,
                            })
                            .collect(),
                    });
                }
            }
        }
        println!("{}", t.render());
    }

    let body = serde_json::to_string_pretty(&rows).expect("serialise sim_tta rows");
    let default_path = experiments_dir().join("sim_tta.json");
    std::fs::write(&default_path, &body).expect("write sim_tta json");
    println!("JSON written to {}", default_path.display());
    // `--json-out` keeps the same contract as every other harness binary:
    // the full ExperimentLog dump (round records + invocation). The TTA
    // curves above stay in the default sim_tta.json artifact.
    if let Some(path) = &cli.json_out {
        export_dump("sim_tta", &all_logs, path);
    }
    println!(
        "\nshape targets: on the stragglers profile the sync barrier pays the \
         slowest client every round, so fedbuff (and usually the deadline \
         policy) reach the target accuracy in less virtual time."
    );
}
