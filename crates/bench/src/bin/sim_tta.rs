//! Discrete-event Time-To-Accuracy sweep: server policies ×
//! heterogeneity profiles × methods, on the `fedbiad-sim` virtual clock.
//!
//! Unlike `fig7` (which derives TTA post-hoc from the link formula),
//! every number here comes from a simulated clock that saw each client's
//! own download, compute, and upload — so straggler effects, deadline
//! drops, and buffered-async staleness are first-class.
//!
//! Since PR 3 this binary is a thin wrapper: it loads the bundled
//! `scenarios/sim_tta.toml` spec, applies any CLI overrides, and lets
//! the `fedbiad-scenario` engine execute the grid. Only the TTA-curve
//! JSON shape and table formatting live here.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin sim_tta -- \
//!     [--rounds 15] [--seed 42] [--scale smoke|lab] \
//!     [--workloads mnist,...] [--methods fedavg,fedbiad,...] \
//!     [--policies sync,deadline,fedbuff] \
//!     [--profiles homogeneous,mixed,stragglers] \
//!     [--json-out PATH]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::output::{experiments_dir, export_dump, Table};
use fedbiad_scenario::{execute, RunOutcome, ScenarioSpec};
use serde::Serialize;

/// The bundled spec this binary wraps.
const SPEC: &str = include_str!("../../../../scenarios/sim_tta.toml");

/// One point of a virtual-clock accuracy trajectory.
#[derive(Clone, Copy, Debug, Serialize)]
struct TtaPoint {
    /// Virtual seconds at which the round's aggregation committed.
    seconds: f64,
    /// Test accuracy after that aggregation.
    test_acc: f64,
}

/// One (workload, method, policy, profile) cell of the sweep.
#[derive(Clone, Debug, Serialize)]
struct SimTtaRow {
    workload: String,
    method: String,
    policy: String,
    profile: String,
    target_acc: f64,
    /// Virtual seconds to the target, `None` if never reached.
    tta_virtual_seconds: Option<f64>,
    final_acc: f64,
    total_virtual_seconds: f64,
    rounds: usize,
    /// The full virtual-clock accuracy curve.
    curve: Vec<TtaPoint>,
}

fn row_of(o: &RunOutcome) -> SimTtaRow {
    let sim = o.sim.as_ref().expect("sim_tta outcomes carry sim meta");
    SimTtaRow {
        workload: o.run.workload.name().into(),
        method: o.run.method.name().into(),
        policy: sim.policy.clone(),
        profile: sim.profile.clone(),
        target_acc: sim.target_acc,
        tta_virtual_seconds: sim.tta_virtual_seconds,
        final_acc: o.log.records.last().map(|r| r.test_acc).unwrap_or(0.0),
        total_virtual_seconds: sim.total_virtual_seconds,
        rounds: o.log.records.len(),
        curve: o
            .log
            .records
            .iter()
            .zip(&sim.round_end_seconds)
            .map(|(r, &s)| TtaPoint {
                seconds: s,
                test_acc: r.test_acc,
            })
            .collect(),
    }
}

fn main() {
    let cli = Cli::parse();
    let mut spec = ScenarioSpec::from_toml_str(SPEC).expect("bundled sim_tta spec is valid");
    let overrides = cli.scenario_overrides().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    spec.apply_overrides(&overrides).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let outcomes = execute(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let mut rows: Vec<SimTtaRow> = Vec::new();
    let mut all_logs: Vec<fedbiad_fl::ExperimentLog> = Vec::new();
    // Outcomes arrive in grid order (workload-major), so one table per
    // workload is a contiguous slice.
    let mut current_workload: Option<&str> = None;
    let mut table: Option<Table> = None;
    let headers = [
        "Method",
        "Policy",
        "Profile",
        "TTA (virt s)",
        "final acc%",
        "total (virt s)",
    ];
    for o in &outcomes {
        let row = row_of(o);
        if current_workload != Some(o.run.workload.name()) {
            if let Some(t) = table.take() {
                println!("{}", t.render());
            }
            current_workload = Some(o.run.workload.name());
            println!(
                "\n=== sim_tta — {} (target acc {:.0} %, {} rounds) ===",
                row.workload,
                row.target_acc * 100.0,
                spec.run.rounds
            );
            table = Some(Table::new(&headers));
        }
        let t = table.as_mut().expect("table open");
        t.row(vec![
            row.method.clone(),
            row.policy.clone(),
            row.profile.clone(),
            row.tta_virtual_seconds
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "not reached".into()),
            format!("{:.2}", row.final_acc * 100.0),
            format!("{:.2}", row.total_virtual_seconds),
        ]);
        let mut log = o.log.clone();
        log.method = format!("{} @{} [{}]", row.method, row.policy, row.profile);
        all_logs.push(log);
        rows.push(row);
    }
    if let Some(t) = table.take() {
        println!("{}", t.render());
    }

    let body = serde_json::to_string_pretty(&rows).expect("serialise sim_tta rows");
    let default_path = experiments_dir().join("sim_tta.json");
    std::fs::write(&default_path, &body).expect("write sim_tta json");
    println!("JSON written to {}", default_path.display());
    // `--json-out` keeps the same contract as every other harness binary:
    // the full ExperimentLog dump (round records + invocation). The TTA
    // curves above stay in the default sim_tta.json artifact.
    if let Some(path) = &cli.json_out {
        export_dump("sim_tta", &all_logs, path);
    }
    println!(
        "\nshape targets: on the stragglers profile the sync barrier pays the \
         slowest client every round, so fedbuff (and usually the deadline \
         policy) reach the target accuracy in less virtual time."
    );
}
