//! `bench_perf` — the machine-readable perf harness behind
//! `BENCH_kernels.json`.
//!
//! Measures the batched execution engine against the per-sample
//! reference path on the hot loops the ROADMAP cares about — the batch-32
//! MLP local update first among them — plus the underlying GEMM kernels,
//! and writes one JSON report so every future PR can be diffed against
//! the committed baseline (see BENCHMARKS.md).
//!
//! ```text
//! cargo run --release -p fedbiad-bench --bin bench_perf -- \
//!     [--smoke] [--out PATH] [--gate BASELINE [--tolerance F]]
//! ```
//!
//! `--smoke` shrinks repetitions for CI; `--out` defaults to
//! `BENCH_kernels.json` in the current directory. `--gate BASELINE`
//! additionally compares the fresh run against the committed baseline
//! (speedup ratios, default tolerance 15 % — see `fedbiad_bench::gate`)
//! and exits non-zero on any regression or missing entry. The gate must
//! run at the same fidelity the baseline was recorded at (full vs
//! `--smoke`), because smoke runs shrink cohort sizes and therefore
//! change entry names.

use fedbiad_bench::gate::{self, BenchEntry, BenchReport};
use fedbiad_fl::algorithm::TrainConfig;
use fedbiad_fl::client::{run_local_training, LocalRunId, NoHooks};
use fedbiad_fl::round::evaluate_model;
use fedbiad_fl::workload::{build, Scale, Workload};
use fedbiad_nn::model::ReferencePath;
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::{ops, Matrix};
use rand::Rng;
use std::time::Instant;

/// One timed run of `f`, in ns.
fn time_once(f: &mut impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e9
}

/// Best-of-`samples` for a reference/batched pair, sampled alternately
/// (reference, batched, reference, …) rather than in two blocks, so
/// machine drift lands on both sides of the speedup ratio instead of
/// skewing whichever block ran during the quieter stretch. Minimum
/// rather than median: on a shared machine the contention tail is
/// one-sided, so the fastest observed run is the most stable estimate
/// of the true cost of the work.
fn time_pair_ns(
    samples: usize,
    mut reference: impl FnMut(),
    mut batched: impl FnMut(),
) -> (f64, f64) {
    reference();
    batched();
    let mut r = f64::INFINITY;
    let mut b = f64::INFINITY;
    for _ in 0..samples {
        r = r.min(time_once(&mut reference));
        b = b.min(time_once(&mut batched));
    }
    (r, b)
}

fn entry(name: &str, reference_ns: f64, batched_ns: f64) -> BenchEntry {
    let e = BenchEntry {
        name: name.to_string(),
        reference_ns,
        batched_ns,
        speedup: reference_ns / batched_ns,
    };
    println!(
        "{:<34} reference {:>12.0} ns  batched {:>12.0} ns  speedup {:.2}x",
        e.name, e.reference_ns, e.batched_ns, e.speedup
    );
    e
}

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = stream(seed, StreamTag::Init, 0, 0);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    m
}

fn kernel_entries(samples: usize, out: &mut Vec<BenchEntry>) {
    // Lab-scale MLP hot-loop shapes: batch 32, 784 → 128.
    const M: usize = 32;
    const N: usize = 128;
    const K: usize = 784;
    let w_nt = filled(N, K, 1);
    let w_nn = filled(N, K, 2); // used as N×K for gemv_t/gemm_nn (k=N rows)
    let x = filled(M, K, 3);
    let delta = filled(M, N, 4);
    // Each side gets its own scratch buffer so the interleaved pair
    // timing can hold both closures at once.
    let mut c_r = vec![0.0f32; M * N];
    let mut c_b = vec![0.0f32; M * N];
    let (r, b) = time_pair_ns(
        samples,
        || {
            for i in 0..M {
                ops::gemv(&w_nt, x.row(i), &[], &mut c_r[i * N..(i + 1) * N]);
            }
        },
        || ops::gemm_nt(x.as_slice(), &w_nt, M, &mut c_b),
    );
    out.push(entry("kernel/forward_32x128x784", r, b));

    let mut gw_r = Matrix::zeros(N, K);
    let mut gw_b = Matrix::zeros(N, K);
    let (r, b) = time_pair_ns(
        samples,
        || {
            gw_r.zero();
            for s in 0..M {
                ops::ger(&mut gw_r, 1.0, delta.row(s), x.row(s));
            }
        },
        || {
            gw_b.zero();
            ops::gemm_tn_acc(delta.as_slice(), x.as_slice(), M, &mut gw_b);
        },
    );
    out.push(entry("kernel/grad_acc_32x128x784", r, b));

    let mut dx_r = vec![0.0f32; M * K];
    let mut dx_b = vec![0.0f32; M * K];
    let (r, b) = time_pair_ns(
        samples,
        || {
            for s in 0..M {
                ops::gemv_t(&w_nn, delta.row(s), &mut dx_r[s * K..(s + 1) * K]);
            }
        },
        || ops::gemm_nn(delta.as_slice(), &w_nn, M, &mut dx_b),
    );
    out.push(entry("kernel/backprop_32x128x784", r, b));
}

fn local_update_entries(smoke: bool, samples: usize, out: &mut Vec<BenchEntry>) {
    // The acceptance bench: one batch-32 MLP local update (the client's
    // full per-round work at lab scale), per-sample path vs batched.
    let scale = if smoke { Scale::Smoke } else { Scale::Lab };
    for (workload, label) in [
        (Workload::MnistLike, "local_update/mlp_batch32"),
        (Workload::PtbLike, "local_update/lstm_batch16"),
    ] {
        let bundle = build(workload, scale, 7);
        let model = bundle.model.as_ref();
        let reference = ReferencePath(model);
        let global = model.init_params(&mut stream(7, StreamTag::Init, 0, 0));
        let cfg = TrainConfig {
            local_iters: if smoke { 2 } else { 8 },
            batch_size: if workload == Workload::MnistLike {
                32
            } else {
                16
            },
            ..bundle.train
        };
        let data = &bundle.data.clients[0];
        let id = LocalRunId {
            seed: 7,
            round: 0,
            client: 0,
        };
        let (r, b) = time_pair_ns(
            samples,
            || {
                let mut u = global.clone();
                run_local_training(id, &reference, data, &cfg, &mut u, &mut NoHooks);
            },
            || {
                let mut u = global.clone();
                run_local_training(id, model, data, &cfg, &mut u, &mut NoHooks);
            },
        );
        out.push(entry(label, r, b));

        let (r, b) = time_pair_ns(
            samples,
            || {
                evaluate_model(
                    &reference,
                    &global,
                    &bundle.data.test,
                    bundle.eval_topk,
                    512,
                );
            },
            || {
                evaluate_model(model, &global, &bundle.data.test, bundle.eval_topk, 512);
            },
        );
        out.push(entry(&label.replace("local_update", "evaluate"), r, b));
    }
}

/// Run `reference` and `batched` at 1/2/8 worker threads, emitting one
/// entry per leg (`{label}_{t}t`). Restores `RAYON_NUM_THREADS` after.
fn threaded_entries(
    samples: usize,
    label: &str,
    mut reference: impl FnMut(),
    mut batched: impl FnMut(),
    out: &mut Vec<BenchEntry>,
) {
    const THREADS: [&str; 3] = ["1", "2", "8"];
    let prev_threads = std::env::var("RAYON_NUM_THREADS").ok();
    let mut r = [f64::INFINITY; 3];
    let mut b = [f64::INFINITY; 3];
    for t in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", t);
        reference();
        batched();
    }
    // Interleave samples round-robin across the thread settings (one
    // sample per leg per round) so machine drift lands on every leg
    // equally, then take each leg's best time. The leg order rotates
    // every round: a fixed order would correlate leg position with any
    // periodic interference (e.g. a CPU-quota throttle window) and bias
    // whichever leg always samples first.
    for round in 0..samples {
        for j in 0..THREADS.len() {
            let i = (round + j) % THREADS.len();
            std::env::set_var("RAYON_NUM_THREADS", THREADS[i]);
            r[i] = r[i].min(time_once(&mut reference));
            b[i] = b[i].min(time_once(&mut batched));
        }
    }
    // Legs whose *effective* worker count coincides execute byte-identical
    // schedules — the executing pool is capped at the machine's available
    // parallelism (see vendor/rayon), and results are thread-count
    // invariant — so their samples measure the same computation. Pool
    // them before taking each leg's best time: on a single-core machine
    // all three legs report one shared minimum instead of three
    // independent noise draws, while on a multi-core machine the legs
    // stay separate measurements.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let eff: Vec<usize> = THREADS
        .iter()
        .map(|t| t.parse::<usize>().expect("numeric leg").min(avail))
        .collect();
    let pooled = |vals: &[f64; 3], i: usize| -> f64 {
        vals.iter()
            .zip(&eff)
            .filter(|&(_, e)| *e == eff[i])
            .map(|(v, _)| *v)
            .fold(f64::INFINITY, f64::min)
    };
    for (i, t) in THREADS.iter().enumerate() {
        out.push(entry(
            &format!("{label}_{t}t"),
            pooled(&r, i),
            pooled(&b, i),
        ));
    }
    match prev_threads {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}

/// FedBIAD-style masked-weights uploads (p = 0.5 row coverage) as both
/// the dense decoded twin and the actual wire-encoded frame.
fn masked_uploads(
    global: &fedbiad_nn::ParamSet,
    clients: usize,
) -> (
    Vec<fedbiad_fl::upload::Upload>,
    Vec<fedbiad_fl::upload::Upload>,
) {
    use fedbiad_core::pattern::{keep_count, DropPattern};
    use fedbiad_fl::upload::{Upload, UploadKind};

    let j = global.num_row_units();
    let dense: Vec<Upload> = (0..clients)
        .map(|k| {
            let mut rng = stream(42, StreamTag::Pattern, 0, k as u64);
            let pat = DropPattern::sample_global(j, keep_count(j, 0.5), &mut rng);
            Upload::masked_weights(global.clone(), pat.to_mask(global))
        })
        .collect();
    let wire: Vec<Upload> = dense
        .iter()
        .map(|u| {
            Upload::wire(
                UploadKind::Weights,
                fedbiad_compress::codec::encode_weights(u.params(), &u.coverage),
                u.coverage.clone(),
                u.wire_bytes,
            )
        })
        .collect();
    (dense, wire)
}

/// Sketched delta uploads from a real compressor payload: the structural
/// payload (for the reference path, which must reconstruct the dense
/// delta itself) + the wire frame per client.
fn delta_uploads(
    global: &fedbiad_nn::ParamSet,
    comp: &dyn fedbiad_compress::Compressor,
    clients: usize,
) -> (
    Vec<fedbiad_compress::codec::Payload>,
    Vec<fedbiad_fl::upload::Upload>,
) {
    use fedbiad_compress::{codec, ClientState};
    use fedbiad_fl::upload::{Upload, UploadKind};
    use fedbiad_nn::ModelMask;

    let n = global.flatten().len();
    let mut payloads = Vec::with_capacity(clients);
    let mut wire = Vec::with_capacity(clients);
    for k in 0..clients {
        let mut drng = stream(43, StreamTag::Init, 1, k as u64);
        let delta: Vec<f32> = (0..n).map(|_| drng.gen_range(-0.05f32..0.05)).collect();
        let mut st = ClientState::default();
        let mut crng = stream(44, StreamTag::Compress, 0, k as u64);
        let c = comp.compress(&mut st, &delta, 0, &mut crng);
        wire.push(Upload::wire(
            UploadKind::Delta,
            codec::encode_delta(&c.payload),
            ModelMask::full(global),
            c.wire_bytes,
        ));
        payloads.push(c.payload);
    }
    (payloads, wire)
}

/// Server-side aggregation: the dense reference engine vs the sharded
/// streaming engine, at 1/2/8 worker threads. Four cohorts at MLP scale:
/// masked weights at the standard (20-client) and large (200-client)
/// cohort sizes, plus sketched deltas through a sparse-f32 payload (DGC)
/// and a bit-packed 8-bit payload (FedPAQ). The streaming runs consume
/// real wire-encoded bodies, so the numbers include decode cost. Smoke
/// runs shrink the cohorts (8 / 40 clients), which changes the entry
/// names — gate against a baseline of matching fidelity.
fn aggregation_entries(smoke: bool, samples: usize, out: &mut Vec<BenchEntry>) {
    use fedbiad_compress::dgc::Dgc;
    use fedbiad_compress::fedpaq::FedPaq;
    use fedbiad_fl::aggregate::{
        aggregate_deltas, aggregate_weights, AggSettings, RobustKind, ZeroMode,
    };
    use fedbiad_fl::upload::{Upload, UploadBody, UploadKind};
    use fedbiad_nn::mlp::MlpModel;
    use fedbiad_nn::{Model, ModelMask};

    let model = MlpModel::new(784, 128, 10);
    let global = model.init_params(&mut stream(41, StreamTag::Init, 0, 0));
    let clients = if smoke { 8 } else { 20 };
    let big = if smoke { 40 } else { 200 };
    // The thread legs of each aggregate entry time identical single-core
    // work whose differences sit inside the machine's noise floor, so
    // they get extra rounds for the per-leg minima to converge.
    let samples = if smoke { samples } else { samples * 4 };

    for cohort in [clients, big] {
        let (dense_ups, wire_ups) = masked_uploads(&global, cohort);
        threaded_entries(
            samples,
            &format!("aggregate/stalefill_{cohort}c"),
            || {
                let mut g = global.clone();
                let ups: Vec<(f32, &Upload)> = dense_ups.iter().map(|u| (1.0, u)).collect();
                aggregate_weights(&mut g, &ups, ZeroMode::StaleFill, AggSettings::default())
                    .unwrap();
            },
            || {
                let mut g = global.clone();
                let ups: Vec<(f32, &Upload)> = wire_ups.iter().map(|u| (1.0, u)).collect();
                aggregate_weights(&mut g, &ups, ZeroMode::StaleFill, AggSettings::sharded(64))
                    .unwrap();
            },
            out,
        );
    }

    // The robust estimator family: the per-coordinate trimmed mean (20%
    // per tail) is an order statistic, so neither engine can stream it as
    // a fold — both gather per-coordinate columns and sort. This entry
    // pins the streaming engine's per-shard gather (fused wire decode,
    // arena scratch) against the dense gather, the robust analogue of the
    // stalefill entries above.
    {
        let (dense_ups, wire_ups) = masked_uploads(&global, clients);
        let trimmed = RobustKind::TrimmedMean { trim_frac: 0.2 };
        threaded_entries(
            samples,
            &format!("aggregate/trimmed_mean_{clients}c"),
            || {
                let mut g = global.clone();
                let ups: Vec<(f32, &Upload)> = dense_ups.iter().map(|u| (1.0, u)).collect();
                aggregate_weights(
                    &mut g,
                    &ups,
                    ZeroMode::StaleFill,
                    AggSettings::default().with_robust(trimmed),
                )
                .unwrap();
            },
            || {
                let mut g = global.clone();
                let ups: Vec<(f32, &Upload)> = wire_ups.iter().map(|u| (1.0, u)).collect();
                aggregate_weights(
                    &mut g,
                    &ups,
                    ZeroMode::StaleFill,
                    AggSettings::sharded(64).with_robust(trimmed),
                )
                .unwrap();
            },
            out,
        );
    }

    let sparse = Dgc {
        keep_fraction: 0.25,
        momentum: 0.9,
        warmup_rounds: 0,
    };
    let quant = FedPaq::paper();
    for (label, comp) in [
        ("sparse_f32", &sparse as &dyn fedbiad_compress::Compressor),
        ("quant8", &quant as &dyn fedbiad_compress::Compressor),
    ] {
        let (payloads, wire_ups) = delta_uploads(&global, comp, clients);
        threaded_entries(
            samples,
            &format!("aggregate/delta_{label}_{clients}c"),
            || {
                // Both engines start from the same compressed payloads:
                // the dense reference must first materialise each
                // client's dense delta (decode + unflatten), exactly the
                // per-client O(model) buffers the streaming engine
                // exists to avoid.
                let mut g = global.clone();
                let dense_ups: Vec<Upload> = payloads
                    .iter()
                    .map(|p| {
                        let mut dp = global.zeros_like();
                        dp.unflatten_from(&p.decode_dense());
                        Upload {
                            kind: UploadKind::Delta,
                            coverage: ModelMask::full(&global),
                            wire_bytes: p.wire_bytes(),
                            body: UploadBody::Dense(dp),
                        }
                    })
                    .collect();
                let ups: Vec<(f32, &Upload)> = dense_ups.iter().map(|u| (1.0, u)).collect();
                aggregate_deltas(&mut g, &ups, AggSettings::default()).unwrap();
            },
            || {
                let mut g = global.clone();
                let ups: Vec<(f32, &Upload)> = wire_ups.iter().map(|u| (1.0, u)).collect();
                aggregate_deltas(&mut g, &ups, AggSettings::sharded(64)).unwrap();
            },
            out,
        );
    }
}

/// One full simulated round over a lazily registered million-client
/// population (10⁵ in smoke mode — the name changes, gate at matching
/// fidelity). Reference = the legacy `Shuffle` sampler, which is O(K)
/// per round (it enumerates and shuffles every registered id); batched
/// = the `Sparse` (Floyd's) sampler, O(cohort). Everything else —
/// lazy shard derivation, on-demand profiles, tree-reduced streaming
/// aggregation — is identical on both sides, so the pinned speedup
/// measures exactly the cost of touching the registered population, and
/// collapses toward 1.0 if an O(K)-per-round scan creeps back into the
/// sparse path.
fn sim_entries(smoke: bool, samples: usize, out: &mut Vec<BenchEntry>) {
    use fedbiad_fl::aggregate::AggSettings;
    use fedbiad_fl::round::SamplerKind;
    use fedbiad_fl::runner::ExperimentConfig;
    use fedbiad_fl::workload::{build_with, PopulationOverride, WorkloadOverrides};
    use fedbiad_sim::{HeterogeneityProfile, SimConfig, Simulator, SyncBarrier};

    let (clients, label) = if smoke {
        (100_000usize, "sim/million_round_smoke")
    } else {
        (1_000_000usize, "sim/million_round")
    };
    let overrides = WorkloadOverrides {
        population: Some(PopulationOverride {
            clients,
            samples_per_client: 60,
        }),
        ..Default::default()
    };
    let bundle = build_with(Workload::MnistLike, Scale::Smoke, 42, &overrides);
    let cfg = |sampler: SamplerKind| ExperimentConfig {
        rounds: 1,
        client_fraction: 0.1,
        seed: 42,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 64,
        agg: AggSettings::sharded_tree(64, 16),
        cohort: Some(64),
        sampler,
        adversary: None,
        churn: None,
    };
    let run = |sampler: SamplerKind| {
        let sim_cfg = SimConfig::new(cfg(sampler), HeterogeneityProfile::homogeneous_5g());
        let report = Simulator::new(
            bundle.model.as_ref(),
            &bundle.data,
            fedbiad_core::baselines::FedAvg::new(),
            SyncBarrier,
            sim_cfg,
        )
        .run();
        assert_eq!(report.log.records.len(), 1);
    };
    let (r, b) = time_pair_ns(
        samples,
        || run(SamplerKind::Shuffle),
        || run(SamplerKind::Sparse),
    );
    out.push(entry(label, r, b));
}

/// The telemetry zero-overhead contract, as a gate entry: a hot loop of
/// ~10 ns FNV mixing steps, bare (reference) vs instrumented with
/// `span!` + `counter!` (batched). The bench harness compiles the
/// collector in, but no capture is active, so each macro must cost one
/// relaxed atomic load and nothing else — the recorded speedup sits at
/// ≈ 1.0 and the gate pins it there. A regression here means someone
/// made the disabled path allocate, lock or evaluate arguments.
fn telemetry_noop_entry(samples: usize, out: &mut Vec<BenchEntry>) {
    use std::hint::black_box;
    // The harness must have the collector compiled in, or both sides
    // would measure the literal no-op and the entry would pin nothing.
    assert!(
        fedbiad_telemetry::compiled(),
        "bench harness built without the telemetry `enabled` feature"
    );
    const ITERS: usize = 100_000;
    fn mix(i: usize) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ i as u64;
        for _ in 0..6 {
            h ^= h >> 33;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
    let (r, b) = time_pair_ns(
        samples,
        || {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(mix(black_box(i)));
            }
            black_box(acc);
        },
        || {
            let mut acc = 0u64;
            for i in 0..ITERS {
                let _span = fedbiad_telemetry::span!("bench.noop", iter = i);
                fedbiad_telemetry::counter!("bench.noop_bytes", 8u64);
                acc = acc.wrapping_add(mix(black_box(i)));
            }
            black_box(acc);
        },
    );
    out.push(entry("telemetry/disabled_noop_100k", r, b));
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut tolerance = gate::DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            "--gate" => match args.next() {
                Some(p) => baseline_path = Some(p),
                None => {
                    eprintln!("--gate needs a baseline path");
                    std::process::exit(2);
                }
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_perf [--smoke] [--out PATH] [--gate BASELINE [--tolerance F]]"
                );
                return;
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --smoke / --out PATH / --gate BASELINE / --tolerance F)"
                );
                std::process::exit(2);
            }
        }
    }
    // Parse the baseline up front so a bad path fails before the run.
    let baseline: Option<gate::BenchReport> = baseline_path.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {p}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {p}: {e:?}");
            std::process::exit(2);
        })
    });

    let samples = if smoke { 5 } else { 15 };
    let mut entries = Vec::new();
    // The raw kernels run a few hundred µs per sample, so their minima
    // need far more draws to converge than the ms-scale entries; extra
    // samples are nearly free at this granularity.
    kernel_entries(if smoke { samples } else { samples * 8 }, &mut entries);
    local_update_entries(smoke, samples, &mut entries);
    aggregation_entries(smoke, samples, &mut entries);
    sim_entries(smoke, samples, &mut entries);
    // Sub-ms loop: extra samples are nearly free, minima converge better.
    telemetry_noop_entry(if smoke { samples } else { samples * 8 }, &mut entries);

    let report = BenchReport {
        schema: gate::SCHEMA.to_string(),
        smoke,
        threads: rayon::current_num_threads(),
        entries,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if let Some(baseline) = baseline {
        let findings = gate::compare(&baseline, &report, tolerance);
        if findings.is_empty() {
            println!(
                "perf gate: PASS ({} baseline entries within {:.0}% of committed speedups)",
                baseline.entries.len(),
                tolerance * 100.0
            );
        } else {
            eprintln!("perf gate: FAIL ({} finding(s)):", findings.len());
            for f in &findings {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
