//! `bench_perf` — the machine-readable perf harness behind
//! `BENCH_kernels.json`.
//!
//! Measures the batched execution engine against the per-sample
//! reference path on the hot loops the ROADMAP cares about — the batch-32
//! MLP local update first among them — plus the underlying GEMM kernels,
//! and writes one JSON report so every future PR can be diffed against
//! the committed baseline (see BENCHMARKS.md).
//!
//! ```text
//! cargo run --release -p fedbiad-bench --bin bench_perf -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks repetitions for CI; `--out` defaults to
//! `BENCH_kernels.json` in the current directory.

use fedbiad_fl::algorithm::TrainConfig;
use fedbiad_fl::client::{run_local_training, LocalRunId, NoHooks};
use fedbiad_fl::round::evaluate_model;
use fedbiad_fl::workload::{build, Scale, Workload};
use fedbiad_nn::model::ReferencePath;
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::{ops, Matrix};
use rand::Rng;
use serde::Serialize;
use std::time::Instant;

/// One reference-vs-batched measurement.
#[derive(Serialize)]
struct BenchEntry {
    /// What was measured.
    name: String,
    /// Per-sample reference path, nanoseconds per call (median).
    reference_ns: f64,
    /// Batched engine, nanoseconds per call (median).
    batched_ns: f64,
    /// `reference_ns / batched_ns`.
    speedup: f64,
}

/// The `BENCH_kernels.json` document.
#[derive(Serialize)]
struct BenchReport {
    /// Schema tag for forward compatibility.
    schema: String,
    /// Whether this was a `--smoke` (CI) run.
    smoke: bool,
    /// Rayon worker threads available during the run.
    threads: usize,
    /// All measurements.
    entries: Vec<BenchEntry>,
}

/// Median of `samples` timed runs of `f` (after one warm-up), in ns.
fn time_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn entry(name: &str, reference_ns: f64, batched_ns: f64) -> BenchEntry {
    let e = BenchEntry {
        name: name.to_string(),
        reference_ns,
        batched_ns,
        speedup: reference_ns / batched_ns,
    };
    println!(
        "{:<34} reference {:>12.0} ns  batched {:>12.0} ns  speedup {:.2}x",
        e.name, e.reference_ns, e.batched_ns, e.speedup
    );
    e
}

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = stream(seed, StreamTag::Init, 0, 0);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    m
}

fn kernel_entries(samples: usize, out: &mut Vec<BenchEntry>) {
    // Lab-scale MLP hot-loop shapes: batch 32, 784 → 128.
    const M: usize = 32;
    const N: usize = 128;
    const K: usize = 784;
    let w_nt = filled(N, K, 1);
    let w_nn = filled(N, K, 2); // used as N×K for gemv_t/gemm_nn (k=N rows)
    let x = filled(M, K, 3);
    let delta = filled(M, N, 4);
    let mut c = vec![0.0f32; M * N];
    let r = time_ns(samples, || {
        for i in 0..M {
            ops::gemv(&w_nt, x.row(i), &[], &mut c[i * N..(i + 1) * N]);
        }
    });
    let b = time_ns(samples, || ops::gemm_nt(x.as_slice(), &w_nt, M, &mut c));
    out.push(entry("kernel/forward_32x128x784", r, b));

    let mut gw = Matrix::zeros(N, K);
    let r = time_ns(samples, || {
        gw.zero();
        for s in 0..M {
            ops::ger(&mut gw, 1.0, delta.row(s), x.row(s));
        }
    });
    let b = time_ns(samples, || {
        gw.zero();
        ops::gemm_tn_acc(delta.as_slice(), x.as_slice(), M, &mut gw);
    });
    out.push(entry("kernel/grad_acc_32x128x784", r, b));

    let mut dx = vec![0.0f32; M * K];
    let r = time_ns(samples, || {
        for s in 0..M {
            ops::gemv_t(&w_nn, delta.row(s), &mut dx[s * K..(s + 1) * K]);
        }
    });
    let b = time_ns(samples, || {
        ops::gemm_nn(delta.as_slice(), &w_nn, M, &mut dx)
    });
    out.push(entry("kernel/backprop_32x128x784", r, b));
}

fn local_update_entries(smoke: bool, samples: usize, out: &mut Vec<BenchEntry>) {
    // The acceptance bench: one batch-32 MLP local update (the client's
    // full per-round work at lab scale), per-sample path vs batched.
    let scale = if smoke { Scale::Smoke } else { Scale::Lab };
    for (workload, label) in [
        (Workload::MnistLike, "local_update/mlp_batch32"),
        (Workload::PtbLike, "local_update/lstm_batch16"),
    ] {
        let bundle = build(workload, scale, 7);
        let model = bundle.model.as_ref();
        let reference = ReferencePath(model);
        let global = model.init_params(&mut stream(7, StreamTag::Init, 0, 0));
        let cfg = TrainConfig {
            local_iters: if smoke { 2 } else { 8 },
            batch_size: if workload == Workload::MnistLike {
                32
            } else {
                16
            },
            ..bundle.train
        };
        let data = &bundle.data.clients[0];
        let id = LocalRunId {
            seed: 7,
            round: 0,
            client: 0,
        };
        let r = time_ns(samples, || {
            let mut u = global.clone();
            run_local_training(id, &reference, data, &cfg, &mut u, &mut NoHooks);
        });
        let b = time_ns(samples, || {
            let mut u = global.clone();
            run_local_training(id, model, data, &cfg, &mut u, &mut NoHooks);
        });
        out.push(entry(label, r, b));

        let r = time_ns(samples, || {
            evaluate_model(
                &reference,
                &global,
                &bundle.data.test,
                bundle.eval_topk,
                512,
            );
        });
        let b = time_ns(samples, || {
            evaluate_model(model, &global, &bundle.data.test, bundle.eval_topk, 512);
        });
        out.push(entry(&label.replace("local_update", "evaluate"), r, b));
    }
}

/// Server-side aggregation: the dense reference engine vs the sharded
/// streaming engine, at 1/2/8 worker threads. The uploads are FedBIAD-style
/// masked weights (20 clients, p = 0.5) at MLP scale; the streaming runs
/// consume real wire-encoded bodies, so the numbers include decode cost.
fn aggregation_entries(smoke: bool, samples: usize, out: &mut Vec<BenchEntry>) {
    use fedbiad_core::pattern::{keep_count, DropPattern};
    use fedbiad_fl::aggregate::{aggregate_weights, AggSettings, ZeroMode};
    use fedbiad_fl::upload::{Upload, UploadKind};
    use fedbiad_nn::mlp::MlpModel;
    use fedbiad_nn::Model;

    let model = MlpModel::new(784, 128, 10);
    let global = model.init_params(&mut stream(41, StreamTag::Init, 0, 0));
    let j = global.num_row_units();
    let clients = if smoke { 8 } else { 20 };
    let dense_ups: Vec<Upload> = (0..clients)
        .map(|k| {
            let mut rng = stream(42, StreamTag::Pattern, 0, k as u64);
            let pat = DropPattern::sample_global(j, keep_count(j, 0.5), &mut rng);
            Upload::masked_weights(global.clone(), pat.to_mask(&global))
        })
        .collect();
    let wire_ups: Vec<Upload> = dense_ups
        .iter()
        .map(|u| {
            Upload::wire(
                UploadKind::Weights,
                fedbiad_compress::codec::encode_weights(u.params(), &u.coverage),
                u.coverage.clone(),
                u.wire_bytes,
            )
        })
        .collect();

    let prev_threads = std::env::var("RAYON_NUM_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let r = time_ns(samples, || {
            let mut g = global.clone();
            let ups: Vec<(f32, &Upload)> = dense_ups.iter().map(|u| (1.0, u)).collect();
            aggregate_weights(&mut g, &ups, ZeroMode::StaleFill, AggSettings::default()).unwrap();
        });
        let b = time_ns(samples, || {
            let mut g = global.clone();
            let ups: Vec<(f32, &Upload)> = wire_ups.iter().map(|u| (1.0, u)).collect();
            aggregate_weights(&mut g, &ups, ZeroMode::StaleFill, AggSettings::sharded(64)).unwrap();
        });
        out.push(entry(
            &format!("aggregate/stalefill_{clients}c_{threads}t"),
            r,
            b,
        ));
    }
    match prev_threads {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bench_perf [--smoke] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown flag `{other}` (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let samples = if smoke { 5 } else { 15 };
    let mut entries = Vec::new();
    kernel_entries(samples, &mut entries);
    local_update_entries(smoke, samples, &mut entries);
    aggregation_entries(smoke, samples, &mut entries);

    let report = BenchReport {
        schema: "fedbiad-bench-kernels/v1".to_string(),
        smoke,
        threads: rayon::current_num_threads(),
        entries,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
}
