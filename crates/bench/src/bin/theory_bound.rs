//! Theorem 1 validation (experiment E7): evaluate the analytic
//! generalization-error bound (eqs. (13)–(15)) across rounds and compare
//! its *shape* with a measured generalization gap (train-minus-test loss)
//! from an actual FedBIAD run.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin theory_bound -- [--rounds 40]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::methods::{run_method, Method, RunOpts};
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_core::spike_slab::posterior_variance;
use fedbiad_core::theory::{
    epsilon_bound, generalization_bound, holder_upper_bound, m_r, minimax_rate, TheoryParams,
};
use fedbiad_fl::workload::{build, Workload};

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(40);
    let bundle = build(Workload::MnistLike, cli.scale, cli.seed);
    let arch = bundle.model.arch();
    let p = TheoryParams::from_arch(&arch, bundle.dropout_rate as f64);
    let v = bundle.train.local_iters;
    let min_dk = bundle.data.min_client_samples();

    println!("=== Theorem 1 — bound vs measured generalization gap ===");
    println!(
        "arch: N = {}, S = {:.0}, L = {}, D = {}, d = {}; V = {v}, min|D_k| = {min_dk}",
        arch.total_weights, p.s, p.l, p.d_width, p.d_in
    );

    // Measured side: run FedBIAD and log train/test loss per round.
    let opts = cli.apply(RunOpts::for_rounds(rounds, cli.seed));
    let log = run_method(Method::FedBiad, &bundle, opts);

    let mut t = Table::new(&[
        "round",
        "m_r",
        "s~2 (eq13)",
        "eps (eq15)",
        "bound (eq14)",
        "measured |test-train| loss gap",
    ]);
    let step = (rounds / 10).max(1);
    for r in (0..rounds).step_by(step) {
        let m = m_r(r + 1, v, min_dk);
        let s2 = posterior_variance(p.s, m, &arch, p.b);
        let eps = epsilon_bound(&p, m);
        let bound = generalization_bound(&p, m, 0.0);
        let rec = &log.records[r];
        let gap = (rec.test_loss - rec.train_loss as f64).abs();
        t.row(vec![
            format!("{}", r + 1),
            format!("{m:.0}"),
            format!("{s2:.3e}"),
            format!("{eps:.4}"),
            format!("{bound:.4}"),
            format!("{gap:.4}"),
        ]);
    }
    println!("{}", t.render());

    // Monotonicity check (the Theorem-1 "shape"): the bound must strictly
    // decrease with rounds.
    let bounds: Vec<f64> = (1..=rounds)
        .map(|r| generalization_bound(&p, m_r(r, v, min_dk), 0.0))
        .collect();
    let monotone = bounds.windows(2).all(|w| w[1] < w[0]);
    println!("bound strictly decreasing over rounds: {monotone}");
    assert!(monotone, "Theorem 1 shape violated");

    println!("\nminimax envelope (γ = 1.5, d = {}):", p.d_in);
    let mut t = Table::new(&[
        "m_r",
        "lower rate (eq18)",
        "upper rate·log² (eq17)",
        "ratio",
    ]);
    for &m in &[1e3, 1e4, 1e5, 1e6] {
        let lo = minimax_rate(m, 1.5, p.d_in);
        let hi = holder_upper_bound(m, 1.5, p.d_in, 1.0);
        t.row(vec![
            format!("{m:.0e}"),
            format!("{lo:.4e}"),
            format!("{hi:.4e}"),
            format!("{:.1} (= log²m)", hi / lo),
        ]);
    }
    println!("{}", t.render());

    let path = save_logs_and_export("theory_bound", &[log], cli.json_out.as_deref());
    println!("JSON written to {}", path.display());
}
