//! Diagnostic: centralized training ceiling of a *row-masked* LSTM LM —
//! separates "masked model class cannot learn at this scale" from "FL
//! dynamics are broken". Not a paper artifact.
use fedbiad_core::pattern::{keep_count, DropPattern};
use fedbiad_data::synth_text::SyntheticTextSpec;
use fedbiad_nn::lstm_lm::LstmLmModel;
use fedbiad_nn::{Batch, Model};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;

fn main() {
    let spec = SyntheticTextSpec::ptb_like();
    let (train, test) = spec.generate(7);
    let model = LstmLmModel::new(spec.vocab, 64, 64, 2);
    let iters = 2400;
    for p in [0.0f32, 0.2, 0.5] {
        let mut rng = stream(1, StreamTag::Init, 0, 0);
        let mut params = model.init_params(&mut rng);
        let j = params.num_row_units();
        let pattern = if p == 0.0 {
            DropPattern::full(j)
        } else {
            let mut prng = stream(2, StreamTag::Pattern, 0, 0);
            DropPattern::sample_global(j, keep_count(j, p), &mut prng)
        };
        // Zero dropped rows once; mask grads each step (fixed sub-model).
        for ju in 0..j {
            if !pattern.is_kept(ju) {
                params.zero_row_unit(ju);
            }
        }
        let mut grads = params.zeros_like();
        let mut brng = stream(3, StreamTag::Batch, 0, 0);
        let n = train.num_windows();
        print!("p={p}: ");
        for it in 0..iters {
            let idx: Vec<usize> = (0..12).map(|_| brng.gen_range(0..n)).collect();
            let windows: Vec<&[u32]> = idx.iter().map(|&i| train.window(i)).collect();
            grads.zero();
            let _ = model.loss_grad(&params, &Batch::Seq { windows: &windows }, &mut grads);
            pattern.mask_grads(&mut grads);
            grads.clip_global_norm(5.0);
            params.axpy(-4.0, &grads);
            if (it + 1) % (iters / 8) == 0 {
                let widx: Vec<&[u32]> = (0..100).map(|i| test.window(i)).collect();
                let acc = model.evaluate(&params, &Batch::Seq { windows: &widx }, 3);
                print!("{:.1} ", acc.accuracy() * 100.0);
            }
        }
        println!();
    }
}
