//! Ablation bench (DESIGN.md §4 / experiment E8): quantify FedBIAD's
//! design choices on one image and one text workload.
//!
//! Axes:
//! * aggregation semantics: StaleFill (default) vs HoldersOnly vs the
//!   literal eq. (10) zeros-pull;
//! * pattern sampling: global Z_S^N vs per-entry quota;
//! * posterior noise: eq. (13) theory value vs off vs fixed 0.01;
//! * τ sensitivity: 1 / 3 / 6;
//! * importance indicator: stage boundary R_b at the paper ratio vs
//!   "always stage one" (indicator never used) vs early stage two;
//! * output-head protection on/off.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin ablation -- \
//!     [--rounds 40] [--workloads mnist,ptb] [--seed 42]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_core::spike_slab::NoiseLevel;
use fedbiad_core::{FedBiad, FedBiadConfig, PatternSampling};
use fedbiad_fl::aggregate::ZeroMode;
use fedbiad_fl::runner::{Experiment, ExperimentConfig};
use fedbiad_fl::workload::{build, Workload, WorkloadBundle};
use fedbiad_fl::ExperimentLog;
use fedbiad_nn::params::LayerKind;

struct Variant {
    name: &'static str,
    cfg: Box<dyn Fn(FedBiadConfig) -> FedBiadConfig>,
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "default",
            cfg: Box::new(|c| c),
        },
        Variant {
            name: "agg=holders",
            cfg: Box::new(|c| FedBiadConfig {
                aggregation: ZeroMode::HoldersOnly,
                ..c
            }),
        },
        Variant {
            name: "agg=zeros(eq10)",
            cfg: Box::new(|c| FedBiadConfig {
                aggregation: ZeroMode::ZerosPull,
                ..c
            }),
        },
        Variant {
            name: "sampling=per-entry",
            cfg: Box::new(|c| FedBiadConfig {
                sampling: PatternSampling::PerEntry,
                ..c
            }),
        },
        Variant {
            name: "noise=off",
            cfg: Box::new(|c| FedBiadConfig {
                noise: NoiseLevel::Off,
                ..c
            }),
        },
        Variant {
            name: "noise=0.01",
            cfg: Box::new(|c| FedBiadConfig {
                noise: NoiseLevel::Fixed(0.01),
                ..c
            }),
        },
        Variant {
            name: "tau=1",
            cfg: Box::new(|c| FedBiadConfig { tau: 1, ..c }),
        },
        Variant {
            name: "tau=6",
            cfg: Box::new(|c| FedBiadConfig { tau: 6, ..c }),
        },
        Variant {
            name: "no-stage2",
            cfg: Box::new(|c| FedBiadConfig {
                stage_boundary: usize::MAX,
                ..c
            }),
        },
        Variant {
            name: "early-stage2(R/2)",
            cfg: Box::new(|c| {
                let rb = (c.stage_boundary + 5) / 2; // R/2 given rb = R−5
                FedBiadConfig {
                    stage_boundary: rb.max(1),
                    ..c
                }
            }),
        },
        Variant {
            name: "no-head-protect",
            cfg: Box::new(|c| FedBiadConfig {
                protect_small_output_rows: 0,
                ..c
            }),
        },
        Variant {
            name: "protect-all-heads",
            cfg: Box::new(|c| FedBiadConfig {
                protect_small_output_rows: usize::MAX,
                ..c
            }),
        },
        Variant {
            name: "protect-embedding",
            cfg: Box::new(|c| FedBiadConfig {
                protect_kinds: vec![LayerKind::Embedding],
                ..c
            }),
        },
        Variant {
            name: "protect-lstm",
            cfg: Box::new(|c| FedBiadConfig {
                protect_kinds: vec![LayerKind::LstmInput, LayerKind::LstmRecurrent],
                ..c
            }),
        },
        Variant {
            name: "drop-lstm-only",
            cfg: Box::new(|c| FedBiadConfig {
                protect_kinds: vec![LayerKind::Embedding, LayerKind::DenseOutput],
                ..c
            }),
        },
        Variant {
            name: "paper-literal(resample)",
            cfg: Box::new(|c| FedBiadConfig {
                persistent_patterns: false,
                ..c
            }),
        },
    ]
}

fn run_variant(
    bundle: &WorkloadBundle,
    v: &Variant,
    rounds: usize,
    seed: u64,
    eval_max: usize,
    fraction: f32,
) -> ExperimentLog {
    let base = FedBiadConfig::paper(bundle.dropout_rate, rounds.saturating_sub(5).max(1));
    let cfg = (v.cfg)(base);
    let algo = FedBiad::new(cfg);
    let ecfg = ExperimentConfig {
        rounds,
        client_fraction: fraction,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 2,
        eval_max_samples: eval_max,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let mut log = Experiment::new(bundle.model.as_ref(), &bundle.data, algo, ecfg).run();
    log.method = format!("fedbiad[{}]", v.name);
    log
}

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(40);
    let workloads = cli
        .workloads
        .clone()
        .unwrap_or_else(|| vec![Workload::MnistLike, Workload::RedditLike]);
    let mut all_logs = Vec::new();

    for w in workloads {
        let bundle = build(w, cli.scale, cli.seed);
        println!("\n=== Ablation — {} ({} rounds) ===", w.name(), rounds);
        let mut table = Table::new(&["Variant", "Final acc%", "Best acc%", "Mean upload"]);
        for v in variants() {
            let log = run_variant(
                &bundle,
                &v,
                rounds,
                cli.seed,
                cli.eval_max,
                cli.fraction.unwrap_or(0.1),
            );
            table.row(vec![
                v.name.into(),
                format!("{:.2}", log.final_accuracy_pct()),
                format!("{:.2}", log.best_accuracy_pct()),
                fedbiad_fl::metrics::fmt_bytes(log.mean_upload_bytes()),
            ]);
            println!("  finished {}", v.name);
            all_logs.push(log);
        }
        println!("{}", table.render());
    }
    let path = save_logs_and_export("ablation", &all_logs, cli.json_out.as_deref());
    println!("JSON written to {}", path.display());
}
