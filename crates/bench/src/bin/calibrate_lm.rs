//! Diagnostic: centralized (non-federated) training ceiling for the
//! synthetic language workloads. Used to calibrate learning rates and to
//! verify that the LSTM can actually exploit the Markov/topic structure
//! (Bayes top-3 bound printed for reference). Not a paper artifact.

use fedbiad_data::synth_text::SyntheticTextSpec;
use fedbiad_nn::lstm_lm::LstmLmModel;
use fedbiad_nn::{Batch, Model};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let lrs: Vec<f32> = if args.len() > 1 {
        args[1].split(',').map(|s| s.parse().expect("lr")).collect()
    } else {
        vec![0.5, 1.5, 4.0, 8.0]
    };

    let spec = SyntheticTextSpec::ptb_like();
    let lang = spec.language(7);
    println!(
        "ptb-like: vocab={} bayes_top3={:.3} bayes_top1={:.3}",
        spec.vocab,
        lang.bayes_top_k(3),
        lang.bayes_top_k(1)
    );
    let (train, test) = spec.generate(7);
    let model = LstmLmModel::new(spec.vocab, 64, 64, 2);

    for lr in lrs {
        let mut rng = stream(1, StreamTag::Init, 0, 0);
        let mut params = model.init_params(&mut rng);
        let mut grads = params.zeros_like();
        let mut brng = stream(2, StreamTag::Batch, 0, 0);
        let n = train.num_windows();
        print!("lr {lr:>5}: ");
        for it in 0..iters {
            let idx: Vec<usize> = (0..12).map(|_| brng.gen_range(0..n)).collect();
            let windows: Vec<&[u32]> = idx.iter().map(|&i| train.window(i)).collect();
            grads.zero();
            let _ = model.loss_grad(&params, &Batch::Seq { windows: &windows }, &mut grads);
            grads.clip_global_norm(5.0);
            params.axpy(-lr, &grads);
            if (it + 1) % (iters / 8).max(1) == 0 {
                let widx: Vec<&[u32]> = (0..100).map(|i| test.window(i)).collect();
                let acc = model.evaluate(&params, &Batch::Seq { windows: &widx }, 3);
                print!("{:.1} ", acc.accuracy() * 100.0);
            }
        }
        println!();
    }
}
