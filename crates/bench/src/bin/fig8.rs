//! Fig. 8: effect of the dropout rate p on Reddit — (a) top-3 accuracy and
//! (b) TTA versus p ∈ {0.1 … 0.7} for FedAvg, FedDrop, AFD and FedBIAD.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin fig8 -- [--rounds 60] [--seed 42]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_core::baselines::{Afd, FedAvg, FedDrop};
use fedbiad_core::{FedBiad, FedBiadConfig};
use fedbiad_fl::network::NetworkModel;
use fedbiad_fl::runner::{Experiment, ExperimentConfig};
use fedbiad_fl::timing;
use fedbiad_fl::workload::{build, Workload};
use fedbiad_fl::ExperimentLog;

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(60);
    let bundle = build(Workload::RedditLike, cli.scale, cli.seed);
    let net = NetworkModel::t_mobile_5g();
    // The paper sweeps 0.1–0.7; the default grid here keeps four
    // representative points (pass --rounds/--scale to refine).
    let rates = [0.1f32, 0.3, 0.5, 0.7];

    let cfg = ExperimentConfig {
        rounds,
        client_fraction: cli.fraction.unwrap_or(0.1),
        seed: cli.seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 2,
        eval_max_samples: cli.eval_max,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };

    println!("=== Fig. 8 — {} ({} rounds) ===", bundle.data.name, rounds);

    // FedAvg is rate-independent: run once, reuse across the sweep.
    let fedavg = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    println!("  finished FedAvg (rate-independent)");

    let mut logs: Vec<ExperimentLog> = vec![fedavg.clone()];
    let mut acc_table = Table::new(&["p", "FedAvg", "FedDrop", "AFD", "FedBIAD"]);
    let mut tta_table = Table::new(&["p", "FedAvg", "FedDrop", "AFD", "FedBIAD"]);
    for &p in &rates {
        let rb = rounds.saturating_sub(5).max(1);
        let runs = vec![
            Experiment::new(bundle.model.as_ref(), &bundle.data, FedDrop::new(p), cfg).run(),
            Experiment::new(bundle.model.as_ref(), &bundle.data, Afd::new(p), cfg).run(),
            Experiment::new(
                bundle.model.as_ref(),
                &bundle.data,
                FedBiad::new(FedBiadConfig::paper(p, rb)),
                cfg,
            )
            .run(),
        ];
        let tta = |log: &ExperimentLog| {
            timing::time_to_accuracy(&log.records, bundle.target_acc, &net)
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "—".into())
        };
        acc_table.row(vec![
            format!("{p:.1}"),
            format!("{:.2}", fedavg.final_accuracy_pct()),
            format!("{:.2}", runs[0].final_accuracy_pct()),
            format!("{:.2}", runs[1].final_accuracy_pct()),
            format!("{:.2}", runs[2].final_accuracy_pct()),
        ]);
        tta_table.row(vec![
            format!("{p:.1}"),
            tta(&fedavg),
            tta(&runs[0]),
            tta(&runs[1]),
            tta(&runs[2]),
        ]);
        println!("  finished p = {p}");
        for mut log in runs {
            log.method = format!("{}@p={p}", log.method);
            logs.push(log);
        }
    }

    println!("\n(a) top-3 accuracy (%) vs dropout rate:");
    println!("{}", acc_table.render());
    println!("(b) TTA (s) vs dropout rate:");
    println!("{}", tta_table.render());

    let path = save_logs_and_export("fig8", &logs, cli.json_out.as_deref());
    println!("JSON written to {}", path.display());
}
