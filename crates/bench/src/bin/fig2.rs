//! Fig. 2 (motivation): next-word prediction on PTB with an LSTM — test
//! loss and top-3 accuracy vs rounds for FedAvg, FedDrop, AFD, Fjord and
//! FedBIAD. The paper's point: FedDrop/AFD/Fjord fall *below* FedAvg on
//! RNN models, FedBIAD does not.
//!
//! Since PR 3 this binary is a thin wrapper: it loads the bundled
//! `scenarios/fig2.toml` spec, applies any CLI overrides, and lets the
//! `fedbiad-scenario` engine execute the grid
//! (`tests/scenario_equivalence.rs` proves the engine reproduces the old
//! hard-coded loop bit-for-bit). Only the table formatting lives here.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin fig2 -- [--rounds 60] [--seed 42]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_fl::ExperimentLog;
use fedbiad_scenario::{execute, ScenarioSpec};

/// The bundled spec this binary wraps.
const SPEC: &str = include_str!("../../../../scenarios/fig2.toml");

fn main() {
    let cli = Cli::parse();
    let mut spec = ScenarioSpec::from_toml_str(SPEC).expect("bundled fig2 spec is valid");
    let overrides = cli.scenario_overrides().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    spec.apply_overrides(&overrides).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rounds = spec.run.rounds;
    println!(
        "=== Fig. 2 — {} (LSTM next-word prediction, {} rounds) ===",
        spec.sweep.workloads[0].name(),
        rounds
    );

    let outcomes = execute(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let logs: Vec<ExperimentLog> = outcomes.into_iter().map(|o| o.log).collect();
    for log in &logs {
        println!("  finished {}", log.method);
    }

    // The paper's figure shows rounds 10–20; print that window plus the
    // full-range endpoints.
    let lo = (rounds / 6).max(1);
    let hi = (rounds / 3).max(lo + 1).min(rounds - 1);
    println!("\nTest loss (rounds {lo}..{hi} window, then final):");
    let mut t = Table::new(&["Method", "r_lo", "r_mid", "r_hi", "final"]);
    let mid = (lo + hi) / 2;
    for log in &logs {
        t.row(vec![
            log.method.clone(),
            format!("{:.3}", log.records[lo].test_loss),
            format!("{:.3}", log.records[mid].test_loss),
            format!("{:.3}", log.records[hi].test_loss),
            format!("{:.3}", log.records.last().unwrap().test_loss),
        ]);
    }
    println!("{}", t.render());

    println!("Top-3 accuracy (%):");
    let mut t = Table::new(&["Method", "r_lo", "r_mid", "r_hi", "final"]);
    for log in &logs {
        t.row(vec![
            log.method.clone(),
            format!("{:.2}", log.records[lo].test_acc * 100.0),
            format!("{:.2}", log.records[mid].test_acc * 100.0),
            format!("{:.2}", log.records[hi].test_acc * 100.0),
            format!("{:.2}", log.final_accuracy_pct()),
        ]);
    }
    println!("{}", t.render());

    let path = save_logs_and_export("fig2", &logs, cli.json_out.as_deref());
    println!("full per-round series in {}", path.display());
}
