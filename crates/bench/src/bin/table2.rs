//! Table II: sketched-compression comparison — FedPAQ, SignSGD, STC, DGC,
//! AFD+DGC, Fjord+DGC and FedBIAD+DGC across the five datasets
//! (accuracy, upload size, save ratio vs uncompressed FedAvg).
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin table2 -- \
//!     [--rounds 30] [--workloads mnist,ptb] [--seed 42]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::methods::{run_method, Method, RunOpts};
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_fl::metrics::fmt_bytes;
use fedbiad_fl::workload::{build, Workload};

/// Published Table II rows: (method, acc %, upload label, save ratio).
fn paper_rows(w: Workload) -> &'static [(&'static str, f64, &'static str, f64)] {
    match w {
        Workload::MnistLike => &[
            ("FedPAQ", 94.90, "129KB", 4.0),
            ("SignSGD", 92.04, "16KB", 33.0),
            ("STC", 90.56, "3KB", 177.0),
            ("DGC", 94.84, "3KB", 177.0),
            ("AFD+DGC", 94.39, "2KB", 265.0),
            ("Fjord+DGC", 94.93, "2KB", 265.0),
            ("FedBIAD+DGC", 95.22, "2KB", 265.0),
        ],
        Workload::FmnistLike => &[
            ("FedPAQ", 78.64, "258KB", 4.0),
            ("SignSGD", 76.57, "33KB", 34.0),
            ("STC", 81.13, "6KB", 188.0),
            ("DGC", 80.64, "4KB", 281.0),
            ("AFD+DGC", 81.96, "3KB", 375.0),
            ("Fjord+DGC", 82.16, "3KB", 375.0),
            ("FedBIAD+DGC", 82.96, "3KB", 375.0),
        ],
        Workload::PtbLike => &[
            ("FedPAQ", 28.60, "7.1MB", 4.0),
            ("SignSGD", 23.76, "908KB", 33.0),
            ("STC", 24.42, "148KB", 206.0),
            ("DGC", 28.10, "95KB", 321.0),
            ("AFD+DGC", 27.74, "71KB", 429.0),
            ("Fjord+DGC", 27.50, "71KB", 429.0),
            ("FedBIAD+DGC", 28.77, "53KB", 575.0),
        ],
        Workload::WikiText2Like => &[
            ("FedPAQ", 32.04, "18.8MB", 4.0),
            ("SignSGD", 30.62, "2.4MB", 32.0),
            ("STC", 28.92, "374KB", 206.0),
            ("DGC", 31.58, "215KB", 359.0),
            ("AFD+DGC", 31.24, "180KB", 428.0),
            ("Fjord+DGC", 30.92, "179KB", 430.0),
            ("FedBIAD+DGC", 33.78, "126KB", 612.0),
        ],
        Workload::RedditLike => &[
            ("FedPAQ", 32.36, "7.1MB", 4.0),
            ("SignSGD", 29.86, "960KB", 32.0),
            ("STC", 30.22, "148KB", 206.0),
            ("DGC", 31.23, "97KB", 314.0),
            ("AFD+DGC", 32.19, "88KB", 346.0),
            ("Fjord+DGC", 30.85, "86KB", 355.0),
            ("FedBIAD+DGC", 32.51, "52KB", 587.0),
        ],
    }
}

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(30);
    let workloads = cli
        .workloads
        .clone()
        .unwrap_or_else(|| Workload::all().to_vec());
    let mut all_logs = Vec::new();

    for w in workloads {
        let bundle = build(w, cli.scale, cli.seed);
        let full_bytes = {
            use fedbiad_tensor::rng::{stream, StreamTag};
            bundle
                .model
                .init_params(&mut stream(cli.seed, StreamTag::Init, 0, 0))
                .total_bytes()
        };
        println!(
            "\n=== Table II — {} (p = {}, {} rounds) ===",
            w.name(),
            bundle.dropout_rate,
            rounds
        );
        let mut table = Table::new(&[
            "Method",
            "Acc% (meas)",
            "Upload (meas)",
            "Save (meas)",
            "Acc% (paper)",
            "Upload (paper)",
            "Save (paper)",
        ]);
        let paper = paper_rows(w);
        let selected: Vec<Method> = match &cli.methods {
            None => Method::table2().to_vec(),
            Some(names) => names
                .iter()
                .map(|n| Method::parse(n).unwrap_or_else(|| panic!("unknown method {n}")))
                .collect(),
        };
        for m in selected {
            let i = Method::table2().iter().position(|x| *x == m).unwrap_or(0);
            let mut opts = cli.apply(RunOpts::for_rounds(rounds, cli.seed));
            opts.eval_every = (rounds / 15).max(1);
            let log = run_method(m, &bundle, opts);
            let up = log.mean_upload_bytes();
            let (_, pacc, pup, psave) = paper[i];
            table.row(vec![
                m.name().into(),
                format!("{:.2}", log.final_accuracy_pct()),
                fmt_bytes(up),
                format!("{:.0}x", full_bytes as f64 / up as f64),
                format!("{pacc:.2}"),
                pup.into(),
                format!("{psave:.0}x"),
            ]);
            println!("  finished {}", m.name());
            all_logs.push(log);
        }
        println!("{}", table.render());
    }

    let path = save_logs_and_export("table2", &all_logs, cli.json_out.as_deref());
    println!("JSON written to {}", path.display());
}
