//! Table I: test accuracy, per-round upload size and save ratio for the
//! seven dropout-family methods across the five datasets.
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin table1 -- \
//!     [--rounds 30] [--scale lab] [--workloads mnist,ptb] [--seed 42]
//! ```
//!
//! The 'Paper' columns restate the published Table I values (real
//! datasets, paper-scale models); the 'Measured' columns come from the
//! synthetic workloads at the chosen scale — shapes (who wins, roughly by
//! what factor) are the comparison target, not absolute numbers.

use fedbiad_bench::cli::Cli;
use fedbiad_bench::methods::{run_method, Method, RunOpts};
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_fl::metrics::fmt_bytes;
use fedbiad_fl::workload::{build, Workload};

/// Published Table I numbers: (method, acc %, upload size label, ratio).
fn paper_rows(w: Workload) -> &'static [(&'static str, f64, &'static str, f64)] {
    match w {
        Workload::MnistLike => &[
            ("FedAvg", 95.06, "531KB", 1.0),
            ("FedDrop", 95.03, "424KB", 1.25),
            ("AFD", 94.49, "424KB", 1.25),
            ("FedMP", 95.09, "477KB", 1.10),
            ("FjORD", 94.93, "437KB", 1.21),
            ("HeteroFL", 94.98, "432KB", 1.23),
            ("FedBIAD", 95.20, "424KB", 1.25),
        ],
        Workload::FmnistLike => &[
            ("FedAvg", 81.18, "1.1MB", 1.0),
            ("FedDrop", 81.12, "530KB", 2.0),
            ("AFD", 82.37, "530KB", 2.0),
            ("FedMP", 82.40, "862KB", 1.3),
            ("FjORD", 82.64, "718KB", 1.5),
            ("HeteroFL", 82.68, "685KB", 1.6),
            ("FedBIAD", 83.59, "530KB", 2.0),
        ],
        Workload::PtbLike => &[
            ("FedAvg", 28.54, "29.8MB", 1.0),
            ("FedDrop", 27.81, "23.8MB", 1.25),
            ("AFD", 28.67, "22.4MB", 1.3),
            ("FedMP", 28.76, "22.7MB", 1.3),
            ("FjORD", 27.88, "21.4MB", 1.4),
            ("HeteroFL", 26.80, "20.4MB", 1.5),
            ("FedBIAD", 29.85, "16.4MB", 2.0),
        ],
        Workload::WikiText2Like => &[
            ("FedAvg", 31.86, "75.3MB", 1.0),
            ("FedDrop", 32.02, "57.9MB", 1.3),
            ("AFD", 31.20, "56.5MB", 1.3),
            ("FedMP", 32.53, "59.1MB", 1.3),
            ("FjORD", 31.16, "54.0MB", 1.4),
            ("HeteroFL", 31.84, "52.9MB", 1.4),
            ("FedBIAD", 33.16, "39.1MB", 2.0),
        ],
        Workload::RedditLike => &[
            ("FedAvg", 31.68, "29.8MB", 1.0),
            ("FedDrop", 31.84, "24.1MB", 1.25),
            ("AFD", 32.26, "22.5MB", 1.3),
            ("FedMP", 31.06, "22.7MB", 1.3),
            ("FjORD", 31.35, "21.4MB", 1.4),
            ("HeteroFL", 31.24, "20.4MB", 1.5),
            ("FedBIAD", 33.93, "16.4MB", 2.0),
        ],
    }
}

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(30);
    let workloads = cli
        .workloads
        .clone()
        .unwrap_or_else(|| Workload::all().to_vec());
    let mut all_logs = Vec::new();

    for w in workloads {
        let bundle = build(w, cli.scale, cli.seed);
        let full_bytes = {
            use fedbiad_tensor::rng::{stream, StreamTag};
            bundle
                .model
                .init_params(&mut stream(cli.seed, StreamTag::Init, 0, 0))
                .total_bytes()
        };
        println!(
            "\n=== Table I — {} (p = {}, {} clients, {} rounds) ===",
            w.name(),
            bundle.dropout_rate,
            bundle.data.num_clients(),
            rounds
        );
        let mut table = Table::new(&[
            "Method",
            "Acc% (measured)",
            "Upload (measured)",
            "Save (measured)",
            "Acc% (paper)",
            "Upload (paper)",
            "Save (paper)",
        ]);
        let paper = paper_rows(w);
        let selected: Vec<Method> = match &cli.methods {
            None => Method::table1().to_vec(),
            Some(names) => names
                .iter()
                .map(|n| Method::parse(n).unwrap_or_else(|| panic!("unknown method {n}")))
                .collect(),
        };
        for m in selected {
            let i = Method::table1().iter().position(|x| *x == m).unwrap_or(0);
            let mut opts = cli.apply(RunOpts::for_rounds(rounds, cli.seed));
            // Evaluate sparsely during the run for speed; final round is
            // always evaluated.
            opts.eval_every = (rounds / 15).max(1);
            let log = run_method(m, &bundle, opts);
            let up = log.mean_upload_bytes();
            let save = full_bytes as f64 / up as f64;
            let (pname, pacc, pup, psave) = paper[i];
            debug_assert_eq!(pname, m.name());
            let _ = pname;
            table.row(vec![
                m.name().into(),
                format!("{:.2}", log.final_accuracy_pct()),
                fmt_bytes(up),
                format!("{save:.2}x"),
                format!("{pacc:.2}"),
                pup.into(),
                format!("{psave}x"),
            ]);
            println!("  finished {}", m.name());
            all_logs.push(log);
        }
        println!("{}", table.render());
    }

    let path = save_logs_and_export("table1", &all_logs, cli.json_out.as_deref());
    println!("JSON written to {}", path.display());
}
