//! Fig. 7: Local Training Time in a Round (LTTR, a/b) and Time-To-Accuracy
//! (TTA, c/d) for the dropout-family methods on the four datasets the
//! paper plots (MNIST, FMNIST, WikiText-2, Reddit).
//!
//! LTTR is measured CPU wall-clock of the local update (including pattern
//! search / score updates — the overhead the paper discusses in §V-C);
//! TTA is accumulated per §V-C over the T-Mobile 5G link model
//! (110.6 Mbps down / 14.0 Mbps up).
//!
//! ```text
//! cargo run -p fedbiad-bench --release --bin fig7 -- [--rounds 60] [--seed 42]
//! ```

use fedbiad_bench::cli::Cli;
use fedbiad_bench::methods::{run_method, Method, RunOpts};
use fedbiad_bench::output::{save_logs_and_export, Table};
use fedbiad_fl::network::NetworkModel;
use fedbiad_fl::timing;
use fedbiad_fl::workload::{build, Workload};

fn main() {
    let cli = Cli::parse();
    let rounds = cli.rounds.unwrap_or(60);
    let workloads = cli.workloads.clone().unwrap_or_else(|| {
        vec![
            Workload::MnistLike,
            Workload::FmnistLike,
            Workload::WikiText2Like,
            Workload::RedditLike,
        ]
    });
    let methods = [
        Method::FedDrop,
        Method::Afd,
        Method::Fjord,
        Method::FedMp,
        Method::FedBiad,
    ];
    let net = NetworkModel::t_mobile_5g();
    let mut all = Vec::new();

    for w in workloads {
        let bundle = build(w, cli.scale, cli.seed);
        println!(
            "\n=== Fig. 7 — {} (target acc {:.0} %, {} rounds) ===",
            w.name(),
            bundle.target_acc * 100.0,
            rounds
        );
        let mut t = Table::new(&["Method", "LTTR (ms)", "TTA (s)", "final acc%"]);
        for m in methods {
            let opts = cli.apply(RunOpts::for_rounds(rounds, cli.seed));
            let log = run_method(m, &bundle, opts);
            let lttr_ms = log.mean_lttr_seconds() * 1e3;
            let tta = timing::time_to_accuracy(&log.records, bundle.target_acc, &net);
            t.row(vec![
                m.name().into(),
                format!("{lttr_ms:.1}"),
                tta.map(|x| format!("{x:.1}"))
                    .unwrap_or_else(|| "not reached".into()),
                format!("{:.2}", log.final_accuracy_pct()),
            ]);
            println!("  finished {}", m.name());
            all.push(log);
        }
        println!("{}", t.render());
    }

    let path = save_logs_and_export("fig7", &all, cli.json_out.as_deref());
    println!("JSON written to {}", path.display());
    println!(
        "\nshape targets (paper): FedBIAD has the LARGEST LTTR (adaptive \
         bookkeeping) but the SMALLEST TTA (2x uplink cut dominates on the \
         14 Mbps uplink)."
    );
}
