//! Run declarative scenario specs: expand the sweep grid, execute every
//! run in parallel, and emit one `ExperimentLog` JSON per run plus a
//! roll-up summary table.
//!
//! ```text
//! cargo run --release --bin scenario -- scenarios/fig2.toml \
//!     [scenarios/more.toml ...] \
//!     [--rounds N --seed N --scale smoke|lab --eval-max N --fraction F \
//!      --workloads a,b --methods a,b --policies a,b --profiles a,b --target A]
//! ```
//!
//! CLI flags override the corresponding spec fields (see
//! `scenarios/README.md` for the schema). Outputs land in
//! `target/experiments/scenario/<name>/`.

use fedbiad_bench::cli::Cli;
use fedbiad_bench::output::{experiments_dir, Table};
use fedbiad_fl::metrics::fmt_bytes;
use fedbiad_scenario::{execute, RunOutcome, ScenarioSpec};
use serde::Serialize;
use std::path::Path;

/// One `summary.json` row.
#[derive(Clone, Debug, Serialize)]
struct SummaryRow {
    index: usize,
    label: String,
    seed: u64,
    rounds: usize,
    final_acc_pct: f64,
    best_acc_pct: f64,
    mean_upload_bytes: u64,
    /// Virtual seconds to the TTA target (sim runs only).
    tta_virtual_seconds: Option<f64>,
    /// Total virtual seconds (sim runs only).
    total_virtual_seconds: Option<f64>,
    /// Per-run log file, relative to the summary.
    log_file: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Leading non-flag arguments are spec paths; the rest is shared flags.
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (paths, flags) = args.split_at(split);
    if paths.is_empty() {
        eprintln!(
            "usage: scenario SPEC.toml [SPEC.toml ...] [--rounds N --seed N \
             --scale smoke|lab --eval-max N --fraction F --workloads a,b \
             --methods a,b --policies a,b --profiles a,b --target A]"
        );
        std::process::exit(2);
    }
    let cli = Cli::parse_from(flags.to_vec());
    let overrides = cli.scenario_overrides().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    for path in paths {
        let mut spec = ScenarioSpec::from_path(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        spec.apply_overrides(&overrides).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        run_spec(&spec);
    }
}

fn run_spec(spec: &ScenarioSpec) {
    let n_runs = fedbiad_scenario::expand(spec).map(|r| r.len()).unwrap_or(0);
    println!(
        "=== scenario `{}` — {} run(s), mode {}, {} round(s) ===",
        spec.name,
        n_runs,
        spec.mode.name(),
        spec.run.rounds
    );
    let outcomes = execute(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let dir = experiments_dir().join("scenario").join(&spec.name);
    std::fs::create_dir_all(&dir).expect("create scenario output dir");
    let mut rows = Vec::new();
    for o in &outcomes {
        let log_file = format!("run_{:03}.json", o.run.index);
        let body = serde_json::to_string_pretty(&o.log).expect("serialise run log");
        std::fs::write(dir.join(&log_file), body).expect("write run log");
        rows.push(summary_row(o, log_file));
    }
    let body = serde_json::to_string_pretty(&rows).expect("serialise summary");
    std::fs::write(dir.join("summary.json"), body).expect("write summary");

    print_rollup(&outcomes);
    println!(
        "{} per-run log(s) + summary.json written to {}",
        outcomes.len(),
        dir.display()
    );
}

fn summary_row(o: &RunOutcome, log_file: String) -> SummaryRow {
    SummaryRow {
        index: o.run.index,
        label: o.run.label.clone(),
        seed: o.run.opts.seed,
        rounds: o.log.records.len(),
        final_acc_pct: o.log.final_accuracy_pct(),
        best_acc_pct: o.log.best_accuracy_pct(),
        mean_upload_bytes: o.log.mean_upload_bytes(),
        tta_virtual_seconds: o.sim.as_ref().and_then(|s| s.tta_virtual_seconds),
        total_virtual_seconds: o.sim.as_ref().map(|s| s.total_virtual_seconds),
        log_file,
    }
}

fn print_rollup(outcomes: &[RunOutcome]) {
    let any_sim = outcomes.iter().any(|o| o.sim.is_some());
    let mut headers = vec!["#", "Run", "Seed", "final acc%", "best acc%", "mean upload"];
    if any_sim {
        headers.push("TTA (virt s)");
        headers.push("total (virt s)");
    }
    let mut t = Table::new(&headers);
    for o in outcomes {
        let mut row = vec![
            o.run.index.to_string(),
            o.run.label.clone(),
            o.run.opts.seed.to_string(),
            format!("{:.2}", o.log.final_accuracy_pct()),
            format!("{:.2}", o.log.best_accuracy_pct()),
            fmt_bytes(o.log.mean_upload_bytes()),
        ];
        if any_sim {
            match &o.sim {
                Some(s) => {
                    row.push(
                        s.tta_virtual_seconds
                            .map(|x| format!("{x:.2}"))
                            .unwrap_or_else(|| "not reached".into()),
                    );
                    row.push(format!("{:.2}", s.total_virtual_seconds));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
}
