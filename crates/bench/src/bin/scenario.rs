//! Run declarative scenario specs: expand the sweep grid, execute every
//! run in parallel, and emit one `ExperimentLog` JSON per run plus a
//! roll-up summary table.
//!
//! ```text
//! cargo run --release --bin scenario -- scenarios/fig2.toml \
//!     [scenarios/more.toml ...] \
//!     [--rounds N --seed N --scale smoke|lab --eval-max N --fraction F \
//!      --workloads a,b --methods a,b --policies a,b --profiles a,b --target A]
//! ```
//!
//! CLI flags override the corresponding spec fields (see
//! `scenarios/README.md` for the schema). Outputs land in
//! `target/experiments/scenario/<name>/`.
//!
//! With `--trace-out DIR` the runs execute serially under the telemetry
//! collector (results are bit-identical — see `execute_traced`), and each
//! run additionally emits `run_NNN.trace.json` (Chrome/Perfetto trace) and
//! `run_NNN.jsonl` (raw event stream) into DIR, plus a per-span p50/p95
//! summary on stdout.

use fedbiad_bench::cli::Cli;
use fedbiad_bench::output::{experiments_dir, Table};
use fedbiad_fl::metrics::fmt_bytes;
use fedbiad_scenario::{execute, execute_traced, RunOutcome, ScenarioSpec};
use serde::Serialize;
use std::path::Path;

/// One `summary.json` row.
#[derive(Clone, Debug, Serialize)]
struct SummaryRow {
    index: usize,
    label: String,
    seed: u64,
    rounds: usize,
    final_acc_pct: f64,
    best_acc_pct: f64,
    mean_upload_bytes: u64,
    /// Virtual seconds to the TTA target (sim runs only).
    tta_virtual_seconds: Option<f64>,
    /// Total virtual seconds (sim runs only).
    total_virtual_seconds: Option<f64>,
    /// Per-run log file, relative to the summary.
    log_file: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Leading non-flag arguments are spec paths; the rest is shared flags.
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (paths, flags) = args.split_at(split);
    if paths.is_empty() {
        eprintln!(
            "usage: scenario SPEC.toml [SPEC.toml ...] [--rounds N --seed N \
             --scale smoke|lab --eval-max N --fraction F --workloads a,b \
             --methods a,b --policies a,b --profiles a,b --target A \
             --trace-out DIR]"
        );
        std::process::exit(2);
    }
    let cli = Cli::parse_from(flags.to_vec());
    let overrides = cli.scenario_overrides().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    for path in paths {
        let mut spec = ScenarioSpec::from_path(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        spec.apply_overrides(&overrides).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        run_spec(&spec, cli.trace_out.as_deref());
    }
}

fn run_spec(spec: &ScenarioSpec, trace_out: Option<&Path>) {
    let n_runs = fedbiad_scenario::expand(spec).map(|r| r.len()).unwrap_or(0);
    println!(
        "=== scenario `{}` — {} run(s), mode {}, {} round(s) ===",
        spec.name,
        n_runs,
        spec.mode.name(),
        spec.run.rounds
    );
    let outcomes = if trace_out.is_some() {
        if !fedbiad_telemetry::compiled() {
            eprintln!(
                "warning: --trace-out given but the telemetry collector is not \
                 compiled in; traces will be empty"
            );
        }
        execute_traced(spec)
    } else {
        execute(spec)
    }
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let dir = experiments_dir().join("scenario").join(&spec.name);
    std::fs::create_dir_all(&dir).expect("create scenario output dir");
    let mut rows = Vec::new();
    for o in &outcomes {
        let log_file = format!("run_{:03}.json", o.run.index);
        let body = serde_json::to_string_pretty(&o.log).expect("serialise run log");
        std::fs::write(dir.join(&log_file), body).expect("write run log");
        rows.push(summary_row(o, log_file));
    }
    let body = serde_json::to_string_pretty(&rows).expect("serialise summary");
    std::fs::write(dir.join("summary.json"), body).expect("write summary");

    if let Some(trace_dir) = trace_out {
        write_traces(&outcomes, trace_dir);
    }
    print_rollup(&outcomes);
    println!(
        "{} per-run log(s) + summary.json written to {}",
        outcomes.len(),
        dir.display()
    );
}

/// Emit `run_NNN.trace.json` + `run_NNN.jsonl` per captured run and print
/// each run's per-span p50/p95 summary table.
fn write_traces(outcomes: &[RunOutcome], trace_dir: &Path) {
    std::fs::create_dir_all(trace_dir).expect("create trace output dir");
    let mut written = 0usize;
    for o in outcomes {
        let Some(cap) = &o.capture else { continue };
        let trace_file = trace_dir.join(format!("run_{:03}.trace.json", o.run.index));
        std::fs::write(&trace_file, cap.chrome_trace()).expect("write chrome trace");
        let jsonl_file = trace_dir.join(format!("run_{:03}.jsonl", o.run.index));
        std::fs::write(&jsonl_file, cap.jsonl()).expect("write jsonl event stream");
        written += 1;
        println!(
            "--- run {:03} `{}` span summary ({}) ---",
            o.run.index,
            o.run.label,
            trace_file.display()
        );
        println!("{}", cap.summary().render_table());
    }
    println!(
        "{written} trace(s) written to {} (load *.trace.json in ui.perfetto.dev \
         or chrome://tracing)",
        trace_dir.display()
    );
}

/// Total wall-clock of `span` across a run's capture, in milliseconds,
/// rendered for the roll-up's per-stage breakdown column.
fn stage_ms(s: &fedbiad_telemetry::Summary, span: &str) -> String {
    match s.span(span) {
        Some(st) => format!("{:.0}", st.total_ns as f64 / 1e6),
        None => "-".into(),
    }
}

fn summary_row(o: &RunOutcome, log_file: String) -> SummaryRow {
    SummaryRow {
        index: o.run.index,
        label: o.run.label.clone(),
        seed: o.run.opts.seed,
        rounds: o.log.records.len(),
        final_acc_pct: o.log.final_accuracy_pct(),
        best_acc_pct: o.log.best_accuracy_pct(),
        mean_upload_bytes: o.log.mean_upload_bytes(),
        tta_virtual_seconds: o.sim.as_ref().and_then(|s| s.tta_virtual_seconds),
        total_virtual_seconds: o.sim.as_ref().map(|s| s.total_virtual_seconds),
        log_file,
    }
}

fn print_rollup(outcomes: &[RunOutcome]) {
    let any_sim = outcomes.iter().any(|o| o.sim.is_some());
    let traced = outcomes
        .iter()
        .any(|o| o.capture.as_ref().is_some_and(|c| !c.is_empty()));
    let mut headers = vec!["#", "Run", "Seed", "final acc%", "best acc%", "mean upload"];
    if any_sim {
        headers.push("TTA (virt s)");
        headers.push("total (virt s)");
    }
    if traced {
        headers.push("sel/trn/upl/agg/evl (ms)");
    }
    let mut t = Table::new(&headers);
    for o in outcomes {
        let mut row = vec![
            o.run.index.to_string(),
            o.run.label.clone(),
            o.run.opts.seed.to_string(),
            format!("{:.2}", o.log.final_accuracy_pct()),
            format!("{:.2}", o.log.best_accuracy_pct()),
            fmt_bytes(o.log.mean_upload_bytes()),
        ];
        if any_sim {
            match &o.sim {
                Some(s) => {
                    row.push(
                        s.tta_virtual_seconds
                            .map(|x| format!("{x:.2}"))
                            .unwrap_or_else(|| "not reached".into()),
                    );
                    row.push(format!("{:.2}", s.total_virtual_seconds));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        if traced {
            match &o.capture {
                Some(c) if !c.is_empty() => {
                    let s = c.summary();
                    row.push(
                        ["select", "train", "upload", "aggregate", "eval"]
                            .iter()
                            .map(|stage| stage_ms(&s, &format!("round.{stage}")))
                            .collect::<Vec<_>>()
                            .join("/"),
                    );
                }
                _ => row.push("-".into()),
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
}
