//! The perf gate behind `bench_perf --gate`: the `BENCH_kernels.json`
//! schema (shared by the writer and the reader so they can never skew)
//! and the baseline comparison CI runs on every PR.
//!
//! The gate compares **speedup ratios**, not absolute nanoseconds: a
//! ratio divides out the machine, so a committed baseline from one host
//! remains meaningful on another. An entry regresses when its fresh
//! speedup falls more than `tolerance` below the committed one:
//!
//! ```text
//! fresh.speedup < baseline.speedup * (1 - tolerance)   →  FAIL
//! ```
//!
//! A baseline entry missing from the fresh run is also a failure — a
//! deleted benchmark must be removed from the baseline deliberately (see
//! BENCHMARKS.md for the update procedure), never silently dropped.
//! Entries only present in the fresh run are fine: new benchmarks land
//! before their baseline does.

use serde::{Deserialize, Serialize};

/// Default relative tolerance (15 %): generous enough for shared CI
/// runners, tight enough to catch the ~0.6x-class regressions the gate
/// exists for.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One reference-vs-batched measurement.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct BenchEntry {
    /// What was measured.
    pub name: String,
    /// Per-sample reference path, nanoseconds per call (median).
    pub reference_ns: f64,
    /// Batched engine, nanoseconds per call (median).
    pub batched_ns: f64,
    /// `reference_ns / batched_ns`.
    pub speedup: f64,
}

/// The `BENCH_kernels.json` document.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct BenchReport {
    /// Schema tag for forward compatibility.
    pub schema: String,
    /// Whether this was a `--smoke` (CI) run.
    pub smoke: bool,
    /// Rayon worker threads available during the run.
    pub threads: usize,
    /// All measurements.
    pub entries: Vec<BenchEntry>,
}

/// The schema tag this crate writes and accepts.
pub const SCHEMA: &str = "fedbiad-bench-kernels/v1";

/// One gate verdict line.
#[derive(Clone, Debug, PartialEq)]
pub enum GateFinding {
    /// The baseline and fresh reports use different schema tags.
    SchemaMismatch {
        /// Baseline tag.
        baseline: String,
        /// Fresh tag.
        fresh: String,
    },
    /// A baseline entry has no fresh counterpart.
    Missing {
        /// The absent entry's name.
        name: String,
    },
    /// A fresh speedup fell below `baseline * (1 - tolerance)`.
    Regressed {
        /// Entry name.
        name: String,
        /// Committed speedup.
        baseline: f64,
        /// Measured speedup.
        fresh: f64,
        /// The floor it had to clear.
        floor: f64,
    },
}

impl std::fmt::Display for GateFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateFinding::SchemaMismatch { baseline, fresh } => {
                write!(
                    f,
                    "schema mismatch: baseline `{baseline}` vs fresh `{fresh}`"
                )
            }
            GateFinding::Missing { name } => {
                write!(
                    f,
                    "{name}: present in baseline but missing from the fresh run"
                )
            }
            GateFinding::Regressed {
                name,
                baseline,
                fresh,
                floor,
            } => write!(
                f,
                "{name}: speedup {fresh:.3}x below floor {floor:.3}x (baseline {baseline:.3}x)"
            ),
        }
    }
}

/// Compare a fresh report against the committed baseline. Empty result =
/// gate passes.
pub fn compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Vec<GateFinding> {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be in [0, 1)"
    );
    let mut findings = Vec::new();
    if baseline.schema != fresh.schema {
        findings.push(GateFinding::SchemaMismatch {
            baseline: baseline.schema.clone(),
            fresh: fresh.schema.clone(),
        });
        return findings;
    }
    for b in &baseline.entries {
        let Some(f) = fresh.entries.iter().find(|e| e.name == b.name) else {
            findings.push(GateFinding::Missing {
                name: b.name.clone(),
            });
            continue;
        };
        let floor = b.speedup * (1.0 - tolerance);
        if f.speedup < floor {
            findings.push(GateFinding::Regressed {
                name: b.name.clone(),
                baseline: b.speedup,
                fresh: f.speedup,
                floor,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            smoke: false,
            threads: 1,
            entries: entries
                .iter()
                .map(|&(name, speedup)| BenchEntry {
                    name: name.to_string(),
                    reference_ns: 1000.0 * speedup,
                    batched_ns: 1000.0,
                    speedup,
                })
                .collect(),
        }
    }

    #[test]
    fn equal_reports_pass() {
        let b = report(&[("kernel/a", 2.0), ("aggregate/b", 1.5)]);
        assert!(compare(&b, &b, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn drop_within_tolerance_passes_beyond_fails() {
        let b = report(&[("aggregate/b", 2.0)]);
        // 2.0 * (1 - 0.15) = 1.7 is the floor.
        let ok = report(&[("aggregate/b", 1.71)]);
        assert!(compare(&b, &ok, DEFAULT_TOLERANCE).is_empty());
        let bad = report(&[("aggregate/b", 1.69)]);
        let f = compare(&b, &bad, DEFAULT_TOLERANCE);
        assert_eq!(f.len(), 1);
        assert!(matches!(&f[0], GateFinding::Regressed { name, .. } if name == "aggregate/b"));
    }

    #[test]
    fn exact_floor_passes() {
        // Not-strictly-below the floor is a pass: the comparison is `<`.
        let b = report(&[("x", 1.0)]);
        let f = report(&[("x", 0.85)]);
        assert!(compare(&b, &f, 0.15).is_empty());
    }

    #[test]
    fn missing_baseline_entry_fails() {
        let b = report(&[("kernel/a", 2.0), ("aggregate/b", 1.5)]);
        let f = report(&[("kernel/a", 2.0)]);
        let out = compare(&b, &f, DEFAULT_TOLERANCE);
        assert_eq!(
            out,
            vec![GateFinding::Missing {
                name: "aggregate/b".to_string()
            }]
        );
    }

    #[test]
    fn extra_fresh_entries_are_fine() {
        let b = report(&[("kernel/a", 2.0)]);
        let f = report(&[("kernel/a", 2.0), ("aggregate/new", 0.1)]);
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn schema_mismatch_fails_fast() {
        let b = report(&[("kernel/a", 2.0)]);
        let mut f = report(&[("kernel/a", 2.0)]);
        f.schema = "fedbiad-bench-kernels/v2".to_string();
        let out = compare(&b, &f, DEFAULT_TOLERANCE);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], GateFinding::SchemaMismatch { .. }));
    }

    #[test]
    fn improvements_never_fail() {
        let b = report(&[("aggregate/b", 0.8)]);
        let f = report(&[("aggregate/b", 2.5)]);
        assert!(compare(&b, &f, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let b = report(&[("kernel/a", 2.0)]);
        let json = serde_json::to_string(&b).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].speedup, 2.0);
    }
}
