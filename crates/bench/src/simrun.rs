//! Discrete-event simulation runner: build + run any registry method
//! under any server policy × heterogeneity profile (the `sim_tta`
//! binary's engine).

use crate::methods::{Method, RunOpts};
use fedbiad_compress::dgc::Dgc;
use fedbiad_compress::fedpaq::FedPaq;
use fedbiad_compress::signsgd::SignSgd;
use fedbiad_compress::stc::Stc;
use fedbiad_core::baselines::{Afd, FedAvg, FedDrop, FedMp, Fjord, HeteroFl};
use fedbiad_core::{FedBiad, FedBiadConfig};
use fedbiad_fl::round::cohort_size;
use fedbiad_fl::runner::ExperimentConfig;
use fedbiad_fl::workload::WorkloadBundle;
use fedbiad_sim::{
    CostModel, DeadlineOverSelect, FedBuff, HeterogeneityProfile, ServerPolicy, SimConfig,
    SimReport, Simulator, SyncBarrier,
};
use std::sync::Arc;

/// Which server policy to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Synchronous barrier (the lock-step runner).
    Sync,
    /// Deadline-based over-selection with straggler dropping.
    Deadline,
    /// FedBuff-style buffered asynchronous aggregation.
    FedBuff,
}

impl PolicyChoice {
    /// All three, sweep order.
    pub fn all() -> [PolicyChoice; 3] {
        [
            PolicyChoice::Sync,
            PolicyChoice::Deadline,
            PolicyChoice::FedBuff,
        ]
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<PolicyChoice> {
        match s.to_ascii_lowercase().as_str() {
            "sync" | "barrier" => Some(PolicyChoice::Sync),
            "deadline" | "overselect" => Some(PolicyChoice::Deadline),
            "fedbuff" | "buffered" | "async" => Some(PolicyChoice::FedBuff),
            _ => None,
        }
    }

    /// Instantiate the policy for a cohort of `cohort` clients and an
    /// estimated nominal round duration (used to place the deadline).
    pub fn build(self, cohort: usize, nominal_round_seconds: f64) -> Box<dyn ServerPolicy> {
        match self {
            PolicyChoice::Sync => Box::new(SyncBarrier),
            PolicyChoice::Deadline => {
                // Over-select 50 %, close the round at 2× the nominal
                // round time: fast clients make it, hard stragglers miss.
                Box::new(DeadlineOverSelect::new(1.5, 2.0 * nominal_round_seconds))
            }
            PolicyChoice::FedBuff => Box::new(FedBuff::new((cohort / 2).max(1), cohort.max(1))),
        }
    }
}

/// Parse a heterogeneity-profile CLI name.
pub fn parse_profile(s: &str) -> Option<HeterogeneityProfile> {
    match s.to_ascii_lowercase().as_str() {
        "homogeneous" | "homog" => Some(HeterogeneityProfile::homogeneous_5g()),
        "mixed" | "mixed-mobile" => Some(HeterogeneityProfile::MixedMobile {
            compute_spread: 6.0,
            jitter: 0.1,
        }),
        "stragglers" | "straggler" => Some(HeterogeneityProfile::Stragglers {
            fraction: 0.3,
            slowdown: 15.0,
            jitter: 0.1,
        }),
        _ => None,
    }
}

/// A nominal (multiplier-1, 5G) round-duration estimate for deadline
/// placement: compute + full-model transmission both ways.
pub fn nominal_round_seconds(bundle: &WorkloadBundle, cost: &CostModel) -> f64 {
    let weights = bundle.model.arch().total_weights;
    let net = fedbiad_sim::LinkClass::FiveG.network();
    let model_bytes = (weights as u64) * 4;
    cost.local_seconds(weights, bundle.train.local_iters, 1.0)
        + net.download_message_seconds(model_bytes)
        + net.upload_message_seconds(model_bytes)
}

/// Run `method` on `bundle` under `policy` × `profile` and return the
/// simulation report.
pub fn run_sim_method(
    method: Method,
    bundle: &WorkloadBundle,
    opts: RunOpts,
    policy: PolicyChoice,
    profile: HeterogeneityProfile,
) -> SimReport {
    let base = ExperimentConfig {
        rounds: opts.rounds,
        client_fraction: opts.client_fraction,
        seed: opts.seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: opts.eval_every,
        eval_max_samples: opts.eval_max_samples,
    };
    let cfg = SimConfig::new(base, profile);
    let cohort = cohort_size(bundle.data.num_clients(), base.client_fraction);
    let pol = policy.build(cohort, nominal_round_seconds(bundle, &cfg.cost));

    let p = bundle.dropout_rate;
    let model = bundle.model.as_ref();
    let data = &bundle.data;
    let dgc = || Arc::new(Dgc::paper());
    match method {
        Method::FedAvg => Simulator::new(model, data, FedAvg::new(), pol, cfg).run(),
        Method::FedDrop => Simulator::new(model, data, FedDrop::new(p), pol, cfg).run(),
        Method::Afd => Simulator::new(model, data, Afd::new(p), pol, cfg).run(),
        Method::FedMp => Simulator::new(model, data, FedMp::new(p), pol, cfg).run(),
        Method::Fjord => Simulator::new(model, data, Fjord::new(p), pol, cfg).run(),
        Method::HeteroFl => Simulator::new(model, data, HeteroFl::new(p), pol, cfg).run(),
        Method::FedBiad => {
            let algo = FedBiad::new(FedBiadConfig::paper(p, opts.stage_boundary));
            Simulator::new(model, data, algo, pol, cfg).run()
        }
        Method::FedPaq => Simulator::new(
            model,
            data,
            FedAvg::with_sketch(Arc::new(FedPaq::paper())),
            pol,
            cfg,
        )
        .run(),
        Method::SignSgd => Simulator::new(
            model,
            data,
            FedAvg::with_sketch(Arc::new(SignSgd::default())),
            pol,
            cfg,
        )
        .run(),
        Method::Stc => Simulator::new(
            model,
            data,
            FedAvg::with_sketch(Arc::new(Stc::paper())),
            pol,
            cfg,
        )
        .run(),
        Method::Dgc => Simulator::new(model, data, FedAvg::with_sketch(dgc()), pol, cfg).run(),
        Method::AfdDgc => Simulator::new(model, data, Afd::with_sketch(p, dgc()), pol, cfg).run(),
        Method::FjordDgc => {
            Simulator::new(model, data, Fjord::with_sketch(p, dgc()), pol, cfg).run()
        }
        Method::FedBiadDgc => {
            let algo = FedBiad::with_sketch(FedBiadConfig::paper(p, opts.stage_boundary), dgc());
            Simulator::new(model, data, algo, pol, cfg).run()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_fl::workload::{build, Scale, Workload};

    #[test]
    fn policy_choice_parses() {
        assert_eq!(PolicyChoice::parse("SYNC"), Some(PolicyChoice::Sync));
        assert_eq!(PolicyChoice::parse("fedbuff"), Some(PolicyChoice::FedBuff));
        assert_eq!(
            PolicyChoice::parse("deadline"),
            Some(PolicyChoice::Deadline)
        );
        assert_eq!(PolicyChoice::parse("nope"), None);
    }

    #[test]
    fn profile_parses() {
        assert!(parse_profile("homogeneous").is_some());
        assert!(parse_profile("mixed").is_some());
        assert!(parse_profile("stragglers").is_some());
        assert!(parse_profile("nope").is_none());
    }

    #[test]
    fn sim_runs_every_policy_on_smoke_workload() {
        let bundle = build(Workload::MnistLike, Scale::Smoke, 3);
        let opts = RunOpts::for_rounds(2, 3);
        for policy in PolicyChoice::all() {
            let report = run_sim_method(
                Method::FedAvg,
                &bundle,
                opts,
                policy,
                parse_profile("stragglers").unwrap(),
            );
            assert_eq!(report.log.records.len(), 2, "{policy:?}");
            assert!(report.total_virtual_seconds > 0.0, "{policy:?}");
        }
    }
}
