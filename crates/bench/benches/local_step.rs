//! Criterion micro-bench: one client-side local update per method — the
//! microscopic version of Fig. 7's LTTR comparison. Shape target: FedBIAD
//! costs more than FedAvg/FedDrop (adaptive bookkeeping, paper §V-C
//! reports +5…16 %) but the same order of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedbiad_core::baselines::{Afd, FedAvg, FedDrop, Fjord};
use fedbiad_core::{FedBiad, FedBiadConfig};
use fedbiad_fl::algorithm::{FlAlgorithm, RoundInfo};
use fedbiad_fl::workload::{build, Scale, Workload};
use fedbiad_tensor::rng::{stream, StreamTag};

fn bench_one<A: FlAlgorithm>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    mut algo: A,
    bundle: &fedbiad_fl::workload::WorkloadBundle,
) {
    let model = bundle.model.as_ref();
    let global = model.init_params(&mut stream(7, StreamTag::Init, 0, 0));
    let info = RoundInfo {
        round: 0,
        total_rounds: 10,
        seed: 7,
        agg: Default::default(),
    };
    let data = &bundle.data.clients[0];
    let cfg = bundle.train;
    let rctx = algo.begin_round(info, &global);
    group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
        let mut st = algo.init_client_state(0, model, &global);
        b.iter(|| algo.local_update(info, &rctx, 0, &mut st, &global, data, model, &cfg))
    });
}

fn bench_local_step(c: &mut Criterion) {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 7);
    let p = bundle.dropout_rate;
    let mut group = c.benchmark_group("local_step");
    bench_one(&mut group, "fedavg", FedAvg::new(), &bundle);
    bench_one(&mut group, "feddrop", FedDrop::new(p), &bundle);
    bench_one(&mut group, "afd", Afd::new(p), &bundle);
    bench_one(&mut group, "fjord", Fjord::new(p), &bundle);
    bench_one(
        &mut group,
        "fedbiad",
        FedBiad::new(FedBiadConfig::paper(p, 5)),
        &bundle,
    );
    group.finish();
}

criterion_group!(benches, bench_local_step);
criterion_main!(benches);
