//! Criterion micro-bench: encode throughput of the Table-II compressors on
//! a 1M-parameter delta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedbiad_compress::dgc::Dgc;
use fedbiad_compress::fedpaq::FedPaq;
use fedbiad_compress::none::NoCompression;
use fedbiad_compress::signsgd::SignSgd;
use fedbiad_compress::stc::Stc;
use fedbiad_compress::{ClientState, Compressor};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;

fn bench_compressors(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut rng = stream(3, StreamTag::Compress, 0, 0);
    let delta: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

    let compressors: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("none", Box::new(NoCompression)),
        ("fedpaq8", Box::new(FedPaq::paper())),
        ("signsgd", Box::new(SignSgd::default())),
        ("stc", Box::new(Stc::paper())),
        ("dgc", Box::new(Dgc::paper())),
    ];

    let mut group = c.benchmark_group("compress_1m");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for (name, comp) in &compressors {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let mut st = ClientState::default();
            let mut crng = stream(4, StreamTag::Compress, 0, 0);
            let mut round = 10; // past DGC warm-up
            b.iter(|| {
                let out = comp.compress(&mut st, &delta, round, &mut crng);
                round += 1;
                out.wire_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compressors);
criterion_main!(benches);
