//! Criterion micro-bench: server-side aggregation cost vs cohort size and
//! zero-handling mode (the `agg_seconds` component of TTA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedbiad_core::pattern::{keep_count, DropPattern};
use fedbiad_fl::aggregate::{aggregate_weights, AggSettings, ZeroMode};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::mlp::MlpModel;
use fedbiad_nn::Model;
use fedbiad_tensor::rng::{stream, StreamTag};

fn bench_aggregation(c: &mut Criterion) {
    let model = MlpModel::new(784, 128, 10);
    let global0 = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
    let j = global0.num_row_units();
    let keep = keep_count(j, 0.5);

    let mut group = c.benchmark_group("aggregate_mlp");
    group.sample_size(20);
    for &clients in &[5usize, 20, 100] {
        // Pre-build one masked upload per client.
        let uploads: Vec<Upload> = (0..clients)
            .map(|k| {
                let mut rng = stream(2, StreamTag::Pattern, 0, k as u64);
                let pattern = DropPattern::sample_global(j, keep, &mut rng);
                Upload::masked_weights(global0.clone(), pattern.to_mask(&global0))
            })
            .collect();
        for mode in [
            ZeroMode::ZerosPull,
            ZeroMode::HoldersOnly,
            ZeroMode::StaleFill,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), clients),
                &(),
                |b, _| {
                    b.iter(|| {
                        let mut g = global0.clone();
                        let ups: Vec<(f32, &Upload)> = uploads.iter().map(|u| (1.0, u)).collect();
                        aggregate_weights(&mut g, &ups, mode, AggSettings::default()).unwrap();
                        g
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
