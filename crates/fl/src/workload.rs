//! Benchmark workload assembly: the paper's five dataset/model pairs with
//! their per-dataset hyper-parameters (§V-A), at three scales:
//!
//! * `Smoke` — seconds-fast configurations for tests;
//! * `Lab` — the default for the bench harness: small enough for a laptop,
//!   large enough that the accuracy *shape* across methods is meaningful;
//! * paper-scale byte columns are always computed analytically from the
//!   paper-scale architectures (they need no training).

use crate::algorithm::TrainConfig;
use fedbiad_data::dataset::{ClientData, FedDataset};
use fedbiad_data::partition::{
    partition_images, partition_text_contiguous, reddit_user_sizes, ImagePartition,
};
use fedbiad_data::synth_image::{LazyClients, SyntheticImageSpec};
use fedbiad_data::synth_text::SyntheticTextSpec;
use fedbiad_nn::lstm_lm::LstmLmModel;
use fedbiad_nn::mlp::MlpModel;
use fedbiad_nn::Model;
use serde::{Deserialize, Serialize};

/// The five benchmark workloads of §V-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// MNIST-like images, 1000-client-style non-IID (scaled down).
    MnistLike,
    /// FMNIST-like images (harder), non-IID.
    FmnistLike,
    /// PTB-like language, IID.
    PtbLike,
    /// WikiText-2-like language (larger vocab + corpus), IID.
    WikiText2Like,
    /// Reddit-like language, naturally non-IID with unequal client sizes.
    RedditLike,
}

impl Workload {
    /// All five, in Table I order.
    pub fn all() -> [Workload; 5] {
        [
            Workload::MnistLike,
            Workload::FmnistLike,
            Workload::PtbLike,
            Workload::WikiText2Like,
            Workload::RedditLike,
        ]
    }

    /// Table-row name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::MnistLike => "mnist-like",
            Workload::FmnistLike => "fmnist-like",
            Workload::PtbLike => "ptb-like",
            Workload::WikiText2Like => "wikitext2-like",
            Workload::RedditLike => "reddit-like",
        }
    }

    /// Parse a CLI/spec name (short forms accepted, case-insensitive).
    ///
    /// ```
    /// use fedbiad_fl::workload::Workload;
    /// assert_eq!(Workload::parse("wt2"), Some(Workload::WikiText2Like));
    /// assert_eq!(Workload::parse("MNIST"), Some(Workload::MnistLike));
    /// assert_eq!(Workload::parse("bogus"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Workload> {
        match s.to_ascii_lowercase().as_str() {
            "mnist" | "mnist-like" => Some(Workload::MnistLike),
            "fmnist" | "fmnist-like" => Some(Workload::FmnistLike),
            "ptb" | "ptb-like" => Some(Workload::PtbLike),
            "wikitext2" | "wikitext-2" | "wikitext2-like" | "wt2" => Some(Workload::WikiText2Like),
            "reddit" | "reddit-like" => Some(Workload::RedditLike),
            _ => None,
        }
    }

    /// Is this a next-word-prediction workload (LSTM model, top-3 eval)?
    pub fn is_text(self) -> bool {
        matches!(
            self,
            Workload::PtbLike | Workload::WikiText2Like | Workload::RedditLike
        )
    }

    /// The paper's dropout rate for this dataset (§V-A: 0.2 for the
    /// small-model MNIST, 0.5 elsewhere).
    pub fn paper_dropout_rate(self) -> f32 {
        match self {
            Workload::MnistLike => 0.2,
            _ => 0.5,
        }
    }

    /// Paper-scale full-model upload per round (Table I 'FedAvg' row).
    pub fn paper_full_upload_bytes(self) -> u64 {
        match self {
            Workload::MnistLike => 531 * 1024,
            Workload::FmnistLike => (1.1 * 1024.0 * 1024.0) as u64,
            Workload::PtbLike | Workload::RedditLike => {
                LstmLmModel::paper_ptb().arch().total_weights as u64 * 4
            }
            Workload::WikiText2Like => {
                LstmLmModel::paper_wikitext2().arch().total_weights as u64 * 4
            }
        }
    }
}

/// Workload scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny — for integration tests (seconds).
    Smoke,
    /// Default bench-harness scale (minutes for the full Table I).
    Lab,
}

/// A fully assembled workload.
pub struct WorkloadBundle {
    /// Workload id.
    pub workload: Workload,
    /// Federated data (clients + test).
    pub data: FedDataset,
    /// Model architecture.
    pub model: Box<dyn Model>,
    /// Dropout rate p for this dataset.
    pub dropout_rate: f32,
    /// Local-training configuration.
    pub train: TrainConfig,
    /// Evaluation top-k (1 images, 3 next-word).
    pub eval_topk: usize,
    /// TTA target accuracy, calibrated to the synthetic difficulty
    /// (the paper's absolute targets belong to the real datasets).
    pub target_acc: f64,
}

/// Assembly overrides for [`build_with`] (the scenario engine's knobs);
/// `Default` reproduces [`build`] exactly.
#[derive(Clone, Debug, Default)]
pub struct WorkloadOverrides {
    /// Replace the paper's Dirichlet(0.3) image partitioner (ignored by
    /// text workloads, whose partitioning is part of the data model).
    pub image_partition: Option<ImagePartition>,
    /// Replace the scale's registered population with a lazily
    /// materialised one (image workloads only; text workloads ignore it).
    /// Client shards are derived on demand from the seed, so memory stays
    /// O(cohort) instead of O(registered clients) — this is what lets a
    /// scenario register 10⁶ clients.
    pub population: Option<PopulationOverride>,
}

/// Lazily materialised population for [`WorkloadOverrides::population`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopulationOverride {
    /// Registered clients K (each derivable on demand, never all live).
    pub clients: usize,
    /// Samples per client shard (constant across clients).
    pub samples_per_client: usize,
}

/// Build a workload at the given scale, deterministically from `seed`.
///
/// ```
/// use fedbiad_fl::workload::{build, Scale, Workload};
///
/// let bundle = build(Workload::PtbLike, Scale::Smoke, 42);
/// assert!(bundle.data.num_clients() > 0);
/// assert_eq!(bundle.eval_topk, 3); // top-3 accuracy for next-word prediction
/// ```
pub fn build(workload: Workload, scale: Scale, seed: u64) -> WorkloadBundle {
    build_with(workload, scale, seed, &WorkloadOverrides::default())
}

/// [`build`] with assembly overrides (e.g. an extreme-non-IID partition).
pub fn build_with(
    workload: Workload,
    scale: Scale,
    seed: u64,
    overrides: &WorkloadOverrides,
) -> WorkloadBundle {
    match workload {
        Workload::MnistLike | Workload::FmnistLike => build_image(workload, scale, seed, overrides),
        _ => build_text(workload, scale, seed),
    }
}

fn build_image(
    workload: Workload,
    scale: Scale,
    seed: u64,
    overrides: &WorkloadOverrides,
) -> WorkloadBundle {
    let hard = workload == Workload::FmnistLike;
    let (spec, clients, hidden) = match scale {
        Scale::Smoke => {
            let mut s = if hard {
                SyntheticImageSpec::fmnist_like()
            } else {
                SyntheticImageSpec::mnist_like()
            };
            s.side = 8;
            s.classes = 4;
            s.train_n = 320;
            s.test_n = 120;
            // Smoke runs back fast tests: keep the task easy enough that a
            // handful of rounds learns it.
            s.distinctiveness = if hard { 0.7 } else { 0.92 };
            s.noise = if hard { 0.2 } else { 0.08 };
            s.shift_max = 1;
            (s, 8usize, 16usize)
        }
        Scale::Lab => {
            let mut s = if hard {
                SyntheticImageSpec::fmnist_like()
            } else {
                SyntheticImageSpec::mnist_like()
            };
            // Paper: 1000 clients over 60k samples = 60 per client; we keep
            // the same per-client scarcity (60) at 200 clients, so the
            // κ=0.1 round has 20 participants (vs the paper's 100) — enough
            // that random row drops average out across the cohort.
            s.train_n = 12_000;
            (s, 200usize, if hard { 256 } else { 128 })
        }
    };
    let data = if let Some(pop) = overrides.population {
        // Lazy population: shards derive on demand from the seed (balanced
        // classes, constant size), so registering 10⁶ clients costs only
        // the class prototypes. The Dirichlet partitioner needs the whole
        // training pool in memory, so a population override supersedes any
        // partition override.
        let lazy = LazyClients::new(spec.clone(), seed, pop.clients, pop.samples_per_client);
        let test = lazy.test_set(spec.test_n);
        FedDataset {
            name: workload.name().into(),
            clients: Vec::new(),
            lazy: Some(lazy),
            test,
        }
    } else {
        let (train, test) = spec.generate(seed);
        // Paper §V-A: non-IID partitioning strategy of [28] (Dirichlet,
        // with a small α for pronounced label skew) — unless a scenario
        // overrides it.
        let partition = overrides
            .image_partition
            .clone()
            .unwrap_or(ImagePartition::Dirichlet { alpha: 0.3 });
        let shards = partition_images(&train, clients, &partition, seed);
        FedDataset {
            name: workload.name().into(),
            clients: shards.into_iter().map(ClientData::Image).collect(),
            lazy: None,
            test: ClientData::Image(test),
        }
    };
    let model = Box::new(MlpModel::new(spec.dim(), hidden, spec.classes));
    WorkloadBundle {
        workload,
        data,
        model,
        dropout_rate: workload.paper_dropout_rate(),
        train: TrainConfig {
            local_iters: IMAGE_LOCAL_ITERS,
            batch_size: 32,
            lr: 0.3,
            clip_norm: None,
            weight_decay: 1e-4,
        },
        eval_topk: 1,
        target_acc: if hard { 0.55 } else { 0.80 },
    }
}

/// Local iterations V for the image workloads at lab scale: enough
/// τ-checkpoints (V/τ − 1 = 7 with τ = 3) for the stage-one pattern search
/// to converge within a round.
const IMAGE_LOCAL_ITERS: usize = 24;

fn build_text(workload: Workload, scale: Scale, seed: u64) -> WorkloadBundle {
    let mut spec = match workload {
        Workload::PtbLike => SyntheticTextSpec::ptb_like(),
        Workload::WikiText2Like => SyntheticTextSpec::wikitext2_like(),
        Workload::RedditLike => SyntheticTextSpec::reddit_like(),
        _ => unreachable!(),
    };
    let (clients, embed, hidden, layers) = match scale {
        Scale::Smoke => {
            spec.vocab = 60;
            spec.tokens_train = 4_000;
            spec.tokens_test = 900;
            spec.seq_len = 8;
            (6usize, 12usize, 12usize, 1usize)
        }
        // 100 clients ⇒ κ=0.1 rounds have 10 participants (the paper's
        // rounds have 100). See EXPERIMENTS.md for the capacity premise:
        // at p = 0.5 the (1−p)-sub-models carry the accuracy, and at this
        // deliberately laptop-sized scale their ceiling sits slightly
        // below FedAvg's late-round accuracy; the paper's early-window
        // ordering (Fig. 2) and all communication/TTA shapes reproduce.
        Scale::Lab => (100usize, 48usize, 48usize, 2usize),
    };

    let data = if workload == Workload::RedditLike {
        // Non-IID: per-user streams with home topics and unequal sizes.
        let lang = spec.language(seed);
        let sizes = reddit_user_sizes(clients, spec.tokens_train, spec.seq_len);
        let users: Vec<ClientData> = sizes
            .iter()
            .enumerate()
            .map(|(u, &n)| ClientData::Text(spec.generate_user(&lang, seed, u as u64, n)))
            .collect();
        // Test set: a mixture over users' distributions (held-out streams).
        let mut test_tokens = Vec::new();
        for u in 0..clients.min(8) {
            let t = spec.generate_user(&lang, seed ^ 0x5151, u as u64, spec.tokens_test / 8);
            test_tokens.extend(t.tokens);
        }
        FedDataset {
            name: workload.name().into(),
            clients: users,
            lazy: None,
            test: ClientData::Text(fedbiad_data::TextSet {
                tokens: test_tokens,
                seq_len: spec.seq_len,
            }),
        }
    } else {
        let (train, test) = spec.generate(seed);
        let shards = partition_text_contiguous(&train, clients);
        FedDataset {
            name: workload.name().into(),
            clients: shards.into_iter().map(ClientData::Text).collect(),
            lazy: None,
            test: ClientData::Text(test),
        }
    };

    let model = Box::new(LstmLmModel::new(spec.vocab, embed, hidden, layers));
    WorkloadBundle {
        workload,
        data,
        model,
        dropout_rate: workload.paper_dropout_rate(),
        train: TrainConfig {
            local_iters: 20,
            batch_size: 16,
            lr: 4.0,
            clip_norm: Some(5.0),
            weight_decay: 1e-5,
        },
        eval_topk: 3, // paper: top-3 for next-word prediction
        // TTA target inside every method's reachable band at lab scale
        // (the paper's 31 %/30 % targets are likewise just under the
        // methods' final accuracies on the real corpora).
        target_acc: 0.27,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_smoke_workloads_assemble() {
        for w in Workload::all() {
            let b = build(w, Scale::Smoke, 3);
            assert!(b.data.num_clients() > 0, "{w:?}");
            assert!(b.data.min_client_samples() > 0, "{w:?}");
            assert_eq!(b.eval_topk, if w.is_text() { 3 } else { 1 });
            assert!(b.dropout_rate > 0.0 && b.dropout_rate < 1.0);
            // Model and data agree on dimensionality.
            match (&b.data.test, w.is_text()) {
                (ClientData::Image(s), false) => {
                    assert_eq!(s.dim, b.model.arch().input_dim);
                }
                (ClientData::Text(t), true) => {
                    assert!(t.tokens.iter().all(|&tok| (tok as usize) < 1000));
                }
                _ => panic!("workload/data kind mismatch"),
            }
        }
    }

    #[test]
    fn reddit_clients_are_unequal() {
        let b = build(Workload::RedditLike, Scale::Smoke, 4);
        let sizes: Vec<usize> = b.data.clients.iter().map(ClientData::num_samples).collect();
        assert!(sizes[0] > *sizes.last().unwrap(), "{sizes:?}");
    }

    #[test]
    fn paper_dropout_rates_match_section_va() {
        assert_eq!(Workload::MnistLike.paper_dropout_rate(), 0.2);
        assert_eq!(Workload::PtbLike.paper_dropout_rate(), 0.5);
    }

    #[test]
    fn paper_upload_sizes_match_table1() {
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        assert!((mb(Workload::PtbLike.paper_full_upload_bytes()) - 29.8).abs() < 0.1);
        assert!((mb(Workload::WikiText2Like.paper_full_upload_bytes()) - 75.3).abs() < 0.1);
        assert_eq!(Workload::MnistLike.paper_full_upload_bytes(), 531 * 1024);
    }

    #[test]
    fn partition_override_changes_skew_only() {
        let base = build(Workload::MnistLike, Scale::Smoke, 5);
        let iid = build_with(
            Workload::MnistLike,
            Scale::Smoke,
            5,
            &WorkloadOverrides {
                image_partition: Some(ImagePartition::Iid),
                population: None,
            },
        );
        // Same total data, same test set, different per-client shards.
        assert_eq!(base.data.num_clients(), iid.data.num_clients());
        assert_eq!(base.data.test.num_samples(), iid.data.test.num_samples());
        let sizes = |b: &WorkloadBundle| -> Vec<usize> {
            b.data.clients.iter().map(ClientData::num_samples).collect()
        };
        assert_ne!(sizes(&base), sizes(&iid));
        // Default overrides reproduce `build` exactly.
        let same = build_with(
            Workload::MnistLike,
            Scale::Smoke,
            5,
            &WorkloadOverrides::default(),
        );
        assert_eq!(sizes(&base), sizes(&same));
    }

    #[test]
    fn population_override_builds_a_lazy_image_dataset() {
        let pop = PopulationOverride {
            clients: 5_000,
            samples_per_client: 12,
        };
        let b = build_with(
            Workload::MnistLike,
            Scale::Smoke,
            11,
            &WorkloadOverrides {
                image_partition: None,
                population: Some(pop),
            },
        );
        assert!(b.data.lazy.is_some());
        assert!(b.data.clients.is_empty(), "no eager shards materialised");
        assert_eq!(b.data.num_clients(), 5_000);
        assert_eq!(b.data.min_client_samples(), 12);
        // Shards materialise on demand and deterministically.
        let a = b.data.client(4_999);
        let a2 = b.data.client(4_999);
        match (&*a, &*a2) {
            (ClientData::Image(x), ClientData::Image(y)) => {
                assert_eq!(x.y, y.y);
                assert_eq!(x.x, y.x);
                assert_eq!(x.y.len(), 12);
            }
            _ => panic!("expected image shards"),
        }
        // Text workloads ignore the override entirely.
        let t = build_with(
            Workload::PtbLike,
            Scale::Smoke,
            11,
            &WorkloadOverrides {
                image_partition: None,
                population: Some(pop),
            },
        );
        assert!(t.data.lazy.is_none());
        assert!(!t.data.clients.is_empty());
    }

    #[test]
    fn workload_build_is_deterministic() {
        let a = build(Workload::PtbLike, Scale::Smoke, 9);
        let b = build(Workload::PtbLike, Scale::Smoke, 9);
        match (&a.data.clients[0], &b.data.clients[0]) {
            (ClientData::Text(x), ClientData::Text(y)) => assert_eq!(x.tokens, y.tokens),
            _ => panic!("expected text"),
        }
    }
}
