//! # fedbiad-fl
//!
//! Federated-learning simulation framework: the substrate on which FedBIAD
//! and its baselines (implemented in `fedbiad-core`) run.
//!
//! * [`algorithm::FlAlgorithm`] — the contract an FL method implements:
//!   per-client local update producing an [`upload::Upload`], plus
//!   server-side aggregation;
//! * [`client`] — the shared local-SGD loop (mini-batch sampling, weight
//!   decay for the KL ≈ L2 term of loss (2), gradient masking hooks per
//!   eq. (7));
//! * [`aggregate`] — weighted aggregation with the zero-handling
//!   semantics discussed in DESIGN.md (literal eq. (10), holders-only,
//!   stale-fill), behind two bit-identical engines: the dense reference
//!   and a sharded streaming reducer that decodes real wire bytes
//!   shard by shard (O(model) server memory, parallel across shards);
//! * [`network`] / [`timing`] — the paper's T-Mobile 5G link model
//!   (14.0 Mbps up / 110.6 Mbps down, §V-C) and LTTR/TTA accounting;
//! * [`round`] — the reusable round-loop ingredients (client selection,
//!   state checkout, parallel local updates, result statistics,
//!   evaluation), shared by the lock-step runner and `fedbiad-sim`;
//! * [`runner`] — the lock-step round loop: sample ⌈κK⌉ clients, run local
//!   updates in parallel (rayon), aggregate, evaluate, record;
//! * [`workload`] — assembles the five benchmark workloads (dataset +
//!   model + per-dataset hyper-parameters) at smoke/lab/paper scales.

pub mod adversary;
pub mod aggregate;
pub mod algorithm;
pub mod client;
pub mod metrics;
pub mod network;
pub mod round;
pub mod runner;
pub mod timing;
pub mod upload;
pub mod workload;

pub use adversary::{AdversarySpec, AttackMode, ChurnSpec, GarbageKind};
pub use aggregate::{AggError, AggSettings, RobustKind};
pub use algorithm::{FlAlgorithm, LocalResult, RoundInfo};
pub use metrics::{ExperimentLog, RoundRecord};
pub use network::NetworkModel;
pub use runner::{Experiment, ExperimentConfig};
pub use upload::{Upload, UploadKind};
