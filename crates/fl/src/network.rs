//! Wireless link model.
//!
//! The paper simulates transmission over the T-Mobile 5G profile measured
//! by OpenSignal (§I / §V-C): **110.6 Mbps downlink, 14.0 Mbps uplink** —
//! the ~8× asymmetry that makes *uplink* compression the valuable
//! direction.

use serde::{Deserialize, Serialize};

/// Megabit per second → bytes per second.
const MBPS_TO_BYTES: f64 = 1_000_000.0 / 8.0;

/// Link-speed model for transmission-time accounting.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Uplink speed in Mbps.
    pub uplink_mbps: f64,
    /// Downlink speed in Mbps.
    pub downlink_mbps: f64,
}

impl NetworkModel {
    /// The paper's T-Mobile 5G profile.
    pub fn t_mobile_5g() -> Self {
        Self {
            uplink_mbps: 14.0,
            downlink_mbps: 110.6,
        }
    }

    /// Seconds to upload `bytes`.
    pub fn upload_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.uplink_mbps * MBPS_TO_BYTES)
    }

    /// Seconds to download `bytes`.
    pub fn download_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.downlink_mbps * MBPS_TO_BYTES)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::t_mobile_5g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_is_the_bottleneck() {
        let n = NetworkModel::t_mobile_5g();
        let bytes = 29_800_000; // the paper's PTB model
        assert!(n.upload_seconds(bytes) > 7.0 * n.download_seconds(bytes));
    }

    #[test]
    fn upload_time_matches_hand_calc() {
        let n = NetworkModel::t_mobile_5g();
        // 14 Mbps = 1.75 MB/s ⇒ 1.75 MB uploads in 1 s.
        let s = n.upload_seconds(1_750_000);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn halving_bytes_halves_time() {
        let n = NetworkModel::t_mobile_5g();
        let t1 = n.upload_seconds(1000);
        let t2 = n.upload_seconds(500);
        assert!((t1 - 2.0 * t2).abs() < 1e-12);
    }
}
