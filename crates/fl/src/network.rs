//! Wireless link model.
//!
//! The paper simulates transmission over the T-Mobile 5G profile measured
//! by OpenSignal (§I / §V-C): **110.6 Mbps downlink, 14.0 Mbps uplink** —
//! the ~8× asymmetry that makes *uplink* compression the valuable
//! direction.

use serde::{Deserialize, Serialize};

/// Megabit per second → bytes per second.
const MBPS_TO_BYTES: f64 = 1_000_000.0 / 8.0;

/// Link-speed model for transmission-time accounting.
///
/// ```
/// use fedbiad_fl::NetworkModel;
///
/// let net = NetworkModel::t_mobile_5g();
/// // 14 Mbps uplink = 1.75 MB/s, so 1.75 MB uploads in one second…
/// assert!((net.upload_seconds(1_750_000) - 1.0).abs() < 1e-9);
/// // …and a 50 ms RTT is paid once per message, not per byte.
/// let lagged = net.with_rtt(0.05);
/// assert_eq!(lagged.upload_message_seconds(0), 0.05);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Uplink speed in Mbps.
    pub uplink_mbps: f64,
    /// Downlink speed in Mbps.
    pub downlink_mbps: f64,
    /// Per-message round-trip latency in seconds, added once per
    /// transmitted message on top of the bandwidth term. The default of
    /// 0.0 keeps all pure-bandwidth numbers identical.
    pub rtt_seconds: f64,
}

impl NetworkModel {
    /// The paper's T-Mobile 5G profile (pure bandwidth, zero latency).
    pub fn t_mobile_5g() -> Self {
        Self {
            uplink_mbps: 14.0,
            downlink_mbps: 110.6,
            rtt_seconds: 0.0,
        }
    }

    /// Same link with a per-message round-trip latency attached.
    pub fn with_rtt(mut self, rtt_seconds: f64) -> Self {
        self.rtt_seconds = rtt_seconds;
        self
    }

    /// Seconds to upload `bytes` (bandwidth term only).
    pub fn upload_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.uplink_mbps * MBPS_TO_BYTES)
    }

    /// Seconds to download `bytes` (bandwidth term only).
    pub fn download_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.downlink_mbps * MBPS_TO_BYTES)
    }

    /// Wall-clock of one uplink *message*: bandwidth + round-trip latency.
    pub fn upload_message_seconds(&self, bytes: u64) -> f64 {
        self.upload_seconds(bytes) + self.rtt_seconds
    }

    /// Wall-clock of one downlink *message*: bandwidth + round-trip
    /// latency.
    pub fn download_message_seconds(&self, bytes: u64) -> f64 {
        self.download_seconds(bytes) + self.rtt_seconds
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::t_mobile_5g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_is_the_bottleneck() {
        let n = NetworkModel::t_mobile_5g();
        let bytes = 29_800_000; // the paper's PTB model
        assert!(n.upload_seconds(bytes) > 7.0 * n.download_seconds(bytes));
    }

    #[test]
    fn upload_time_matches_hand_calc() {
        let n = NetworkModel::t_mobile_5g();
        // 14 Mbps = 1.75 MB/s ⇒ 1.75 MB uploads in 1 s.
        let s = n.upload_seconds(1_750_000);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn halving_bytes_halves_time() {
        let n = NetworkModel::t_mobile_5g();
        let t1 = n.upload_seconds(1000);
        let t2 = n.upload_seconds(500);
        assert!((t1 - 2.0 * t2).abs() < 1e-12);
    }

    #[test]
    fn rtt_defaults_to_zero_and_only_affects_message_time() {
        let n = NetworkModel::default();
        assert_eq!(n.rtt_seconds, 0.0);
        assert_eq!(n.upload_message_seconds(1000), n.upload_seconds(1000));

        let lagged = n.with_rtt(0.05);
        // The bandwidth terms are untouched…
        assert_eq!(lagged.upload_seconds(1000), n.upload_seconds(1000));
        assert_eq!(lagged.download_seconds(1000), n.download_seconds(1000));
        // …only per-message times grow, by exactly one RTT each.
        let d = lagged.upload_message_seconds(1000) - n.upload_message_seconds(1000);
        assert!((d - 0.05).abs() < 1e-12, "{d}");
    }
}
