//! The adversary and churn models for robustness experiments.
//!
//! ## Threat model
//!
//! A **static** byzantine fraction: each registered client is drawn once
//! as honest or adversarial from [`StreamTag::Adversary`] (round index 0 —
//! membership never rotates, matching the classical byzantine-FL setting
//! where the attacker controls a fixed set of devices). An adversarial
//! client trains honestly and then *corrupts the upload it sends*: the
//! attack surface is the wire, not the local optimiser, so every attack
//! mode composes with every method, compressor, and engine unchanged.
//!
//! Corruption decodes the upload to its dense twin
//! ([`crate::aggregate::decode_dense`]), maps every payload value through
//! the attack, re-applies the coverage mask (uncovered positions stay
//! exact zeros), and re-wraps the result as a dense-body upload with the
//! **original** coverage and wire-byte accounting — a byzantine client
//! lies about values, not about how many bytes it transmitted, so byte
//! metrics and virtual link timings are unchanged. Under the streaming
//! engine the dense body is re-encoded by the engine's `prepare_msg`
//! (dense-f32 frames preserve NaN/Inf bit patterns), which keeps the
//! dense/streaming differential tests meaningful under attack.
//!
//! ## Churn model
//!
//! Mid-round client churn is drawn per `(round, client)` from
//! [`StreamTag::Churn`] in a fixed two-draw order: *offline* first (the
//! client never starts the round), *dropout* second (the client trains
//! but its upload is lost in transit). One function, [`churn_fate`],
//! makes both draws so the lock-step runner and the discrete-event
//! simulator can never disagree on a client's fate.

use crate::aggregate::{decode_dense, AggError};
use crate::upload::{Upload, UploadBody};
use fedbiad_nn::ParamSet;
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What an adversarial client does to its upload values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackMode {
    /// `v → −v`: the classical sign-flip (inner-product inversion) attack.
    SignFlip,
    /// `v → factor·v`: scaled-update attack (model-boosting for large
    /// factors, stealthy drift for factors near 1).
    Scale {
        /// The multiplier applied to every covered value.
        factor: f32,
    },
    /// Replace every covered value with garbage ([`GarbageKind`]).
    Garbage {
        /// Which garbage value is transmitted.
        kind: GarbageKind,
    },
}

/// The garbage value a [`AttackMode::Garbage`] client transmits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GarbageKind {
    /// NaN — caught by the value-finiteness screen
    /// ([`crate::aggregate::screen_upload_values`]), never by estimators.
    Nan,
    /// +∞ — likewise caught by the screen.
    Inf,
    /// A huge *finite* value (10³⁰): sails through the finiteness screen
    /// by construction, so only a robust estimator can absorb it.
    Huge,
}

impl AttackMode {
    /// The value map this attack applies to every covered payload value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            AttackMode::SignFlip => -v,
            AttackMode::Scale { factor } => factor * v,
            AttackMode::Garbage { kind } => match kind {
                GarbageKind::Nan => f32::NAN,
                GarbageKind::Inf => f32::INFINITY,
                GarbageKind::Huge => 1e30,
            },
        }
    }
}

/// The static byzantine adversary configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdversarySpec {
    /// Probability that a registered client is adversarial (drawn once
    /// per client, never per round).
    pub fraction: f32,
    /// What adversarial clients transmit.
    pub mode: AttackMode,
}

/// Mid-round churn configuration. Probabilities are independent
/// per `(round, client)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Probability a selected client is offline for the round (never
    /// starts; consumes no compute, transmits nothing).
    pub offline: f32,
    /// Probability a participating client's upload is lost mid-round
    /// (the client did the work; the server never sees the bytes).
    pub dropout: f32,
}

/// A selected client's churn fate for one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnFate {
    /// Participates normally.
    Healthy,
    /// Never starts the round.
    Offline,
    /// Trains, but the upload is lost in transit.
    Dropout,
}

/// Whether `client` is in the static adversarial set. Drawn from
/// [`StreamTag::Adversary`] at round 0 regardless of the current round,
/// so membership is a property of the client, not of the round.
pub fn is_adversary(seed: u64, fraction: f32, client: usize) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    stream(seed, StreamTag::Adversary, 0, client as u64).gen_bool(f64::from(fraction).min(1.0))
}

/// The churn fate of `client` in `round`: two `gen_bool` draws from one
/// [`StreamTag::Churn`] stream in fixed order (offline first, dropout
/// second), so the runner and the simulator — which consult the fate at
/// different times — always agree.
pub fn churn_fate(seed: u64, round: usize, client: usize, spec: ChurnSpec) -> ChurnFate {
    let mut rng = stream(seed, StreamTag::Churn, round as u64, client as u64);
    let offline = spec.offline > 0.0 && rng.gen_bool(f64::from(spec.offline).min(1.0));
    let dropout = spec.dropout > 0.0 && rng.gen_bool(f64::from(spec.dropout).min(1.0));
    if offline {
        ChurnFate::Offline
    } else if dropout {
        ChurnFate::Dropout
    } else {
        ChurnFate::Healthy
    }
}

/// Corrupt one upload: decode to the dense twin against `base` (the
/// global the client trained from), map every value through the attack,
/// re-zero uncovered positions, and re-wrap with the original kind,
/// coverage, and wire-byte accounting.
pub fn corrupt_upload(base: &ParamSet, u: &Upload, mode: AttackMode) -> Result<Upload, AggError> {
    let mut p = decode_dense(base, u)?;
    for e in 0..p.num_entries() {
        for v in p.mat_mut(e).as_mut_slice() {
            *v = mode.apply(*v);
        }
        for v in p.bias_mut(e) {
            *v = mode.apply(*v);
        }
    }
    // The attack owns covered values only: dropped positions are "not
    // transmitted" and must stay exact zeros for both engines.
    u.coverage.apply(&mut p);
    Ok(Upload {
        kind: u.kind,
        body: UploadBody::Dense(p),
        coverage: u.coverage.clone(),
        wire_bytes: u.wire_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{upload_has_non_finite, AggSettings};
    use fedbiad_nn::mask::BitVec;
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_nn::ModelMask;
    use fedbiad_tensor::Matrix;

    fn params(v: f32) -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(4, 2, v),
            Some(vec![v; 4]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        p
    }

    #[test]
    fn membership_is_static_and_tracks_the_fraction() {
        let hit =
            |frac: f32| (0..2000).filter(|&c| is_adversary(7, frac, c)).count() as f64 / 2000.0;
        assert_eq!(hit(0.0), 0.0);
        let h = hit(0.2);
        assert!((0.15..0.25).contains(&h), "20% fraction drew {h}");
        // Static: the same client answers the same way every time.
        for c in 0..64 {
            assert_eq!(is_adversary(7, 0.2, c), is_adversary(7, 0.2, c));
        }
        // Seed-sensitive: a different seed draws a different set.
        let a: Vec<bool> = (0..256).map(|c| is_adversary(7, 0.3, c)).collect();
        let b: Vec<bool> = (0..256).map(|c| is_adversary(8, 0.3, c)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn churn_fates_are_deterministic_and_offline_wins() {
        let spec = ChurnSpec {
            offline: 1.0,
            dropout: 1.0,
        };
        // offline = 1 forces Offline even though dropout would also draw.
        assert_eq!(churn_fate(3, 0, 5, spec), ChurnFate::Offline);
        let spec = ChurnSpec {
            offline: 0.0,
            dropout: 1.0,
        };
        assert_eq!(churn_fate(3, 0, 5, spec), ChurnFate::Dropout);
        let spec = ChurnSpec {
            offline: 0.0,
            dropout: 0.0,
        };
        assert_eq!(churn_fate(3, 0, 5, spec), ChurnFate::Healthy);
        // Per-(round, client) independence: fates vary across rounds.
        let spec = ChurnSpec {
            offline: 0.5,
            dropout: 0.0,
        };
        let fates: Vec<ChurnFate> = (0..64).map(|r| churn_fate(3, r, 5, spec)).collect();
        assert!(fates.contains(&ChurnFate::Offline));
        assert!(fates.contains(&ChurnFate::Healthy));
    }

    #[test]
    fn sign_flip_corrupts_covered_values_only() {
        let base = params(0.5);
        let p = params(2.0);
        let mut beta = BitVec::new(4, true);
        beta.set(1, false);
        let mask = ModelMask::from_row_pattern(&p, &beta);
        let u = Upload::masked_weights(p, mask);
        let c = corrupt_upload(&base, &u, AttackMode::SignFlip).unwrap();
        assert_eq!(c.params().mat(0).row(0), &[-2.0, -2.0]);
        // The dropped row stays exact zero — "not transmitted", not −0.
        assert_eq!(c.params().mat(0).row(1), &[0.0, 0.0]);
        assert_eq!(c.wire_bytes, u.wire_bytes);
        assert_eq!(c.kind, u.kind);
    }

    #[test]
    fn corruption_decodes_wire_bodies_against_the_broadcast_base() {
        let base = params(0.5);
        let p = params(2.0);
        let mut beta = BitVec::new(4, true);
        beta.set(2, false);
        let mask = ModelMask::from_row_pattern(&p, &beta);
        let wire = Upload::masked_weights_with(p.clone(), mask.clone(), AggSettings::sharded(1));
        let dense = Upload::masked_weights(p, mask);
        let cw = corrupt_upload(&base, &wire, AttackMode::Scale { factor: 10.0 }).unwrap();
        let cd = corrupt_upload(&base, &dense, AttackMode::Scale { factor: 10.0 }).unwrap();
        assert_eq!(cw.params().flatten(), cd.params().flatten());
        assert_eq!(cw.params().mat(0).row(0), &[20.0, 20.0]);
    }

    #[test]
    fn garbage_kinds_split_on_the_finiteness_screen() {
        let base = params(0.0);
        let u = Upload::full_weights(params(1.0));
        for (kind, caught) in [
            (GarbageKind::Nan, true),
            (GarbageKind::Inf, true),
            (GarbageKind::Huge, false),
        ] {
            let c = corrupt_upload(&base, &u, AttackMode::Garbage { kind }).unwrap();
            assert_eq!(
                upload_has_non_finite(&base, &c).unwrap(),
                caught,
                "{kind:?}"
            );
        }
    }
}
