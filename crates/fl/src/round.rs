//! Round-loop ingredients, factored out of [`crate::runner`] so that more
//! than one *server policy* can drive them.
//!
//! The lock-step [`crate::runner::Experiment`] and the discrete-event
//! simulator (`fedbiad-sim`) share every step of a round — client
//! selection, checked-out client state, parallel local updates, result
//! statistics, evaluation with carry-forward — through this module. That
//! sharing is what makes the simulator's synchronous-barrier policy
//! reproduce the legacy runner bit-for-bit (see
//! `tests/sim_equivalence.rs` at the workspace root).

use crate::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use crate::metrics::RoundRecord;
use crate::timing::Stopwatch;
use fedbiad_data::{ClientData, FedDataset};
use fedbiad_nn::{Batch, EvalAccum, Model, ParamSet};
use fedbiad_telemetry::span;
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Number of clients selected per round: `max(⌊κK⌋, 1)`, clamped to K
/// (Algorithm 1).
///
/// The product is computed in f64: at million-client scale the old
/// `fraction * num_clients as f32` product could land one ulp below the
/// exact value and floor a client short (f32 resolves only ~0.008 at
/// 10^5, ~0.06 at 10^6), and nothing clamped the result to K. Because
/// `fraction` itself arrives through f32, a mathematically integral κK
/// can still sit half an ulp below its integer (64 × 10⁻⁶ quantizes to
/// 6.3999998…e-5, so κK = 63.99999983…), so anything within the f32
/// half-ulp band of an integer is credited before flooring.
pub fn cohort_size(num_clients: usize, fraction: f32) -> usize {
    let x = fraction as f64 * num_clients as f64;
    let half_ulp = x * (f32::EPSILON as f64) * 0.5;
    let c = (x + half_ulp).floor() as usize;
    c.clamp(1, num_clients.max(1))
}

/// Why a cohort could not be resolved ([`resolve_cohort`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CohortError {
    /// The dataset registers no clients at all.
    NoClients,
    /// An explicit cohort override of zero was requested.
    ZeroCohort,
    /// An explicit cohort override exceeds the registered population.
    CohortExceedsClients {
        /// The requested cohort.
        cohort: usize,
        /// Registered clients K.
        num_clients: usize,
    },
}

impl std::fmt::Display for CohortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CohortError::NoClients => write!(f, "no clients registered"),
            CohortError::ZeroCohort => write!(f, "cohort size must be at least 1"),
            CohortError::CohortExceedsClients {
                cohort,
                num_clients,
            } => write!(
                f,
                "cohort {cohort} exceeds the registered population K = {num_clients}"
            ),
        }
    }
}

impl std::error::Error for CohortError {}

/// Resolve the per-round cohort: an explicit override wins over
/// `⌊κK⌋`; both paths reject the degenerate regimes as structured
/// errors instead of panicking deep inside a million-client run.
pub fn resolve_cohort(
    num_clients: usize,
    fraction: f32,
    explicit: Option<usize>,
) -> Result<usize, CohortError> {
    if num_clients == 0 {
        return Err(CohortError::NoClients);
    }
    match explicit {
        Some(0) => Err(CohortError::ZeroCohort),
        Some(c) if c > num_clients => Err(CohortError::CohortExceedsClients {
            cohort: c,
            num_clients,
        }),
        Some(c) => Ok(c),
        None => Ok(cohort_size(num_clients, fraction)),
    }
}

/// How the per-round cohort is drawn from the registered population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Shuffle all K ids and truncate — O(K) time and memory per round.
    /// The legacy sampler, pinned by the golden digests.
    #[default]
    Shuffle,
    /// Floyd's uniform sampling — O(cohort) time and memory, independent
    /// of K. Same distribution, different draw sequence, so cohorts
    /// differ bit-wise from `Shuffle`: an explicit opt-in for huge
    /// registered populations.
    Sparse,
}

/// Uniform-without-replacement client selection for `round`, returned in
/// ascending id order (the deterministic processing order of the runner).
pub fn sample_clients(seed: u64, round: usize, num_clients: usize, cohort: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..num_clients).collect();
    let mut srng = stream(seed, StreamTag::ClientSampling, round as u64, 0);
    ids.shuffle(&mut srng);
    ids.truncate(cohort);
    ids.sort_unstable();
    ids
}

/// Floyd's algorithm: a uniform `cohort`-subset of `0..num_clients` in
/// O(cohort) time and memory — the registered population is never
/// enumerated. Ascending id order, like [`sample_clients`].
pub fn sample_clients_sparse(
    seed: u64,
    round: usize,
    num_clients: usize,
    cohort: usize,
) -> Vec<usize> {
    let cohort = cohort.min(num_clients);
    let mut srng = stream(seed, StreamTag::ClientSampling, round as u64, 0);
    let mut chosen: HashSet<usize> = HashSet::with_capacity(cohort);
    for j in (num_clients - cohort)..num_clients {
        let t = srng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut ids: Vec<usize> = chosen.into_iter().collect();
    ids.sort_unstable();
    ids
}

/// Dispatch on [`SamplerKind`].
pub fn sample_clients_with(
    kind: SamplerKind,
    seed: u64,
    round: usize,
    num_clients: usize,
    cohort: usize,
) -> Vec<usize> {
    match kind {
        SamplerKind::Shuffle => sample_clients(seed, round, num_clients, cohort),
        SamplerKind::Sparse => sample_clients_sparse(seed, round, num_clients, cohort),
    }
}

/// Per-client persistent state table. States are *checked out* for the
/// duration of a client's local work (so rayon workers — or in-flight
/// simulated clients — hold disjoint `&mut` access) and restored after.
///
/// Keyed by client id: only clients that have actually participated hold
/// an entry, so memory is O(touched clients), not O(K registered). Access
/// is strictly keyed (never iterated), so the switch from the historical
/// `Vec<Option<_>>` cannot reorder anything — checkout/restore sequences
/// are bit-identical.
pub struct ClientStates<A: FlAlgorithm> {
    slots: HashMap<usize, A::ClientState>,
}

impl<A: FlAlgorithm> Default for ClientStates<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: FlAlgorithm> ClientStates<A> {
    /// Empty table (states are created lazily on first checkout).
    pub fn new() -> Self {
        Self {
            slots: HashMap::new(),
        }
    }

    /// Check out the states of `ids`, initialising first-time clients.
    pub fn checkout(
        &mut self,
        ids: &[usize],
        algo: &A,
        model: &dyn Model,
        global: &ParamSet,
    ) -> Vec<(usize, A::ClientState)> {
        ids.iter()
            .map(|&id| {
                let st = self
                    .slots
                    .remove(&id)
                    .unwrap_or_else(|| algo.init_client_state(id, model, global));
                (id, st)
            })
            .collect()
    }

    /// Return checked-out states to the table.
    pub fn restore(&mut self, work: Vec<(usize, A::ClientState)>) {
        for (id, st) in work {
            self.slots.insert(id, st);
        }
    }
}

/// Run the checked-out clients' local updates in parallel (rayon),
/// stamping measured wall-clock `local_seconds` on each result. Results
/// come back in `work` order (ascending id order when `work` came from
/// [`sample_clients`] + [`ClientStates::checkout`]).
#[allow(clippy::too_many_arguments)]
pub fn run_local_updates<A: FlAlgorithm>(
    algo: &A,
    model: &dyn Model,
    data: &FedDataset,
    train: &TrainConfig,
    info: RoundInfo,
    rctx: &A::RoundCtx,
    global: &ParamSet,
    work: &mut [(usize, A::ClientState)],
) -> Vec<(usize, LocalResult)> {
    work.par_iter_mut()
        .map(|(id, st)| {
            let _client_span = span!("train.client", client = *id);
            let sw = Stopwatch::start();
            // Borrowed from the eager table, or generated on demand in
            // lazy mode — either way dropped when the client finishes,
            // so resident data stays O(cohort).
            let shard = data.client(*id);
            let mut res = algo.local_update(info, rctx, *id, st, global, &shard, model, train);
            // LTTR includes everything the client computed this round
            // (pattern search, score updates, compression).
            res.local_seconds = sw.seconds();
            (*id, res)
        })
        .collect()
}

/// Cross-client statistics of one aggregation's inputs — the
/// deterministic half of a [`RoundRecord`].
#[derive(Clone, Copy, Debug)]
pub struct RoundStats {
    /// |D_k|-weighted mean of client training losses.
    pub train_loss: f32,
    /// Mean uplink bytes over participating clients.
    pub upload_bytes_mean: u64,
    /// Max uplink bytes (round critical path).
    pub upload_bytes_max: u64,
    /// Mean local-training seconds (LTTR).
    pub local_seconds_mean: f64,
    /// Max local-training seconds (round critical path).
    pub local_seconds_max: f64,
}

/// Summarise one round's results exactly as the legacy runner did.
pub fn summarize_results(results: &[(usize, LocalResult)]) -> RoundStats {
    let total_w: f64 = results.iter().map(|(_, r)| r.num_samples as f64).sum();
    let train_loss = if total_w > 0.0 {
        (results
            .iter()
            .map(|(_, r)| r.train_loss as f64 * r.num_samples as f64)
            .sum::<f64>()
            / total_w) as f32
    } else {
        f32::NAN
    };
    let upload_bytes: Vec<u64> = results.iter().map(|(_, r)| r.upload.wire_bytes).collect();
    let upload_bytes_mean =
        (upload_bytes.iter().sum::<u64>() / upload_bytes.len().max(1) as u64).max(1);
    let upload_bytes_max = upload_bytes.iter().copied().max().unwrap_or(0);
    let local_secs: Vec<f64> = results.iter().map(|(_, r)| r.local_seconds).collect();
    let local_seconds_mean = local_secs.iter().sum::<f64>() / local_secs.len().max(1) as f64;
    let local_seconds_max = local_secs.iter().copied().fold(0.0, f64::max);
    RoundStats {
        train_loss,
        upload_bytes_mean,
        upload_bytes_max,
        local_seconds_mean,
        local_seconds_max,
    }
}

/// Whether `round` is evaluated under `eval_every` (the final round is
/// always evaluated).
pub fn eval_due(round: usize, total_rounds: usize, eval_every: usize) -> bool {
    round.is_multiple_of(eval_every.max(1)) || round + 1 == total_rounds
}

/// Evaluate the deployable parameters, or carry the previous record's
/// `(test_loss, test_acc)` forward when evaluation is not due.
#[allow(clippy::too_many_arguments)]
pub fn eval_or_carry<A: FlAlgorithm>(
    algo: &A,
    model: &dyn Model,
    global: &ParamSet,
    test: &ClientData,
    eval_topk: usize,
    eval_max_samples: usize,
    due: bool,
    prev: Option<&RoundRecord>,
) -> (f64, f64) {
    if due {
        let deploy = algo.eval_params(global);
        let acc = evaluate_model(model, &deploy, test, eval_topk, eval_max_samples);
        (acc.mean_loss(), acc.accuracy())
    } else {
        prev.map(|r| (r.test_loss, r.test_acc))
            .unwrap_or((f64::NAN, 0.0))
    }
}

/// Evaluate `params` on a dataset, rayon-parallel over chunks.
/// `max_samples = 0` means the whole set.
///
/// Each chunk runs through the model's batched engine
/// (`Model::evaluate_batched`) with a chunk-local workspace arena; chunk
/// boundaries and the in-order merge are unchanged, so results are
/// bit-identical to the per-sample path.
pub fn evaluate_model(
    model: &dyn Model,
    params: &ParamSet,
    data: &ClientData,
    topk: usize,
    max_samples: usize,
) -> EvalAccum {
    const CHUNK: usize = 64;
    match data {
        ClientData::Image(set) => {
            let n = if max_samples == 0 {
                set.len()
            } else {
                set.len().min(max_samples)
            };
            let chunks: Vec<(usize, usize)> = (0..n)
                .step_by(CHUNK)
                .map(|s| (s, (s + CHUNK).min(n)))
                .collect();
            chunks
                .par_iter()
                .map(|&(s, e)| {
                    let batch = Batch::Dense {
                        x: &set.x[s * set.dim..e * set.dim],
                        y: &set.y[s..e],
                        dim: set.dim,
                    };
                    let mut ws = fedbiad_tensor::Workspace::new();
                    model.evaluate_batched(params, &batch, topk, &mut ws)
                })
                .reduce(EvalAccum::default, |mut a, b| {
                    a.merge(&b);
                    a
                })
        }
        ClientData::Text(set) => {
            let n_windows = set.num_windows();
            let budget = if max_samples == 0 {
                n_windows
            } else {
                (max_samples / set.seq_len.max(1)).clamp(1, n_windows)
            };
            let chunks: Vec<(usize, usize)> = (0..budget)
                .step_by(CHUNK / 8 + 1)
                .map(|s| (s, (s + CHUNK / 8 + 1).min(budget)))
                .collect();
            chunks
                .par_iter()
                .map(|&(s, e)| {
                    let windows: Vec<&[u32]> = (s..e).map(|i| set.window(i)).collect();
                    let batch = Batch::Seq { windows: &windows };
                    let mut ws = fedbiad_tensor::Workspace::new();
                    model.evaluate_batched(params, &batch, topk, &mut ws)
                })
                .reduce(EvalAccum::default, |mut a, b| {
                    a.merge(&b);
                    a
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_size_floors_with_min_one() {
        assert_eq!(cohort_size(100, 0.1), 10);
        assert_eq!(cohort_size(9, 0.1), 1); // ⌊0.9⌋ = 0 → 1
        assert_eq!(cohort_size(25, 0.5), 12);
    }

    #[test]
    fn cohort_size_is_exact_and_clamped_at_million_scale() {
        // 64/10^6 as f32 is 6.4000001e-5; the old f32 product floored to
        // 63 at K = 10^6. f64 keeps the product above 64.
        assert_eq!(cohort_size(1_000_000, 64e-6), 64);
        assert_eq!(cohort_size(1_000_000, 0.1), 100_000);
        // fraction = 1 must never exceed K, nor can rounding push past it.
        assert_eq!(cohort_size(1_000_000, 1.0), 1_000_000);
        assert_eq!(cohort_size(3, 1.0), 3);
    }

    #[test]
    fn resolve_cohort_rejects_degenerate_regimes() {
        assert_eq!(resolve_cohort(0, 0.1, None), Err(CohortError::NoClients));
        assert_eq!(
            resolve_cohort(10, 0.1, Some(0)),
            Err(CohortError::ZeroCohort)
        );
        assert_eq!(
            resolve_cohort(10, 0.1, Some(11)),
            Err(CohortError::CohortExceedsClients {
                cohort: 11,
                num_clients: 10
            })
        );
        // Boundaries: 1, K, and the implicit ⌊κK⌋ path.
        assert_eq!(resolve_cohort(10, 0.1, Some(1)), Ok(1));
        assert_eq!(resolve_cohort(10, 0.1, Some(10)), Ok(10));
        assert_eq!(resolve_cohort(1_000_000, 64e-6, None), Ok(64));
        let msg = resolve_cohort(10, 0.1, Some(11)).unwrap_err().to_string();
        assert!(msg.contains("cohort 11") && msg.contains("K = 10"), "{msg}");
    }

    #[test]
    fn sparse_sampling_is_sorted_unique_deterministic_and_o_cohort() {
        let a = sample_clients_sparse(7, 3, 1_000_000, 64);
        let b = sample_clients_sparse(7, 3, 1_000_000, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "{a:?}");
        assert!(a.iter().all(|&id| id < 1_000_000));
        let c = sample_clients_sparse(7, 4, 1_000_000, 64);
        assert_ne!(a, c, "different rounds should differ");
        // Full-population edge: cohort = K yields exactly 0..K.
        let all = sample_clients_sparse(7, 0, 5, 5);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sampler_kinds_draw_the_same_cohort_sizes() {
        for kind in [SamplerKind::Shuffle, SamplerKind::Sparse] {
            let ids = sample_clients_with(kind, 3, 1, 50, 10);
            assert_eq!(ids.len(), 10, "{kind:?}");
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sampling_is_sorted_unique_and_deterministic() {
        let a = sample_clients(7, 3, 50, 10);
        let b = sample_clients(7, 3, 50, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "{a:?}");
        let c = sample_clients(7, 4, 50, 10);
        assert_ne!(a, c, "different rounds should differ");
    }

    #[test]
    fn eval_due_includes_final_round() {
        assert!(eval_due(0, 10, 3));
        assert!(!eval_due(1, 10, 3));
        assert!(eval_due(3, 10, 3));
        assert!(eval_due(9, 10, 3)); // final round always
        assert!(eval_due(4, 10, 0)); // eval_every 0 treated as 1
    }

    #[test]
    fn summarize_matches_hand_calc() {
        use crate::upload::Upload;
        use fedbiad_nn::params::{EntryMeta, LayerKind};
        let mut p = ParamSet::new();
        p.push_entry(
            fedbiad_tensor::Matrix::full(2, 2, 1.0),
            None,
            EntryMeta::new("w", LayerKind::DenseHidden, false, true),
        );
        let mk = |loss: f32, n: usize, secs: f64| LocalResult {
            upload: Upload::full_weights(p.clone()),
            train_loss: loss,
            loss_improvement: 0.0,
            local_seconds: secs,
            num_samples: n,
        };
        let results = vec![(0, mk(1.0, 1, 2.0)), (1, mk(3.0, 3, 4.0))];
        let s = summarize_results(&results);
        assert!((s.train_loss - 2.5).abs() < 1e-6); // (1·1 + 3·3)/4
        assert!((s.local_seconds_mean - 3.0).abs() < 1e-12);
        assert!((s.local_seconds_max - 4.0).abs() < 1e-12);
        assert_eq!(s.upload_bytes_mean, p.total_bytes());
    }
}
