//! The experiment runner: the server's lock-step round loop.
//!
//! Per round (Algorithm 1, server side): sample `max(⌊κK⌋, 1)` clients,
//! broadcast the global variational parameters, run the selected clients'
//! local updates in parallel (rayon), aggregate the uploads, evaluate the
//! new global model on the held-out test set, and record everything the
//! tables/figures need.
//!
//! The round's ingredients live in [`crate::round`] and are shared with
//! the discrete-event simulator (`fedbiad-sim`), whose synchronous-barrier
//! policy reproduces this loop bit-for-bit.

use crate::adversary::{
    churn_fate, corrupt_upload, is_adversary, AdversarySpec, ChurnFate, ChurnSpec,
};
use crate::aggregate::{upload_has_non_finite, AggSettings};
use crate::algorithm::{FlAlgorithm, RoundInfo, TrainConfig};
use crate::metrics::{current_rss_bytes, peak_rss_bytes, ExperimentLog, RoundRecord};
use crate::round::{
    eval_due, eval_or_carry, resolve_cohort, run_local_updates, sample_clients_with,
    summarize_results, ClientStates, CohortError, SamplerKind,
};
use crate::timing::Stopwatch;
use fedbiad_data::FedDataset;
use fedbiad_nn::Model;
use fedbiad_telemetry::{counter, span};
use fedbiad_tensor::rng::{stream, StreamTag};
use serde::{Deserialize, Serialize};

pub use crate::round::evaluate_model;

/// Experiment-level configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Global rounds R (paper: 60).
    pub rounds: usize,
    /// Client selection fraction κ (paper: 0.1).
    pub client_fraction: f32,
    /// Experiment seed.
    pub seed: u64,
    /// Local-training hyper-parameters.
    pub train: TrainConfig,
    /// Top-k for evaluation accuracy (1 images / 3 next-word, §V-B).
    pub eval_topk: usize,
    /// Evaluate every this many rounds (the final round is always
    /// evaluated). 1 = every round.
    pub eval_every: usize,
    /// Cap on evaluated test samples per round (0 = whole test set).
    pub eval_max_samples: usize,
    /// Aggregation-engine selection (dense reference vs sharded
    /// streaming). Bit-identical either way; a pure execution knob.
    pub agg: AggSettings,
    /// Explicit per-round cohort size; overrides `⌊κK⌋` when set.
    /// Validated against K at startup ([`CohortError`]).
    pub cohort: Option<usize>,
    /// How the cohort is drawn. `Shuffle` (default) is the legacy O(K)
    /// sampler pinned by the golden digests; `Sparse` is the O(cohort)
    /// sampler for huge registered populations.
    pub sampler: SamplerKind,
    /// Static byzantine adversary model (`None` = every client honest;
    /// the historical behaviour, bit for bit).
    pub adversary: Option<AdversarySpec>,
    /// Mid-round churn model (`None` = no churn; the historical
    /// behaviour, bit for bit).
    pub churn: Option<ChurnSpec>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            client_fraction: 0.1,
            seed: 42,
            train: TrainConfig::default(),
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
            agg: AggSettings::default(),
            cohort: None,
            sampler: SamplerKind::Shuffle,
            adversary: None,
            churn: None,
        }
    }
}

/// An experiment: one (model, dataset, algorithm) triple.
///
/// ```
/// use fedbiad_core::baselines::FedAvg;
/// use fedbiad_fl::runner::{Experiment, ExperimentConfig};
/// use fedbiad_fl::workload::{build, Scale, Workload};
///
/// let bundle = build(Workload::MnistLike, Scale::Smoke, 42);
/// let cfg = ExperimentConfig {
///     rounds: 2,
///     client_fraction: 0.5,
///     train: bundle.train,
///     eval_topk: bundle.eval_topk,
///     eval_max_samples: 200,
///     ..Default::default()
/// };
/// let log = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
/// assert_eq!(log.records.len(), 2);
/// assert!(log.records[0].upload_bytes_mean > 0);
/// ```
pub struct Experiment<'a, A: FlAlgorithm> {
    /// The model architecture.
    pub model: &'a dyn Model,
    /// Federated data.
    pub data: &'a FedDataset,
    /// The FL method under test.
    pub algo: A,
    /// Configuration.
    pub cfg: ExperimentConfig,
}

impl<'a, A: FlAlgorithm> Experiment<'a, A> {
    /// Construct with defaults.
    pub fn new(model: &'a dyn Model, data: &'a FedDataset, algo: A, cfg: ExperimentConfig) -> Self {
        Self {
            model,
            data,
            algo,
            cfg,
        }
    }

    /// Run all rounds and return the log. Panics on a degenerate cohort
    /// configuration; use [`Experiment::try_run`] for the structured
    /// error.
    pub fn run(self) -> ExperimentLog {
        self.try_run().expect("cohort configuration invalid")
    }

    /// Run all rounds, rejecting degenerate cohort configurations
    /// (no clients, zero cohort, cohort > K) up front as a
    /// [`CohortError`] instead of panicking mid-run.
    pub fn try_run(mut self) -> Result<ExperimentLog, CohortError> {
        let k = self.data.num_clients();
        let c = resolve_cohort(k, self.cfg.client_fraction, self.cfg.cohort)?;

        let mut init_rng = stream(self.cfg.seed, StreamTag::Init, 0, 0);
        let mut global = self.model.init_params(&mut init_rng);
        let mut states = ClientStates::<A>::new();

        let mut records: Vec<RoundRecord> = Vec::with_capacity(self.cfg.rounds);
        for round in 0..self.cfg.rounds {
            let _round_span = span!("round", round = round);
            let info = RoundInfo {
                round,
                total_rounds: self.cfg.rounds,
                seed: self.cfg.seed,
                agg: self.cfg.agg,
            };

            // --- client sampling (uniform without replacement) ---
            let mut ids = {
                let _stage = span!("round.select", cohort = c);
                sample_clients_with(self.cfg.sampler, self.cfg.seed, round, k, c)
            };
            // Offline churn: the client never starts the round.
            if let Some(ch) = self.cfg.churn {
                ids.retain(|&id| churn_fate(self.cfg.seed, round, id, ch) != ChurnFate::Offline);
            }

            let rctx = self.algo.begin_round(info, &global);

            // --- parallel local updates ---
            // Move each selected client's state out of the table so rayon
            // workers get disjoint &mut access.
            let mut work = states.checkout(&ids, &self.algo, self.model, &global);
            let mut results = {
                let _stage = span!("round.train", clients = ids.len());
                run_local_updates(
                    &self.algo,
                    self.model,
                    self.data,
                    &self.cfg.train,
                    info,
                    &rctx,
                    &global,
                    &mut work,
                )
            };
            states.restore(work);

            // Mid-round dropout: the client did the work, the upload is
            // lost on the wire.
            if let Some(ch) = self.cfg.churn {
                results.retain(|(id, _)| {
                    churn_fate(self.cfg.seed, round, *id, ch) != ChurnFate::Dropout
                });
            }
            // Byzantine corruption happens on the wire, after honest
            // training; the value-finiteness screen then drops hostile
            // non-finite uploads instead of letting them poison the model
            // (or fail the round with AggError::NonFiniteValue).
            if let Some(adv) = self.cfg.adversary {
                for (id, res) in results.iter_mut() {
                    if is_adversary(self.cfg.seed, adv.fraction, *id) {
                        res.upload = corrupt_upload(&global, &res.upload, adv.mode)
                            .expect("corrupting a well-formed upload");
                    }
                }
                results.retain(|(_, r)| !upload_has_non_finite(&global, &r.upload).unwrap_or(true));
            }
            let contributors = results.len();

            // --- upload accounting ---
            // Pure over &results, so summarising before aggregation is
            // bit-identical to the historical after-aggregation order.
            let stats = {
                let _stage = span!("round.upload");
                let stats = summarize_results(&results);
                counter!("round.upload_bytes_max", stats.upload_bytes_max);
                stats
            };

            // --- aggregation ---
            // A round whose entire surviving upload set was lost to churn
            // or screening is a defined no-op: the global is unchanged and
            // the record notes 0 contributors — never a panic out of the
            // engines' `total_w > 0` guards.
            let sw_agg = Stopwatch::start();
            let agg_seconds = if results.is_empty() {
                0.0
            } else {
                let _stage = span!("round.aggregate", clients = results.len());
                self.algo.aggregate(info, &rctx, &mut global, &results);
                sw_agg.seconds()
            };

            // --- evaluation ---
            let due = eval_due(round, self.cfg.rounds, self.cfg.eval_every);
            let (test_loss, test_acc) = {
                let _stage = span!("round.eval", due = due);
                eval_or_carry(
                    &self.algo,
                    self.model,
                    &global,
                    &self.data.test,
                    self.cfg.eval_topk,
                    self.cfg.eval_max_samples,
                    due,
                    records.last(),
                )
            };

            records.push(RoundRecord {
                round,
                train_loss: stats.train_loss,
                test_loss,
                test_acc,
                upload_bytes_mean: stats.upload_bytes_mean,
                upload_bytes_max: stats.upload_bytes_max,
                // Downlink: the server broadcasts the full global model
                // (the uplink is the paper's bottleneck; downlink
                // sub-model optimisations are out of scope, DESIGN.md §3).
                download_bytes: global.total_bytes(),
                local_seconds_mean: stats.local_seconds_mean,
                local_seconds_max: stats.local_seconds_max,
                agg_seconds,
                peak_rss_bytes: peak_rss_bytes(),
                rss_bytes: current_rss_bytes(),
                contributors,
            });
        }

        Ok(ExperimentLog {
            dataset: self.data.name.clone(),
            method: self.algo.name(),
            seed: self.cfg.seed,
            records,
        })
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate_weights, ZeroMode};
    use crate::algorithm::LocalResult;
    use crate::upload::Upload;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_data::partition::{partition_images, ImagePartition};
    use fedbiad_data::synth_image::SyntheticImageSpec;
    use fedbiad_data::ClientData;
    use fedbiad_nn::mlp::MlpModel;
    use fedbiad_nn::ParamSet;

    /// Minimal FedAvg used to exercise the runner before fedbiad-core
    /// exists (the real baselines live there).
    struct MiniFedAvg;

    impl FlAlgorithm for MiniFedAvg {
        type ClientState = ();
        type RoundCtx = ();

        fn name(&self) -> String {
            "mini-fedavg".into()
        }

        fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) {}

        fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

        fn local_update(
            &self,
            info: RoundInfo,
            _rctx: &(),
            client_id: usize,
            _state: &mut (),
            global: &ParamSet,
            data: &ClientData,
            model: &dyn Model,
            cfg: &TrainConfig,
        ) -> LocalResult {
            let mut u = global.clone();
            let id = crate::client::LocalRunId {
                seed: info.seed,
                round: info.round,
                client: client_id,
            };
            let stats = crate::client::run_local_training(
                id,
                model,
                data,
                cfg,
                &mut u,
                &mut crate::client::NoHooks,
            );
            LocalResult {
                upload: Upload::full_weights(u),
                train_loss: stats.mean_loss,
                loss_improvement: stats.improvement(),
                local_seconds: stats.seconds,
                num_samples: data.num_samples(),
            }
        }

        fn aggregate(
            &mut self,
            info: RoundInfo,
            _rctx: &(),
            global: &mut ParamSet,
            results: &[(usize, LocalResult)],
        ) {
            let ups: Vec<(f32, &Upload)> = results
                .iter()
                .map(|(_, r)| (r.num_samples as f32, &r.upload))
                .collect();
            aggregate_weights(global, &ups, ZeroMode::ZerosPull, info.agg)
                .expect("aggregation failed");
        }
    }

    fn tiny_fed_dataset(seed: u64) -> (FedDataset, MlpModel) {
        let spec = SyntheticImageSpec {
            classes: 4,
            side: 6,
            train_n: 240,
            test_n: 80,
            prototypes_per_class: 2,
            bumps: 3,
            distinctiveness: 0.9,
            noise: 0.08,
            shift_max: 1,
        };
        let (train, test) = spec.generate(seed);
        let shards = partition_images(&train, 6, &ImagePartition::Iid, seed);
        let fd = FedDataset {
            name: "tiny".into(),
            clients: shards.into_iter().map(ClientData::Image).collect(),
            lazy: None,
            test: ClientData::Image(test),
        };
        (fd, MlpModel::new(36, 12, 4))
    }

    #[test]
    fn fedavg_learns_on_tiny_dataset() {
        let (fd, model) = tiny_fed_dataset(17);
        let cfg = ExperimentConfig {
            rounds: 12,
            client_fraction: 0.5,
            seed: 17,
            train: TrainConfig {
                local_iters: 8,
                batch_size: 16,
                lr: 0.4,
                ..Default::default()
            },
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
            ..Default::default()
        };
        let log = Experiment::new(&model, &fd, MiniFedAvg, cfg).run();
        assert_eq!(log.records.len(), 12);
        let first = log.records[0].test_acc;
        let last = log.records[11].test_acc;
        assert!(last > first, "no learning: {first} -> {last}");
        assert!(last > 0.5, "final acc too low: {last}");
        // Upload bytes are the full model every round.
        let model_bytes = model
            .init_params(&mut stream(1, StreamTag::Init, 0, 0))
            .total_bytes();
        assert!(log
            .records
            .iter()
            .all(|r| r.upload_bytes_mean == model_bytes));
    }

    #[test]
    fn runner_is_deterministic() {
        let (fd, model) = tiny_fed_dataset(23);
        let cfg = ExperimentConfig {
            rounds: 4,
            client_fraction: 0.5,
            seed: 5,
            train: TrainConfig {
                local_iters: 3,
                batch_size: 8,
                lr: 0.2,
                ..Default::default()
            },
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
            ..Default::default()
        };
        let a = Experiment::new(&model, &fd, MiniFedAvg, cfg).run();
        let b = Experiment::new(&model, &fd, MiniFedAvg, cfg).run();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.test_acc, rb.test_acc);
            assert_eq!(ra.train_loss, rb.train_loss);
        }
    }

    #[test]
    fn try_run_rejects_degenerate_cohorts_with_structured_errors() {
        let (fd, model) = tiny_fed_dataset(3);
        let mk = |cohort| ExperimentConfig {
            rounds: 1,
            client_fraction: 0.5,
            cohort,
            ..Default::default()
        };
        // Override above K = 6 is an error, not an index panic mid-round.
        let err = Experiment::new(&model, &fd, MiniFedAvg, mk(Some(7)))
            .try_run()
            .unwrap_err();
        assert_eq!(
            err,
            CohortError::CohortExceedsClients {
                cohort: 7,
                num_clients: 6
            }
        );
        assert_eq!(
            Experiment::new(&model, &fd, MiniFedAvg, mk(Some(0)))
                .try_run()
                .unwrap_err(),
            CohortError::ZeroCohort
        );
        // A valid override really drives the cohort: full participation.
        let log = Experiment::new(&model, &fd, MiniFedAvg, mk(Some(6)))
            .try_run()
            .unwrap();
        assert_eq!(log.records.len(), 1);
    }

    #[test]
    fn sparse_sampler_runs_and_matches_shuffle_statistically() {
        // Same seed, both samplers: results differ bit-wise (different
        // draw sequences) but both train successfully on the same data.
        let (fd, model) = tiny_fed_dataset(29);
        let mk = |sampler| ExperimentConfig {
            rounds: 3,
            client_fraction: 0.5,
            seed: 29,
            train: TrainConfig {
                local_iters: 3,
                batch_size: 8,
                lr: 0.2,
                ..Default::default()
            },
            eval_max_samples: 0,
            sampler,
            ..Default::default()
        };
        let a = Experiment::new(&model, &fd, MiniFedAvg, mk(SamplerKind::Sparse)).run();
        let b = Experiment::new(&model, &fd, MiniFedAvg, mk(SamplerKind::Sparse)).run();
        assert_eq!(a.records.len(), 3);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.test_acc, rb.test_acc, "sparse sampler not deterministic");
        }
    }

    #[test]
    fn eval_subsampling_caps_work() {
        let mut set = ImageSet::empty(4);
        for i in 0..100 {
            set.push(&[0.0, 1.0, 0.0, 1.0], (i % 2) as u32);
        }
        let model = MlpModel::new(4, 4, 2);
        let params = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let all = evaluate_model(&model, &params, &ClientData::Image(set.clone()), 1, 0);
        let capped = evaluate_model(&model, &params, &ClientData::Image(set), 1, 10);
        assert_eq!(all.count, 100);
        assert_eq!(capped.count, 10);
    }
}
