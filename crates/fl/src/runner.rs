//! The experiment runner: the server's round loop.
//!
//! Per round (Algorithm 1, server side): sample `max(⌊κK⌋, 1)` clients,
//! broadcast the global variational parameters, run the selected clients'
//! local updates in parallel (rayon), aggregate the uploads, evaluate the
//! new global model on the held-out test set, and record everything the
//! tables/figures need.

use crate::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use crate::metrics::{ExperimentLog, RoundRecord};
use fedbiad_data::{ClientData, FedDataset};
use fedbiad_nn::{Batch, EvalAccum, Model, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::seq::SliceRandom;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Experiment-level configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Global rounds R (paper: 60).
    pub rounds: usize,
    /// Client selection fraction κ (paper: 0.1).
    pub client_fraction: f32,
    /// Experiment seed.
    pub seed: u64,
    /// Local-training hyper-parameters.
    pub train: TrainConfig,
    /// Top-k for evaluation accuracy (1 images / 3 next-word, §V-B).
    pub eval_topk: usize,
    /// Evaluate every this many rounds (the final round is always
    /// evaluated). 1 = every round.
    pub eval_every: usize,
    /// Cap on evaluated test samples per round (0 = whole test set).
    pub eval_max_samples: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            client_fraction: 0.1,
            seed: 42,
            train: TrainConfig::default(),
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
        }
    }
}

/// An experiment: one (model, dataset, algorithm) triple.
pub struct Experiment<'a, A: FlAlgorithm> {
    /// The model architecture.
    pub model: &'a dyn Model,
    /// Federated data.
    pub data: &'a FedDataset,
    /// The FL method under test.
    pub algo: A,
    /// Configuration.
    pub cfg: ExperimentConfig,
}

impl<'a, A: FlAlgorithm> Experiment<'a, A> {
    /// Construct with defaults.
    pub fn new(model: &'a dyn Model, data: &'a FedDataset, algo: A, cfg: ExperimentConfig) -> Self {
        Self {
            model,
            data,
            algo,
            cfg,
        }
    }

    /// Run all rounds and return the log.
    pub fn run(mut self) -> ExperimentLog {
        let k = self.data.num_clients();
        assert!(k > 0, "no clients");
        let c = ((self.cfg.client_fraction * k as f32).floor() as usize).max(1);

        let mut init_rng = stream(self.cfg.seed, StreamTag::Init, 0, 0);
        let mut global = self.model.init_params(&mut init_rng);
        let mut states: Vec<Option<A::ClientState>> = (0..k).map(|_| None).collect();

        let mut records = Vec::with_capacity(self.cfg.rounds);
        for round in 0..self.cfg.rounds {
            let info = RoundInfo {
                round,
                total_rounds: self.cfg.rounds,
                seed: self.cfg.seed,
            };

            // --- client sampling (uniform without replacement) ---
            let mut ids: Vec<usize> = (0..k).collect();
            let mut srng = stream(self.cfg.seed, StreamTag::ClientSampling, round as u64, 0);
            ids.shuffle(&mut srng);
            ids.truncate(c);
            ids.sort_unstable(); // deterministic processing order

            let rctx = self.algo.begin_round(info, &global);

            // --- parallel local updates ---
            // Move each selected client's state out of the table so rayon
            // workers get disjoint &mut access.
            let mut work: Vec<(usize, A::ClientState)> = ids
                .iter()
                .map(|&id| {
                    let st = states[id]
                        .take()
                        .unwrap_or_else(|| self.algo.init_client_state(id, self.model, &global));
                    (id, st)
                })
                .collect();

            let algo = &self.algo;
            let model = self.model;
            let cfg_train = self.cfg.train;
            let global_ref = &global;
            let data = self.data;
            let results: Vec<(usize, LocalResult)> = work
                .par_iter_mut()
                .map(|(id, st)| {
                    let t0 = Instant::now();
                    let mut res = algo.local_update(
                        info,
                        &rctx,
                        *id,
                        st,
                        global_ref,
                        &data.clients[*id],
                        model,
                        &cfg_train,
                    );
                    // LTTR includes everything the client computed this
                    // round (pattern search, score updates, compression).
                    res.local_seconds = t0.elapsed().as_secs_f64();
                    (*id, res)
                })
                .collect();

            for (id, st) in work {
                states[id] = Some(st);
            }

            // --- aggregation ---
            let t_agg = Instant::now();
            self.algo.aggregate(info, &rctx, &mut global, &results);
            let agg_seconds = t_agg.elapsed().as_secs_f64();

            // --- bookkeeping ---
            let total_w: f64 = results.iter().map(|(_, r)| r.num_samples as f64).sum();
            let train_loss = if total_w > 0.0 {
                (results
                    .iter()
                    .map(|(_, r)| r.train_loss as f64 * r.num_samples as f64)
                    .sum::<f64>()
                    / total_w) as f32
            } else {
                f32::NAN
            };
            let upload_bytes: Vec<u64> = results.iter().map(|(_, r)| r.upload.wire_bytes).collect();
            let upload_bytes_mean =
                (upload_bytes.iter().sum::<u64>() / upload_bytes.len().max(1) as u64).max(1);
            let upload_bytes_max = upload_bytes.iter().copied().max().unwrap_or(0);
            let local_secs: Vec<f64> = results.iter().map(|(_, r)| r.local_seconds).collect();
            let local_seconds_mean =
                local_secs.iter().sum::<f64>() / local_secs.len().max(1) as f64;
            let local_seconds_max = local_secs.iter().copied().fold(0.0, f64::max);

            let eval_now = round % self.cfg.eval_every.max(1) == 0 || round + 1 == self.cfg.rounds;
            let (test_loss, test_acc) = if eval_now {
                let deploy = self.algo.eval_params(&global);
                let acc = evaluate_model(
                    self.model,
                    &deploy,
                    &self.data.test,
                    self.cfg.eval_topk,
                    self.cfg.eval_max_samples,
                );
                (acc.mean_loss(), acc.accuracy())
            } else {
                // Carry forward the last evaluation for continuity.
                records
                    .last()
                    .map(|r: &RoundRecord| (r.test_loss, r.test_acc))
                    .unwrap_or((f64::NAN, 0.0))
            };

            records.push(RoundRecord {
                round,
                train_loss,
                test_loss,
                test_acc,
                upload_bytes_mean,
                upload_bytes_max,
                // Downlink: the server broadcasts the full global model
                // (the uplink is the paper's bottleneck; downlink
                // sub-model optimisations are out of scope, DESIGN.md §3).
                download_bytes: global.total_bytes(),
                local_seconds_mean,
                local_seconds_max,
                agg_seconds,
            });
        }

        ExperimentLog {
            dataset: self.data.name.clone(),
            method: self.algo.name(),
            seed: self.cfg.seed,
            records,
        }
    }
}

/// Evaluate `params` on a dataset, rayon-parallel over chunks.
/// `max_samples = 0` means the whole set.
pub fn evaluate_model(
    model: &dyn Model,
    params: &ParamSet,
    data: &ClientData,
    topk: usize,
    max_samples: usize,
) -> EvalAccum {
    const CHUNK: usize = 64;
    match data {
        ClientData::Image(set) => {
            let n = if max_samples == 0 {
                set.len()
            } else {
                set.len().min(max_samples)
            };
            let chunks: Vec<(usize, usize)> = (0..n)
                .step_by(CHUNK)
                .map(|s| (s, (s + CHUNK).min(n)))
                .collect();
            chunks
                .par_iter()
                .map(|&(s, e)| {
                    let batch = Batch::Dense {
                        x: &set.x[s * set.dim..e * set.dim],
                        y: &set.y[s..e],
                        dim: set.dim,
                    };
                    model.evaluate(params, &batch, topk)
                })
                .reduce(EvalAccum::default, |mut a, b| {
                    a.merge(&b);
                    a
                })
        }
        ClientData::Text(set) => {
            let n_windows = set.num_windows();
            let budget = if max_samples == 0 {
                n_windows
            } else {
                (max_samples / set.seq_len.max(1)).clamp(1, n_windows)
            };
            let chunks: Vec<(usize, usize)> = (0..budget)
                .step_by(CHUNK / 8 + 1)
                .map(|s| (s, (s + CHUNK / 8 + 1).min(budget)))
                .collect();
            chunks
                .par_iter()
                .map(|&(s, e)| {
                    let windows: Vec<&[u32]> = (s..e).map(|i| set.window(i)).collect();
                    let batch = Batch::Seq { windows: &windows };
                    model.evaluate(params, &batch, topk)
                })
                .reduce(EvalAccum::default, |mut a, b| {
                    a.merge(&b);
                    a
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate_weights, ZeroMode};
    use crate::upload::Upload;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_data::partition::{partition_images, ImagePartition};
    use fedbiad_data::synth_image::SyntheticImageSpec;
    use fedbiad_nn::mlp::MlpModel;

    /// Minimal FedAvg used to exercise the runner before fedbiad-core
    /// exists (the real baselines live there).
    struct MiniFedAvg;

    impl FlAlgorithm for MiniFedAvg {
        type ClientState = ();
        type RoundCtx = ();

        fn name(&self) -> String {
            "mini-fedavg".into()
        }

        fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) {}

        fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

        fn local_update(
            &self,
            info: RoundInfo,
            _rctx: &(),
            client_id: usize,
            _state: &mut (),
            global: &ParamSet,
            data: &ClientData,
            model: &dyn Model,
            cfg: &TrainConfig,
        ) -> LocalResult {
            let mut u = global.clone();
            let id = crate::client::LocalRunId {
                seed: info.seed,
                round: info.round,
                client: client_id,
            };
            let stats = crate::client::run_local_training(
                id,
                model,
                data,
                cfg,
                &mut u,
                &mut crate::client::NoHooks,
            );
            LocalResult {
                upload: Upload::full_weights(u),
                train_loss: stats.mean_loss,
                loss_improvement: stats.improvement(),
                local_seconds: stats.seconds,
                num_samples: data.num_samples(),
            }
        }

        fn aggregate(
            &mut self,
            _info: RoundInfo,
            _rctx: &(),
            global: &mut ParamSet,
            results: &[(usize, LocalResult)],
        ) {
            let ups: Vec<(f32, &Upload)> = results
                .iter()
                .map(|(_, r)| (r.num_samples as f32, &r.upload))
                .collect();
            aggregate_weights(global, &ups, ZeroMode::ZerosPull);
        }
    }

    fn tiny_fed_dataset(seed: u64) -> (FedDataset, MlpModel) {
        let spec = SyntheticImageSpec {
            classes: 4,
            side: 6,
            train_n: 240,
            test_n: 80,
            prototypes_per_class: 2,
            bumps: 3,
            distinctiveness: 0.9,
            noise: 0.08,
            shift_max: 1,
        };
        let (train, test) = spec.generate(seed);
        let shards = partition_images(&train, 6, &ImagePartition::Iid, seed);
        let fd = FedDataset {
            name: "tiny".into(),
            clients: shards.into_iter().map(ClientData::Image).collect(),
            test: ClientData::Image(test),
        };
        (fd, MlpModel::new(36, 12, 4))
    }

    #[test]
    fn fedavg_learns_on_tiny_dataset() {
        let (fd, model) = tiny_fed_dataset(17);
        let cfg = ExperimentConfig {
            rounds: 12,
            client_fraction: 0.5,
            seed: 17,
            train: TrainConfig {
                local_iters: 8,
                batch_size: 16,
                lr: 0.4,
                ..Default::default()
            },
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
        };
        let log = Experiment::new(&model, &fd, MiniFedAvg, cfg).run();
        assert_eq!(log.records.len(), 12);
        let first = log.records[0].test_acc;
        let last = log.records[11].test_acc;
        assert!(last > first, "no learning: {first} -> {last}");
        assert!(last > 0.5, "final acc too low: {last}");
        // Upload bytes are the full model every round.
        let model_bytes = model
            .init_params(&mut stream(1, StreamTag::Init, 0, 0))
            .total_bytes();
        assert!(log
            .records
            .iter()
            .all(|r| r.upload_bytes_mean == model_bytes));
    }

    #[test]
    fn runner_is_deterministic() {
        let (fd, model) = tiny_fed_dataset(23);
        let cfg = ExperimentConfig {
            rounds: 4,
            client_fraction: 0.5,
            seed: 5,
            train: TrainConfig {
                local_iters: 3,
                batch_size: 8,
                lr: 0.2,
                ..Default::default()
            },
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
        };
        let a = Experiment::new(&model, &fd, MiniFedAvg, cfg).run();
        let b = Experiment::new(&model, &fd, MiniFedAvg, cfg).run();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.test_acc, rb.test_acc);
            assert_eq!(ra.train_loss, rb.train_loss);
        }
    }

    #[test]
    fn eval_subsampling_caps_work() {
        let mut set = ImageSet::empty(4);
        for i in 0..100 {
            set.push(&[0.0, 1.0, 0.0, 1.0], (i % 2) as u32);
        }
        let model = MlpModel::new(4, 4, 2);
        let params = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let all = evaluate_model(&model, &params, &ClientData::Image(set.clone()), 1, 0);
        let capped = evaluate_model(&model, &params, &ClientData::Image(set), 1, 10);
        assert_eq!(all.count, 100);
        assert_eq!(capped.count, 10);
    }
}
