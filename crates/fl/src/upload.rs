//! What a client sends to the server each round.

use fedbiad_nn::{ModelMask, ParamSet};

/// Payload semantics of an upload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UploadKind {
    /// Masked *weights* β∘U (federated-dropout methods; aggregated by
    /// weighted averaging per eq. (10) or holders-only).
    Weights,
    /// A model *delta* U_local − U_global (sketched-compression methods;
    /// the server adds the weighted mean of deltas to the global model).
    Delta,
}

/// A client's per-round upload: dense-representation payload + coverage +
/// the exact bytes it would occupy on the wire.
#[derive(Clone, Debug)]
pub struct Upload {
    /// Payload semantics.
    pub kind: UploadKind,
    /// Dense payload. For `Weights` this is β∘U (non-covered entries are
    /// zero); for `Delta` it is the (decoded) delta.
    pub params: ParamSet,
    /// Which parameters the client actually trained/transmitted.
    pub coverage: ModelMask,
    /// Exact uplink bytes, including pattern/position overhead.
    pub wire_bytes: u64,
}

impl Upload {
    /// Full-model weights upload (FedAvg).
    pub fn full_weights(params: ParamSet) -> Self {
        let coverage = ModelMask::full(&params);
        let wire_bytes = coverage.wire_bytes(&params);
        Self {
            kind: UploadKind::Weights,
            params,
            coverage,
            wire_bytes,
        }
    }

    /// Masked weights upload: applies `coverage` to `params` (zeroing
    /// non-covered rows) and computes wire bytes from the mask.
    pub fn masked_weights(mut params: ParamSet, coverage: ModelMask) -> Self {
        coverage.apply(&mut params);
        let wire_bytes = coverage.wire_bytes(&params);
        Self {
            kind: UploadKind::Weights,
            params,
            coverage,
            wire_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mask::BitVec;
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::Matrix;

    fn params() -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(4, 2, 1.0),
            None,
            EntryMeta::new("w", LayerKind::DenseHidden, false, true),
        );
        p
    }

    #[test]
    fn full_upload_bytes_match_paramset() {
        let p = params();
        let u = Upload::full_weights(p.clone());
        assert_eq!(u.wire_bytes, p.total_bytes());
        assert_eq!(u.kind, UploadKind::Weights);
    }

    #[test]
    fn masked_upload_zeroes_and_discounts() {
        let p = params();
        let mut beta = BitVec::new(4, true);
        beta.set(1, false);
        beta.set(3, false);
        let mask = fedbiad_nn::ModelMask::from_row_pattern(&p, &beta);
        let u = Upload::masked_weights(p.clone(), mask);
        assert_eq!(u.params.mat(0).row(1), &[0.0, 0.0]);
        assert_eq!(u.params.mat(0).row(0), &[1.0, 1.0]);
        // 4 kept weights × 4 B + 1 pattern byte.
        assert_eq!(u.wire_bytes, 16 + 1);
        assert!(u.wire_bytes < p.total_bytes());
    }
}
