//! What a client sends to the server each round.
//!
//! An upload's payload travels in one of two representations:
//!
//! * [`UploadBody::Dense`] — the decoded dense [`ParamSet`] (the retained
//!   reference path; every historical behaviour is unchanged);
//! * [`UploadBody::Wire`] — actual encoded bytes ([`WireMsg`], the
//!   `fedbiad-compress` codec). The streaming server path decodes these
//!   shard-by-shard during aggregation and never materialises a dense
//!   per-client `ParamSet`.
//!
//! Which one a client produces is decided by the round's
//! [`crate::aggregate::AggSettings`] (`RoundInfo::agg`), so the server
//! and every client always agree. The two are bit-equivalent end to end
//! (`tests/aggregation_equivalence.rs`).

use crate::aggregate::AggSettings;
use fedbiad_compress::codec::{encode_weights, WireMsg};
use fedbiad_nn::{ModelMask, ParamSet};

/// Payload semantics of an upload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UploadKind {
    /// Masked *weights* β∘U (federated-dropout methods; aggregated by
    /// weighted averaging per eq. (10) or holders-only).
    Weights,
    /// A model *delta* U_local − U_global (sketched-compression methods;
    /// the server adds the weighted mean of deltas to the global model).
    Delta,
}

/// The payload representation an [`Upload`] carries.
#[derive(Clone, Debug)]
pub enum UploadBody {
    /// Decoded dense payload (reference aggregation path).
    Dense(ParamSet),
    /// Encoded wire bytes (streaming aggregation path).
    Wire(WireMsg),
}

/// A client's per-round upload: payload + coverage + the exact bytes it
/// occupies on the wire.
#[derive(Clone, Debug)]
pub struct Upload {
    /// Payload semantics.
    pub kind: UploadKind,
    /// The payload. For `Weights` the dense form is β∘U (non-covered
    /// entries zero); for `Delta` it is the (decoded) delta.
    pub body: UploadBody,
    /// Which parameters the client actually trained/transmitted.
    pub coverage: ModelMask,
    /// Exact uplink bytes, including pattern/position overhead. For wire
    /// bodies this equals the encoded body length
    /// (`tests/byte_accounting.rs`).
    pub wire_bytes: u64,
}

impl Upload {
    /// Full-model weights upload (FedAvg), dense representation.
    pub fn full_weights(params: ParamSet) -> Self {
        let coverage = ModelMask::full(&params);
        let wire_bytes = coverage.wire_bytes(&params);
        Self {
            kind: UploadKind::Weights,
            body: UploadBody::Dense(params),
            coverage,
            wire_bytes,
        }
    }

    /// Masked weights upload, dense representation: applies `coverage` to
    /// `params` (zeroing non-covered rows) and computes wire bytes from
    /// the mask.
    pub fn masked_weights(mut params: ParamSet, coverage: ModelMask) -> Self {
        coverage.apply(&mut params);
        let wire_bytes = coverage.wire_bytes(&params);
        Self {
            kind: UploadKind::Weights,
            body: UploadBody::Dense(params),
            coverage,
            wire_bytes,
        }
    }

    /// Full-model weights upload honouring the round's aggregation
    /// settings: dense under the reference engine, encoded bytes under
    /// streaming.
    pub fn full_weights_with(params: ParamSet, agg: AggSettings) -> Self {
        if agg.streaming {
            let coverage = ModelMask::full(&params);
            let wire_bytes = coverage.wire_bytes(&params);
            let msg = encode_weights(&params, &coverage);
            debug_assert_eq!(msg.body_bytes(), wire_bytes);
            Self {
                kind: UploadKind::Weights,
                body: UploadBody::Wire(msg),
                coverage,
                wire_bytes,
            }
        } else {
            Self::full_weights(params)
        }
    }

    /// Masked weights upload honouring the round's aggregation settings.
    pub fn masked_weights_with(params: ParamSet, coverage: ModelMask, agg: AggSettings) -> Self {
        if agg.streaming {
            // No `coverage.apply` here: the encoder gathers covered
            // values only, so zeroing the dropped ones would be an
            // unobservable O(model) pass.
            let wire_bytes = coverage.wire_bytes(&params);
            let msg = encode_weights(&params, &coverage);
            debug_assert_eq!(msg.body_bytes(), wire_bytes);
            Self {
                kind: UploadKind::Weights,
                body: UploadBody::Wire(msg),
                coverage,
                wire_bytes,
            }
        } else {
            Self::masked_weights(params, coverage)
        }
    }

    /// An encoded upload built directly from wire bytes (the streaming
    /// client path for sketched deltas / Fig. 5 combos).
    pub fn wire(kind: UploadKind, msg: WireMsg, coverage: ModelMask, wire_bytes: u64) -> Self {
        Self {
            kind,
            body: UploadBody::Wire(msg),
            coverage,
            wire_bytes,
        }
    }

    /// The dense payload. Panics on wire bodies — callers on the dense
    /// reference path only.
    pub fn params(&self) -> &ParamSet {
        match &self.body {
            UploadBody::Dense(p) => p,
            UploadBody::Wire(_) => {
                panic!("upload carries encoded wire bytes, not a dense ParamSet")
            }
        }
    }

    /// The encoded bytes, when this upload travels in wire form.
    pub fn wire_msg(&self) -> Option<&WireMsg> {
        match &self.body {
            UploadBody::Wire(m) => Some(m),
            UploadBody::Dense(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mask::BitVec;
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::Matrix;

    fn params() -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(4, 2, 1.0),
            None,
            EntryMeta::new("w", LayerKind::DenseHidden, false, true),
        );
        p
    }

    #[test]
    fn full_upload_bytes_match_paramset() {
        let p = params();
        let u = Upload::full_weights(p.clone());
        assert_eq!(u.wire_bytes, p.total_bytes());
        assert_eq!(u.kind, UploadKind::Weights);
    }

    #[test]
    fn masked_upload_zeroes_and_discounts() {
        let p = params();
        let mut beta = BitVec::new(4, true);
        beta.set(1, false);
        beta.set(3, false);
        let mask = fedbiad_nn::ModelMask::from_row_pattern(&p, &beta);
        let u = Upload::masked_weights(p.clone(), mask);
        assert_eq!(u.params().mat(0).row(1), &[0.0, 0.0]);
        assert_eq!(u.params().mat(0).row(0), &[1.0, 1.0]);
        // 4 kept weights × 4 B + 1 pattern byte.
        assert_eq!(u.wire_bytes, 16 + 1);
        assert!(u.wire_bytes < p.total_bytes());
    }

    #[test]
    fn streaming_constructor_encodes_with_matching_bytes() {
        let p = params();
        let mut beta = BitVec::new(4, true);
        beta.set(2, false);
        let mask = fedbiad_nn::ModelMask::from_row_pattern(&p, &beta);
        let agg = AggSettings::sharded(64);
        let u = Upload::masked_weights_with(p.clone(), mask.clone(), agg);
        let msg = u.wire_msg().expect("wire body under streaming");
        assert_eq!(msg.body_bytes(), u.wire_bytes);
        assert_eq!(u.wire_bytes, mask.wire_bytes(&p));
        // The dense twin reports identical bytes.
        let d = Upload::masked_weights(p, mask);
        assert_eq!(d.wire_bytes, u.wire_bytes);
        assert!(d.wire_msg().is_none());
    }

    #[test]
    #[should_panic(expected = "wire bytes")]
    fn dense_accessor_panics_on_wire_bodies() {
        let p = params();
        let agg = AggSettings::sharded(1);
        let u = Upload::full_weights_with(p, agg);
        let _ = u.params();
    }
}
