//! The sharded streaming engine: fused decode + reduce over fixed-size
//! shards of the flat parameter space.
//!
//! ## How it stays bit-identical to [`super::dense`]
//!
//! Aggregation is element-wise: every output element is a function of
//! that element's inputs only, reduced over clients **in upload order**.
//! Splitting the flat space ([`ParamSet::flatten`] order) into shards
//! therefore cannot change a single bit as long as
//!
//! 1. each shard reduces clients in the same fixed order the dense path
//!    uses (the upload list order), and
//! 2. every per-element expression is written exactly as the dense
//!    reference writes it (`num·(1/W)` for matrix elements under
//!    zeros-pull but `num/W` for biases, `(num + (W−den)·g)/W` for
//!    stale-fill, and so on — see `dense.rs`).
//!
//! Shards run in parallel through the deterministic rayon shim; each
//! shard owns disjoint `&mut` slices of the output and scratch buffers,
//! so thread count cannot affect results either
//! (`tests/thread_determinism.rs`).
//!
//! The per-shard inner loops run through the shared SIMD kernels in
//! [`fedbiad_tensor::ops`] — all purely vertical operations, so the
//! vector widths carry the exact scalar bits — and the coverage walk
//! tracks kept-value ranks **incrementally** (one counter per shard
//! walk; see [`walk_runs`]) instead of issuing a popcount rank query per
//! matrix/bias section. Dense-f32 payloads accumulate straight from
//! their wire bytes with no intermediate decode buffer.
//!
//! ## Memory
//!
//! The dense path holds one dense `ParamSet` per client
//! (O(clients × model)). Here each client contributes straight from its
//! encoded bytes: the only data-sized buffers are a handful of
//! model-sized flats (global, numerator, denominator, per-client shard
//! scratch), checked out of a thread-local [`Workspace`] arena — after
//! the first aggregation of a given shape, [`arena_churn`] stays
//! constant, i.e. steady-state aggregation performs **no data-sized
//! allocations**.

use super::{robust, AggError, StalenessUpload, ZeroMode};
use crate::upload::{Upload, UploadBody, UploadKind};
use fedbiad_compress::codec::{
    bias_kept as codec_bias_kept, encode_delta, encode_weights, mat_kept as codec_mat_kept,
    BodyKind, Payload, WireError, WireMsg, WireView,
};
use fedbiad_nn::{CoverageMask, ParamSet};
use fedbiad_telemetry::{counter, gauge, span};
use fedbiad_tensor::{ops, Workspace};
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// The server's scratch arena. Aggregation runs on the round-loop
    /// thread, so the arena persists across rounds and steady-state
    /// checkouts allocate nothing.
    static ARENA: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Allocation churn of the calling thread's aggregation arena — constant
/// across steady-state rounds (pinned by `tests/aggregation_equivalence.rs`).
pub fn arena_churn() -> u64 {
    ARENA.with(|a| a.borrow().churn())
}

// ---- flat layout -------------------------------------------------------

/// Flat spans of each entry in [`ParamSet::flatten`] order.
struct Span {
    mat_start: usize,
    rows: usize,
    cols: usize,
    bias_start: usize,
    bias_len: usize,
}

impl Span {
    fn end(&self) -> usize {
        self.bias_start + self.bias_len
    }
}

struct FlatLayout {
    spans: Vec<Span>,
    total: usize,
}

impl FlatLayout {
    fn of(p: &ParamSet) -> FlatLayout {
        let mut spans = Vec::with_capacity(p.num_entries());
        let mut off = 0usize;
        for e in 0..p.num_entries() {
            let m = p.mat(e);
            let mat_start = off;
            off += m.len();
            let bias_start = off;
            let bias_len = p.bias(e).len();
            off += bias_len;
            spans.push(Span {
                mat_start,
                rows: m.rows(),
                cols: m.cols(),
                bias_start,
                bias_len,
            });
        }
        FlatLayout { spans, total: off }
    }

    /// Entry containing flat position `pos`.
    fn entry_of(&self, pos: usize) -> usize {
        debug_assert!(pos < self.total);
        self.spans.partition_point(|s| s.end() <= pos)
    }
}

// ---- per-upload kept-value bookkeeping ---------------------------------

/// Where each entry's covered values sit in an upload's kept-value
/// stream (cumulative counts, in flatten order).
struct KeptMeta {
    /// `prefix[e]` = covered scalars before entry `e`; last = total.
    prefix: Vec<usize>,
    /// Covered *matrix* scalars of entry `e` (biases follow them).
    mat_kept: Vec<usize>,
}

impl KeptMeta {
    fn of(masks: &[CoverageMask], layout: &FlatLayout) -> KeptMeta {
        let mut prefix = Vec::with_capacity(masks.len() + 1);
        let mut mat_kept = Vec::with_capacity(masks.len());
        let mut acc = 0usize;
        prefix.push(0);
        for (mask, span) in masks.iter().zip(&layout.spans) {
            // Kept-count conventions come from the codec (the wire
            // format's source of truth), so the rank bookkeeping here can
            // never drift from what the encoder transmitted.
            let mk = codec_mat_kept(mask, span.rows, span.cols);
            acc += mk + codec_bias_kept(mask, span.bias_len);
            mat_kept.push(mk);
            prefix.push(acc);
        }
        KeptMeta { prefix, mat_kept }
    }

    /// Kept-rank of flat position `pos` (number of covered scalars before
    /// it); `pos == total` returns the total covered count.
    fn rank_at(&self, pos: usize, masks: &[CoverageMask], layout: &FlatLayout) -> usize {
        if pos >= layout.total {
            return *self.prefix.last().expect("non-empty prefix");
        }
        let e = layout.entry_of(pos);
        let span = &layout.spans[e];
        let mask = &masks[e];
        if pos < span.bias_start {
            let o = pos - span.mat_start;
            let (r, c) = (o / span.cols, o % span.cols);
            let mat_rank = match mask {
                CoverageMask::Full => o,
                CoverageMask::Rows(rb) => rb.rank(r) * span.cols + if rb.get(r) { c } else { 0 },
                CoverageMask::RowsCols { rows, cols } => {
                    rows.rank(r) * cols.count_ones() + if rows.get(r) { cols.rank(c) } else { 0 }
                }
                CoverageMask::Elements(b) => b.rank(o),
            };
            self.prefix[e] + mat_rank
        } else {
            let br = pos - span.bias_start;
            let bias_rank = match mask {
                CoverageMask::Full | CoverageMask::Elements(_) => br,
                CoverageMask::Rows(rb) | CoverageMask::RowsCols { rows: rb, .. } => rb.rank(br),
            };
            self.prefix[e] + self.mat_kept[e] + bias_rank
        }
    }
}

/// One coverage run of a shard walk.
enum Run {
    /// `n` covered elements at local offset `local`; their kept values
    /// are `ks[ki..ki+n]`.
    Covered { local: usize, ki: usize, n: usize },
    /// `n` dropped elements at local offset `local`.
    Dropped { local: usize, n: usize },
}

/// Walk a shard range of one upload's coverage as *runs*: maximal
/// stretches of covered and dropped elements, in flat order. Covered
/// rows of `Rows`/`Full` masks — the hot case — surface as whole-row
/// runs, so consumers reduce them with tight slice loops instead of
/// per-element dispatch.
///
/// The kept-value index `ki` handed to each covered run is tracked
/// **incrementally**: the kept-value stream follows flat order, so the
/// rank of any position inside the walk equals the shard-start rank plus
/// the covered elements seen so far. One counter therefore replaces the
/// per-section `KeptMeta::rank_at` queries the walk used to issue (each
/// a popcount scan over the mask words), making the walk O(shard) with
/// no rank queries at all — callers resolve the single shard-start rank
/// themselves when they need an absolute payload offset.
fn walk_runs(
    view: &WireView<'_>,
    layout: &FlatLayout,
    start: usize,
    len: usize,
    mut f: impl FnMut(Run),
) {
    if len == 0 {
        return;
    }
    let end = start + len;
    let first = layout.entry_of(start);
    // Covered elements seen since `start` — the incremental rank.
    let mut ki = 0usize;
    for (e, span) in layout.spans.iter().enumerate().skip(first) {
        if span.mat_start >= end {
            break;
        }
        let mask = &view.masks[e];
        // Matrix section.
        let m0 = span.mat_start.max(start);
        let m1 = span.bias_start.min(end);
        if m0 < m1 {
            match mask {
                CoverageMask::Full => {
                    f(Run::Covered {
                        local: m0 - start,
                        ki,
                        n: m1 - m0,
                    });
                    ki += m1 - m0;
                }
                CoverageMask::Rows(rb) => {
                    let mut o = m0;
                    while o < m1 {
                        let r = (o - span.mat_start) / span.cols;
                        let row_end = (span.mat_start + (r + 1) * span.cols).min(m1);
                        if rb.get(r) {
                            f(Run::Covered {
                                local: o - start,
                                ki,
                                n: row_end - o,
                            });
                            ki += row_end - o;
                        } else {
                            f(Run::Dropped {
                                local: o - start,
                                n: row_end - o,
                            });
                        }
                        o = row_end;
                    }
                }
                CoverageMask::RowsCols { rows: rb, cols: cb } => {
                    let mut o = m0;
                    while o < m1 {
                        let r = (o - span.mat_start) / span.cols;
                        let row_end = (span.mat_start + (r + 1) * span.cols).min(m1);
                        if rb.get(r) {
                            for oo in o..row_end {
                                if cb.get((oo - span.mat_start) % span.cols) {
                                    f(Run::Covered {
                                        local: oo - start,
                                        ki,
                                        n: 1,
                                    });
                                    ki += 1;
                                } else {
                                    f(Run::Dropped {
                                        local: oo - start,
                                        n: 1,
                                    });
                                }
                            }
                        } else {
                            f(Run::Dropped {
                                local: o - start,
                                n: row_end - o,
                            });
                        }
                        o = row_end;
                    }
                }
                CoverageMask::Elements(bits) => {
                    for o in m0..m1 {
                        if bits.get(o - span.mat_start) {
                            f(Run::Covered {
                                local: o - start,
                                ki,
                                n: 1,
                            });
                            ki += 1;
                        } else {
                            f(Run::Dropped {
                                local: o - start,
                                n: 1,
                            });
                        }
                    }
                }
            }
        }
        // Bias section (small; elementwise).
        let b0 = span.bias_start.max(start);
        let b1 = span.end().min(end);
        if b0 < b1 {
            for o in b0..b1 {
                let br = o - span.bias_start;
                let covered = match mask {
                    CoverageMask::Full | CoverageMask::Elements(_) => true,
                    CoverageMask::Rows(rb) | CoverageMask::RowsCols { rows: rb, .. } => rb.get(br),
                };
                if covered {
                    f(Run::Covered {
                        local: o - start,
                        ki,
                        n: 1,
                    });
                    ki += 1;
                } else {
                    f(Run::Dropped {
                        local: o - start,
                        n: 1,
                    });
                }
            }
        }
    }
}

// ---- prepared uploads --------------------------------------------------

/// An upload ready for shard decoding: either its own wire bytes or an
/// on-the-fly encoding of a dense body (differential tests drive both
/// engines from identical dense uploads this way; production streaming
/// clients ship wire bodies and skip this copy).
enum PreparedMsg<'a> {
    Borrowed(&'a WireMsg),
    Owned(WireMsg),
}

impl PreparedMsg<'_> {
    fn get(&self) -> &WireMsg {
        match self {
            PreparedMsg::Borrowed(m) => m,
            PreparedMsg::Owned(m) => m,
        }
    }
}

fn prepare_msg(u: &Upload) -> PreparedMsg<'_> {
    match &u.body {
        UploadBody::Wire(m) => PreparedMsg::Borrowed(m),
        UploadBody::Dense(p) => PreparedMsg::Owned(match u.kind {
            UploadKind::Weights => encode_weights(p, &u.coverage),
            UploadKind::Delta => encode_delta(&Payload::Dense {
                values: p.flatten(),
            }),
        }),
    }
}

fn check_kind(view: &WireView<'_>, upload_kind: UploadKind) -> Result<(), AggError> {
    let ok = match upload_kind {
        UploadKind::Weights => matches!(
            view.kind,
            BodyKind::WeightsAbsolute | BodyKind::WeightsDelta
        ),
        UploadKind::Delta => view.kind == BodyKind::DeltaFull,
    };
    if ok {
        Ok(())
    } else {
        Err(AggError::Wire(WireError::Inconsistent(
            "wire body kind does not match upload kind",
        )))
    }
}

// ---- shard scaffolding -------------------------------------------------

/// Disjoint per-shard slices of the model-sized scratch buffers.
struct ShardTask<'a> {
    start: usize,
    g: &'a mut [f32],
    num: &'a mut [f32],
    den: &'a mut [f32],
    vals: &'a mut [f32],
    kept: &'a mut [f32],
    snap: &'a mut [f32],
}

/// Which scratch buffers an operation touches (unrequested ones are not
/// checked out, so they cost neither allocation nor zero-fill).
#[derive(Clone, Copy)]
struct Needs {
    num: bool,
    den: bool,
    vals: bool,
    kept: bool,
    snap: bool,
}

/// Check out the requested model-sized flats, split them into shard
/// tasks, run `body` over the tasks in parallel, write the global back,
/// and return the buffers to the arena.
fn with_shards<F>(global: &mut ParamSet, shard_elems: usize, needs: Needs, body: F)
where
    F: Fn(&mut ShardTask) + Sync,
{
    let total = global.total_params();
    let se = shard_elems.max(1);
    let sized = |on: bool| if on { total } else { 0 };
    ARENA.with(|arena| {
        let (mut g, mut num, mut den, mut vals, mut kept, mut snap) = {
            let mut a = arena.borrow_mut();
            (
                a.take(total),
                a.take(sized(needs.num)),
                a.take(sized(needs.den)),
                a.take(sized(needs.vals)),
                a.take(sized(needs.kept)),
                a.take(sized(needs.snap)),
            )
        };
        global.copy_flat_range(0, &mut g);

        let mut tasks: Vec<ShardTask> = Vec::with_capacity(total.div_ceil(se));
        {
            let mut gs = g.chunks_mut(se);
            let mut nums = num.chunks_mut(se);
            let mut dens = den.chunks_mut(se);
            let mut valss = vals.chunks_mut(se);
            let mut kepts = kept.chunks_mut(se);
            let mut snaps = snap.chunks_mut(se);
            let mut start = 0usize;
            while start < total {
                // Buffers the op did not request are empty: their chunk
                // iterators yield nothing and the task gets `&mut []`.
                tasks.push(ShardTask {
                    start,
                    g: gs.next().expect("chunk"),
                    num: nums.next().unwrap_or_default(),
                    den: dens.next().unwrap_or_default(),
                    vals: valss.next().unwrap_or_default(),
                    kept: kepts.next().unwrap_or_default(),
                    snap: snaps.next().unwrap_or_default(),
                });
                start += se;
            }
        }

        // Parallel across shards; per shard, clients reduce in the fixed
        // upload order (the determinism contract).
        counter!("agg.shards_reduced", tasks.len());
        tasks.par_iter_mut().for_each(|t| {
            let _shard_span = span!("agg.shard", shard = t.start / se, elems = t.g.len());
            body(t)
        });
        drop(tasks);

        global.unflatten_from(&g);
        let mut a = arena.borrow_mut();
        a.give(g);
        a.give(num);
        a.give(den);
        a.give(vals);
        a.give(kept);
        a.give(snap);
        gauge!("agg.arena_churn", a.churn());
    });
}

/// Decode one upload's payload for a shard into `kept_scratch`, returning
/// the slice of kept values covering `[start, start + len)`.
fn decode_kept<'k>(
    view: &WireView<'_>,
    kmeta: &KeptMeta,
    layout: &FlatLayout,
    start: usize,
    len: usize,
    kept_scratch: &'k mut [f32],
) -> (&'k [f32], usize) {
    let kr0 = kmeta.rank_at(start, &view.masks, layout);
    let kr1 = kmeta.rank_at(start + len, &view.masks, layout);
    let ks = &mut kept_scratch[..kr1 - kr0];
    view.payload.decode_range(kr0, ks);
    (ks, kr0)
}

/// Fused decode + numerator/denominator accumulation for one upload on
/// one shard (the sync weights path): the client's dense contribution is
/// never materialised — covered runs stream straight from the wire into
/// `num[j] += w·v`, and dropped elements are skipped outright. Skipping
/// is bit-exact, not an approximation: the dense engine adds
/// `w·0.0 = +0.0` there, and under round-to-nearest `x + (+0.0)` changes
/// nothing unless `x` is `−0.0` — which `num` can never be, because it
/// starts at `+0.0` and an IEEE sum is `−0.0` only when *both* operands
/// are (`tests/aggregation_equivalence.rs` pins this end to end).
///
/// Dense-f32 payloads — the hot masked-weights shape — skip the
/// kept-scratch decode entirely: the single shard-start rank query gives
/// the payload byte offset, and covered runs accumulate straight from the
/// wire bytes ([`ops::axpy_from_le_bytes`]). Compressed payloads decode
/// the shard's kept values once into scratch and accumulate from there.
#[allow(clippy::too_many_arguments)]
fn accumulate_weights_shard(
    view: &WireView<'_>,
    kmeta: &KeptMeta,
    layout: &FlatLayout,
    start: usize,
    len: usize,
    w: f32,
    base: &[f32],
    num: &mut [f32],
    mut den: Option<&mut [f32]>,
    kept_scratch: &mut [f32],
) {
    if len == 0 {
        return;
    }
    let delta_mode = view.kind == BodyKind::WeightsDelta;
    let dense = if delta_mode {
        None
    } else {
        view.payload.dense_values()
    };
    let (ks, kr0): (&[f32], usize) = match dense {
        Some(_) => (&[], kmeta.rank_at(start, &view.masks, layout)),
        None => {
            let (ks, kr0) = decode_kept(view, kmeta, layout, start, len, kept_scratch);
            (ks, kr0)
        }
    };
    walk_runs(view, layout, start, len, |run| match run {
        Run::Covered { local, ki, n } => {
            let nseg = &mut num[local..local + n];
            if delta_mode {
                // WeightsDelta reconstructs g + δ exactly as the dense
                // client did (`rec_flat[i] += decoded[pos]`).
                ops::axpy_sum2(w, &base[local..local + n], &ks[ki..ki + n], nseg);
            } else if let Some(bytes) = dense {
                let o = 4 * (kr0 + ki);
                ops::axpy_from_le_bytes(w, &bytes[o..o + 4 * n], nseg);
            } else {
                ops::axpy(w, &ks[ki..ki + n], nseg);
            }
            if let Some(den) = den.as_mut() {
                ops::add_assign_scalar(&mut den[local..local + n], w);
            }
        }
        Run::Dropped { .. } => {}
    });
}

/// Denominator of entry `e`, row `r` for row-granular coverage (every
/// mask `Full` or `Rows`): the scalar chain `0.0 + w_0 + w_1 + …` over
/// the clients covering the row, in upload order — exactly the sum the
/// dense engine builds element-wise (`den[i] += w` per covering client),
/// so combining with it is bit-identical to combining with a den array.
fn row_weight(uploads: &[(f32, &Upload)], views: &[WireView<'_>], e: usize, r: usize) -> f32 {
    let mut d = 0.0f32;
    for ((w, _), v) in uploads.iter().zip(views) {
        let covered = match &v.masks[e] {
            CoverageMask::Full => true,
            CoverageMask::Rows(rb) => rb.get(r),
            // Caller guarantees row granularity.
            _ => unreachable!("row_weight on non-row-granular mask"),
        };
        if covered {
            d += *w;
        }
    }
    d
}

/// Call `f(lo, hi, e, r)` for every maximal extent of the flat range that
/// lies within a single row: matrix rows clipped to the range, then each
/// bias element (bias element `i` of an entry belongs to row `i`).
/// `lo..hi` are range-local offsets.
fn for_each_row_extent(
    layout: &FlatLayout,
    start: usize,
    len: usize,
    f: &mut impl FnMut(usize, usize, usize, usize),
) {
    if len == 0 {
        return;
    }
    let end = start + len;
    for (e, span) in layout.spans.iter().enumerate().skip(layout.entry_of(start)) {
        if span.mat_start >= end {
            break;
        }
        let m0 = span.mat_start.max(start);
        let m1 = span.bias_start.min(end);
        if m0 < m1 {
            let r0 = (m0 - span.mat_start) / span.cols;
            let r1 = (m1 - 1 - span.mat_start) / span.cols;
            for r in r0..=r1 {
                let lo = (span.mat_start + r * span.cols).max(m0);
                let hi = (span.mat_start + (r + 1) * span.cols).min(m1);
                f(lo - start, hi - start, e, r);
            }
        }
        let b0 = span.bias_start.max(start);
        let b1 = span.end().min(end);
        for i in b0..b1 {
            f(i - start, i + 1 - start, e, i - span.bias_start);
        }
    }
}

/// Decode one upload's masked values for a shard into `vals` (exact
/// zeros on dropped positions) with a parallel coverage indicator in
/// `cov` (1.0 covered / 0.0 dropped) — the per-client column material of
/// the robust per-coordinate combine. `WeightsDelta` bodies reconstruct
/// the client's absolute values `base + δ` elementwise, the same
/// expression the fused mean path feeds `axpy_sum2`.
#[allow(clippy::too_many_arguments)]
fn decode_masked_shard(
    view: &WireView<'_>,
    kmeta: &KeptMeta,
    layout: &FlatLayout,
    start: usize,
    len: usize,
    base: &[f32],
    vals: &mut [f32],
    cov: &mut [f32],
    kept_scratch: &mut [f32],
) {
    if len == 0 {
        return;
    }
    let (ks, _) = decode_kept(view, kmeta, layout, start, len, kept_scratch);
    let delta_mode = view.kind == BodyKind::WeightsDelta;
    walk_runs(view, layout, start, len, |run| match run {
        Run::Covered { local, ki, n } => {
            let seg = &mut vals[local..local + n];
            let kseg = &ks[ki..ki + n];
            if delta_mode {
                for ((o, b), k) in seg.iter_mut().zip(&base[local..local + n]).zip(kseg) {
                    *o = *b + *k;
                }
            } else {
                seg.copy_from_slice(kseg);
            }
            cov[local..local + n].fill(1.0);
        }
        Run::Dropped { local, n } => {
            vals[local..local + n].fill(0.0);
            cov[local..local + n].fill(0.0);
        }
    });
}

/// Decode an encoded upload into its dense flat values: covered positions
/// carry the client's reconstructed values (`base + δ` for `WeightsDelta`
/// bodies), dropped positions exact zero — the dense-engine twin of the
/// wire body. Delta payloads decode the full flat stream directly. Used
/// by the norm-clip pre-pass and the public `decode_dense`.
pub(super) fn decode_dense_flat(
    shape: &ParamSet,
    base_flat: &[f32],
    u: &Upload,
) -> Result<Vec<f32>, AggError> {
    let msg = match &u.body {
        UploadBody::Wire(m) => m,
        UploadBody::Dense(p) => return Ok(p.flatten()),
    };
    let layout = FlatLayout::of(shape);
    let view = msg.view(shape)?;
    let mut out = vec![0.0f32; layout.total];
    if view.kind == BodyKind::DeltaFull {
        view.payload.decode_range(0, &mut out);
        return Ok(out);
    }
    let kmeta = KeptMeta::of(&view.masks, &layout);
    let total_kept = *kmeta.prefix.last().expect("non-empty prefix");
    let mut ks = vec![0.0f32; total_kept];
    view.payload.decode_range(0, &mut ks);
    let delta_mode = view.kind == BodyKind::WeightsDelta;
    walk_runs(&view, &layout, 0, layout.total, |run| match run {
        Run::Covered { local, ki, n } => {
            let seg = &mut out[local..local + n];
            if delta_mode {
                for ((o, b), k) in seg
                    .iter_mut()
                    .zip(&base_flat[local..local + n])
                    .zip(&ks[ki..ki + n])
                {
                    *o = *b + *k;
                }
            } else {
                seg.copy_from_slice(&ks[ki..ki + n]);
            }
        }
        Run::Dropped { .. } => {}
    });
    Ok(out)
}

/// Scan an encoded upload's decoded value stream for non-finite values in
/// fixed-size chunks, never materialising the model. Sign/quantised
/// payloads decode a poisoned `mu`/`scale` into non-finite values, so
/// this single decode-level check covers every payload kind.
pub(super) fn wire_has_non_finite(base: &ParamSet, u: &Upload) -> Result<bool, AggError> {
    let msg = match &u.body {
        UploadBody::Wire(m) => m,
        UploadBody::Dense(_) => unreachable!("dense bodies are scanned directly"),
    };
    let layout = FlatLayout::of(base);
    let view = msg.view(base)?;
    let total = if view.kind == BodyKind::DeltaFull {
        layout.total
    } else {
        *KeptMeta::of(&view.masks, &layout)
            .prefix
            .last()
            .expect("non-empty prefix")
    };
    let mut buf = [0.0f32; 512];
    let mut i = 0usize;
    while i < total {
        let n = (total - i).min(buf.len());
        view.payload.decode_range(i, &mut buf[..n]);
        if buf[..n].iter().any(|v| !v.is_finite()) {
            return Ok(true);
        }
        i += n;
    }
    Ok(false)
}

/// Decode one upload's masked values for a shard into `vals` (exact
/// zeros on dropped positions), subtracting `sub` on covered elements —
/// the staleness merge's Δ = (β∘U) − snapshot, with the dense path's
/// exact expression `(v) + (−1.0)·sub[i]` (the `axpy(-1.0, …)` form,
/// which [`ops::diff_into`]/[`ops::sum2_diff_into`] spell per lane).
#[allow(clippy::too_many_arguments)]
fn decode_weights_delta_shard(
    view: &WireView<'_>,
    kmeta: &KeptMeta,
    layout: &FlatLayout,
    start: usize,
    len: usize,
    base: &[f32],
    sub: &[f32],
    vals: &mut [f32],
    kept_scratch: &mut [f32],
) {
    if len == 0 {
        return;
    }
    let (ks, _) = decode_kept(view, kmeta, layout, start, len, kept_scratch);
    let delta_mode = view.kind == BodyKind::WeightsDelta;
    walk_runs(view, layout, start, len, |run| match run {
        Run::Covered { local, ki, n } => {
            let seg = &mut vals[local..local + n];
            let kseg = &ks[ki..ki + n];
            let sseg = &sub[local..local + n];
            if delta_mode {
                ops::sum2_diff_into(&base[local..local + n], kseg, sseg, seg);
            } else {
                ops::diff_into(kseg, sseg, seg);
            }
        }
        Run::Dropped { local, n } => vals[local..local + n].fill(0.0),
    });
}

// ---- the three engines -------------------------------------------------

pub(super) fn weights(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    total_w: f32,
    shard_elems: usize,
) -> Result<(), AggError> {
    let layout = FlatLayout::of(global);
    let msgs: Vec<PreparedMsg> = uploads.iter().map(|(_, u)| prepare_msg(u)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, (_, u))) in msgs.iter().zip(uploads).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, u.kind)?;
        views.push(v);
    }
    let kmetas: Vec<KeptMeta> = views
        .iter()
        .map(|v| KeptMeta::of(&v.masks, &layout))
        .collect();
    let need_den = mode != ZeroMode::ZerosPull;

    // Row-granular coverage (`Full`/`Rows` masks — the FedBIAD dropout
    // shape) makes the denominator *row-constant* per client, so no den
    // array is materialised at all: the combine step walks row extents
    // and folds each row's scalar weight chain straight into the
    // constant-den combine kernels, saving both the per-client
    // `den += w` memory passes and the full-width den fill/read. Finer
    // masks (`RowsCols`/`Elements`) keep the per-client accumulation.
    let row_granular = views.iter().all(|v| {
        v.masks
            .iter()
            .all(|m| matches!(m, CoverageMask::Full | CoverageMask::Rows(_)))
    });
    let fast_den = need_den && row_granular;

    let needs = Needs {
        num: true,
        den: need_den && !fast_den,
        vals: false,
        kept: true,
        snap: false,
    };
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        t.num.fill(0.0);
        t.den.fill(0.0);
        for (((w, _), view), kmeta) in uploads.iter().zip(&views).zip(&kmetas) {
            accumulate_weights_shard(
                view,
                kmeta,
                &layout,
                t.start,
                len,
                *w,
                t.g,
                t.num,
                (need_den && !fast_den).then_some(&mut *t.den),
                t.kept,
            );
        }
        combine_mode(
            mode, fast_den, &layout, uploads, &views, total_w, t.start, t.num, t.den, t.g,
        );
    });
    Ok(())
}

/// Apply one shard's [`ZeroMode`] combine — shared verbatim by the serial
/// reduction above and the tree reduction in [`weights_tree`], so the two
/// paths can never drift in the combine expressions (only the numerator
/// *association* differs between them).
#[allow(clippy::too_many_arguments)]
fn combine_mode(
    mode: ZeroMode,
    fast_den: bool,
    layout: &FlatLayout,
    uploads: &[(f32, &Upload)],
    views: &[WireView<'_>],
    total_w: f32,
    start: usize,
    num: &[f32],
    den: &[f32],
    g: &mut [f32],
) {
    let len = g.len();
    let inv_w = 1.0f32 / total_w;
    match mode {
        ZeroMode::ZerosPull => {
            // Matrix elements: num·(1/W); biases: num/W — exactly the
            // dense reference's two expressions, applied per maximal
            // matrix/bias section run.
            for_each_section_range(layout, start, len, &mut |lo, hi, is_bias| {
                if is_bias {
                    ops::div_scalar_into(&num[lo..hi], total_w, &mut g[lo..hi]);
                } else {
                    ops::scale_into(&num[lo..hi], inv_w, &mut g[lo..hi]);
                }
            });
        }
        // den = 0 keeps the previous global value.
        ZeroMode::HoldersOnly if fast_den => {
            for_each_row_extent(layout, start, len, &mut |lo, hi, e, r| {
                let d = row_weight(uploads, views, e, r);
                ops::holders_combine_scalar(&num[lo..hi], d, &mut g[lo..hi]);
            });
        }
        ZeroMode::HoldersOnly => ops::holders_combine(num, den, g),
        ZeroMode::StaleFill if fast_den => {
            for_each_row_extent(layout, start, len, &mut |lo, hi, e, r| {
                let d = row_weight(uploads, views, e, r);
                ops::stale_fill_combine_scalar(&num[lo..hi], d, total_w, &mut g[lo..hi]);
            });
        }
        ZeroMode::StaleFill => ops::stale_fill_combine(num, den, total_w, g),
    }
}

/// Hierarchical (tree) reduction for the sync weights path: uploads
/// reduce in fixed groups of `fanin`, and each shard folds the group
/// partials in ascending group order before the shared [`combine_mode`]
/// step. Phase 1 parallelises over (group × shard) — the cohort axis as
/// well as the shard axis — so a large cohort is no longer one serial
/// merge chain per shard.
///
/// Changes the f32 numerator *association* (an explicit opt-in; see
/// `AggSettings::tree_fanin`) but stays deterministic across thread
/// counts: every partial is a pure function of its group's uploads, and
/// the phase-2 fold walks groups in fixed order.
///
/// Memory: O(⌈cohort/fanin⌉ · model) for the partials — between the
/// dense engine's O(cohort · model) and the serial streaming path's
/// O(model); `fanin` trades merge parallelism against partial memory.
pub(super) fn weights_tree(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    total_w: f32,
    shard_elems: usize,
    fanin: usize,
) -> Result<(), AggError> {
    let layout = FlatLayout::of(global);
    let msgs: Vec<PreparedMsg> = uploads.iter().map(|(_, u)| prepare_msg(u)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, (_, u))) in msgs.iter().zip(uploads).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, u.kind)?;
        views.push(v);
    }
    let kmetas: Vec<KeptMeta> = views
        .iter()
        .map(|v| KeptMeta::of(&v.masks, &layout))
        .collect();
    let need_den = mode != ZeroMode::ZerosPull;
    let row_granular = views.iter().all(|v| {
        v.masks
            .iter()
            .all(|m| matches!(m, CoverageMask::Full | CoverageMask::Rows(_)))
    });
    let fast_den = need_den && row_granular;
    let per_client_den = need_den && !fast_den;

    let total = global.total_params();
    let se = shard_elems.max(1);
    let fanin = fanin.max(2);
    let groups: Vec<(usize, usize)> = (0..uploads.len())
        .step_by(fanin)
        .map(|lo| (lo, (lo + fanin).min(uploads.len())))
        .collect();
    let rows = groups.len();

    // Partial buffers: one model-sized row per group (checked out of the
    // arena like every other data-sized buffer, so steady-state rounds
    // with a fixed cohort/fanin allocate nothing).
    let (mut gflat, mut pnum, mut pden, mut pkept) = ARENA.with(|arena| {
        let mut a = arena.borrow_mut();
        (
            a.take(total),
            a.take(rows * total),
            a.take(if per_client_den { rows * total } else { 0 }),
            a.take(rows * total),
        )
    });
    global.copy_flat_range(0, &mut gflat);

    // Phase 1: one task per (group, shard); disjoint `&mut` partial
    // slices, so tasks are order-independent and thread-count cannot
    // affect their contents.
    struct TreeTask<'a> {
        lo: usize,
        hi: usize,
        start: usize,
        pnum: &'a mut [f32],
        pden: &'a mut [f32],
        pkept: &'a mut [f32],
    }
    let mut tasks: Vec<TreeTask> = Vec::with_capacity(rows * total.div_ceil(se));
    {
        let mut pnum_rows = pnum.chunks_mut(total);
        let mut pden_rows = pden.chunks_mut(total);
        let mut pkept_rows = pkept.chunks_mut(total);
        for &(lo, hi) in &groups {
            let nrow = pnum_rows.next().expect("partial row");
            let drow = pden_rows.next().unwrap_or_default();
            let krow = pkept_rows.next().expect("scratch row");
            let mut nchunks = nrow.chunks_mut(se);
            let mut dchunks = drow.chunks_mut(se);
            let mut kchunks = krow.chunks_mut(se);
            let mut start = 0usize;
            while start < total {
                tasks.push(TreeTask {
                    lo,
                    hi,
                    start,
                    pnum: nchunks.next().expect("chunk"),
                    pden: dchunks.next().unwrap_or_default(),
                    pkept: kchunks.next().expect("chunk"),
                });
                start += se;
            }
        }
    }
    counter!("agg.tree_partials", tasks.len());
    tasks.par_iter_mut().for_each(|t| {
        let _span = span!("agg.tree_partial", group = t.lo, shard = t.start / se);
        let len = t.pnum.len();
        // `Workspace::take` hands out zero-filled buffers, but rows may
        // be recycled within one process lifetime — clear explicitly.
        t.pnum.fill(0.0);
        t.pden.fill(0.0);
        for i in t.lo..t.hi {
            let (w, _) = uploads[i];
            accumulate_weights_shard(
                &views[i],
                &kmetas[i],
                &layout,
                t.start,
                len,
                w,
                &gflat[t.start..t.start + len],
                t.pnum,
                per_client_den.then_some(&mut *t.pden),
                t.pkept,
            );
        }
    });
    drop(tasks);

    // Phase 2: per shard, fold the group partials in ascending group
    // order, then apply the shared ZeroMode combine.
    let needs = Needs {
        num: true,
        den: per_client_den,
        vals: false,
        kept: false,
        snap: false,
    };
    let pnum_ref = &pnum;
    let pden_ref = &pden;
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        t.num.fill(0.0);
        t.den.fill(0.0);
        for ci in 0..rows {
            let off = ci * total + t.start;
            ops::axpy(1.0, &pnum_ref[off..off + len], t.num);
            if per_client_den {
                ops::axpy(1.0, &pden_ref[off..off + len], t.den);
            }
        }
        combine_mode(
            mode, fast_den, &layout, uploads, &views, total_w, t.start, t.num, t.den, t.g,
        );
    });

    ARENA.with(|arena| {
        let mut a = arena.borrow_mut();
        a.give(gflat);
        a.give(pnum);
        a.give(pden);
        a.give(pkept);
    });
    Ok(())
}

/// Call `f(lo, hi, is_bias)` for every maximal matrix/bias section run of
/// the flat range (`lo..hi` are range-local offsets).
fn for_each_section_range(
    layout: &FlatLayout,
    start: usize,
    len: usize,
    f: &mut impl FnMut(usize, usize, bool),
) {
    if len == 0 {
        return;
    }
    let end = start + len;
    for span in layout.spans.iter().skip(layout.entry_of(start)) {
        if span.mat_start >= end {
            break;
        }
        let m0 = span.mat_start.max(start);
        let m1 = span.bias_start.min(end);
        if m0 < m1 {
            f(m0 - start, m1 - start, false);
        }
        let b0 = span.bias_start.max(start);
        let b1 = span.end().min(end);
        if b0 < b1 {
            f(b0 - start, b1 - start, true);
        }
    }
}

pub(super) fn deltas(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    total_w: f32,
    shard_elems: usize,
) -> Result<(), AggError> {
    let msgs: Vec<PreparedMsg> = uploads.iter().map(|(_, u)| prepare_msg(u)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, (_, u))) in msgs.iter().zip(uploads).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, u.kind)?;
        views.push(v);
    }
    let needs = Needs {
        num: false,
        den: false,
        vals: true,
        kept: false,
        snap: false,
    };
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        for ((w, _), view) in uploads.iter().zip(&views) {
            // Same per-upload coefficient the dense reference feeds axpy.
            let a = *w / total_w;
            if let Some(bytes) = view.payload.dense_values() {
                // Dense payload: fused decode + accumulate straight from
                // the wire bytes, no intermediate buffer.
                ops::axpy_from_le_bytes(a, &bytes[4 * t.start..4 * (t.start + len)], t.g);
            } else {
                view.payload.decode_range(t.start, &mut t.vals[..len]);
                ops::axpy(a, &t.vals[..len], t.g);
            }
        }
    });
    Ok(())
}

pub(super) fn staleness(
    global: &mut ParamSet,
    items: &[StalenessUpload<'_>],
    server_lr: f64,
    total_w: f64,
    shard_elems: usize,
) -> Result<(), AggError> {
    let layout = FlatLayout::of(global);
    let msgs: Vec<PreparedMsg> = items.iter().map(|it| prepare_msg(it.upload)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, it)) in msgs.iter().zip(items).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, it.upload.kind)?;
        views.push(v);
    }
    let kmetas: Vec<KeptMeta> = views
        .iter()
        .map(|v| KeptMeta::of(&v.masks, &layout))
        .collect();

    let needs = Needs {
        num: false,
        den: false,
        vals: true,
        kept: true,
        snap: true,
    };
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        for ((it, view), kmeta) in items.iter().zip(&views).zip(&kmetas) {
            let c = (server_lr * it.weight / total_w) as f32;
            match view.kind {
                BodyKind::DeltaFull => {
                    if let Some(bytes) = view.payload.dense_values() {
                        // Fused decode + accumulate from the wire bytes.
                        ops::axpy_from_le_bytes(c, &bytes[4 * t.start..4 * (t.start + len)], t.g);
                        continue;
                    }
                    view.payload.decode_range(t.start, &mut t.vals[..len]);
                }
                BodyKind::WeightsAbsolute | BodyKind::WeightsDelta => {
                    // Masked weights: Δ = (β∘U) − snapshot on covered
                    // positions, exact zero elsewhere — the dense path's
                    // `delta.axpy(-1, snapshot); coverage.apply(delta)`.
                    let snapshot = it.snapshot.expect("validated in mod.rs");
                    snapshot.copy_flat_range(t.start, &mut t.snap[..len]);
                    decode_weights_delta_shard(
                        view, kmeta, &layout, t.start, len, t.snap, t.snap, t.vals, t.kept,
                    );
                }
            }
            ops::axpy(c, &t.vals[..len], t.g);
        }
    });
    Ok(())
}

// ---- the robust engines ------------------------------------------------
//
// Order-statistic estimators cannot stream as a fold: each shard decodes
// every client's column material into an (n × shard) block from the
// worker thread's arena, then walks coordinates through the shared
// per-coordinate estimator in `super::robust` — the same function the
// dense engine calls on the same column bits, which is the bit-exactness
// argument. Peak memory is O(cohort × shard) per worker, not
// O(cohort × model).

/// Robust weights combine, streaming engine.
pub(super) fn robust_weights(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    est: robust::Estimator,
    total_w: f32,
    shard_elems: usize,
) -> Result<(), AggError> {
    let layout = FlatLayout::of(global);
    let msgs: Vec<PreparedMsg> = uploads.iter().map(|(_, u)| prepare_msg(u)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, (_, u))) in msgs.iter().zip(uploads).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, u.kind)?;
        views.push(v);
    }
    let kmetas: Vec<KeptMeta> = views
        .iter()
        .map(|v| KeptMeta::of(&v.masks, &layout))
        .collect();
    let n = uploads.len();
    let ws: Vec<f32> = uploads.iter().map(|(w, _)| *w).collect();
    let needs = Needs {
        num: false,
        den: false,
        vals: false,
        kept: false,
        snap: false,
    };
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        // Column blocks come from the *worker thread's* arena — the
        // round-loop thread's borrow was released before the parallel
        // region, and each worker owns its own thread-local workspace.
        let (mut vals, mut cov, mut kept) = ARENA.with(|arena| {
            let mut a = arena.borrow_mut();
            (a.take(n * len), a.take(n * len), a.take(len))
        });
        for i in 0..n {
            let (row, crow) = (
                &mut vals[i * len..(i + 1) * len],
                &mut cov[i * len..(i + 1) * len],
            );
            decode_masked_shard(
                &views[i], &kmetas[i], &layout, t.start, len, t.g, row, crow, &mut kept,
            );
        }
        let mut scratch: Vec<(f32, f32)> = Vec::with_capacity(n + 1);
        for j in 0..len {
            t.g[j] = robust::weights_coord(
                &mut scratch,
                (0..n).map(|i| (vals[i * len + j], cov[i * len + j] != 0.0, ws[i])),
                est,
                mode,
                total_w,
                t.g[j],
            );
        }
        ARENA.with(|arena| {
            let mut a = arena.borrow_mut();
            a.give(vals);
            a.give(cov);
            a.give(kept);
        });
    });
    Ok(())
}

/// Robust deltas combine, streaming engine.
pub(super) fn robust_deltas(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    est: robust::Estimator,
    shard_elems: usize,
) -> Result<(), AggError> {
    let msgs: Vec<PreparedMsg> = uploads.iter().map(|(_, u)| prepare_msg(u)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, (_, u))) in msgs.iter().zip(uploads).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, u.kind)?;
        views.push(v);
    }
    let n = uploads.len();
    let ws: Vec<f32> = uploads.iter().map(|(w, _)| *w).collect();
    let needs = Needs {
        num: false,
        den: false,
        vals: false,
        kept: false,
        snap: false,
    };
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        let mut vals = ARENA.with(|a| a.borrow_mut().take(n * len));
        for (i, view) in views.iter().enumerate() {
            view.payload
                .decode_range(t.start, &mut vals[i * len..i * len + len]);
        }
        let mut scratch: Vec<(f32, f32)> = Vec::with_capacity(n);
        for j in 0..len {
            t.g[j] += robust::delta_move_coord(
                &mut scratch,
                (0..n).map(|i| (vals[i * len + j], ws[i])),
                est,
            );
        }
        ARENA.with(|a| a.borrow_mut().give(vals));
    });
    Ok(())
}

/// Robust FedBuff merge, streaming engine: per shard, every buffered Δ
/// column decodes through the exact mean-path expressions
/// ([`decode_weights_delta_shard`]), then coordinates walk the shared
/// estimator.
pub(super) fn robust_staleness(
    global: &mut ParamSet,
    items: &[StalenessUpload<'_>],
    server_lr: f64,
    est: robust::Estimator,
    shard_elems: usize,
) -> Result<(), AggError> {
    let layout = FlatLayout::of(global);
    let msgs: Vec<PreparedMsg> = items.iter().map(|it| prepare_msg(it.upload)).collect();
    let mut views = Vec::with_capacity(msgs.len());
    for (i, (m, it)) in msgs.iter().zip(items).enumerate() {
        let _client_span = span!("agg.client", client = i);
        counter!("agg.decode_bytes", m.get().as_bytes().len());
        let v = m.get().view(global)?;
        check_kind(&v, it.upload.kind)?;
        views.push(v);
    }
    let kmetas: Vec<KeptMeta> = views
        .iter()
        .map(|v| KeptMeta::of(&v.masks, &layout))
        .collect();
    let n = items.len();
    let ws: Vec<f64> = items.iter().map(|it| it.weight).collect();
    let needs = Needs {
        num: false,
        den: false,
        vals: false,
        kept: true,
        snap: true,
    };
    with_shards(global, shard_elems, needs, |t| {
        let len = t.g.len();
        let mut vals = ARENA.with(|a| a.borrow_mut().take(n * len));
        for (i, (it, view)) in items.iter().zip(&views).enumerate() {
            let row = &mut vals[i * len..i * len + len];
            match view.kind {
                BodyKind::DeltaFull => view.payload.decode_range(t.start, row),
                BodyKind::WeightsAbsolute | BodyKind::WeightsDelta => {
                    let snapshot = it.snapshot.expect("validated in mod.rs");
                    snapshot.copy_flat_range(t.start, &mut t.snap[..len]);
                    decode_weights_delta_shard(
                        view, &kmetas[i], &layout, t.start, len, t.snap, t.snap, row, t.kept,
                    );
                }
            }
        }
        let mut scratch: Vec<(f32, f64)> = Vec::with_capacity(n);
        for j in 0..len {
            t.g[j] += robust::staleness_move_coord(
                &mut scratch,
                (0..n).map(|i| (vals[i * len + j], ws[i])),
                est,
                server_lr,
            );
        }
        ARENA.with(|a| a.borrow_mut().give(vals));
    });
    Ok(())
}
