//! Server-side aggregation.
//!
//! Two engines implement the same mathematics and are **bit-identical**
//! (`tests/aggregation_equivalence.rs`):
//!
//! * `dense` — the retained reference path: every upload's dense
//!   `ParamSet` is reduced entry by entry on one thread. Memory is
//!   O(clients × model).
//! * `streaming` — the sharded streaming path: the flat parameter
//!   space is split into fixed-size shards; each client's contribution is
//!   decoded from its wire bytes shard by shard, straight into per-shard
//!   accumulators (fused decode + reduce). Shards run in parallel under
//!   the deterministic rayon shim with a fixed in-order client reduction
//!   per shard, and all data-sized scratch comes from a thread-local
//!   workspace arena, so steady-state aggregation allocates nothing
//!   ([`arena_churn`]). Server memory is O(model), independent of the
//!   cohort size.
//!
//! Which engine runs is a pure execution knob ([`AggSettings`], the
//! scenario `[aggregation]` table): it can never change results, which is
//! why it does not feed the scenario seed hash.
//!
//! ## Zero-handling semantics
//!
//! Two weight-aggregation semantics are provided (DESIGN.md §4.2):
//!
//! * [`ZeroMode::ZerosPull`] — the literal eq. (10): every selected client
//!   contributes its *reconstructed* β∘U (dropped rows as zeros) and the
//!   denominator is Σ|D_k| over all selected clients. A row dropped by
//!   many clients is pulled toward zero — spike-and-slab shrinkage.
//! * [`ZeroMode::HoldersOnly`] — each element is averaged only over the
//!   clients that actually trained it; elements nobody held keep their
//!   previous global value. This is the classic federated-dropout
//!   aggregation (Caldas et al., FjORD, HeteroFL) and is used by the
//!   baselines.
//! * [`ZeroMode::StaleFill`] — non-covering clients vote "no change" with
//!   the broadcast global value. FedBIAD's default.
//!
//! Delta uploads (sketched compression) are applied as
//! `global += Σ w_k Δ_k / Σ w_k`.
//!
//! ## Weight validation
//!
//! Aggregation weights (|D_k|, staleness weights) are validated at the
//! upload boundary: every weight must be finite and positive, otherwise a
//! structured [`AggError`] is returned. A NaN weight used to slip through
//! the old `assert!(total > 0.0)` guard only as a late panic on the
//! *total*; a negative weight cancelled against positive ones passed
//! silently. Mirroring the PR 4 `clip_norm` NaN fix, the boundary check
//! now names the offending upload.

mod dense;
mod robust;
mod streaming;

pub use streaming::arena_churn;

use crate::upload::{Upload, UploadBody, UploadKind};
use fedbiad_compress::codec::WireError;
use fedbiad_nn::ParamSet;
use serde::{Deserialize, Serialize};

/// How dropped (non-covered) parameters participate in weight averaging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroMode {
    /// Literal eq. (10): dropped rows are averaged as zeros. Under partial
    /// participation this shrinks every row by the expected drop fraction
    /// each round and the model collapses — kept as an ablation
    /// (DESIGN.md §4.2); the paper's own convergence curves (Fig. 6)
    /// cannot arise under this reading.
    ZerosPull,
    /// Average over holders; keep the previous global value where no
    /// client held the parameter (classic federated-dropout aggregation).
    HoldersOnly,
    /// The operational reading of step 4 / eq. (10): the server
    /// "reconstructs complete variational parameters" by filling each
    /// client's dropped rows from the global model it broadcast, then
    /// averages. Dropped rows effectively vote "no change". FedBIAD's
    /// default.
    StaleFill,
}

/// Robust-estimator family of the per-coordinate combine (ROADMAP
/// item 4). Unlike the engine knobs in [`AggSettings`], the estimator
/// **changes results**, so the scenario spec feeds it into the seed hash.
/// See `aggregate::robust` for the exact semantics of each estimator and
/// how dense ≡ streaming is maintained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum RobustKind {
    /// The weighted mean — the exact historical maths, bit for bit.
    #[default]
    Mean,
    /// Per coordinate, drop the `⌊trim_frac·cohort⌋` smallest and largest
    /// participants, then the weighted mean of the survivors. A resolved
    /// trim depth of zero (`trim_frac = 0`, or a cohort too small to
    /// trim) *is* the weighted mean and routes to it verbatim —
    /// `trim_frac = 0` reproduces the mean results bitwise. Valid range
    /// `[0, 0.5)`.
    TrimmedMean {
        /// Fraction of the cohort trimmed from *each* tail.
        trim_frac: f32,
    },
    /// Weighted lower coordinate-wise median.
    CoordinateMedian,
    /// L2-clip each upload's delta against the reference point to `tau`,
    /// then the ordinary weighted mean. Uploads inside the ball pass
    /// through bitwise untouched.
    NormClip {
        /// The clipping radius (must be finite and positive).
        tau: f32,
    },
}

/// Aggregation-engine selection, broadcast to clients and server through
/// `RoundInfo` so both sides of the wire always agree. The `streaming`/
/// `shard_kb` knobs are pure execution choices; `robust` selects the
/// estimator and changes results.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggSettings {
    /// Run the sharded streaming engine (clients encode real wire bytes,
    /// the server decodes shard by shard). `false` = the dense reference.
    pub streaming: bool,
    /// Shard size in KiB of f32 parameters (≥ 1). Ignored by the dense
    /// engine.
    pub shard_kb: u32,
    /// Hierarchical (tree) reduction fan-in for the streaming weights
    /// path: uploads reduce in groups of `tree_fanin` whose partial sums
    /// combine in fixed group order, so the per-shard client merge is no
    /// longer one serial chain over the whole cohort. `0` (default)
    /// disables the tree. **Changes f32 association**, so unlike the
    /// engine knobs above this is *not* bit-identical to the serial
    /// reduction — an explicit opt-in for large cohorts, fed into the
    /// scenario seed hash when set. Requires `streaming = true`; applies
    /// to the sync weights path (delta/staleness merges keep the serial
    /// order). Still deterministic across thread counts.
    pub tree_fanin: u32,
    /// The robust-estimator family ([`RobustKind::Mean`] = historical
    /// behaviour). Works under both engines; *changes results* when not
    /// `Mean`, so it feeds the scenario seed hash.
    pub robust: RobustKind,
}

impl Default for AggSettings {
    fn default() -> Self {
        Self {
            streaming: false,
            shard_kb: 64,
            tree_fanin: 0,
            robust: RobustKind::Mean,
        }
    }
}

impl AggSettings {
    /// The streaming engine at `shard_kb` KiB shards.
    pub fn sharded(shard_kb: u32) -> Self {
        Self {
            streaming: true,
            shard_kb,
            ..Self::default()
        }
    }

    /// The streaming engine with hierarchical reduction at `fanin`.
    pub fn sharded_tree(shard_kb: u32, fanin: u32) -> Self {
        Self {
            streaming: true,
            shard_kb,
            tree_fanin: fanin,
            ..Self::default()
        }
    }

    /// These settings with the robust estimator replaced.
    pub fn with_robust(self, robust: RobustKind) -> Self {
        Self { robust, ..self }
    }

    /// Shard size in f32 elements (at least 1).
    pub fn shard_elems(&self) -> usize {
        (self.shard_kb as usize * 1024 / 4).max(1)
    }
}

/// Largest accepted shard size override, in KiB (1 GiB — the same upper
/// bound the scenario spec enforces on its `[aggregation] shard_kb` key).
pub const MAX_SHARD_KB: u32 = 1024 * 1024;

/// Structured failure of a shard-size override (the `FEDBIAD_SHARD_KB`
/// environment knob): the boundary-validation standard applied to
/// aggregation weights extends to execution knobs — a bad value must
/// surface as an error, never silently fall back to the default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardKbError {
    /// The value is not a base-10 unsigned integer.
    Unparsable(String),
    /// The value parsed but is outside `1..=`[`MAX_SHARD_KB`].
    OutOfRange(u64),
}

impl std::fmt::Display for ShardKbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardKbError::Unparsable(v) => {
                write!(f, "shard size override {v:?} is not an unsigned integer")
            }
            ShardKbError::OutOfRange(kb) => write!(
                f,
                "shard size override {kb} KiB is outside 1..={MAX_SHARD_KB}"
            ),
        }
    }
}

impl std::error::Error for ShardKbError {}

/// Validate a shard-size string: a base-10 KiB count in
/// `1..=`[`MAX_SHARD_KB`]. Zero is rejected (a zero shard would degrade
/// to per-element dispatch through `shard_elems`'s clamp and silently
/// benchmark something else entirely).
pub fn parse_shard_kb(v: &str) -> Result<u32, ShardKbError> {
    let t = v.trim();
    let kb: u64 = t
        .parse()
        .map_err(|_| ShardKbError::Unparsable(t.to_string()))?;
    if !(1..=MAX_SHARD_KB as u64).contains(&kb) {
        return Err(ShardKbError::OutOfRange(kb));
    }
    Ok(kb as u32)
}

/// Read and validate the `FEDBIAD_SHARD_KB` override (set by the CI
/// tiny-shards leg and perf experiments). `Ok(None)` when unset; set but
/// invalid is a [`ShardKbError`], not a silent default.
pub fn env_shard_kb() -> Result<Option<u32>, ShardKbError> {
    match std::env::var("FEDBIAD_SHARD_KB") {
        Err(_) => Ok(None),
        Ok(v) => parse_shard_kb(&v).map(Some),
    }
}

/// A structured aggregation failure. `Display` is the full message.
#[derive(Clone, Debug, PartialEq)]
pub enum AggError {
    /// No uploads were provided.
    NoUploads,
    /// Upload `index` is not of the kind this aggregation consumes.
    KindMismatch {
        /// Position in the upload list.
        index: usize,
        /// The kind the aggregation needs.
        expected: UploadKind,
    },
    /// Upload `index` carries a non-finite or non-positive aggregation
    /// weight.
    InvalidWeight {
        /// Position in the upload list.
        index: usize,
        /// The offending weight.
        value: f64,
    },
    /// The weight total vanished (cannot happen once every individual
    /// weight is validated, kept as a defence in depth).
    ZeroTotalWeight,
    /// The dense reference engine received an encoded upload; dense
    /// aggregation needs dense bodies.
    DenseBodyRequired {
        /// Position in the upload list.
        index: usize,
    },
    /// Upload `index` carries a non-finite payload *value* (NaN/Inf
    /// inside a structurally-valid frame). The PR 5 boundary check only
    /// covered aggregation weights; this extends it to the value stream —
    /// see [`screen_upload_values`].
    NonFiniteValue {
        /// Position in the upload list.
        index: usize,
    },
    /// An encoded upload failed structural validation.
    Wire(WireError),
    /// A buffered-async weights merge is missing the dispatched-global
    /// snapshot its delta is defined against.
    MissingSnapshot {
        /// Position in the upload list.
        index: usize,
    },
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::NoUploads => write!(f, "no uploads to aggregate"),
            AggError::KindMismatch { index, expected } => match expected {
                UploadKind::Weights => {
                    write!(
                        f,
                        "aggregate_weights needs Weights uploads (upload {index})"
                    )
                }
                UploadKind::Delta => {
                    write!(f, "aggregate_deltas needs Delta uploads (upload {index})")
                }
            },
            AggError::InvalidWeight { index, value } => write!(
                f,
                "aggregation weight of upload {index} must be finite and positive, got {value}"
            ),
            AggError::ZeroTotalWeight => write!(f, "total aggregation weight must be positive"),
            AggError::DenseBodyRequired { index } => write!(
                f,
                "dense aggregation engine received an encoded (wire) upload at {index}"
            ),
            AggError::NonFiniteValue { index } => write!(
                f,
                "payload of upload {index} carries a non-finite value (NaN/Inf)"
            ),
            AggError::Wire(e) => write!(f, "wire decode failed: {e}"),
            AggError::MissingSnapshot { index } => write!(
                f,
                "buffered weights merge needs a dispatched-global snapshot (upload {index})"
            ),
        }
    }
}

impl std::error::Error for AggError {}

impl From<WireError> for AggError {
    fn from(e: WireError) -> Self {
        AggError::Wire(e)
    }
}

/// Validate kinds and weights, returning Σw (the eq. (10) denominator).
fn validate(uploads: &[(f32, &Upload)], expected: UploadKind) -> Result<f32, AggError> {
    if uploads.is_empty() {
        return Err(AggError::NoUploads);
    }
    for (i, (w, u)) in uploads.iter().enumerate() {
        if u.kind != expected {
            return Err(AggError::KindMismatch { index: i, expected });
        }
        if !(w.is_finite() && *w > 0.0) {
            return Err(AggError::InvalidWeight {
                index: i,
                value: *w as f64,
            });
        }
    }
    let total: f32 = uploads.iter().map(|(w, _)| *w).sum();
    if !total.is_finite() || total <= 0.0 {
        return Err(AggError::ZeroTotalWeight);
    }
    Ok(total)
}

/// The order-statistic estimator actually run for a cohort of `n`
/// uploads. `TrimmedMean` resolves its per-coordinate trim depth
/// `k = ⌊trim_frac·n⌋` here, and a depth of zero *is* the weighted
/// mean — such calls route to the mean engines verbatim, which is what
/// pins `trim_frac = 0` (and cohorts too small to trim) bitwise to the
/// historical results. `NormClip` is a pre-pass, not an estimator, and
/// also returns `None`.
fn resolve_robust(robust: RobustKind, n: usize) -> Option<robust::Estimator> {
    match robust {
        RobustKind::Mean | RobustKind::NormClip { .. } => None,
        RobustKind::TrimmedMean { trim_frac } => {
            let k = (trim_frac as f64 * n as f64).floor() as usize;
            (k > 0).then_some(robust::Estimator::Trim { k })
        }
        RobustKind::CoordinateMedian => Some(robust::Estimator::Median),
    }
}

/// Aggregate `Weights` uploads into `global`. `weights[k]` is |D_k|.
pub fn aggregate_weights(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    settings: AggSettings,
) -> Result<(), AggError> {
    let total_w = validate(uploads, UploadKind::Weights)?;
    if let RobustKind::NormClip { tau } = settings.robust {
        let clipped = robust::clip_weights_uploads(global, uploads, tau)?;
        let patched: Vec<(f32, &Upload)> = uploads
            .iter()
            .zip(&clipped)
            .map(|((w, u), t)| (*w, t.as_ref().unwrap_or(u)))
            .collect();
        return weights_mean(global, &patched, mode, settings, total_w);
    }
    match resolve_robust(settings.robust, uploads.len()) {
        None => weights_mean(global, uploads, mode, settings, total_w),
        Some(est) => {
            if settings.streaming {
                streaming::robust_weights(
                    global,
                    uploads,
                    mode,
                    est,
                    total_w,
                    settings.shard_elems(),
                )
            } else {
                dense::robust_weights(global, uploads, mode, est, total_w)
            }
        }
    }
}

/// The historical weighted-mean weights dispatch (dense reference /
/// serial streaming / tree streaming), shared by the `Mean` path, the
/// `trim_frac = 0` route, and the post-clip `NormClip` merge.
fn weights_mean(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    settings: AggSettings,
    total_w: f32,
) -> Result<(), AggError> {
    if settings.streaming {
        let fanin = settings.tree_fanin as usize;
        if fanin >= 2 && uploads.len() > fanin {
            streaming::weights_tree(
                global,
                uploads,
                mode,
                total_w,
                settings.shard_elems(),
                fanin,
            )
        } else {
            streaming::weights(global, uploads, mode, total_w, settings.shard_elems())
        }
    } else {
        dense::weights(global, uploads, mode, total_w)
    }
}

/// Apply `Delta` uploads: `global += Σ w_k Δ_k / Σ w_k` (or the robust
/// location estimate of the deltas under a robust estimator).
pub fn aggregate_deltas(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    settings: AggSettings,
) -> Result<(), AggError> {
    let total_w = validate(uploads, UploadKind::Delta)?;
    if let RobustKind::NormClip { tau } = settings.robust {
        let clipped = robust::clip_delta_uploads(global, uploads, tau)?;
        let patched: Vec<(f32, &Upload)> = uploads
            .iter()
            .zip(&clipped)
            .map(|((w, u), t)| (*w, t.as_ref().unwrap_or(u)))
            .collect();
        return deltas_mean(global, &patched, settings, total_w);
    }
    match resolve_robust(settings.robust, uploads.len()) {
        None => deltas_mean(global, uploads, settings, total_w),
        Some(est) => {
            if settings.streaming {
                streaming::robust_deltas(global, uploads, est, settings.shard_elems())
            } else {
                dense::robust_deltas(global, uploads, est)
            }
        }
    }
}

fn deltas_mean(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    settings: AggSettings,
    total_w: f32,
) -> Result<(), AggError> {
    if settings.streaming {
        streaming::deltas(global, uploads, total_w, settings.shard_elems())
    } else {
        dense::deltas(global, uploads, total_w)
    }
}

/// One buffered upload of a FedBuff-style staleness-weighted merge.
pub struct StalenessUpload<'a> {
    /// Pre-computed staleness weight `wᵢ = |Dᵢ|/(1+τᵢ)^α`.
    pub weight: f64,
    /// The buffered upload.
    pub upload: &'a Upload,
    /// The global the client was dispatched with (required for `Weights`
    /// uploads, whose delta is defined against it).
    pub snapshot: Option<&'a ParamSet>,
}

/// FedBuff merge: `global += η_g · Σ wᵢΔᵢ / Σ wᵢ`, where a `Weights`
/// upload's Δ is its payload minus the dispatched snapshot on covered
/// positions (zero elsewhere) and a `Delta` upload's Δ is the payload
/// itself. This is the simulator's buffered-async policy merge path,
/// shared here so the dense and streaming engines can never diverge from
/// each other.
pub fn merge_staleness_weighted(
    global: &mut ParamSet,
    items: &[StalenessUpload<'_>],
    server_lr: f64,
    settings: AggSettings,
) -> Result<(), AggError> {
    if items.is_empty() {
        return Err(AggError::NoUploads);
    }
    for (i, it) in items.iter().enumerate() {
        if !(it.weight.is_finite() && it.weight > 0.0) {
            return Err(AggError::InvalidWeight {
                index: i,
                value: it.weight,
            });
        }
        if it.upload.kind == UploadKind::Weights && it.snapshot.is_none() {
            return Err(AggError::MissingSnapshot { index: i });
        }
    }
    let total_w: f64 = items.iter().map(|it| it.weight).sum();
    if !total_w.is_finite() || total_w <= 0.0 {
        return Err(AggError::ZeroTotalWeight);
    }
    if let RobustKind::NormClip { tau } = settings.robust {
        let clipped = robust::clip_staleness_uploads(global, items, tau)?;
        let patched: Vec<StalenessUpload> = items
            .iter()
            .zip(&clipped)
            .map(|(it, t)| StalenessUpload {
                weight: it.weight,
                upload: t.as_ref().unwrap_or(it.upload),
                snapshot: it.snapshot,
            })
            .collect();
        return staleness_mean(global, &patched, server_lr, settings, total_w);
    }
    match resolve_robust(settings.robust, items.len()) {
        None => staleness_mean(global, items, server_lr, settings, total_w),
        Some(est) => {
            if settings.streaming {
                streaming::robust_staleness(global, items, server_lr, est, settings.shard_elems())
            } else {
                dense::robust_staleness(global, items, server_lr, est)
            }
        }
    }
}

fn staleness_mean(
    global: &mut ParamSet,
    items: &[StalenessUpload<'_>],
    server_lr: f64,
    settings: AggSettings,
    total_w: f64,
) -> Result<(), AggError> {
    if settings.streaming {
        streaming::staleness(global, items, server_lr, total_w, settings.shard_elems())
    } else {
        dense::staleness(global, items, server_lr, total_w)
    }
}

/// Dense twin of an upload: dense bodies are cloned, wire bodies decoded
/// against `base` (the current global for sync rounds, the dispatched
/// snapshot for buffered `WeightsDelta` bodies) with exact zeros on
/// dropped positions — the same reconstruction the equivalence tests
/// build. Used by the adversary corruption hook and by tests.
pub fn decode_dense(base: &ParamSet, u: &Upload) -> Result<ParamSet, AggError> {
    match &u.body {
        UploadBody::Dense(p) => Ok(p.clone()),
        UploadBody::Wire(_) => {
            let base_flat = base.flatten();
            let flat = streaming::decode_dense_flat(base, &base_flat, u)?;
            let mut ps = base.clone();
            ps.unflatten_from(&flat);
            Ok(ps)
        }
    }
}

/// `true` iff the upload's decoded value stream contains a non-finite
/// value. Dense bodies scan their parameters; wire bodies decode the
/// payload stream in fixed-size chunks without materialising the model —
/// quantised/sign payloads surface a poisoned `mu`/`scale` as non-finite
/// decoded values, so one check covers every payload kind.
pub fn upload_has_non_finite(base: &ParamSet, u: &Upload) -> Result<bool, AggError> {
    match &u.body {
        UploadBody::Dense(p) => Ok((0..p.num_entries()).any(|e| {
            p.mat(e)
                .as_slice()
                .iter()
                .chain(p.bias(e).iter())
                .any(|v| !v.is_finite())
        })),
        UploadBody::Wire(_) => streaming::wire_has_non_finite(base, u),
    }
}

/// Boundary screen extending the PR 5 weight validation to payload
/// *values*: a structurally-valid frame whose dense-f32/sparse-f32 values
/// (or sign `mu` / quantiser `scale`) decode to NaN/Inf used to sail
/// through both engines and silently poison the model. The first
/// offending upload is named in a structured
/// [`AggError::NonFiniteValue`]; the round layer calls this per upload
/// and *drops* offenders instead of failing the round.
pub fn screen_upload_values(base: &ParamSet, uploads: &[(f32, &Upload)]) -> Result<(), AggError> {
    for (i, (_, u)) in uploads.iter().enumerate() {
        if upload_has_non_finite(base, u)? {
            return Err(AggError::NonFiniteValue { index: i });
        }
    }
    Ok(())
}

/// Dense body of an upload, or the structured error the dense engine
/// reports for encoded bodies.
fn dense_params(u: &Upload, index: usize) -> Result<&ParamSet, AggError> {
    match &u.body {
        UploadBody::Dense(p) => Ok(p),
        UploadBody::Wire(_) => Err(AggError::DenseBodyRequired { index }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mask::{BitVec, ModelMask};
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::Matrix;

    fn param(v: f32) -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(2, 2, v),
            Some(vec![v; 2]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        p
    }

    fn masked_upload(v: f32, kept: [bool; 2]) -> Upload {
        let p = param(v);
        let mut beta = BitVec::new(2, true);
        for (r, &k) in kept.iter().enumerate() {
            beta.set(r, k);
        }
        Upload::masked_weights(p.clone(), ModelMask::from_row_pattern(&p, &beta))
    }

    fn delta_upload(d: ParamSet) -> Upload {
        Upload {
            kind: UploadKind::Delta,
            coverage: ModelMask::full(&d),
            wire_bytes: 0,
            body: UploadBody::Dense(d),
        }
    }

    const DENSE: AggSettings = AggSettings {
        streaming: false,
        shard_kb: 64,
        tree_fanin: 0,
        robust: RobustKind::Mean,
    };

    #[test]
    fn zeros_pull_matches_eq10() {
        // Client A (|D|=1) keeps both rows with value 4; client B (|D|=3)
        // drops row 1 with value 8 on row 0.
        let a = masked_upload(4.0, [true, true]);
        let b = masked_upload(8.0, [true, false]);
        let mut g = param(0.0);
        aggregate_weights(&mut g, &[(1.0, &a), (3.0, &b)], ZeroMode::ZerosPull, DENSE).unwrap();
        // Row 0: (1·4 + 3·8)/4 = 7; row 1: (1·4 + 3·0)/4 = 1.
        assert_eq!(g.mat(0).row(0), &[7.0, 7.0]);
        assert_eq!(g.mat(0).row(1), &[1.0, 1.0]);
        assert_eq!(g.bias(0), &[7.0, 1.0]);
    }

    #[test]
    fn holders_only_ignores_droppers_and_keeps_uncovered() {
        let a = masked_upload(4.0, [false, true]);
        let b = masked_upload(8.0, [false, true]);
        let mut g = param(-1.0);
        aggregate_weights(
            &mut g,
            &[(1.0, &a), (1.0, &b)],
            ZeroMode::HoldersOnly,
            DENSE,
        )
        .unwrap();
        // Row 0: nobody held it ⇒ previous global value −1 preserved.
        assert_eq!(g.mat(0).row(0), &[-1.0, -1.0]);
        // Row 1: mean of holders = 6.
        assert_eq!(g.mat(0).row(1), &[6.0, 6.0]);
        assert_eq!(g.bias(0), &[-1.0, 6.0]);
    }

    #[test]
    fn stale_fill_blends_holders_with_previous_global() {
        // Client A (|D|=1) keeps both rows at 4; client B (|D|=3) keeps
        // only row 0 at 8. Previous global is 2 everywhere.
        let a = masked_upload(4.0, [true, true]);
        let b = masked_upload(8.0, [true, false]);
        let mut g = param(2.0);
        aggregate_weights(&mut g, &[(1.0, &a), (3.0, &b)], ZeroMode::StaleFill, DENSE).unwrap();
        // Row 0: all cover → (1·4 + 3·8)/4 = 7.
        assert_eq!(g.mat(0).row(0), &[7.0, 7.0]);
        // Row 1: B votes "no change" with the old value 2:
        // (1·4 + 3·2)/4 = 2.5.
        assert_eq!(g.mat(0).row(1), &[2.5, 2.5]);
        assert_eq!(g.bias(0), &[7.0, 2.5]);
    }

    #[test]
    fn stale_fill_never_shrinks_unheld_rows() {
        // The failure mode of the literal eq. (10): a row dropped by every
        // selected client must stay put under StaleFill.
        let a = masked_upload(4.0, [false, true]);
        let mut g = param(5.0);
        aggregate_weights(&mut g, &[(2.0, &a)], ZeroMode::StaleFill, DENSE).unwrap();
        assert_eq!(g.mat(0).row(0), &[5.0, 5.0]);
        assert_eq!(g.mat(0).row(1), &[4.0, 4.0]);
        // …whereas zeros-pull collapses it.
        let mut g2 = param(5.0);
        aggregate_weights(&mut g2, &[(2.0, &a)], ZeroMode::ZerosPull, DENSE).unwrap();
        assert_eq!(g2.mat(0).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn full_coverage_both_modes_agree_with_weighted_mean() {
        let a = Upload::full_weights(param(2.0));
        let b = Upload::full_weights(param(6.0));
        for mode in [
            ZeroMode::ZerosPull,
            ZeroMode::HoldersOnly,
            ZeroMode::StaleFill,
        ] {
            let mut g = param(0.0);
            aggregate_weights(&mut g, &[(1.0, &a), (3.0, &b)], mode, DENSE).unwrap();
            assert_eq!(g.mat(0).get(0, 0), 5.0, "{mode:?}");
            assert_eq!(g.bias(0)[0], 5.0);
        }
    }

    #[test]
    fn tree_reduction_matches_serial_streaming_and_is_deterministic() {
        // 7 uploads with mixed masks and distinct weights; fanin 2 gives
        // four groups, so both the grouped phase and the ragged tail are
        // exercised. The tree changes only the f32 association of the
        // numerator sum, so results must agree to round-off (and the tree
        // itself must be bit-stable across repeated runs).
        let ups: Vec<Upload> = (0..7)
            .map(|i| {
                let v = 0.7 * (i as f32 + 1.0);
                masked_upload(v, [i % 2 == 0, i % 3 != 0])
            })
            .collect();
        let weighted: Vec<(f32, &Upload)> = ups
            .iter()
            .enumerate()
            .map(|(i, u)| (1.0 + i as f32, u))
            .collect();
        for mode in [
            ZeroMode::ZerosPull,
            ZeroMode::HoldersOnly,
            ZeroMode::StaleFill,
        ] {
            let mut serial = param(2.0);
            aggregate_weights(&mut serial, &weighted, mode, AggSettings::sharded(1)).unwrap();
            let mut tree = param(2.0);
            aggregate_weights(&mut tree, &weighted, mode, AggSettings::sharded_tree(1, 2)).unwrap();
            let (s, t) = (serial.flatten(), tree.flatten());
            for (i, (a, b)) in s.iter().zip(&t).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-5 * a.abs().max(1.0),
                    "{mode:?} elem {i}: serial {a} vs tree {b}"
                );
            }
            let mut tree2 = param(2.0);
            aggregate_weights(&mut tree2, &weighted, mode, AggSettings::sharded_tree(1, 2))
                .unwrap();
            assert_eq!(t, tree2.flatten(), "{mode:?}: tree must be bit-stable");
        }
        // fanin above the cohort size falls back to the serial reducer —
        // bit-identical, not merely close.
        let mut serial = param(2.0);
        aggregate_weights(
            &mut serial,
            &weighted,
            ZeroMode::StaleFill,
            AggSettings::sharded(1),
        )
        .unwrap();
        let mut wide = param(2.0);
        aggregate_weights(
            &mut wide,
            &weighted,
            ZeroMode::StaleFill,
            AggSettings::sharded_tree(1, 64),
        )
        .unwrap();
        assert_eq!(serial.flatten(), wide.flatten());
    }

    #[test]
    fn delta_aggregation_moves_global() {
        let mut g = param(1.0);
        let mut d1 = param(0.0);
        d1.mat_mut(0).set(0, 0, 2.0);
        let mut d2 = param(0.0);
        d2.mat_mut(0).set(0, 0, 4.0);
        let u1 = delta_upload(d1);
        let u2 = delta_upload(d2);
        aggregate_deltas(&mut g, &[(1.0, &u1), (1.0, &u2)], DENSE).unwrap();
        assert_eq!(g.mat(0).get(0, 0), 1.0 + 3.0);
        assert_eq!(g.mat(0).get(1, 1), 1.0);
    }

    #[test]
    fn kind_mismatch_is_a_structured_error() {
        let u = delta_upload(param(0.0));
        let mut g = param(0.0);
        let err = aggregate_weights(&mut g, &[(1.0, &u)], ZeroMode::ZerosPull, DENSE).unwrap_err();
        assert_eq!(
            err,
            AggError::KindMismatch {
                index: 0,
                expected: UploadKind::Weights
            }
        );
        assert!(err.to_string().contains("Weights uploads"), "{err}");
    }

    #[test]
    fn invalid_weights_are_rejected_at_the_upload_boundary() {
        // Regression (mirrors the PR 4 clip_norm NaN fix): a NaN weight
        // used to surface only as a late panic on the total — or, mixed
        // with positives that dominated the sum, a negative weight passed
        // the old `total > 0` assert silently. Both are structured errors
        // naming the offending upload now.
        let a = masked_upload(1.0, [true, true]);
        let b = masked_upload(2.0, [true, true]);
        for settings in [DENSE, AggSettings::sharded(1)] {
            for bad in [f32::NAN, f32::INFINITY, 0.0, -1.0] {
                let mut g = param(0.0);
                let err = aggregate_weights(
                    &mut g,
                    &[(3.0, &a), (bad, &b)],
                    ZeroMode::StaleFill,
                    settings,
                )
                .unwrap_err();
                // NaN != NaN, so compare structurally + on bits.
                match err {
                    AggError::InvalidWeight { index: 1, value } => {
                        assert_eq!(value.to_bits(), (bad as f64).to_bits())
                    }
                    other => panic!("weight {bad} under {settings:?}: got {other:?}"),
                }
                // The global must be untouched on error.
                assert_eq!(g.flatten(), param(0.0).flatten());
            }
        }
        // Deltas and the staleness merge share the boundary check.
        let d = delta_upload(param(0.0));
        let mut g = param(0.0);
        assert!(matches!(
            aggregate_deltas(&mut g, &[(f32::NAN, &d)], DENSE),
            Err(AggError::InvalidWeight { index: 0, .. })
        ));
        let snap = param(0.0);
        let item = StalenessUpload {
            weight: f64::NAN,
            upload: &d,
            snapshot: Some(&snap),
        };
        assert!(matches!(
            merge_staleness_weighted(&mut g, &[item], 1.0, DENSE),
            Err(AggError::InvalidWeight { index: 0, .. })
        ));
    }

    #[test]
    fn empty_uploads_error() {
        let mut g = param(0.0);
        assert_eq!(
            aggregate_weights(&mut g, &[], ZeroMode::ZerosPull, DENSE).unwrap_err(),
            AggError::NoUploads
        );
        assert_eq!(
            aggregate_deltas(&mut g, &[], DENSE).unwrap_err(),
            AggError::NoUploads
        );
    }

    #[test]
    fn shard_kb_override_is_validated_not_silently_defaulted() {
        assert_eq!(parse_shard_kb("64"), Ok(64));
        assert_eq!(parse_shard_kb(" 1 "), Ok(1));
        assert_eq!(parse_shard_kb(&MAX_SHARD_KB.to_string()), Ok(MAX_SHARD_KB));
        assert_eq!(
            parse_shard_kb("banana"),
            Err(ShardKbError::Unparsable("banana".into()))
        );
        assert_eq!(
            parse_shard_kb("-3"),
            Err(ShardKbError::Unparsable("-3".into()))
        );
        assert_eq!(parse_shard_kb(""), Err(ShardKbError::Unparsable("".into())));
        // Zero would clamp to a 1-element shard and benchmark something
        // else entirely — it must be an error, not a quiet near-default.
        assert_eq!(parse_shard_kb("0"), Err(ShardKbError::OutOfRange(0)));
        let over = MAX_SHARD_KB as u64 + 1;
        assert_eq!(
            parse_shard_kb(&over.to_string()),
            Err(ShardKbError::OutOfRange(over))
        );
        // Errors render their offending value.
        let msg = parse_shard_kb("0").unwrap_err().to_string();
        assert!(msg.contains('0'), "{msg}");
    }

    #[test]
    fn env_shard_kb_reads_and_validates_the_variable() {
        // One test owns the variable end to end (parallel unit tests do
        // not otherwise touch it), so set/remove here cannot race.
        std::env::remove_var("FEDBIAD_SHARD_KB");
        assert_eq!(env_shard_kb(), Ok(None));
        std::env::set_var("FEDBIAD_SHARD_KB", "128");
        assert_eq!(env_shard_kb(), Ok(Some(128)));
        std::env::set_var("FEDBIAD_SHARD_KB", "zero");
        assert_eq!(env_shard_kb(), Err(ShardKbError::Unparsable("zero".into())));
        std::env::remove_var("FEDBIAD_SHARD_KB");
    }
}
