//! Shared per-coordinate robust estimators (trimmed mean, coordinate-wise
//! median) and the norm-clipping pre-pass.
//!
//! ## Why one module serves both engines
//!
//! The robust estimators are order statistics: each output coordinate is
//! a function of the *sorted* per-client column, so unlike the weighted
//! mean they cannot be expressed as a streaming fold. Both engines
//! therefore gather the same column — `(value, covered, weight)` per
//! upload, **in upload order** — and call the one combine function here.
//! Dense gathers from dense `ParamSet`s, streaming gathers per shard from
//! the fused wire decode; since the column bits and the combine code are
//! identical, dense ≡ streaming holds *by construction*
//! (`tests/aggregation_equivalence.rs` pins it anyway).
//!
//! ## Estimator semantics
//!
//! With trim depth `k = ⌊trim_frac · cohort⌋` (resolved once per call
//! from the *cohort* size, not per coordinate):
//!
//! * **Trimmed mean** — per coordinate, sort the participants by value
//!   (stable, IEEE total order), drop the `k` smallest and `k` largest,
//!   and take the weighted mean of the survivors. Because `k` is
//!   cohort-level, a coordinate whose participant set is smaller (partial
//!   coverage under `HoldersOnly`/`StaleFill`) can be trimmed *empty* —
//!   that coordinate keeps its previous global value, the same "no
//!   holders" rule the mean engine applies.
//! * **Coordinate median** — the weighted lower median of the
//!   participants. Under `StaleFill` the non-covering weight mass
//!   `W − den` votes for the previous global value as one pseudo
//!   participant (appended after all clients, so ties resolve
//!   deterministically).
//! * **Norm clip** — not an order statistic: each upload's delta against
//!   the reference point is L2-clipped to `tau` *before* the ordinary
//!   weighted-mean engines run. Uploads within the ball pass through
//!   bitwise untouched (so an all-honest round under `norm_clip` with a
//!   large `tau` reproduces the mean results exactly); uploads beyond it
//!   are replaced by a dense-body twin moved to `base + c·(v − base)`,
//!   `c = tau/‖Δ‖`. The clip pre-pass is engine-agnostic — the clipped
//!   uploads feed whichever mean engine the settings select.
//!
//! `ZeroMode` participant sets: `ZerosPull` keeps every upload (dropped
//! positions participate as exact zeros, and *are* trimmable — the
//! literal eq. (10) reading); `HoldersOnly`/`StaleFill` keep covering
//! uploads only.
//!
//! NaN/Inf *values* are not absorbed here — `total_cmp` keeps the sort
//! deterministic, but a surviving non-finite value still poisons the
//! estimate. The round layer screens them out first
//! ([`super::screen_upload_values`]); `garbage: huge` attacks (finite but
//! absurd) are what the trimming/median breakdown point is for.

use super::{dense_params, streaming, AggError, StalenessUpload, ZeroMode};
use crate::upload::{Upload, UploadBody, UploadKind};
use fedbiad_nn::{ModelMask, ParamSet};
use fedbiad_tensor::stats::{sort_weighted_by_value, trimmed_weighted_sum, weighted_lower_median};

/// The resolved order-statistic estimator a robust aggregation call runs
/// (`NormClip` and the `k = 0` trimmed mean never reach here — they route
/// through the mean engines).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum Estimator {
    /// Drop the `k` smallest and `k` largest participants per coordinate.
    Trim { k: usize },
    /// Weighted lower coordinate-wise median.
    Median,
}

/// One coordinate of a robust *weights* combine. `col` yields
/// `(value-or-exact-zero, covered, weight)` per upload in upload order;
/// `total_w` is Σw over all uploads (the validated eq. (10) denominator);
/// `g_prev` the coordinate's previous global value. Returns the new
/// global value.
pub(super) fn weights_coord(
    scratch: &mut Vec<(f32, f32)>,
    col: impl Iterator<Item = (f32, bool, f32)>,
    est: Estimator,
    mode: ZeroMode,
    total_w: f32,
    g_prev: f32,
) -> f32 {
    scratch.clear();
    // Σw over covering uploads, folded in upload order — the same f32
    // chain `validate` folds for `total_w`, so full coverage gives
    // `rest == 0.0` exactly.
    let mut den = 0.0f32;
    for (v, covered, w) in col {
        match mode {
            ZeroMode::ZerosPull => scratch.push((v, w)),
            ZeroMode::HoldersOnly | ZeroMode::StaleFill => {
                if covered {
                    scratch.push((v, w));
                    den += w;
                }
            }
        }
    }
    match est {
        Estimator::Trim { k } => {
            if scratch.len() <= 2 * k {
                // The cohort-level trim depth emptied this coordinate's
                // participant set (possible only under partial coverage):
                // keep the previous global value, the "no holders" rule.
                return g_prev;
            }
            sort_weighted_by_value(scratch);
            let (num, den_r) = trimmed_weighted_sum(scratch, k);
            match mode {
                // The non-covering mass still votes "no change" with the
                // broadcast value — and is never trimmed.
                ZeroMode::StaleFill => {
                    let rest = total_w - den;
                    (num + rest * g_prev) / (den_r + rest)
                }
                ZeroMode::ZerosPull | ZeroMode::HoldersOnly => num / den_r,
            }
        }
        Estimator::Median => {
            if mode == ZeroMode::StaleFill {
                scratch.push((g_prev, total_w - den));
            }
            if scratch.is_empty() {
                return g_prev;
            }
            sort_weighted_by_value(scratch);
            weighted_lower_median(scratch)
        }
    }
}

/// One coordinate of a robust *delta* combine: the robust location
/// estimate of the per-upload delta values (all uploads participate;
/// sparse payloads contribute exact zeros). The caller adds the returned
/// move to the global. An emptied trim moves nothing.
pub(super) fn delta_move_coord(
    scratch: &mut Vec<(f32, f32)>,
    col: impl Iterator<Item = (f32, f32)>,
    est: Estimator,
) -> f32 {
    scratch.clear();
    scratch.extend(col);
    match est {
        Estimator::Trim { k } => {
            if scratch.len() <= 2 * k {
                return 0.0;
            }
            sort_weighted_by_value(scratch);
            let (num, den) = trimmed_weighted_sum(scratch, k);
            num / den
        }
        Estimator::Median => {
            if scratch.is_empty() {
                return 0.0;
            }
            sort_weighted_by_value(scratch);
            weighted_lower_median(scratch)
        }
    }
}

/// One coordinate of the robust FedBuff merge: the robust location
/// estimate of the buffered Δ values (staleness weights stay in f64 as in
/// the mean merge), scaled by the server learning rate. The caller adds
/// the returned move to the global. All buffered items participate — an
/// item's uncovered positions are exact-zero Δ, i.e. "no change" votes.
pub(super) fn staleness_move_coord(
    scratch: &mut Vec<(f32, f64)>,
    col: impl Iterator<Item = (f32, f64)>,
    est: Estimator,
    server_lr: f64,
) -> f32 {
    scratch.clear();
    scratch.extend(col);
    match est {
        Estimator::Trim { k } => {
            if scratch.len() <= 2 * k {
                return 0.0;
            }
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for &(v, w) in &scratch[k..scratch.len() - k] {
                num += w * v as f64;
                den += w;
            }
            (server_lr * num / den) as f32
        }
        Estimator::Median => {
            if scratch.is_empty() {
                return 0.0;
            }
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            let total: f64 = scratch.iter().map(|p| p.1).sum();
            let half = 0.5 * total;
            let mut cum = 0.0f64;
            let mut med = scratch[scratch.len() - 1].0;
            for &(v, w) in scratch.iter() {
                cum += w;
                if cum >= half {
                    med = v;
                    break;
                }
            }
            (server_lr * med as f64) as f32
        }
    }
}

// ---- norm clipping -----------------------------------------------------

/// Flat coverage indicator of `mask` in `shape`'s flatten order
/// (1.0 covered / 0.0 dropped).
pub(super) fn flat_coverage(shape: &ParamSet, mask: &ModelMask) -> Vec<f32> {
    let mut ones = shape.clone();
    for e in 0..ones.num_entries() {
        ones.mat_mut(e).as_mut_slice().fill(1.0);
        for v in ones.bias_mut(e).iter_mut() {
            *v = 1.0;
        }
    }
    mask.apply(&mut ones);
    ones.flatten()
}

/// Clip one upload against `base_flat`. `as_delta` treats the payload as
/// a delta (reference point zero, all flat positions); otherwise the
/// delta is `v − base` over covered positions only. Returns `None` when
/// the upload is within the ball (pass through bitwise untouched) — which
/// includes a NaN norm: norm clipping defends against *scaled* attacks,
/// non-finite values are the screening layer's job.
fn clip_one(
    shape: &ParamSet,
    base_flat: &[f32],
    u: &Upload,
    tau: f32,
    as_delta: bool,
) -> Result<Option<Upload>, AggError> {
    let vals: Vec<f32> = match &u.body {
        UploadBody::Dense(p) => p.flatten(),
        UploadBody::Wire(_) => streaming::decode_dense_flat(shape, base_flat, u)?,
    };
    let cov = if as_delta {
        None
    } else {
        Some(flat_coverage(shape, &u.coverage))
    };
    let mut acc = 0.0f64;
    for j in 0..vals.len() {
        let d = match &cov {
            None => vals[j],
            Some(c) if c[j] != 0.0 => vals[j] - base_flat[j],
            Some(_) => continue,
        };
        acc += (d as f64) * (d as f64);
    }
    let norm = acc.sqrt();
    // Deliberately NOT `norm <= tau`: a NaN norm (hostile payload, caught
    // by screening) must take the pass-through branch, never the rescale.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(norm > tau as f64) {
        return Ok(None);
    }
    let c = (tau as f64 / norm) as f32;
    let mut t = vec![0.0f32; vals.len()];
    for j in 0..vals.len() {
        match &cov {
            None => t[j] = c * vals[j],
            Some(cv) if cv[j] != 0.0 => {
                let d = vals[j] - base_flat[j];
                t[j] = base_flat[j] + c * d;
            }
            Some(_) => {}
        }
    }
    let mut ps = shape.clone();
    ps.unflatten_from(&t);
    Ok(Some(Upload {
        kind: u.kind,
        body: UploadBody::Dense(ps),
        coverage: u.coverage.clone(),
        wire_bytes: u.wire_bytes,
    }))
}

/// Norm-clip pre-pass for `Weights` uploads: each upload's masked delta
/// against the current global is clipped to `tau`. `None` entries pass
/// through untouched.
pub(super) fn clip_weights_uploads(
    global: &ParamSet,
    uploads: &[(f32, &Upload)],
    tau: f32,
) -> Result<Vec<Option<Upload>>, AggError> {
    let base_flat = global.flatten();
    uploads
        .iter()
        .map(|(_, u)| clip_one(global, &base_flat, u, tau, false))
        .collect()
}

/// Norm-clip pre-pass for `Delta` uploads: the delta itself is clipped.
pub(super) fn clip_delta_uploads(
    global: &ParamSet,
    uploads: &[(f32, &Upload)],
    tau: f32,
) -> Result<Vec<Option<Upload>>, AggError> {
    let base_flat = global.flatten();
    uploads
        .iter()
        .map(|(_, u)| clip_one(global, &base_flat, u, tau, true))
        .collect()
}

/// Norm-clip pre-pass for the FedBuff merge: a `Weights` item's delta is
/// defined against its dispatched snapshot, a `Delta` item's against
/// zero.
pub(super) fn clip_staleness_uploads(
    global: &ParamSet,
    items: &[StalenessUpload<'_>],
    tau: f32,
) -> Result<Vec<Option<Upload>>, AggError> {
    let global_flat = global.flatten();
    items
        .iter()
        .map(|it| match it.upload.kind {
            UploadKind::Delta => clip_one(global, &global_flat, it.upload, tau, true),
            UploadKind::Weights => {
                let snapshot = it.snapshot.expect("validated in mod.rs");
                let snap_flat = snapshot.flatten();
                clip_one(snapshot, &snap_flat, it.upload, tau, false)
            }
        })
        .collect()
}

/// Dense flat Δ columns of buffered items, built with the dense mean
/// merge's exact expressions (clone, `axpy(−1, snapshot)`, coverage
/// apply) — shared by the dense robust staleness engine.
pub(super) fn dense_staleness_deltas(
    items: &[StalenessUpload<'_>],
) -> Result<Vec<Vec<f32>>, AggError> {
    let mut deltas = Vec::with_capacity(items.len());
    for (i, it) in items.iter().enumerate() {
        let mut delta = dense_params(it.upload, i)?.clone();
        if it.upload.kind == UploadKind::Weights {
            let snapshot = it.snapshot.expect("validated in mod.rs");
            delta.axpy(-1.0, snapshot);
            it.upload.coverage.apply(&mut delta);
        }
        deltas.push(delta.flatten());
    }
    Ok(deltas)
}
