//! The retained dense reference engine: entry-by-entry reduction over
//! dense per-client `ParamSet`s, single-threaded. Every expression here
//! is the bit-exactness contract the streaming engine reproduces — change
//! the two together or `tests/aggregation_equivalence.rs` fails.

use super::{dense_params, robust, AggError, StalenessUpload, ZeroMode};
use crate::upload::{Upload, UploadKind};
use fedbiad_nn::{CoverageMask, ParamSet};
use fedbiad_tensor::Matrix;

// Index loops are deliberate: the per-entry bias denominator is empty for
// bias-less entries, so iterating it instead of `0..rows` would skip the
// matrix-row denominators.
#[allow(clippy::needless_range_loop)]
pub(super) fn weights(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    total_w: f32,
) -> Result<(), AggError> {
    let params: Vec<&ParamSet> = uploads
        .iter()
        .enumerate()
        .map(|(i, (_, u))| dense_params(u, i))
        .collect::<Result<_, _>>()?;

    for e in 0..global.num_entries() {
        let rows = global.mat(e).rows();
        let cols = global.mat(e).cols();
        let has_bias = global.meta(e).has_bias;

        // Numerators.
        let mut num = Matrix::zeros(rows, cols);
        let mut num_b = vec![0.0f32; if has_bias { rows } else { 0 }];
        // Per-element denominators (not needed for the plain zero-pull).
        let mut den: Option<Matrix> = match mode {
            ZeroMode::ZerosPull => None,
            ZeroMode::HoldersOnly | ZeroMode::StaleFill => Some(Matrix::zeros(rows, cols)),
        };
        let mut den_b = vec![0.0f32; if has_bias { rows } else { 0 }];

        for ((w, u), p) in uploads.iter().zip(&params) {
            num.axpy_assign(*w, p.mat(e));
            if has_bias {
                fedbiad_tensor::ops::axpy(*w, p.bias(e), &mut num_b);
            }
            if let Some(den) = den.as_mut() {
                match &u.coverage.per_entry[e] {
                    CoverageMask::Full => {
                        for v in den.as_mut_slice() {
                            *v += *w;
                        }
                        for v in den_b.iter_mut() {
                            *v += *w;
                        }
                    }
                    CoverageMask::Rows(rbits) => {
                        for r in 0..rows {
                            if rbits.get(r) {
                                for v in den.row_mut(r) {
                                    *v += *w;
                                }
                                if has_bias {
                                    den_b[r] += *w;
                                }
                            }
                        }
                    }
                    CoverageMask::RowsCols {
                        rows: rbits,
                        cols: cbits,
                    } => {
                        for r in 0..rows {
                            if rbits.get(r) {
                                let drow = den.row_mut(r);
                                for (c, v) in drow.iter_mut().enumerate() {
                                    if cbits.get(c) {
                                        *v += *w;
                                    }
                                }
                                if has_bias {
                                    den_b[r] += *w;
                                }
                            }
                        }
                    }
                    CoverageMask::Elements(bits) => {
                        let dslice = den.as_mut_slice();
                        for (i, v) in dslice.iter_mut().enumerate() {
                            if bits.get(i) {
                                *v += *w;
                            }
                        }
                        // Elements masks transmit biases in full.
                        for v in den_b.iter_mut() {
                            *v += *w;
                        }
                    }
                }
            }
        }

        match (&mut den, mode) {
            (None, _) => {
                // eq. (10): divide everything by Σ|D_k|.
                num.scale(1.0 / total_w);
                *global.mat_mut(e) = num;
                if has_bias {
                    for v in num_b.iter_mut() {
                        *v /= total_w;
                    }
                    global.bias_mut(e).copy_from_slice(&num_b);
                }
            }
            (Some(den), ZeroMode::HoldersOnly) => {
                let g = global.mat_mut(e);
                let gs = g.as_mut_slice();
                let ns = num.as_slice();
                let ds = den.as_slice();
                for i in 0..gs.len() {
                    if ds[i] > 0.0 {
                        gs[i] = ns[i] / ds[i];
                    } // else: keep previous global value
                }
                if has_bias {
                    let gb = global.bias_mut(e);
                    for r in 0..gb.len() {
                        if den_b[r] > 0.0 {
                            gb[r] = num_b[r] / den_b[r];
                        }
                    }
                }
            }
            (Some(den), _) => {
                // StaleFill: non-covering clients contribute the broadcast
                // global value, so new = (num + (W − den)·g_prev) / W.
                let g = global.mat_mut(e);
                let gs = g.as_mut_slice();
                let ns = num.as_slice();
                let ds = den.as_slice();
                for i in 0..gs.len() {
                    gs[i] = (ns[i] + (total_w - ds[i]) * gs[i]) / total_w;
                }
                if has_bias {
                    let gb = global.bias_mut(e);
                    for r in 0..gb.len() {
                        gb[r] = (num_b[r] + (total_w - den_b[r]) * gb[r]) / total_w;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Robust weights combine, dense reference: flatten every upload, gather
/// each coordinate's `(value, covered, weight)` column in upload order,
/// and defer to the shared per-coordinate estimator. The streaming twin
/// gathers the same column from the wire decode and calls the same
/// estimator, which is the bit-exactness argument.
pub(super) fn robust_weights(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    mode: ZeroMode,
    est: robust::Estimator,
    total_w: f32,
) -> Result<(), AggError> {
    let params: Vec<&ParamSet> = uploads
        .iter()
        .enumerate()
        .map(|(i, (_, u))| dense_params(u, i))
        .collect::<Result<_, _>>()?;
    let n = uploads.len();
    let flats: Vec<Vec<f32>> = params.iter().map(|p| p.flatten()).collect();
    let covs: Vec<Vec<f32>> = uploads
        .iter()
        .map(|(_, u)| robust::flat_coverage(global, &u.coverage))
        .collect();
    let ws: Vec<f32> = uploads.iter().map(|(w, _)| *w).collect();
    let mut g = global.flatten();
    let mut scratch = Vec::with_capacity(n + 1);
    for (j, gj) in g.iter_mut().enumerate() {
        *gj = robust::weights_coord(
            &mut scratch,
            (0..n).map(|i| (flats[i][j], covs[i][j] != 0.0, ws[i])),
            est,
            mode,
            total_w,
            *gj,
        );
    }
    global.unflatten_from(&g);
    Ok(())
}

/// Robust deltas combine, dense reference: the per-coordinate robust
/// location estimate of the deltas is added to the global.
pub(super) fn robust_deltas(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    est: robust::Estimator,
) -> Result<(), AggError> {
    let params: Vec<&ParamSet> = uploads
        .iter()
        .enumerate()
        .map(|(i, (_, u))| dense_params(u, i))
        .collect::<Result<_, _>>()?;
    let n = uploads.len();
    let flats: Vec<Vec<f32>> = params.iter().map(|p| p.flatten()).collect();
    let ws: Vec<f32> = uploads.iter().map(|(w, _)| *w).collect();
    let mut g = global.flatten();
    let mut scratch = Vec::with_capacity(n);
    for (j, gj) in g.iter_mut().enumerate() {
        *gj += robust::delta_move_coord(&mut scratch, (0..n).map(|i| (flats[i][j], ws[i])), est);
    }
    global.unflatten_from(&g);
    Ok(())
}

/// Robust FedBuff merge, dense reference: per coordinate, the robust
/// location estimate of the buffered Δ values (all items participate;
/// uncovered positions are exact-zero "no change" votes) scaled by the
/// server learning rate.
pub(super) fn robust_staleness(
    global: &mut ParamSet,
    items: &[StalenessUpload<'_>],
    server_lr: f64,
    est: robust::Estimator,
) -> Result<(), AggError> {
    let deltas = robust::dense_staleness_deltas(items)?;
    let n = items.len();
    let ws: Vec<f64> = items.iter().map(|it| it.weight).collect();
    let mut g = global.flatten();
    let mut scratch = Vec::with_capacity(n);
    for (j, gj) in g.iter_mut().enumerate() {
        *gj += robust::staleness_move_coord(
            &mut scratch,
            (0..n).map(|i| (deltas[i][j], ws[i])),
            est,
            server_lr,
        );
    }
    global.unflatten_from(&g);
    Ok(())
}

pub(super) fn deltas(
    global: &mut ParamSet,
    uploads: &[(f32, &Upload)],
    total_w: f32,
) -> Result<(), AggError> {
    let params: Vec<&ParamSet> = uploads
        .iter()
        .enumerate()
        .map(|(i, (_, u))| dense_params(u, i))
        .collect::<Result<_, _>>()?;
    for ((w, _), p) in uploads.iter().zip(&params) {
        global.axpy(*w / total_w, p);
    }
    Ok(())
}

/// The simulator's historical FedBuff merge, verbatim: per buffered
/// upload in order, Δ = payload (−snapshot on covered rows for `Weights`),
/// then `global += (η_g·wᵢ/Σw) · Δ`.
pub(super) fn staleness(
    global: &mut ParamSet,
    items: &[StalenessUpload<'_>],
    server_lr: f64,
    total_w: f64,
) -> Result<(), AggError> {
    for (i, it) in items.iter().enumerate() {
        let mut delta = dense_params(it.upload, i)?.clone();
        if it.upload.kind == UploadKind::Weights {
            // Masked weights β∘U: the delta vs. the dispatched global
            // exists only on covered rows.
            let snapshot = it.snapshot.expect("validated in mod.rs");
            delta.axpy(-1.0, snapshot);
            it.upload.coverage.apply(&mut delta);
        }
        global.axpy((server_lr * it.weight / total_w) as f32, &delta);
    }
    Ok(())
}
