//! Server-side aggregation.
//!
//! Two weight-aggregation semantics are provided (DESIGN.md §4.2):
//!
//! * [`ZeroMode::ZerosPull`] — the literal eq. (10): every selected client
//!   contributes its *reconstructed* β∘U (dropped rows as zeros) and the
//!   denominator is Σ|D_k| over all selected clients. A row dropped by
//!   many clients is pulled toward zero — spike-and-slab shrinkage.
//! * [`ZeroMode::HoldersOnly`] — each element is averaged only over the
//!   clients that actually trained it; elements nobody held keep their
//!   previous global value. This is the classic federated-dropout
//!   aggregation (Caldas et al., FjORD, HeteroFL) and is used by the
//!   baselines.
//!
//! Delta uploads (sketched compression) are applied as
//! `global += Σ w_k Δ_k / Σ w_k`.

use crate::upload::{Upload, UploadKind};
use fedbiad_nn::{CoverageMask, ParamSet};
use fedbiad_tensor::Matrix;

/// How dropped (non-covered) parameters participate in weight averaging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroMode {
    /// Literal eq. (10): dropped rows are averaged as zeros. Under partial
    /// participation this shrinks every row by the expected drop fraction
    /// each round and the model collapses — kept as an ablation
    /// (DESIGN.md §4.2); the paper's own convergence curves (Fig. 6)
    /// cannot arise under this reading.
    ZerosPull,
    /// Average over holders; keep the previous global value where no
    /// client held the parameter (classic federated-dropout aggregation).
    HoldersOnly,
    /// The operational reading of step 4 / eq. (10): the server
    /// "reconstructs complete variational parameters" by filling each
    /// client's dropped rows from the global model it broadcast, then
    /// averages. Dropped rows effectively vote "no change". FedBIAD's
    /// default.
    StaleFill,
}

/// Aggregate `Weights` uploads into `global`. `weights[k]` is |D_k|.
/// Panics if any upload is not of `Weights` kind.
// Index loops are deliberate: the per-entry bias denominator is empty for
// bias-less entries, so iterating it instead of `0..rows` would skip the
// matrix-row denominators.
#[allow(clippy::needless_range_loop)]
pub fn aggregate_weights(global: &mut ParamSet, uploads: &[(f32, &Upload)], mode: ZeroMode) {
    assert!(!uploads.is_empty(), "no uploads to aggregate");
    for (_, u) in uploads {
        assert_eq!(
            u.kind,
            UploadKind::Weights,
            "aggregate_weights needs Weights uploads"
        );
    }
    let total_w: f32 = uploads.iter().map(|(w, _)| *w).sum();
    assert!(total_w > 0.0, "total aggregation weight must be positive");

    for e in 0..global.num_entries() {
        let rows = global.mat(e).rows();
        let cols = global.mat(e).cols();
        let has_bias = global.meta(e).has_bias;

        // Numerators.
        let mut num = Matrix::zeros(rows, cols);
        let mut num_b = vec![0.0f32; if has_bias { rows } else { 0 }];
        // Per-element denominators (not needed for the plain zero-pull).
        let mut den: Option<Matrix> = match mode {
            ZeroMode::ZerosPull => None,
            ZeroMode::HoldersOnly | ZeroMode::StaleFill => Some(Matrix::zeros(rows, cols)),
        };
        let mut den_b = vec![0.0f32; if has_bias { rows } else { 0 }];

        for (w, u) in uploads {
            num.axpy_assign(*w, u.params.mat(e));
            if has_bias {
                fedbiad_tensor::ops::axpy(*w, u.params.bias(e), &mut num_b);
            }
            if let Some(den) = den.as_mut() {
                match &u.coverage.per_entry[e] {
                    CoverageMask::Full => {
                        for v in den.as_mut_slice() {
                            *v += *w;
                        }
                        for v in den_b.iter_mut() {
                            *v += *w;
                        }
                    }
                    CoverageMask::Rows(rbits) => {
                        for r in 0..rows {
                            if rbits.get(r) {
                                for v in den.row_mut(r) {
                                    *v += *w;
                                }
                                if has_bias {
                                    den_b[r] += *w;
                                }
                            }
                        }
                    }
                    CoverageMask::RowsCols {
                        rows: rbits,
                        cols: cbits,
                    } => {
                        for r in 0..rows {
                            if rbits.get(r) {
                                let drow = den.row_mut(r);
                                for (c, v) in drow.iter_mut().enumerate() {
                                    if cbits.get(c) {
                                        *v += *w;
                                    }
                                }
                                if has_bias {
                                    den_b[r] += *w;
                                }
                            }
                        }
                    }
                    CoverageMask::Elements(bits) => {
                        let dslice = den.as_mut_slice();
                        for (i, v) in dslice.iter_mut().enumerate() {
                            if bits.get(i) {
                                *v += *w;
                            }
                        }
                        // Elements masks transmit biases in full.
                        for v in den_b.iter_mut() {
                            *v += *w;
                        }
                    }
                }
            }
        }

        match (&mut den, mode) {
            (None, _) => {
                // eq. (10): divide everything by Σ|D_k|.
                num.scale(1.0 / total_w);
                *global.mat_mut(e) = num;
                if has_bias {
                    for v in num_b.iter_mut() {
                        *v /= total_w;
                    }
                    global.bias_mut(e).copy_from_slice(&num_b);
                }
            }
            (Some(den), ZeroMode::HoldersOnly) => {
                let g = global.mat_mut(e);
                let gs = g.as_mut_slice();
                let ns = num.as_slice();
                let ds = den.as_slice();
                for i in 0..gs.len() {
                    if ds[i] > 0.0 {
                        gs[i] = ns[i] / ds[i];
                    } // else: keep previous global value
                }
                if has_bias {
                    let gb = global.bias_mut(e);
                    for r in 0..gb.len() {
                        if den_b[r] > 0.0 {
                            gb[r] = num_b[r] / den_b[r];
                        }
                    }
                }
            }
            (Some(den), _) => {
                // StaleFill: non-covering clients contribute the broadcast
                // global value, so new = (num + (W − den)·g_prev) / W.
                let g = global.mat_mut(e);
                let gs = g.as_mut_slice();
                let ns = num.as_slice();
                let ds = den.as_slice();
                for i in 0..gs.len() {
                    gs[i] = (ns[i] + (total_w - ds[i]) * gs[i]) / total_w;
                }
                if has_bias {
                    let gb = global.bias_mut(e);
                    for r in 0..gb.len() {
                        gb[r] = (num_b[r] + (total_w - den_b[r]) * gb[r]) / total_w;
                    }
                }
            }
        }
    }
}

/// Apply `Delta` uploads: `global += Σ w_k Δ_k / Σ w_k`.
pub fn aggregate_deltas(global: &mut ParamSet, uploads: &[(f32, &Upload)]) {
    assert!(!uploads.is_empty(), "no uploads to aggregate");
    for (_, u) in uploads {
        assert_eq!(
            u.kind,
            UploadKind::Delta,
            "aggregate_deltas needs Delta uploads"
        );
    }
    let total_w: f32 = uploads.iter().map(|(w, _)| *w).sum();
    assert!(total_w > 0.0);
    for (w, u) in uploads {
        global.axpy(*w / total_w, &u.params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mask::{BitVec, ModelMask};
    use fedbiad_nn::params::{EntryMeta, LayerKind};

    fn param(v: f32) -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(2, 2, v),
            Some(vec![v; 2]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        p
    }

    fn masked_upload(v: f32, kept: [bool; 2]) -> Upload {
        let p = param(v);
        let mut beta = BitVec::new(2, true);
        for (r, &k) in kept.iter().enumerate() {
            beta.set(r, k);
        }
        Upload::masked_weights(p.clone(), ModelMask::from_row_pattern(&p, &beta))
    }

    #[test]
    fn zeros_pull_matches_eq10() {
        // Client A (|D|=1) keeps both rows with value 4; client B (|D|=3)
        // drops row 1 with value 8 on row 0.
        let a = masked_upload(4.0, [true, true]);
        let b = masked_upload(8.0, [true, false]);
        let mut g = param(0.0);
        aggregate_weights(&mut g, &[(1.0, &a), (3.0, &b)], ZeroMode::ZerosPull);
        // Row 0: (1·4 + 3·8)/4 = 7; row 1: (1·4 + 3·0)/4 = 1.
        assert_eq!(g.mat(0).row(0), &[7.0, 7.0]);
        assert_eq!(g.mat(0).row(1), &[1.0, 1.0]);
        assert_eq!(g.bias(0), &[7.0, 1.0]);
    }

    #[test]
    fn holders_only_ignores_droppers_and_keeps_uncovered() {
        let a = masked_upload(4.0, [false, true]);
        let b = masked_upload(8.0, [false, true]);
        let mut g = param(-1.0);
        aggregate_weights(&mut g, &[(1.0, &a), (1.0, &b)], ZeroMode::HoldersOnly);
        // Row 0: nobody held it ⇒ previous global value −1 preserved.
        assert_eq!(g.mat(0).row(0), &[-1.0, -1.0]);
        // Row 1: mean of holders = 6.
        assert_eq!(g.mat(0).row(1), &[6.0, 6.0]);
        assert_eq!(g.bias(0), &[-1.0, 6.0]);
    }

    #[test]
    fn stale_fill_blends_holders_with_previous_global() {
        // Client A (|D|=1) keeps both rows at 4; client B (|D|=3) keeps
        // only row 0 at 8. Previous global is 2 everywhere.
        let a = masked_upload(4.0, [true, true]);
        let b = masked_upload(8.0, [true, false]);
        let mut g = param(2.0);
        aggregate_weights(&mut g, &[(1.0, &a), (3.0, &b)], ZeroMode::StaleFill);
        // Row 0: all cover → (1·4 + 3·8)/4 = 7.
        assert_eq!(g.mat(0).row(0), &[7.0, 7.0]);
        // Row 1: B votes "no change" with the old value 2:
        // (1·4 + 3·2)/4 = 2.5.
        assert_eq!(g.mat(0).row(1), &[2.5, 2.5]);
        assert_eq!(g.bias(0), &[7.0, 2.5]);
    }

    #[test]
    fn stale_fill_never_shrinks_unheld_rows() {
        // The failure mode of the literal eq. (10): a row dropped by every
        // selected client must stay put under StaleFill.
        let a = masked_upload(4.0, [false, true]);
        let mut g = param(5.0);
        aggregate_weights(&mut g, &[(2.0, &a)], ZeroMode::StaleFill);
        assert_eq!(g.mat(0).row(0), &[5.0, 5.0]);
        assert_eq!(g.mat(0).row(1), &[4.0, 4.0]);
        // …whereas zeros-pull collapses it.
        let mut g2 = param(5.0);
        aggregate_weights(&mut g2, &[(2.0, &a)], ZeroMode::ZerosPull);
        assert_eq!(g2.mat(0).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn full_coverage_both_modes_agree_with_weighted_mean() {
        let a = Upload::full_weights(param(2.0));
        let b = Upload::full_weights(param(6.0));
        for mode in [
            ZeroMode::ZerosPull,
            ZeroMode::HoldersOnly,
            ZeroMode::StaleFill,
        ] {
            let mut g = param(0.0);
            aggregate_weights(&mut g, &[(1.0, &a), (3.0, &b)], mode);
            assert_eq!(g.mat(0).get(0, 0), 5.0, "{mode:?}");
            assert_eq!(g.bias(0)[0], 5.0);
        }
    }

    #[test]
    fn delta_aggregation_moves_global() {
        let mut g = param(1.0);
        let mut d1 = param(0.0);
        d1.mat_mut(0).set(0, 0, 2.0);
        let mut d2 = param(0.0);
        d2.mat_mut(0).set(0, 0, 4.0);
        let u1 = Upload {
            kind: UploadKind::Delta,
            coverage: ModelMask::full(&d1),
            wire_bytes: 0,
            params: d1,
        };
        let u2 = Upload {
            kind: UploadKind::Delta,
            coverage: ModelMask::full(&d2),
            wire_bytes: 0,
            params: d2,
        };
        aggregate_deltas(&mut g, &[(1.0, &u1), (1.0, &u2)]);
        assert_eq!(g.mat(0).get(0, 0), 1.0 + 3.0);
        assert_eq!(g.mat(0).get(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "Weights uploads")]
    fn kind_mismatch_is_rejected() {
        let d = param(0.0);
        let u = Upload {
            kind: UploadKind::Delta,
            coverage: ModelMask::full(&d),
            wire_bytes: 0,
            params: d,
        };
        let mut g = param(0.0);
        aggregate_weights(&mut g, &[(1.0, &u)], ZeroMode::ZerosPull);
    }
}
