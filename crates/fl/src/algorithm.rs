//! The [`FlAlgorithm`] trait: what an FL method must provide.
//!
//! The design keeps all *persistent client state* (FedBIAD's weight score
//! vector E^k, compressor residuals, …) inside the algorithm's associated
//! `ClientState`, owned by the runner in a per-client table, so the round
//! loop can hand disjoint `&mut` state to rayon workers.

use crate::aggregate::AggSettings;
use crate::upload::Upload;
use fedbiad_data::ClientData;
use fedbiad_nn::{Model, ParamSet};
use serde::{Deserialize, Serialize};

/// Static description of the current round, passed to every hook.
#[derive(Clone, Copy, Debug)]
pub struct RoundInfo {
    /// Round index r (0-based internally; the paper's r = index + 1).
    pub round: usize,
    /// Total rounds R.
    pub total_rounds: usize,
    /// Experiment seed (for deriving per-component RNG streams).
    pub seed: u64,
    /// Aggregation-engine selection, broadcast with the round so clients
    /// (upload encoding) and server (reduction) always agree. A pure
    /// execution knob: results are bit-identical either way.
    pub agg: AggSettings,
}

/// What a client's local update produces.
#[derive(Clone, Debug)]
pub struct LocalResult {
    /// The upload (payload + coverage + wire bytes).
    pub upload: Upload,
    /// Mean training loss over the local iterations (drives Fig. 2/6 train
    /// curves).
    pub train_loss: f32,
    /// In-round loss improvement first − last (drives AFD's server-side
    /// score updates).
    pub loss_improvement: f32,
    /// Measured wall-clock seconds of local training (LTTR component).
    pub local_seconds: f64,
    /// |D_k| — aggregation weight of eq. (10).
    pub num_samples: usize,
}

/// Local-training hyper-parameters shared by all algorithms.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Local iterations per round (the paper's V).
    pub local_iters: usize,
    /// Mini-batch size (images: samples; text: windows).
    pub batch_size: usize,
    /// Learning rate η.
    pub lr: f32,
    /// Gradient-norm clip (LSTM models per §V-A).
    pub clip_norm: Option<f32>,
    /// Weight-decay coefficient implementing the KL(π̃‖π) ≈ L2 term of
    /// loss (2). Applied to the *effective* (masked) parameters so dropped
    /// rows receive no decay, consistent with eq. (7).
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            local_iters: 10,
            batch_size: 16,
            lr: 0.1,
            clip_norm: None,
            weight_decay: 1e-4,
        }
    }
}

/// An FL method: FedBIAD or one of the baselines.
pub trait FlAlgorithm: Send + Sync {
    /// Per-client persistent state (survives across rounds).
    type ClientState: Send;
    /// Server-to-clients broadcast context computed at round start (e.g.
    /// AFD's score-map-derived dropout decision).
    type RoundCtx: Send + Sync;

    /// Method name for tables/logs.
    fn name(&self) -> String;

    /// Fresh state for client `client_id`.
    fn init_client_state(
        &self,
        client_id: usize,
        model: &dyn Model,
        global: &ParamSet,
    ) -> Self::ClientState;

    /// Server-side round preamble; produces the broadcast context.
    fn begin_round(&mut self, info: RoundInfo, global: &ParamSet) -> Self::RoundCtx;

    /// One client's local update: train from `global` on `data`, return the
    /// upload. Called in parallel across selected clients.
    #[allow(clippy::too_many_arguments)]
    fn local_update(
        &self,
        info: RoundInfo,
        rctx: &Self::RoundCtx,
        client_id: usize,
        state: &mut Self::ClientState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult;

    /// Server-side aggregation of this round's uploads into `global`.
    fn aggregate(
        &mut self,
        info: RoundInfo,
        rctx: &Self::RoundCtx,
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    );

    /// Parameters the server should *evaluate/deploy* (the predictive
    /// posterior mean). Defaults to the raw global. FedBIAD overrides
    /// this with the spike-and-slab expectation E[β∘w] = keep-prob·µ —
    /// the classical dropout inference scaling, applied at evaluation
    /// only so it never compounds across rounds (eq. (11)/(12) reading;
    /// DESIGN.md §4.2).
    fn eval_params(&self, global: &ParamSet) -> ParamSet {
        global.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_config_default_is_sane() {
        let c = TrainConfig::default();
        assert!(c.local_iters > 0);
        assert!(c.lr > 0.0);
        assert!(c.weight_decay >= 0.0);
    }
}
