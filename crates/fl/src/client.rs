//! Shared local-training loop.
//!
//! Every algorithm's client does the same outer work — sample a mini-batch,
//! compute a loss/gradient at the *effective* parameters θ, apply weight
//! decay, mask the gradient, take an SGD step, report the loss — and
//! differs only in the hook implementations. FedBIAD's hooks sample
//! θ ~ β∘N(U, s̃²I) and re-sample β on a bad loss trend; FedAvg's hooks are
//! identity.

use crate::algorithm::TrainConfig;
use crate::timing::Stopwatch;
use fedbiad_data::ClientData;
use fedbiad_nn::optimizer::Sgd;
use fedbiad_nn::{Batch, Model, ParamSet};
use fedbiad_telemetry::gauge;
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::Workspace;
use rand::Rng;

/// Per-iteration customisation points.
pub trait LocalHooks {
    /// Produce the effective parameters θ for iteration `v` from the
    /// variational parameters `u`. Default: train on `u` directly (plain
    /// SGD methods), signalled by returning `None` (avoids a full clone).
    fn make_theta(&mut self, _v: usize, _u: &ParamSet) -> Option<ParamSet> {
        None
    }

    /// Mask the gradient before the optimiser step (eq. (7): only
    /// non-dropped rows update).
    fn mask_grads(&mut self, _v: usize, _grads: &mut ParamSet) {}

    /// Observe the iteration's training loss (drives the loss-trend
    /// tracker (8) and the weight score vector (9)).
    fn post_iteration(&mut self, _v: usize, _loss: f32) {}
}

/// Hooks that do nothing (FedAvg and simple baselines).
pub struct NoHooks;

impl LocalHooks for NoHooks {}

/// Identity of one local run (drives the batch RNG stream).
#[derive(Clone, Copy, Debug)]
pub struct LocalRunId {
    /// Experiment seed.
    pub seed: u64,
    /// Round index.
    pub round: usize,
    /// Client id.
    pub client: usize,
}

/// Outcome of a local run.
#[derive(Clone, Copy, Debug)]
pub struct LocalRunStats {
    /// Mean training loss over iterations.
    pub mean_loss: f32,
    /// Loss at the first iteration.
    pub first_loss: f32,
    /// Loss at the last iteration.
    pub last_loss: f32,
    /// Wall-clock seconds spent (LTTR component).
    pub seconds: f64,
}

impl LocalRunStats {
    /// In-round improvement (first − last); positive = loss went down.
    /// Drives AFD's server-side score updates.
    pub fn improvement(&self) -> f32 {
        self.first_loss - self.last_loss
    }
}

/// Run `cfg.local_iters` masked-SGD iterations on `u`, mutating it in
/// place. Batches are drawn i.i.d. with replacement from the client's data
/// using a deterministic per-(seed, round, client) stream.
///
/// Each iteration's forward/backward runs through the model's **batched
/// engine** (`Model::loss_grad_batched`): one GEMM per layer over the
/// whole mini-batch instead of per-sample GEMV chains, with every scratch
/// buffer checked out of this run's [`Workspace`] arena — after the first
/// (warm-up) iteration the loop performs no data-sized allocations. The
/// batched engine is bit-identical to the per-sample reference
/// (`tests/batched_equivalence.rs`), so this changes throughput, not
/// results.
pub fn run_local_training(
    id: LocalRunId,
    model: &dyn Model,
    data: &ClientData,
    cfg: &TrainConfig,
    u: &mut ParamSet,
    hooks: &mut impl LocalHooks,
) -> LocalRunStats {
    let sw = Stopwatch::start();
    let mut rng = stream(id.seed, StreamTag::Batch, id.round as u64, id.client as u64);
    let sgd = Sgd {
        lr: cfg.lr,
        clip_norm: cfg.clip_norm,
    };
    let mut grads = u.zeros_like();

    // Per-client arena: owned by this local run, reused across its
    // iterations (rayon workers each hold their own, so no sharing).
    let mut ws = Workspace::new();

    // Reusable batch buffers.
    let mut bx: Vec<f32> = Vec::new();
    let mut by: Vec<u32> = Vec::new();
    let mut idx: Vec<usize> = Vec::with_capacity(cfg.batch_size);
    let mut windows: Vec<&[u32]> = Vec::new();

    let mut loss_sum = 0.0f32;
    let mut first_loss = f32::NAN;
    let mut last_loss = f32::NAN;
    for v in 0..cfg.local_iters {
        let theta_owned = hooks.make_theta(v, u);
        let theta: &ParamSet = theta_owned.as_ref().unwrap_or(u);

        grads.zero();
        let loss = match data {
            ClientData::Image(set) => {
                assert!(!set.is_empty(), "client has no data");
                idx.clear();
                for _ in 0..cfg.batch_size.min(set.len()) {
                    idx.push(rng.gen_range(0..set.len()));
                }
                set.gather(&idx, &mut bx, &mut by);
                let batch = Batch::Dense {
                    x: &bx,
                    y: &by,
                    dim: set.dim,
                };
                model.loss_grad_batched(theta, &batch, &mut grads, &mut ws)
            }
            ClientData::Text(set) => {
                let n = set.num_windows();
                assert!(n > 0, "client has no windows");
                idx.clear();
                for _ in 0..cfg.batch_size.min(n) {
                    idx.push(rng.gen_range(0..n));
                }
                windows.clear();
                windows.extend(idx.iter().map(|&i| set.window(i)));
                let batch = Batch::Seq { windows: &windows };
                model.loss_grad_batched(theta, &batch, &mut grads, &mut ws)
            }
        };

        // KL ≈ L2 term: decay toward the prior mean 0, on the *effective*
        // parameters so dropped rows get no decay (their μ is not part of
        // the current variational family).
        if cfg.weight_decay > 0.0 {
            grads.axpy(cfg.weight_decay, theta);
        }

        hooks.mask_grads(v, &mut grads);
        sgd.step(u, &mut grads);
        hooks.post_iteration(v, loss);
        loss_sum += loss;
        if v == 0 {
            first_loss = loss;
        }
        last_loss = loss;
    }

    // Arena behaviour over the whole run: after warm-up the loop should
    // re-use checked-out buffers, so churn stays flat per iteration.
    gauge!("train.ws_churn", ws.churn());

    LocalRunStats {
        mean_loss: loss_sum / cfg.local_iters.max(1) as f32,
        first_loss,
        last_loss,
        seconds: sw.seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_nn::mlp::MlpModel;

    fn toy_data() -> ClientData {
        let mut s = ImageSet::empty(4);
        for i in 0..32 {
            let c = i % 2;
            let f = if c == 0 {
                [1.0, 1.0, 0.0, 0.0]
            } else {
                [0.0, 0.0, 1.0, 1.0]
            };
            s.push(&f, c as u32);
        }
        ClientData::Image(s)
    }

    #[test]
    fn local_training_reduces_loss() {
        let model = MlpModel::new(4, 8, 2);
        let mut rng = stream(1, StreamTag::Init, 0, 0);
        let mut u = model.init_params(&mut rng);
        let data = toy_data();
        let cfg = TrainConfig {
            local_iters: 50,
            batch_size: 16,
            lr: 0.5,
            ..Default::default()
        };
        let id = LocalRunId {
            seed: 3,
            round: 0,
            client: 0,
        };
        let first = run_local_training(id, &model, &data, &cfg, &mut u, &mut NoHooks);
        let id2 = LocalRunId {
            seed: 3,
            round: 1,
            client: 0,
        };
        let second = run_local_training(id2, &model, &data, &cfg, &mut u, &mut NoHooks);
        assert!(
            second.mean_loss < first.mean_loss,
            "{} -> {}",
            second.mean_loss,
            first.mean_loss
        );
        assert!(first.seconds > 0.0);
    }

    #[test]
    fn training_is_deterministic_given_ids() {
        let model = MlpModel::new(4, 8, 2);
        let mut rng = stream(2, StreamTag::Init, 0, 0);
        let u0 = model.init_params(&mut rng);
        let data = toy_data();
        let cfg = TrainConfig {
            local_iters: 5,
            batch_size: 8,
            lr: 0.1,
            ..Default::default()
        };
        let id = LocalRunId {
            seed: 9,
            round: 4,
            client: 7,
        };
        let mut a = u0.clone();
        let mut b = u0.clone();
        run_local_training(id, &model, &data, &cfg, &mut a, &mut NoHooks);
        run_local_training(id, &model, &data, &cfg, &mut b, &mut NoHooks);
        assert_eq!(a.flatten(), b.flatten());
    }

    #[test]
    fn mask_grads_hook_freezes_rows() {
        struct FreezeRow0;
        impl LocalHooks for FreezeRow0 {
            fn mask_grads(&mut self, _v: usize, grads: &mut ParamSet) {
                grads.mat_mut(0).zero_row(0);
                grads.bias_mut(0)[0] = 0.0;
            }
        }
        let model = MlpModel::new(4, 8, 2);
        let mut rng = stream(3, StreamTag::Init, 0, 0);
        let mut u = model.init_params(&mut rng);
        let frozen_row: Vec<f32> = u.mat(0).row(0).to_vec();
        let frozen_bias = u.bias(0)[0];
        let cfg = TrainConfig {
            local_iters: 10,
            batch_size: 8,
            lr: 0.5,
            weight_decay: 0.0,
            ..Default::default()
        };
        let id = LocalRunId {
            seed: 5,
            round: 0,
            client: 0,
        };
        run_local_training(id, &model, &toy_data(), &cfg, &mut u, &mut FreezeRow0);
        assert_eq!(u.mat(0).row(0), &frozen_row[..], "masked row must not move");
        assert_eq!(u.bias(0)[0], frozen_bias);
        // Other rows did move.
        assert!(u.mat(0).row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_data_signal() {
        // With lr>0, wd>0 and a gradient-free hook (theta = zeros so the
        // data gradient at theta is what it is — instead test decay via a
        // frozen model: compare norms with/without decay).
        let model = MlpModel::new(4, 8, 2);
        let mut rng = stream(4, StreamTag::Init, 0, 0);
        let u0 = model.init_params(&mut rng);
        let cfg_wd = TrainConfig {
            local_iters: 20,
            batch_size: 8,
            lr: 0.1,
            weight_decay: 0.1,
            ..Default::default()
        };
        let cfg_nowd = TrainConfig {
            weight_decay: 0.0,
            ..cfg_wd
        };
        let id = LocalRunId {
            seed: 6,
            round: 0,
            client: 0,
        };
        let data = toy_data();
        let mut a = u0.clone();
        let mut b = u0.clone();
        run_local_training(id, &model, &data, &cfg_wd, &mut a, &mut NoHooks);
        run_local_training(id, &model, &data, &cfg_nowd, &mut b, &mut NoHooks);
        assert!(
            a.l2_norm() < b.l2_norm(),
            "decay should shrink the solution"
        );
    }
}
