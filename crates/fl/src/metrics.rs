//! Per-round experiment records and serialisable logs.

use serde::{Deserialize, Serialize};

/// What the runner records after each round — everything needed to rebuild
/// the paper's tables and figures (accuracy/loss curves, upload sizes,
/// LTTR, TTA).
#[derive(Clone, Debug, Serialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// |D_k|-weighted mean of client training losses.
    pub train_loss: f32,
    /// Global-model test loss.
    pub test_loss: f64,
    /// Global-model test accuracy (top-1 images / top-3 next-word).
    pub test_acc: f64,
    /// Mean uplink bytes over selected clients.
    pub upload_bytes_mean: u64,
    /// Max uplink bytes over selected clients (round critical path).
    pub upload_bytes_max: u64,
    /// Downlink bytes per client (full global model).
    pub download_bytes: u64,
    /// Mean local-training seconds over selected clients (LTTR).
    pub local_seconds_mean: f64,
    /// Max local-training seconds (round critical path).
    pub local_seconds_max: f64,
    /// Server aggregation seconds.
    pub agg_seconds: f64,
    /// **Process-lifetime** peak resident-set size when the round
    /// finished, in bytes (`VmHWM` from `/proc/self/status`; 0 on
    /// non-Linux platforms). A high-water mark: monotone across rounds
    /// and *not* attributable to this round — an allocation spike
    /// anywhere earlier in the process keeps it elevated forever. Use
    /// [`RoundRecord::rss_bytes`] for what this round actually held.
    /// Observability only: like the wall-clock fields, both RSS fields
    /// are excluded from determinism digests and cross-run comparisons.
    pub peak_rss_bytes: u64,
    /// **Current** resident-set size when the round finished, in bytes
    /// (`VmRSS` from `/proc/self/status`; 0 on non-Linux platforms).
    /// Unlike the high-water mark this rises *and falls*, so per-round
    /// deltas reflect what the round itself retained. Excluded from
    /// digests.
    pub rss_bytes: u64,
    /// Uploads that actually reached this round's aggregation — the
    /// cohort minus offline/dropped-out clients and screened-out hostile
    /// uploads. Equal to the cohort size when churn and adversary models
    /// are off; **0 marks a defined no-op round** (every surviving upload
    /// was lost, the global is unchanged). Deserialization defaults the
    /// field to 0 so logs written before it existed still parse (the
    /// hand-written impl below — the vendored serde shim has no
    /// `#[serde(default)]`).
    pub contributors: usize,
}

// Deserialize is written by hand (the derive requires every field present):
// `contributors` was appended after experiment logs already existed on
// disk, so a missing field must read back as 0, not fail.
impl serde::Deserialize for RoundRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::msg("expected object for RoundRecord"))?;
        fn req<T: serde::Deserialize>(
            obj: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::DeError> {
            serde::Deserialize::from_value(serde::field(obj, name, "RoundRecord")?)
        }
        Ok(Self {
            round: req(obj, "round")?,
            train_loss: req(obj, "train_loss")?,
            test_loss: req(obj, "test_loss")?,
            test_acc: req(obj, "test_acc")?,
            upload_bytes_mean: req(obj, "upload_bytes_mean")?,
            upload_bytes_max: req(obj, "upload_bytes_max")?,
            download_bytes: req(obj, "download_bytes")?,
            local_seconds_mean: req(obj, "local_seconds_mean")?,
            local_seconds_max: req(obj, "local_seconds_max")?,
            agg_seconds: req(obj, "agg_seconds")?,
            peak_rss_bytes: req(obj, "peak_rss_bytes")?,
            rss_bytes: req(obj, "rss_bytes")?,
            contributors: match obj.iter().find(|(k, _)| k == "contributors") {
                Some((_, val)) => serde::Deserialize::from_value(val)?,
                None => 0,
            },
        })
    }
}

/// Parse one `kB` field of `/proc/self/status` (e.g. `"VmHWM:"`),
/// returning bytes; 0 when the field is absent or the platform has no
/// procfs.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn proc_status_bytes(prefix: &str) -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                // Format: "VmHWM:      123456 kB"
                if let Some(rest) = line.strip_prefix(prefix) {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = prefix;
        0
    }
}

/// Process-lifetime peak resident-set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, 0 on platforms without procfs. A
/// high-water mark — monotone over the life of the process, so it can
/// only bound memory use from above; it never shows a later phase using
/// *less*. Pair with [`current_rss_bytes`] when attribution matters.
pub fn peak_rss_bytes() -> u64 {
    proc_status_bytes("VmHWM:")
}

/// Current resident-set size in bytes: `VmRSS` from `/proc/self/status`
/// on Linux, 0 on platforms without procfs. Rises and falls with live
/// allocations, so deltas between two samples attribute memory to the
/// work between them.
pub fn current_rss_bytes() -> u64 {
    proc_status_bytes("VmRSS:")
}

/// A complete experiment log.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentLog {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Experiment seed.
    pub seed: u64,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
}

impl ExperimentLog {
    /// Final test accuracy (last round), in percent.
    pub fn final_accuracy_pct(&self) -> f64 {
        self.records
            .last()
            .map(|r| r.test_acc * 100.0)
            .unwrap_or(0.0)
    }

    /// Best test accuracy over rounds, in percent.
    pub fn best_accuracy_pct(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.test_acc * 100.0)
            .fold(0.0, f64::max)
    }

    /// Mean per-round upload bytes over all rounds (the Table I
    /// 'Upload Size' column).
    pub fn mean_upload_bytes(&self) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        let s: u128 = self
            .records
            .iter()
            .map(|r| r.upload_bytes_mean as u128)
            .sum();
        (s / self.records.len() as u128) as u64
    }

    /// Mean LTTR in seconds (Fig. 7a/b).
    pub fn mean_lttr_seconds(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.local_seconds_mean)
            .sum::<f64>()
            / self.records.len() as f64
    }
}

/// Human-readable byte size (KB/MB with the paper's 1024 convention).
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 {
        format!("{:.1}MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.0}KB", b / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: usize, acc: f64, up: u64) -> RoundRecord {
        RoundRecord {
            round,
            train_loss: 1.0,
            test_loss: 1.0,
            test_acc: acc,
            upload_bytes_mean: up,
            upload_bytes_max: up,
            download_bytes: 100,
            local_seconds_mean: 0.5,
            local_seconds_max: 0.6,
            agg_seconds: 0.01,
            peak_rss_bytes: 0,
            rss_bytes: 0,
            contributors: 1,
        }
    }

    #[test]
    fn log_summaries() {
        let log = ExperimentLog {
            dataset: "d".into(),
            method: "m".into(),
            seed: 1,
            records: vec![rec(0, 0.5, 100), rec(1, 0.8, 200), rec(2, 0.7, 300)],
        };
        assert!((log.final_accuracy_pct() - 70.0).abs() < 1e-9);
        assert!((log.best_accuracy_pct() - 80.0).abs() < 1e-9);
        assert_eq!(log.mean_upload_bytes(), 200);
        assert!((log.mean_lttr_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_zeroes() {
        let log = ExperimentLog {
            dataset: "d".into(),
            method: "m".into(),
            seed: 1,
            records: vec![],
        };
        assert_eq!(log.final_accuracy_pct(), 0.0);
        assert_eq!(log.mean_upload_bytes(), 0);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(530 * 1024 + 500), "530KB");
        assert_eq!(fmt_bytes(31_250_000), "29.8MB");
    }

    #[test]
    fn peak_rss_is_positive_on_linux_and_monotone() {
        let a = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(a > 0, "VmHWM should be readable on Linux");
        }
        // Touch some memory; the high-water mark can only grow.
        let v = vec![1u8; 4 << 20];
        std::hint::black_box(&v);
        let b = peak_rss_bytes();
        assert!(b >= a);
    }

    #[test]
    fn current_rss_is_positive_and_bounded_by_the_peak() {
        let cur = current_rss_bytes();
        let peak = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(cur > 0, "VmRSS should be readable on Linux");
            // The defining difference from the high-water mark: current
            // can never exceed it.
            assert!(cur <= peak, "VmRSS {cur} above VmHWM {peak}");
        } else {
            assert_eq!(cur, 0);
        }
    }

    #[test]
    fn log_round_trips_through_json() {
        let log = ExperimentLog {
            dataset: "d".into(),
            method: "m".into(),
            seed: 7,
            records: vec![rec(0, 0.1, 10)],
        };
        let s = serde_json::to_string(&log).unwrap();
        let back: ExperimentLog = serde_json::from_str(&s).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.seed, 7);
    }
}
