//! LTTR and Time-To-Accuracy (TTA) accounting (§V-C).
//!
//! TTA "comprises local running time, parameter transmission time, and
//! parameter aggregation time": per round the critical path is
//! `max_k(LTTR_k) + upload_max/uplink + download/downlink + aggregation`,
//! accumulated until the global model first reaches the target accuracy.

use crate::metrics::RoundRecord;
use crate::network::NetworkModel;

/// Wall-clock duration of one round's critical path.
pub fn round_seconds(rec: &RoundRecord, net: &NetworkModel) -> f64 {
    rec.local_seconds_max
        + net.upload_seconds(rec.upload_bytes_max)
        + net.download_seconds(rec.download_bytes)
        + rec.agg_seconds
}

/// Cumulative time until `target_acc` is first reached; `None` if never.
pub fn time_to_accuracy(
    records: &[RoundRecord],
    target_acc: f64,
    net: &NetworkModel,
) -> Option<f64> {
    let mut t = 0.0;
    for rec in records {
        t += round_seconds(rec, net);
        if rec.test_acc >= target_acc {
            return Some(t);
        }
    }
    None
}

/// Total simulated wall-clock of the whole run.
pub fn total_seconds(records: &[RoundRecord], net: &NetworkModel) -> f64 {
    records.iter().map(|r| round_seconds(r, net)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(acc: f64, up: u64, local: f64) -> RoundRecord {
        RoundRecord {
            round: 0,
            train_loss: 0.0,
            test_loss: 0.0,
            test_acc: acc,
            upload_bytes_mean: up,
            upload_bytes_max: up,
            download_bytes: 0,
            local_seconds_mean: local,
            local_seconds_max: local,
            agg_seconds: 0.0,
        }
    }

    #[test]
    fn tta_stops_at_first_crossing() {
        let net = NetworkModel {
            uplink_mbps: 8.0,
            downlink_mbps: 8.0,
        }; // 1 MB/s
        let records = vec![
            rec(0.1, 1_000_000, 1.0),
            rec(0.6, 1_000_000, 1.0),
            rec(0.9, 1_000_000, 1.0),
        ];
        // Each round costs 1 s local + 1 s upload = 2 s.
        let tta = time_to_accuracy(&records, 0.5, &net).unwrap();
        assert!((tta - 4.0).abs() < 1e-9, "{tta}");
        assert!(time_to_accuracy(&records, 0.95, &net).is_none());
    }

    #[test]
    fn smaller_uploads_give_smaller_tta() {
        let net = NetworkModel::t_mobile_5g();
        let fat = vec![rec(0.9, 10_000_000, 1.0)];
        let slim = vec![rec(0.9, 5_000_000, 1.0)];
        let t_fat = time_to_accuracy(&fat, 0.5, &net).unwrap();
        let t_slim = time_to_accuracy(&slim, 0.5, &net).unwrap();
        assert!(t_slim < t_fat);
    }

    #[test]
    fn total_time_sums_rounds() {
        let net = NetworkModel {
            uplink_mbps: 8.0,
            downlink_mbps: 8.0,
        };
        let records = vec![rec(0.0, 0, 1.5), rec(0.0, 0, 0.5)];
        assert!((total_seconds(&records, &net) - 2.0).abs() < 1e-9);
    }
}
