//! LTTR and Time-To-Accuracy (TTA) accounting (§V-C).
//!
//! TTA "comprises local running time, parameter transmission time, and
//! parameter aggregation time": per round the critical path is
//! `max_k(LTTR_k) + upload_max/uplink + download/downlink + aggregation`,
//! accumulated until the global model first reaches the target accuracy.
//! When the link carries a per-message round-trip latency
//! ([`NetworkModel::rtt_seconds`]), each round additionally pays one RTT
//! for the downlink broadcast and one for the uplink upload; the default
//! RTT of 0.0 keeps all historical numbers identical.

use crate::metrics::RoundRecord;
use crate::network::NetworkModel;
use std::time::Instant;

/// Shared **wall-clock** stopwatch for the observational timing fields
/// (`local_seconds_*`, `agg_seconds` in lockstep mode).
///
/// Two clocks coexist in this workspace and must not be conflated:
///
/// * the **virtual clock** — the simulator's deterministic event time
///   and the cost-model seconds fed into LTTR/TTA ([`round_seconds`],
///   [`time_to_accuracy`]); bit-identical across machines and runs;
/// * the **wall clock** — `Instant`-measured host time, recorded for
///   observability only and explicitly *excluded* from determinism
///   digests and cross-run comparisons.
///
/// Every wall-clock measurement goes through this one helper instead of
/// ad-hoc `Instant` arithmetic so the exclusion rule has a single home.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Monotonic seconds since [`Stopwatch::start`].
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Wall-clock duration of one round's critical path.
pub fn round_seconds(rec: &RoundRecord, net: &NetworkModel) -> f64 {
    rec.local_seconds_max
        + net.upload_message_seconds(rec.upload_bytes_max)
        + net.download_message_seconds(rec.download_bytes)
        + rec.agg_seconds
}

/// Cumulative time until `target_acc` is first reached; `None` if never.
pub fn time_to_accuracy(
    records: &[RoundRecord],
    target_acc: f64,
    net: &NetworkModel,
) -> Option<f64> {
    let mut t = 0.0;
    for rec in records {
        t += round_seconds(rec, net);
        if rec.test_acc >= target_acc {
            return Some(t);
        }
    }
    None
}

/// Total simulated wall-clock of the whole run.
pub fn total_seconds(records: &[RoundRecord], net: &NetworkModel) -> f64 {
    records.iter().map(|r| round_seconds(r, net)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(acc: f64, up: u64, local: f64) -> RoundRecord {
        RoundRecord {
            round: 0,
            train_loss: 0.0,
            test_loss: 0.0,
            test_acc: acc,
            upload_bytes_mean: up,
            upload_bytes_max: up,
            download_bytes: 0,
            local_seconds_mean: local,
            local_seconds_max: local,
            agg_seconds: 0.0,
            peak_rss_bytes: 0,
            rss_bytes: 0,
            contributors: 1,
        }
    }

    fn mbps8() -> NetworkModel {
        // 1 MB/s symmetric, zero latency.
        NetworkModel {
            uplink_mbps: 8.0,
            downlink_mbps: 8.0,
            rtt_seconds: 0.0,
        }
    }

    #[test]
    fn tta_stops_at_first_crossing() {
        let net = mbps8();
        let records = vec![
            rec(0.1, 1_000_000, 1.0),
            rec(0.6, 1_000_000, 1.0),
            rec(0.9, 1_000_000, 1.0),
        ];
        // Each round costs 1 s local + 1 s upload = 2 s.
        let tta = time_to_accuracy(&records, 0.5, &net).unwrap();
        assert!((tta - 4.0).abs() < 1e-9, "{tta}");
        assert!(time_to_accuracy(&records, 0.95, &net).is_none());
    }

    #[test]
    fn smaller_uploads_give_smaller_tta() {
        let net = NetworkModel::t_mobile_5g();
        let fat = vec![rec(0.9, 10_000_000, 1.0)];
        let slim = vec![rec(0.9, 5_000_000, 1.0)];
        let t_fat = time_to_accuracy(&fat, 0.5, &net).unwrap();
        let t_slim = time_to_accuracy(&slim, 0.5, &net).unwrap();
        assert!(t_slim < t_fat);
    }

    #[test]
    fn total_time_sums_rounds() {
        let net = mbps8();
        let records = vec![rec(0.0, 0, 1.5), rec(0.0, 0, 0.5)];
        assert!((total_seconds(&records, &net) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_adds_two_latencies_per_round() {
        let records = vec![rec(0.9, 1_000_000, 1.0)];
        let flat = time_to_accuracy(&records, 0.5, &mbps8()).unwrap();
        let lagged = time_to_accuracy(&records, 0.5, &mbps8().with_rtt(0.1)).unwrap();
        // One uplink message + one downlink message ⇒ +2·RTT.
        assert!((lagged - flat - 0.2).abs() < 1e-12, "{flat} vs {lagged}");
    }

    #[test]
    fn target_never_reached_is_none() {
        let net = mbps8();
        assert!(time_to_accuracy(&[], 0.1, &net).is_none());
        let records = vec![rec(0.2, 0, 1.0), rec(0.3, 0, 1.0), rec(0.29, 0, 1.0)];
        assert!(time_to_accuracy(&records, 0.31, &net).is_none());
    }

    #[test]
    fn eval_every_gaps_cross_at_the_carried_record() {
        // eval_every = 2: round 1 carries round 0's accuracy, round 3
        // carries round 2's. The crossing lands on the FIRST record whose
        // (possibly carried) accuracy clears the target — round 2 here —
        // and its cumulative time includes the skipped round's cost.
        let net = mbps8();
        let records = vec![
            rec(0.10, 0, 1.0), // round 0: evaluated
            rec(0.10, 0, 1.0), // round 1: carried
            rec(0.80, 0, 1.0), // round 2: evaluated, crosses
            rec(0.80, 0, 1.0), // round 3: carried
        ];
        let tta = time_to_accuracy(&records, 0.5, &net).unwrap();
        assert!((tta - 3.0).abs() < 1e-9, "{tta}");
    }

    #[test]
    fn target_hit_exactly_on_final_round_counts_full_time() {
        let net = mbps8();
        let records = vec![rec(0.1, 0, 1.0), rec(0.2, 0, 1.0), rec(0.5, 0, 1.0)];
        // `>=` comparison: hitting the target exactly on the last record
        // still returns Some, with the WHOLE run's time.
        let tta = time_to_accuracy(&records, 0.5, &net).unwrap();
        let total = total_seconds(&records, &net);
        assert!((tta - total).abs() < 1e-12);
        assert!((tta - 3.0).abs() < 1e-9);
    }
}
