//! Acceptance test for grid expansion: a 2×2×2 sweep materializes
//! exactly 8 runs with distinct, deterministic seeds, stable across
//! thread counts (expansion is a pure function of the spec; the thread
//! toggling guards against anyone threading it later and breaking
//! that).

use fedbiad_scenario::{expand, ScenarioSpec};
use std::sync::Mutex;

/// Serialises `RAYON_NUM_THREADS` mutation within this test binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SWEEP_2X2X2: &str = "name = \"grid\"\nmode = \"sim\"\n\
[run]\nseed = 42\nseed_mode = \"per-run\"\n\
[sweep]\nworkload = [\"mnist\", \"fmnist\"]\nmethod = [\"fedavg\", \"fedbiad\"]\n\
policy = [\"sync\", \"fedbuff\"]\n";

fn expanded_seeds() -> Vec<u64> {
    let spec = ScenarioSpec::from_toml_str(SWEEP_2X2X2).unwrap();
    expand(&spec).unwrap().iter().map(|r| r.opts.seed).collect()
}

#[test]
fn two_by_two_by_two_makes_eight_distinct_deterministic_seeds() {
    let _guard = ENV_LOCK.lock().unwrap();
    let seeds = expanded_seeds();
    assert_eq!(seeds.len(), 8, "2×2×2 grid must materialize 8 runs");

    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), 8, "per-run seeds must be distinct: {seeds:?}");

    // Deterministic: same spec, same seeds — at any thread count.
    let orig = std::env::var("RAYON_NUM_THREADS").ok();
    for threads in ["1", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(expanded_seeds(), seeds, "thread count {threads}");
    }
    match orig {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}

#[test]
fn seeds_change_with_the_spec_content_not_its_formatting() {
    let _guard = ENV_LOCK.lock().unwrap();
    let reformatted = SWEEP_2X2X2.replace(
        "workload = [\"mnist\", \"fmnist\"]",
        "# same axes\nworkload = [\n  \"mnist\",\n  \"fmnist\",\n]",
    );
    let a = expanded_seeds();
    let spec_b = ScenarioSpec::from_toml_str(&reformatted).unwrap();
    let b: Vec<u64> = expand(&spec_b)
        .unwrap()
        .iter()
        .map(|r| r.opts.seed)
        .collect();
    assert_eq!(a, b, "formatting must not move seeds");

    let spec_c =
        ScenarioSpec::from_toml_str(&SWEEP_2X2X2.replace("seed = 42", "seed = 43")).unwrap();
    let c: Vec<u64> = expand(&spec_c)
        .unwrap()
        .iter()
        .map(|r| r.opts.seed)
        .collect();
    assert_ne!(a, c, "a different base seed must move every derived seed");
}
