//! Snapshot tests for the spec loader's error messages: every class of
//! mistake — malformed TOML, unknown fields, out-of-range numbers, empty
//! sweep axes, unresolvable names, inconsistent cross-field combos —
//! must fail with a distinct, actionable message. The messages are part
//! of the user interface; exact-string assertions keep them from
//! regressing into generic errors.

use fedbiad_scenario::ScenarioSpec;

fn err_of(toml: &str) -> String {
    ScenarioSpec::from_toml_str(toml)
        .expect_err("spec should be rejected")
        .to_string()
}

const OK_SWEEP: &str = "[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n";

#[test]
fn malformed_toml_reports_the_line() {
    assert_eq!(
        err_of("name = \"t\"\nrounds = \n"),
        "TOML parse error at line 2: expected a value, found end of line"
    );
    assert_eq!(
        err_of("name = \"t\"\n[sweep\nworkload = \"mnist\"\n"),
        "TOML parse error at line 2: expected `]`, found end of line"
    );
}

#[test]
fn unknown_fields_list_the_expected_ones() {
    assert_eq!(
        err_of(&format!("name = \"t\"\nsweeps = 1\n{OK_SWEEP}")),
        "unknown field `sweeps` at top level; expected one of: name, mode, run, sweep, \
         partition, network, fedbiad, training, aggregation, population, adversary, churn, sim"
    );
    assert_eq!(
        err_of(&format!("name = \"t\"\n[run]\nfrraction = 0.5\n{OK_SWEEP}")),
        "unknown field `frraction` in [run]; expected one of: rounds, seed, seed_mode, \
         scale, eval_every, eval_max, fraction, replicates"
    );
    assert_eq!(
        err_of("name = \"t\"\n[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\nnetwork = 1\n"),
        "unknown field `network` in [sweep]; expected one of: workload, method, compressor, \
         policy, profile"
    );
}

#[test]
fn out_of_range_fraction_is_rejected() {
    assert_eq!(
        err_of(&format!("name = \"t\"\n[run]\nfraction = 1.5\n{OK_SWEEP}")),
        "[run] fraction = 1.5 is out of range; the client participation fraction must be \
         in (0, 1]"
    );
    assert_eq!(
        err_of(&format!("name = \"t\"\n[run]\nfraction = 0.0\n{OK_SWEEP}")),
        "[run] fraction = 0 is out of range; the client participation fraction must be \
         in (0, 1]"
    );
}

#[test]
fn empty_sweep_axes_are_rejected() {
    assert_eq!(
        err_of("name = \"t\"\n[sweep]\nworkload = \"mnist\"\nmethod = []\n"),
        "sweep axis `method` is empty; list at least one value or omit the field"
    );
    assert_eq!(
        err_of("name = \"t\"\n[sweep]\nworkload = []\nmethod = \"fedavg\"\n"),
        "sweep axis `workload` is empty; list at least one value or omit the field"
    );
}

#[test]
fn unresolvable_names_list_the_registry() {
    assert_eq!(
        err_of("name = \"t\"\n[sweep]\nworkload = \"mnist\"\nmethod = \"sgd\"\n"),
        "unknown method `sgd` in sweep axis `method`; known methods: FedAvg, FedDrop, AFD, \
         FedMP, FjORD, HeteroFL, FedBIAD, FedPAQ, SignSGD, STC, DGC, AFD+DGC, Fjord+DGC, \
         FedBIAD+DGC"
    );
    assert_eq!(
        err_of("name = \"t\"\n[sweep]\nworkload = \"cifar\"\nmethod = \"fedavg\"\n"),
        "unknown workload `cifar` in sweep axis `workload`; known workloads: mnist, fmnist, \
         ptb, wikitext2, reddit"
    );
}

#[test]
fn missing_required_pieces_are_named() {
    assert_eq!(
        err_of("[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n"),
        "missing required field `name` (a short scenario identifier)"
    );
    assert_eq!(
        err_of("name = \"t\"\n"),
        "missing required [sweep] section with `workload` and `method` axes"
    );
    assert_eq!(
        err_of("name = \"t\"\n[sweep]\nmethod = \"fedavg\"\n"),
        "missing required sweep axis `workload` in [sweep]"
    );
}

#[test]
fn cross_field_combos_are_checked() {
    assert_eq!(
        err_of(
            "name = \"t\"\n[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n\
             policy = \"sync\"\n"
        ),
        "sweep axis `policy` requires mode = \"sim\" (this spec runs the lock-step runner)"
    );
    assert_eq!(
        err_of(
            "name = \"t\"\n[sweep]\nworkload = \"mnist\"\nmethod = \"dgc\"\n\
             compressor = \"stc\"\n"
        ),
        "compressor `STC` cannot compose with method `DGC`: it already embeds a compressor \
         (drop the compressor axis or use the base method)"
    );
    assert_eq!(
        err_of(
            "name = \"t\"\n[sweep]\nworkload = \"ptb\"\nmethod = \"fedavg\"\n\
             [partition]\nkind = \"iid\"\n"
        ),
        "[partition] applies to image workloads only; `ptb-like` is a text workload"
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[network]\nrtt_seconds = 0.1\n"
        )),
        "[network] requires mode = \"sim\"; the lock-step runner does not model links"
    );
    assert_eq!(
        err_of(
            "name = \"t\"\nmode = \"sim\"\n[sweep]\nworkload = \"mnist\"\n\
             method = \"fedavg\"\nprofile = [\"homogeneous\", \"stragglers\"]\n\
             [network]\nrtt_seconds = 0.1\n"
        ),
        "[network] applies only to the homogeneous profile; remove it or drop `stragglers` \
         from the profile axis"
    );
}

#[test]
fn partition_parameters_are_kind_checked() {
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[partition]\nkind = \"dirichlet\"\n"
        )),
        "missing required field `alpha` in [partition] for kind = \"dirichlet\""
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[partition]\nkind = \"dirichlet\"\nalpha = -0.3\n"
        )),
        "[partition] alpha = -0.3 is out of range; the Dirichlet concentration must be positive"
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[partition]\nkind = \"iid\"\nalpha = 0.3\n"
        )),
        "[partition] kind = \"iid\" takes no parameters"
    );
}

#[test]
fn adversary_section_is_strictly_validated() {
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[adversary]\nmode = \"sign_flip\"\n"
        )),
        "missing required field `fraction` in [adversary] (the byzantine client fraction, \
         in (0, 1])"
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[adversary]\nfraction = 1.5\nmode = \"sign_flip\"\n"
        )),
        "[adversary] fraction = 1.5 is out of range; the byzantine fraction must lie in \
         (0, 1] (omit the section for an honest population)"
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[adversary]\nfraction = 0.2\nmode = \"flip\"\n"
        )),
        "[adversary] mode = \"flip\" is unknown; expected \"sign_flip\", \"scale\" or \
         \"garbage\""
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[adversary]\nfraction = 0.2\nmode = \"sign_flip\"\n\
             factor = 5.0\n"
        )),
        "[adversary] factor requires mode = \"scale\"; no other attack scales"
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[adversary]\nfraction = 0.2\nmode = \"garbage\"\n\
             garbage = \"zero\"\n"
        )),
        "[adversary] garbage = \"zero\" is unknown; expected \"nan\", \"inf\" or \"huge\""
    );
}

#[test]
fn churn_section_is_strictly_validated() {
    assert_eq!(
        err_of(&format!("name = \"t\"\n{OK_SWEEP}[churn]\ndropout = 1.2\n")),
        "[churn] dropout = 1.2 is out of range; the per-round probability must lie in [0, 1]"
    );
    assert_eq!(
        err_of(&format!(
            "name = \"t\"\n{OK_SWEEP}[churn]\noffline = 0.0\ndropout = 0.0\n"
        )),
        "[churn] sets neither offline nor dropout above 0; omit the section for a \
         churn-free population"
    );
    assert_eq!(
        err_of(&format!("name = \"t\"\n{OK_SWEEP}[churn]\ndrop = 0.5\n")),
        "unknown field `drop` in [churn]; expected one of: offline, dropout"
    );
}

#[test]
fn adversary_and_churn_feed_the_seed_hash() {
    // The attack model changes results, so it must change the canonical
    // string (and therefore every derived per-run seed); re-ordering
    // knobs or adding comments must not.
    let base = ScenarioSpec::from_toml_str(&format!("name = \"t\"\n{OK_SWEEP}")).unwrap();
    let attacked = ScenarioSpec::from_toml_str(&format!(
        "name = \"t\"\n{OK_SWEEP}[adversary]\nfraction = 0.2\nmode = \"sign_flip\"\n"
    ))
    .unwrap();
    let churned =
        ScenarioSpec::from_toml_str(&format!("name = \"t\"\n{OK_SWEEP}[churn]\ndropout = 0.3\n"))
            .unwrap();
    assert_ne!(base.canonical_string(), attacked.canonical_string());
    assert_ne!(base.canonical_string(), churned.canonical_string());
    assert_ne!(attacked.canonical_string(), churned.canonical_string());
    // Append-only discipline: an honest, churn-free spec's canonical
    // string is byte-identical to what it was before these sections
    // existed (it mentions neither knob).
    assert!(!base.canonical_string().contains("adversary"));
    assert!(!base.canonical_string().contains("churn"));
}

#[test]
fn every_bundled_scenario_parses() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let spec =
            ScenarioSpec::from_path(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !fedbiad_scenario::expand(&spec).unwrap().is_empty(),
            "{} expands to no runs",
            path.display()
        );
        seen += 1;
    }
    assert!(seen >= 8, "expected ≥ 8 bundled scenarios, found {seen}");
}
