//! The declarative scenario schema: parsing + validation.
//!
//! A [`ScenarioSpec`] is the typed form of a TOML (or JSON) scenario
//! file. Decoding is strict: unknown fields are rejected with the list
//! of expected ones, numeric fields are range-checked, and every name
//! (workload, method, compressor, policy, profile) is resolved against
//! the registries at load time — a typo fails before any training
//! happens, with an error naming the valid alternatives.
//!
//! See `scenarios/README.md` at the repository root for the field-by-field
//! schema reference.

use crate::methods::{CompressorChoice, Method};
use crate::simrun::PolicyChoice;
use crate::toml::parse_toml;
use fedbiad_data::partition::ImagePartition;
use fedbiad_fl::workload::{Scale, Workload};
use fedbiad_fl::NetworkModel;
use fedbiad_sim::HeterogeneityProfile;
use serde::Value;
use std::path::Path;

/// A scenario-spec loading/validation failure; `Display` is the full
/// actionable message.
#[derive(Clone, Debug)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Which round-loop driver executes the runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The lock-step runner (`Experiment::run`): wall-clock timing, no
    /// link/heterogeneity model.
    Lockstep,
    /// The discrete-event simulator: virtual clock, per-client links,
    /// server policies.
    Sim,
}

impl Mode {
    /// Canonical spec name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Lockstep => "lockstep",
            Mode::Sim => "sim",
        }
    }
}

/// How per-run seeds are assigned during grid expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedMode {
    /// Every run uses the base seed (the legacy-binary convention: all
    /// methods see identical data and client sampling, so curves are
    /// directly comparable). Replicate r > 0 gets a seed derived from
    /// the replicate index alone, so it stays paired across every grid
    /// cell — methods remain comparable within each replicate.
    Shared,
    /// Every run gets a distinct seed derived from the spec hash and the
    /// run's grid index via `StreamTag::Scenario`.
    PerRun,
}

/// A heterogeneity-profile axis value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileChoice {
    /// Identical clients; link taken from `[network]` (default: the
    /// paper's 5G profile).
    Homogeneous,
    /// Mixed 5G/LTE/Wi-Fi cohort with log-uniform compute spread.
    Mixed,
    /// 30 % of clients 15× slower on compute.
    Stragglers,
}

impl ProfileChoice {
    /// Parse a spec name.
    pub fn parse(s: &str) -> Option<ProfileChoice> {
        match s.to_ascii_lowercase().as_str() {
            "homogeneous" | "homog" => Some(ProfileChoice::Homogeneous),
            "mixed" | "mixed-mobile" => Some(ProfileChoice::Mixed),
            "stragglers" | "straggler" => Some(ProfileChoice::Stragglers),
            _ => None,
        }
    }

    /// Canonical spec name.
    pub fn name(self) -> &'static str {
        match self {
            ProfileChoice::Homogeneous => "homogeneous",
            ProfileChoice::Mixed => "mixed",
            ProfileChoice::Stragglers => "stragglers",
        }
    }

    /// Resolve to the simulator's profile; `net` is the `[network]`
    /// override and applies to the homogeneous profile only.
    pub fn resolve(self, net: Option<NetworkModel>) -> HeterogeneityProfile {
        match self {
            ProfileChoice::Homogeneous => HeterogeneityProfile::Homogeneous {
                net: net.unwrap_or_else(NetworkModel::t_mobile_5g),
            },
            ProfileChoice::Mixed => HeterogeneityProfile::MixedMobile {
                compute_spread: 6.0,
                jitter: 0.1,
            },
            ProfileChoice::Stragglers => HeterogeneityProfile::Stragglers {
                fraction: 0.3,
                slowdown: 15.0,
                jitter: 0.1,
            },
        }
    }
}

/// The `[run]` section: shared execution knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunSection {
    /// Global rounds R.
    pub rounds: usize,
    /// Base experiment seed.
    pub seed: u64,
    /// Per-run seed policy.
    pub seed_mode: SeedMode,
    /// Workload scale.
    pub scale: Scale,
    /// Evaluate every k rounds.
    pub eval_every: usize,
    /// Cap on evaluated test samples (0 = all).
    pub eval_max: usize,
    /// Client participation fraction κ.
    pub fraction: f32,
    /// Independent repetitions of every grid cell.
    pub replicates: usize,
}

impl Default for RunSection {
    fn default() -> Self {
        Self {
            rounds: 10,
            seed: 42,
            seed_mode: SeedMode::Shared,
            scale: Scale::Lab,
            eval_every: 1,
            eval_max: 2_000,
            fraction: 0.1,
            replicates: 1,
        }
    }
}

/// The `[sweep]` section: the grid axes. Every axis accepts a single
/// string or an array of strings in the spec file.
#[derive(Clone, Debug)]
pub struct SweepSection {
    /// Dataset/model pairs.
    pub workloads: Vec<Workload>,
    /// Registry methods.
    pub methods: Vec<Method>,
    /// Extra sketched compressors (`None` = the method as-is).
    pub compressors: Vec<Option<CompressorChoice>>,
    /// Server policies (sim mode only).
    pub policies: Vec<PolicyChoice>,
    /// Heterogeneity profiles (sim mode only).
    pub profiles: Vec<ProfileChoice>,
}

/// The `[fedbiad]` section: method hyper-parameter overrides.
#[derive(Clone, Copy, Debug, Default)]
pub struct FedBiadSection {
    /// Stage boundary R_b (default: R − 5).
    pub stage_boundary: Option<usize>,
    /// Dropout rate p override (default: the workload's paper rate).
    pub dropout_rate: Option<f32>,
}

/// The `[aggregation]` section: server aggregation-engine selection.
///
/// `streaming = true` turns on the sharded streaming engine (clients
/// encode real wire bytes, the server decodes shard by shard);
/// `shard_kb` sets the shard size. These two knobs are **bit-identical**
/// (`tests/aggregation_equivalence.rs`), so — unlike `[training]` — they
/// deliberately do *not* feed the canonical seed hash: flipping them can
/// never change results, only speed and memory.
///
/// `tree_fanin` layers a hierarchical reduction over the streaming
/// engine (requires `streaming = true`). Unlike the other two knobs it
/// changes the f32 summation *association*, so it is **not**
/// bit-identical — and therefore *does* feed the canonical seed hash
/// when set, like `[training] batch_size`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregationSection {
    /// Run the sharded streaming engine.
    pub streaming: bool,
    /// Shard size in KiB (requires `streaming = true`; default 64).
    pub shard_kb: Option<u32>,
    /// Tree-reduction fan-in ≥ 2 (requires `streaming = true`; omitted =
    /// the serial streaming reducer).
    pub tree_fanin: Option<u32>,
    /// Robust estimator: `"mean"` (default), `"trimmed_mean"`,
    /// `"coordinate_median"`, or `"norm_clip"`. Robust estimators change
    /// results, so a non-mean selection **does** feed the canonical seed
    /// hash (the two engines stay bit-identical within a selection).
    pub robust: Option<RobustChoice>,
    /// Per-tail trim fraction for `robust = "trimmed_mean"` (default 0.1;
    /// must lie in `[0, 0.5)`).
    pub trim_frac: Option<f32>,
    /// Clip radius for `robust = "norm_clip"` (must be finite and > 0).
    pub tau: Option<f32>,
}

/// The `[aggregation] robust` estimator axis values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RobustChoice {
    /// The historical weighted mean (the default; bit-identical to specs
    /// written before the knob existed).
    Mean,
    /// Per-coordinate trimmed mean (knob: `trim_frac`).
    TrimmedMean,
    /// Per-coordinate weighted lower median.
    CoordinateMedian,
    /// Per-upload update-norm clipping before the plain mean (knob: `tau`).
    NormClip,
}

impl RobustChoice {
    /// The spec-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            RobustChoice::Mean => "mean",
            RobustChoice::TrimmedMean => "trimmed_mean",
            RobustChoice::CoordinateMedian => "coordinate_median",
            RobustChoice::NormClip => "norm_clip",
        }
    }
}

impl AggregationSection {
    /// Resolve to the runner's engine settings.
    pub fn resolve(&self) -> fedbiad_fl::AggSettings {
        fedbiad_fl::AggSettings {
            streaming: self.streaming,
            shard_kb: self.shard_kb.unwrap_or(64),
            tree_fanin: self.tree_fanin.unwrap_or(0),
            robust: self.robust_kind(),
        }
    }

    /// The resolved robust-estimator selection (`Mean` when unset).
    pub fn robust_kind(&self) -> fedbiad_fl::RobustKind {
        match self.robust {
            None | Some(RobustChoice::Mean) => fedbiad_fl::RobustKind::Mean,
            Some(RobustChoice::TrimmedMean) => fedbiad_fl::RobustKind::TrimmedMean {
                trim_frac: self.trim_frac.unwrap_or(0.1),
            },
            Some(RobustChoice::CoordinateMedian) => fedbiad_fl::RobustKind::CoordinateMedian,
            Some(RobustChoice::NormClip) => fedbiad_fl::RobustKind::NormClip {
                tau: self.tau.unwrap_or(1.0),
            },
        }
    }
}

/// The `[population]` section: replace the workload scale's registered
/// population with a lazily materialised one (image workloads only).
///
/// Client shards and heterogeneity profiles derive on demand from the
/// seed, and cohorts are drawn with the O(cohort) sparse sampler, so a
/// spec can register 10⁶ clients while the process holds only the active
/// cohort. Changing any field changes the data every client sees, so the
/// whole section feeds the canonical seed hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopulationSection {
    /// Registered clients K.
    pub clients: usize,
    /// Per-round cohort override (default: ⌊κK⌋ from `[run] fraction`).
    pub cohort: Option<usize>,
    /// Samples per client shard (default 60 — the paper's 60k/1000
    /// per-client scarcity).
    pub samples_per_client: usize,
}

/// The `[training]` section: local-training overrides applied on top of
/// the workload's paper hyper-parameters.
///
/// Batched and sequential SGD genuinely differ once the batch size moves
/// (a different number of gradient terms is averaged per step), so the
/// batch size is an **explicit opt-in knob** — omitted, every workload
/// trains at its paper batch size and reproduces the per-sample
/// reference bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainingSection {
    /// Mini-batch size override (images: samples; text: windows).
    pub batch_size: Option<usize>,
}

/// A fully validated scenario specification.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Short identifier (output directory name).
    pub name: String,
    /// Which driver executes the runs.
    pub mode: Mode,
    /// Shared execution knobs.
    pub run: RunSection,
    /// The grid axes.
    pub sweep: SweepSection,
    /// Image-partitioner override (`[partition]`).
    pub partition: Option<ImagePartition>,
    /// Homogeneous-link override (`[network]`, sim mode).
    pub network: Option<NetworkModel>,
    /// FedBIAD hyper-parameter overrides.
    pub fedbiad: FedBiadSection,
    /// Local-training overrides (`[training]`).
    pub training: TrainingSection,
    /// Aggregation-engine selection (`[aggregation]`).
    pub aggregation: AggregationSection,
    /// Lazy registered-population override (`[population]`).
    pub population: Option<PopulationSection>,
    /// Byzantine adversary model (`[adversary]`): a static fraction of
    /// the population corrupts its uploads every round.
    pub adversary: Option<fedbiad_fl::AdversarySpec>,
    /// Client churn model (`[churn]`): per-round offline and mid-round
    /// dropout probabilities.
    pub churn: Option<fedbiad_fl::ChurnSpec>,
    /// TTA target-accuracy override (`[sim] target_acc`).
    pub target_acc: Option<f64>,
}

/// CLI-flag overrides the thin wrapper binaries map onto a loaded spec
/// (so `fig2 --rounds 5 --scale smoke` still works).
#[derive(Clone, Debug, Default)]
pub struct Overrides {
    /// `--rounds`.
    pub rounds: Option<usize>,
    /// `--seed`.
    pub seed: Option<u64>,
    /// `--scale`.
    pub scale: Option<Scale>,
    /// `--eval-max`.
    pub eval_max: Option<usize>,
    /// `--fraction`.
    pub fraction: Option<f32>,
    /// `--workloads`.
    pub workloads: Option<Vec<Workload>>,
    /// `--methods`.
    pub methods: Option<Vec<Method>>,
    /// `--policies`.
    pub policies: Option<Vec<PolicyChoice>>,
    /// `--profiles`.
    pub profiles: Option<Vec<ProfileChoice>>,
    /// `--target`.
    pub target: Option<f64>,
}

const KNOWN_METHODS: &str =
    "FedAvg, FedDrop, AFD, FedMP, FjORD, HeteroFL, FedBIAD, FedPAQ, SignSGD, STC, DGC, \
     AFD+DGC, Fjord+DGC, FedBIAD+DGC";
const KNOWN_WORKLOADS: &str = "mnist, fmnist, ptb, wikitext2, reddit";

impl ScenarioSpec {
    /// Parse + validate a TOML spec.
    pub fn from_toml_str(text: &str) -> Result<ScenarioSpec, SpecError> {
        let value = parse_toml(text).map_err(|e| SpecError::new(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parse + validate a JSON spec (same schema as TOML).
    pub fn from_json_str(text: &str) -> Result<ScenarioSpec, SpecError> {
        let value = serde_json::parse_value_str(text)
            .map_err(|e| SpecError::new(format!("JSON parse error: {e}")))?;
        Self::from_value(&value)
    }

    /// Load a spec from disk, dispatching on the `.toml`/`.json`
    /// extension (default: TOML).
    pub fn from_path(path: &Path) -> Result<ScenarioSpec, SpecError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            SpecError::new(format!(
                "cannot read scenario spec `{}`: {e}",
                path.display()
            ))
        })?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json_str(&text),
            _ => Self::from_toml_str(&text),
        }
    }

    /// Decode + validate from a parsed value tree.
    pub fn from_value(v: &Value) -> Result<ScenarioSpec, SpecError> {
        let root = v
            .as_object()
            .ok_or_else(|| SpecError::new("scenario spec must be a table/object at top level"))?;
        check_fields(
            root,
            "top level",
            &[
                "name",
                "mode",
                "run",
                "sweep",
                "partition",
                "network",
                "fedbiad",
                "training",
                "aggregation",
                "population",
                "adversary",
                "churn",
                "sim",
            ],
        )?;

        let name = match get(root, "name") {
            Some(v) => str_of(v, "top level", "name")?,
            None => {
                return Err(SpecError::new(
                    "missing required field `name` (a short scenario identifier)",
                ))
            }
        };
        let mode = match get(root, "mode") {
            None => Mode::Lockstep,
            Some(v) => match str_of(v, "top level", "mode")?.as_str() {
                "lockstep" => Mode::Lockstep,
                "sim" => Mode::Sim,
                other => {
                    return Err(SpecError::new(format!(
                        "unknown mode `{other}`; expected \"lockstep\" or \"sim\""
                    )))
                }
            },
        };

        let run = decode_run(get(root, "run"))?;
        let sweep = decode_sweep(get(root, "sweep"), mode)?;
        let partition = match get(root, "partition") {
            None => None,
            Some(v) => Some(decode_partition(v)?),
        };
        let network = match get(root, "network") {
            None => None,
            Some(v) => Some(decode_network(v)?),
        };
        let fedbiad = decode_fedbiad(get(root, "fedbiad"))?;
        let training = decode_training(get(root, "training"))?;
        let aggregation = decode_aggregation(get(root, "aggregation"))?;
        let population = match get(root, "population") {
            None => None,
            Some(v) => Some(decode_population(v)?),
        };
        let adversary = match get(root, "adversary") {
            None => None,
            Some(v) => Some(decode_adversary(v)?),
        };
        let churn = match get(root, "churn") {
            None => None,
            Some(v) => Some(decode_churn(v)?),
        };
        let target_acc = match get(root, "sim") {
            None => None,
            Some(v) => decode_sim(v)?,
        };
        if mode == Mode::Lockstep && get(root, "sim").is_some() {
            return Err(SpecError::new(
                "[sim] requires mode = \"sim\"; the lock-step runner has no virtual clock",
            ));
        }

        let spec = ScenarioSpec {
            name,
            mode,
            run,
            sweep,
            partition,
            network,
            fedbiad,
            training,
            aggregation,
            population,
            adversary,
            churn,
            target_acc,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Apply CLI-flag overrides (thin-wrapper binaries). Re-validates, so
    /// an override cannot smuggle an inconsistent combination past the
    /// spec checks — including sim-only overrides on a lock-step spec,
    /// which would otherwise be silently discarded by grid expansion.
    pub fn apply_overrides(&mut self, ov: &Overrides) -> Result<(), SpecError> {
        if self.mode == Mode::Lockstep {
            if ov.policies.is_some() || ov.profiles.is_some() {
                return Err(SpecError::new(
                    "--policies/--profiles require mode = \"sim\" (this spec runs the \
                     lock-step runner)",
                ));
            }
            if ov.target.is_some() {
                return Err(SpecError::new(
                    "--target requires mode = \"sim\"; the lock-step runner has no \
                     virtual clock",
                ));
            }
        }
        if let Some(r) = ov.rounds {
            self.run.rounds = r;
        }
        if let Some(s) = ov.seed {
            self.run.seed = s;
        }
        if let Some(s) = ov.scale {
            self.run.scale = s;
        }
        if let Some(e) = ov.eval_max {
            self.run.eval_max = e;
        }
        if let Some(f) = ov.fraction {
            self.run.fraction = f;
        }
        if let Some(w) = &ov.workloads {
            self.sweep.workloads = w.clone();
        }
        if let Some(m) = &ov.methods {
            self.sweep.methods = m.clone();
        }
        if let Some(p) = &ov.policies {
            self.sweep.policies = p.clone();
        }
        if let Some(p) = &ov.profiles {
            self.sweep.profiles = p.clone();
        }
        if let Some(t) = ov.target {
            self.target_acc = Some(t);
        }
        self.validate()
    }

    /// Cross-field consistency checks (also re-run after overrides and
    /// before expansion).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.run.rounds == 0 {
            return Err(SpecError::new(
                "[run] rounds must be a positive integer, got 0",
            ));
        }
        if !(self.run.fraction > 0.0 && self.run.fraction <= 1.0) {
            return Err(SpecError::new(format!(
                "[run] fraction = {} is out of range; the client participation fraction must \
                 be in (0, 1]",
                self.run.fraction
            )));
        }
        for axis in [
            ("workload", self.sweep.workloads.is_empty()),
            ("method", self.sweep.methods.is_empty()),
            ("compressor", self.sweep.compressors.is_empty()),
        ] {
            if axis.1 {
                return Err(SpecError::new(format!(
                    "sweep axis `{}` is empty; list at least one value or omit the field",
                    axis.0
                )));
            }
        }
        if self.mode == Mode::Sim
            && (self.sweep.policies.is_empty() || self.sweep.profiles.is_empty())
        {
            let axis = if self.sweep.policies.is_empty() {
                "policy"
            } else {
                "profile"
            };
            return Err(SpecError::new(format!(
                "sweep axis `{axis}` is empty; list at least one value or omit the field"
            )));
        }
        for c in self.sweep.compressors.iter().flatten() {
            for m in &self.sweep.methods {
                if m.embeds_compressor() {
                    return Err(SpecError::new(format!(
                        "compressor `{}` cannot compose with method `{}`: it already embeds a \
                         compressor (drop the compressor axis or use the base method)",
                        c.name(),
                        m.name()
                    )));
                }
            }
        }
        if self.network.is_some() {
            if self.mode != Mode::Sim {
                return Err(SpecError::new(
                    "[network] requires mode = \"sim\"; the lock-step runner does not model links",
                ));
            }
            if let Some(p) = self
                .sweep
                .profiles
                .iter()
                .find(|p| **p != ProfileChoice::Homogeneous)
            {
                return Err(SpecError::new(format!(
                    "[network] applies only to the homogeneous profile; remove it or drop \
                     `{}` from the profile axis",
                    p.name()
                )));
            }
        }
        if self.partition.is_some() {
            if let Some(w) = self.sweep.workloads.iter().find(|w| w.is_text()) {
                return Err(SpecError::new(format!(
                    "[partition] applies to image workloads only; `{}` is a text workload",
                    w.name()
                )));
            }
        }
        if let Some(t) = self.target_acc {
            if !(t > 0.0 && t <= 1.0) {
                return Err(SpecError::new(format!(
                    "[sim] target_acc = {t} is out of range; the target accuracy must be in (0, 1]"
                )));
            }
        }
        if let Some(pop) = self.population {
            if let Some(w) = self.sweep.workloads.iter().find(|w| w.is_text()) {
                return Err(SpecError::new(format!(
                    "[population] applies to image workloads only; `{}` is a text workload \
                     (its partitioning is part of the data model)",
                    w.name()
                )));
            }
            if self.partition.is_some() {
                return Err(SpecError::new(
                    "[population] and [partition] are mutually exclusive: the lazy population \
                     derives balanced per-client shards and never materialises the pool the \
                     partitioner would split",
                ));
            }
            if let Some(c) = pop.cohort {
                if c == 0 || c > pop.clients {
                    return Err(SpecError::new(format!(
                        "[population] cohort = {c} is out of range; the cohort must be in \
                         [1, clients = {}]",
                        pop.clients
                    )));
                }
            }
        }
        if let Some(p) = self.fedbiad.dropout_rate {
            if !(p > 0.0 && p < 1.0) {
                return Err(SpecError::new(format!(
                    "[fedbiad] dropout_rate = {p} is out of range; the dropout rate must be \
                     in (0, 1)"
                )));
            }
        }
        Ok(())
    }

    /// A canonical, field-order-stable string of everything that defines
    /// the grid — the input to the per-run seed hash. Changing any knob
    /// changes every derived seed; formatting of the spec file does not.
    ///
    /// Sections added after the format was frozen (`[training]`) only
    /// append when actually set, so specs that do not use them keep the
    /// exact derived seeds they had before the section existed.
    pub fn canonical_string(&self) -> String {
        let names = |v: &[String]| v.join(",");
        let mut s = format!(
            "name={};mode={};rounds={};seed={};seed_mode={:?};scale={:?};eval_every={};\
             eval_max={};fraction={};replicates={};workloads=[{}];methods=[{}];\
             compressors=[{}];policies=[{}];profiles=[{}];partition={:?};network={:?};\
             fedbiad={:?};target={:?}",
            self.name,
            self.mode.name(),
            self.run.rounds,
            self.run.seed,
            self.run.seed_mode,
            self.run.scale,
            self.run.eval_every,
            self.run.eval_max,
            self.run.fraction,
            self.run.replicates,
            names(
                &self
                    .sweep
                    .workloads
                    .iter()
                    .map(|w| w.name().to_string())
                    .collect::<Vec<_>>()
            ),
            names(
                &self
                    .sweep
                    .methods
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect::<Vec<_>>()
            ),
            names(
                &self
                    .sweep
                    .compressors
                    .iter()
                    .map(|c| c.map(|c| c.name()).unwrap_or("none").to_string())
                    .collect::<Vec<_>>()
            ),
            names(
                &self
                    .sweep
                    .policies
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>()
            ),
            names(
                &self
                    .sweep
                    .profiles
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>()
            ),
            self.partition,
            self.network
                .map(|n| (n.uplink_mbps, n.downlink_mbps, n.rtt_seconds)),
            (self.fedbiad.stage_boundary, self.fedbiad.dropout_rate),
            self.target_acc,
        );
        if let Some(bs) = self.training.batch_size {
            s.push_str(&format!(";training={bs}"));
        }
        // Appended only when set (same append-only precedent as
        // [training]): a lazy population changes every client's data, and
        // a tree fan-in changes the f32 summation association, so both
        // must move the derived seeds — but specs without them keep the
        // seeds they had before the knobs existed.
        if let Some(pop) = self.population {
            s.push_str(&format!(
                ";population={},{:?},{}",
                pop.clients, pop.cohort, pop.samples_per_client
            ));
        }
        if let Some(fanin) = self.aggregation.tree_fanin {
            s.push_str(&format!(";tree_fanin={fanin}"));
        }
        // Robust estimators change results (unlike streaming/shard_kb), so
        // a non-mean selection feeds the seed hash. `Mean` — implicit or
        // an explicit `robust = "mean"` — appends nothing, preserving
        // every pre-existing derived seed.
        match self.aggregation.robust_kind() {
            fedbiad_fl::RobustKind::Mean => {}
            k => s.push_str(&format!(";robust={k:?}")),
        }
        // Both models change which uploads reach aggregation (and what
        // they contain), so they feed the seed hash whenever present;
        // specs without the sections keep their pre-existing seeds.
        if let Some(adv) = self.adversary {
            s.push_str(&format!(";adversary={},{:?}", adv.fraction, adv.mode));
        }
        if let Some(ch) = self.churn {
            s.push_str(&format!(";churn={},{}", ch.offline, ch.dropout));
        }
        s
    }
}

// ---- decoding helpers ----

fn get<'v>(pairs: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn check_fields(
    pairs: &[(String, Value)],
    section: &str,
    allowed: &[&str],
) -> Result<(), SpecError> {
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            let place = if section == "top level" {
                "at top level".to_string()
            } else {
                format!("in [{section}]")
            };
            return Err(SpecError::new(format!(
                "unknown field `{k}` {place}; expected one of: {}",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn table_of<'v>(v: &'v Value, section: &str) -> Result<&'v [(String, Value)], SpecError> {
    v.as_object()
        .map(|o| o.as_slice())
        .ok_or_else(|| SpecError::new(format!("[{section}] must be a table")))
}

fn str_of(v: &Value, section: &str, key: &str) -> Result<String, SpecError> {
    v.as_str().map(|s| s.to_string()).ok_or_else(|| {
        SpecError::new(if section == "top level" {
            format!("`{key}` must be a string")
        } else {
            format!("[{section}] {key} must be a string")
        })
    })
}

fn usize_of(v: &Value, section: &str, key: &str, min: usize) -> Result<usize, SpecError> {
    let bad = || {
        SpecError::new(format!(
            "[{section}] {key} must be {} integer",
            if min == 0 {
                "a non-negative"
            } else {
                "a positive"
            }
        ))
    };
    let n: i64 = match v {
        Value::Int(i) => *i,
        Value::UInt(u) => i64::try_from(*u).map_err(|_| bad())?,
        _ => return Err(bad()),
    };
    if n < min as i64 {
        return Err(SpecError::new(format!(
            "[{section}] {key} must be {} integer, got {n}",
            if min == 0 {
                "a non-negative"
            } else {
                "a positive"
            }
        )));
    }
    Ok(n as usize)
}

fn u64_of(v: &Value, section: &str, key: &str) -> Result<u64, SpecError> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::UInt(u) => Ok(*u),
        _ => Err(SpecError::new(format!(
            "[{section}] {key} must be a non-negative integer"
        ))),
    }
}

fn f64_of(v: &Value, section: &str, key: &str) -> Result<f64, SpecError> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        Value::UInt(u) => Ok(*u as f64),
        _ => Err(SpecError::new(format!(
            "[{section}] {key} must be a number"
        ))),
    }
}

/// A sweep axis: a single string or a non-empty array of strings.
fn strings_of(v: &Value, axis: &str) -> Result<Vec<String>, SpecError> {
    match v {
        Value::Str(s) => Ok(vec![s.clone()]),
        Value::Array(items) => {
            if items.is_empty() {
                return Err(SpecError::new(format!(
                    "sweep axis `{axis}` is empty; list at least one value or omit the field"
                )));
            }
            items
                .iter()
                .map(|x| {
                    x.as_str().map(|s| s.to_string()).ok_or_else(|| {
                        SpecError::new(format!("sweep axis `{axis}` must contain strings only"))
                    })
                })
                .collect()
        }
        _ => Err(SpecError::new(format!(
            "sweep axis `{axis}` must be a string or an array of strings"
        ))),
    }
}

fn decode_run(v: Option<&Value>) -> Result<RunSection, SpecError> {
    let mut run = RunSection::default();
    let Some(v) = v else { return Ok(run) };
    let t = table_of(v, "run")?;
    check_fields(
        t,
        "run",
        &[
            "rounds",
            "seed",
            "seed_mode",
            "scale",
            "eval_every",
            "eval_max",
            "fraction",
            "replicates",
        ],
    )?;
    if let Some(x) = get(t, "rounds") {
        run.rounds = usize_of(x, "run", "rounds", 1)?;
    }
    if let Some(x) = get(t, "seed") {
        run.seed = u64_of(x, "run", "seed")?;
    }
    if let Some(x) = get(t, "seed_mode") {
        run.seed_mode = match str_of(x, "run", "seed_mode")?.as_str() {
            "shared" => SeedMode::Shared,
            "per-run" | "per_run" => SeedMode::PerRun,
            other => {
                return Err(SpecError::new(format!(
                    "[run] seed_mode must be \"shared\" or \"per-run\", got `{other}`"
                )))
            }
        };
    }
    if let Some(x) = get(t, "scale") {
        run.scale = match str_of(x, "run", "scale")?.as_str() {
            "smoke" => Scale::Smoke,
            "lab" => Scale::Lab,
            other => {
                return Err(SpecError::new(format!(
                    "[run] scale must be \"smoke\" or \"lab\", got `{other}`"
                )))
            }
        };
    }
    if let Some(x) = get(t, "eval_every") {
        run.eval_every = usize_of(x, "run", "eval_every", 1)?;
    }
    if let Some(x) = get(t, "eval_max") {
        run.eval_max = usize_of(x, "run", "eval_max", 0)?;
    }
    if let Some(x) = get(t, "fraction") {
        run.fraction = f64_of(x, "run", "fraction")? as f32;
    }
    if let Some(x) = get(t, "replicates") {
        run.replicates = usize_of(x, "run", "replicates", 1)?;
    }
    Ok(run)
}

fn decode_sweep(v: Option<&Value>, mode: Mode) -> Result<SweepSection, SpecError> {
    let Some(v) = v else {
        return Err(SpecError::new(
            "missing required [sweep] section with `workload` and `method` axes",
        ));
    };
    let t = table_of(v, "sweep")?;
    check_fields(
        t,
        "sweep",
        &["workload", "method", "compressor", "policy", "profile"],
    )?;

    let workloads = match get(t, "workload") {
        None => {
            return Err(SpecError::new(
                "missing required sweep axis `workload` in [sweep]",
            ))
        }
        Some(x) => strings_of(x, "workload")?
            .iter()
            .map(|s| {
                Workload::parse(s).ok_or_else(|| {
                    SpecError::new(format!(
                        "unknown workload `{s}` in sweep axis `workload`; known workloads: \
                         {KNOWN_WORKLOADS}"
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let methods = match get(t, "method") {
        None => {
            return Err(SpecError::new(
                "missing required sweep axis `method` in [sweep]",
            ))
        }
        Some(x) => strings_of(x, "method")?
            .iter()
            .map(|s| {
                Method::parse(s).ok_or_else(|| {
                    SpecError::new(format!(
                        "unknown method `{s}` in sweep axis `method`; known methods: \
                         {KNOWN_METHODS}"
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let compressors = match get(t, "compressor") {
        None => vec![None],
        Some(x) => strings_of(x, "compressor")?
            .iter()
            .map(|s| {
                if s.eq_ignore_ascii_case("none") {
                    Ok(None)
                } else {
                    CompressorChoice::parse(s).map(Some).ok_or_else(|| {
                        SpecError::new(format!(
                            "unknown compressor `{s}` in sweep axis `compressor`; known \
                             compressors: none, dgc, signsgd, fedpaq, stc"
                        ))
                    })
                }
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let policies = match get(t, "policy") {
        None => {
            if mode == Mode::Sim {
                vec![PolicyChoice::Sync]
            } else {
                Vec::new()
            }
        }
        Some(x) => {
            if mode != Mode::Sim {
                return Err(SpecError::new(
                    "sweep axis `policy` requires mode = \"sim\" (this spec runs the \
                     lock-step runner)",
                ));
            }
            strings_of(x, "policy")?
                .iter()
                .map(|s| {
                    PolicyChoice::parse(s).ok_or_else(|| {
                        SpecError::new(format!(
                            "unknown policy `{s}` in sweep axis `policy`; known policies: \
                             sync, deadline, fedbuff"
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let profiles = match get(t, "profile") {
        None => {
            if mode == Mode::Sim {
                vec![ProfileChoice::Homogeneous]
            } else {
                Vec::new()
            }
        }
        Some(x) => {
            if mode != Mode::Sim {
                return Err(SpecError::new(
                    "sweep axis `profile` requires mode = \"sim\" (this spec runs the \
                     lock-step runner)",
                ));
            }
            strings_of(x, "profile")?
                .iter()
                .map(|s| {
                    ProfileChoice::parse(s).ok_or_else(|| {
                        SpecError::new(format!(
                            "unknown profile `{s}` in sweep axis `profile`; known profiles: \
                             homogeneous, mixed, stragglers"
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    Ok(SweepSection {
        workloads,
        methods,
        compressors,
        policies,
        profiles,
    })
}

fn decode_partition(v: &Value) -> Result<ImagePartition, SpecError> {
    let t = table_of(v, "partition")?;
    check_fields(t, "partition", &["kind", "alpha", "shards_per_client"])?;
    let kind = match get(t, "kind") {
        None => {
            return Err(SpecError::new(
                "missing required field `kind` in [partition]; expected \"iid\", \"shards\" \
                 or \"dirichlet\"",
            ))
        }
        Some(x) => str_of(x, "partition", "kind")?,
    };
    match kind.as_str() {
        "iid" => {
            if get(t, "alpha").is_some() || get(t, "shards_per_client").is_some() {
                return Err(SpecError::new(
                    "[partition] kind = \"iid\" takes no parameters",
                ));
            }
            Ok(ImagePartition::Iid)
        }
        "shards" => {
            if get(t, "alpha").is_some() {
                return Err(SpecError::new(
                    "[partition] `alpha` belongs to kind = \"dirichlet\", not \"shards\"",
                ));
            }
            let spc = match get(t, "shards_per_client") {
                None => {
                    return Err(SpecError::new(
                        "missing required field `shards_per_client` in [partition] for \
                         kind = \"shards\"",
                    ))
                }
                Some(x) => usize_of(x, "partition", "shards_per_client", 1)?,
            };
            Ok(ImagePartition::Shards {
                shards_per_client: spc,
            })
        }
        "dirichlet" => {
            if get(t, "shards_per_client").is_some() {
                return Err(SpecError::new(
                    "[partition] `shards_per_client` belongs to kind = \"shards\", not \
                     \"dirichlet\"",
                ));
            }
            let alpha =
                match get(t, "alpha") {
                    None => return Err(SpecError::new(
                        "missing required field `alpha` in [partition] for kind = \"dirichlet\"",
                    )),
                    Some(x) => f64_of(x, "partition", "alpha")? as f32,
                };
            if alpha <= 0.0 {
                return Err(SpecError::new(format!(
                    "[partition] alpha = {alpha} is out of range; the Dirichlet concentration \
                     must be positive"
                )));
            }
            Ok(ImagePartition::Dirichlet { alpha })
        }
        other => Err(SpecError::new(format!(
            "unknown partition kind `{other}`; expected \"iid\", \"shards\" or \"dirichlet\""
        ))),
    }
}

fn decode_network(v: &Value) -> Result<NetworkModel, SpecError> {
    let t = table_of(v, "network")?;
    check_fields(
        t,
        "network",
        &["uplink_mbps", "downlink_mbps", "rtt_seconds"],
    )?;
    let mut net = NetworkModel::t_mobile_5g();
    if let Some(x) = get(t, "uplink_mbps") {
        net.uplink_mbps = f64_of(x, "network", "uplink_mbps")?;
    }
    if let Some(x) = get(t, "downlink_mbps") {
        net.downlink_mbps = f64_of(x, "network", "downlink_mbps")?;
    }
    if let Some(x) = get(t, "rtt_seconds") {
        net.rtt_seconds = f64_of(x, "network", "rtt_seconds")?;
    }
    if net.uplink_mbps <= 0.0 || net.downlink_mbps <= 0.0 {
        return Err(SpecError::new(
            "[network] link speeds must be positive Mbps values",
        ));
    }
    if net.rtt_seconds < 0.0 {
        return Err(SpecError::new("[network] rtt_seconds must be non-negative"));
    }
    Ok(net)
}

fn decode_fedbiad(v: Option<&Value>) -> Result<FedBiadSection, SpecError> {
    let mut fb = FedBiadSection::default();
    let Some(v) = v else { return Ok(fb) };
    let t = table_of(v, "fedbiad")?;
    check_fields(t, "fedbiad", &["stage_boundary", "dropout_rate"])?;
    if let Some(x) = get(t, "stage_boundary") {
        fb.stage_boundary = Some(usize_of(x, "fedbiad", "stage_boundary", 1)?);
    }
    if let Some(x) = get(t, "dropout_rate") {
        fb.dropout_rate = Some(f64_of(x, "fedbiad", "dropout_rate")? as f32);
    }
    Ok(fb)
}

fn decode_aggregation(v: Option<&Value>) -> Result<AggregationSection, SpecError> {
    let mut agg = AggregationSection::default();
    let Some(v) = v else { return Ok(agg) };
    let t = table_of(v, "aggregation")?;
    check_fields(
        t,
        "aggregation",
        &[
            "streaming",
            "shard_kb",
            "tree_fanin",
            "robust",
            "trim_frac",
            "tau",
        ],
    )?;
    if let Some(x) = get(t, "streaming") {
        agg.streaming = match x {
            Value::Bool(b) => *b,
            _ => {
                return Err(SpecError::new(
                    "[aggregation] streaming must be a boolean (true/false)",
                ))
            }
        };
    }
    if let Some(x) = get(t, "shard_kb") {
        let kb = usize_of(x, "aggregation", "shard_kb", 1)?;
        if kb > 1 << 20 {
            return Err(SpecError::new(format!(
                "[aggregation] shard_kb = {kb} is out of range; shards above 1 GiB defeat \
                 the point of sharding"
            )));
        }
        agg.shard_kb = Some(kb as u32);
    }
    if let Some(x) = get(t, "tree_fanin") {
        let fanin = usize_of(x, "aggregation", "tree_fanin", 1)?;
        if fanin < 2 {
            return Err(SpecError::new(format!(
                "[aggregation] tree_fanin = {fanin} is out of range; a hierarchical \
                 reduction needs a fan-in of at least 2"
            )));
        }
        if fanin > 1 << 16 {
            return Err(SpecError::new(format!(
                "[aggregation] tree_fanin = {fanin} is out of range; fan-ins above 65536 \
                 degenerate to the serial reducer"
            )));
        }
        agg.tree_fanin = Some(fanin as u32);
    }
    if let Some(x) = get(t, "robust") {
        let r = str_of(x, "aggregation", "robust")?;
        agg.robust = Some(match r.as_str() {
            "mean" => RobustChoice::Mean,
            "trimmed_mean" => RobustChoice::TrimmedMean,
            "coordinate_median" => RobustChoice::CoordinateMedian,
            "norm_clip" => RobustChoice::NormClip,
            other => {
                return Err(SpecError::new(format!(
                    "[aggregation] robust = \"{other}\" is unknown; expected \"mean\", \
                     \"trimmed_mean\", \"coordinate_median\", or \"norm_clip\""
                )))
            }
        });
    }
    if let Some(x) = get(t, "trim_frac") {
        let f = f64_of(x, "aggregation", "trim_frac")? as f32;
        if !(f.is_finite() && (0.0..0.5).contains(&f)) {
            return Err(SpecError::new(format!(
                "[aggregation] trim_frac = {f} is out of range; the per-tail trim fraction \
                 must lie in [0, 0.5) or the trim empties every cohort"
            )));
        }
        agg.trim_frac = Some(f);
    }
    if let Some(x) = get(t, "tau") {
        let f = f64_of(x, "aggregation", "tau")? as f32;
        if !(f.is_finite() && f > 0.0) {
            return Err(SpecError::new(format!(
                "[aggregation] tau = {f} is out of range; the clip radius must be a finite \
                 positive number"
            )));
        }
        agg.tau = Some(f);
    }
    if agg.trim_frac.is_some() && agg.robust != Some(RobustChoice::TrimmedMean) {
        return Err(SpecError::new(
            "[aggregation] trim_frac requires robust = \"trimmed_mean\"; no other estimator \
             trims",
        ));
    }
    if agg.tau.is_some() && agg.robust != Some(RobustChoice::NormClip) {
        return Err(SpecError::new(
            "[aggregation] tau requires robust = \"norm_clip\"; no other estimator clips \
             update norms",
        ));
    }
    if agg.shard_kb.is_some() && !agg.streaming {
        return Err(SpecError::new(
            "[aggregation] shard_kb requires streaming = true; the dense reference engine \
             has no shards",
        ));
    }
    if agg.tree_fanin.is_some() && !agg.streaming {
        return Err(SpecError::new(
            "[aggregation] tree_fanin requires streaming = true; the dense reference engine \
             has no shard reduction to layer a tree over",
        ));
    }
    Ok(agg)
}

fn decode_population(v: &Value) -> Result<PopulationSection, SpecError> {
    let t = table_of(v, "population")?;
    check_fields(
        t,
        "population",
        &["clients", "cohort", "samples_per_client"],
    )?;
    let clients = match get(t, "clients") {
        None => {
            return Err(SpecError::new(
                "missing required field `clients` in [population] (the registered \
                 population size K)",
            ))
        }
        Some(x) => usize_of(x, "population", "clients", 1)?,
    };
    let cohort = match get(t, "cohort") {
        None => None,
        Some(x) => Some(usize_of(x, "population", "cohort", 1)?),
    };
    let samples_per_client = match get(t, "samples_per_client") {
        None => 60,
        Some(x) => usize_of(x, "population", "samples_per_client", 1)?,
    };
    Ok(PopulationSection {
        clients,
        cohort,
        samples_per_client,
    })
}

fn decode_adversary(v: &Value) -> Result<fedbiad_fl::AdversarySpec, SpecError> {
    use fedbiad_fl::{AttackMode, GarbageKind};
    let t = table_of(v, "adversary")?;
    check_fields(t, "adversary", &["fraction", "mode", "factor", "garbage"])?;
    let fraction = match get(t, "fraction") {
        None => {
            return Err(SpecError::new(
                "missing required field `fraction` in [adversary] (the byzantine client \
                 fraction, in (0, 1])",
            ))
        }
        Some(x) => f64_of(x, "adversary", "fraction")? as f32,
    };
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SpecError::new(format!(
            "[adversary] fraction = {fraction} is out of range; the byzantine fraction must \
             lie in (0, 1] (omit the section for an honest population)"
        )));
    }
    let mode_name = match get(t, "mode") {
        None => {
            return Err(SpecError::new(
                "missing required field `mode` in [adversary]; expected \"sign_flip\", \
                 \"scale\" or \"garbage\"",
            ))
        }
        Some(x) => str_of(x, "adversary", "mode")?,
    };
    if get(t, "factor").is_some() && mode_name != "scale" {
        return Err(SpecError::new(
            "[adversary] factor requires mode = \"scale\"; no other attack scales",
        ));
    }
    if get(t, "garbage").is_some() && mode_name != "garbage" {
        return Err(SpecError::new(
            "[adversary] garbage requires mode = \"garbage\"; no other attack transmits \
             garbage values",
        ));
    }
    let mode = match mode_name.as_str() {
        "sign_flip" => AttackMode::SignFlip,
        "scale" => {
            let factor = match get(t, "factor") {
                None => 10.0,
                Some(x) => f64_of(x, "adversary", "factor")? as f32,
            };
            if !factor.is_finite() {
                return Err(SpecError::new(
                    "[adversary] factor must be finite; use mode = \"garbage\" for \
                     non-finite payloads",
                ));
            }
            AttackMode::Scale { factor }
        }
        "garbage" => {
            let kind = match get(t, "garbage") {
                None => GarbageKind::Nan,
                Some(x) => match str_of(x, "adversary", "garbage")?.as_str() {
                    "nan" => GarbageKind::Nan,
                    "inf" => GarbageKind::Inf,
                    "huge" => GarbageKind::Huge,
                    other => {
                        return Err(SpecError::new(format!(
                            "[adversary] garbage = \"{other}\" is unknown; expected \"nan\", \
                             \"inf\" or \"huge\""
                        )))
                    }
                },
            };
            AttackMode::Garbage { kind }
        }
        other => {
            return Err(SpecError::new(format!(
                "[adversary] mode = \"{other}\" is unknown; expected \"sign_flip\", \
                 \"scale\" or \"garbage\""
            )))
        }
    };
    Ok(fedbiad_fl::AdversarySpec { fraction, mode })
}

fn decode_churn(v: &Value) -> Result<fedbiad_fl::ChurnSpec, SpecError> {
    let t = table_of(v, "churn")?;
    check_fields(t, "churn", &["offline", "dropout"])?;
    let mut ch = fedbiad_fl::ChurnSpec {
        offline: 0.0,
        dropout: 0.0,
    };
    if let Some(x) = get(t, "offline") {
        ch.offline = f64_of(x, "churn", "offline")? as f32;
    }
    if let Some(x) = get(t, "dropout") {
        ch.dropout = f64_of(x, "churn", "dropout")? as f32;
    }
    for (key, p) in [("offline", ch.offline), ("dropout", ch.dropout)] {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(SpecError::new(format!(
                "[churn] {key} = {p} is out of range; the per-round probability must lie \
                 in [0, 1]"
            )));
        }
    }
    if ch.offline == 0.0 && ch.dropout == 0.0 {
        return Err(SpecError::new(
            "[churn] sets neither offline nor dropout above 0; omit the section for a \
             churn-free population",
        ));
    }
    Ok(ch)
}

fn decode_training(v: Option<&Value>) -> Result<TrainingSection, SpecError> {
    let mut tr = TrainingSection::default();
    let Some(v) = v else { return Ok(tr) };
    let t = table_of(v, "training")?;
    check_fields(t, "training", &["batch_size"])?;
    if let Some(x) = get(t, "batch_size") {
        tr.batch_size = Some(usize_of(x, "training", "batch_size", 1)?);
    }
    Ok(tr)
}

fn decode_sim(v: &Value) -> Result<Option<f64>, SpecError> {
    let t = table_of(v, "sim")?;
    check_fields(t, "sim", &["target_acc"])?;
    match get(t, "target_acc") {
        None => Ok(None),
        Some(x) => Ok(Some(f64_of(x, "sim", "target_acc")?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "name = \"t\"\n[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n";

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let s = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.mode, Mode::Lockstep);
        assert_eq!(s.run.rounds, 10);
        assert_eq!(s.run.seed, 42);
        assert_eq!(s.sweep.workloads, vec![Workload::MnistLike]);
        assert_eq!(s.sweep.methods, vec![Method::FedAvg]);
        assert_eq!(s.sweep.compressors, vec![None]);
        assert!(s.sweep.policies.is_empty());
    }

    #[test]
    fn json_specs_share_the_schema() {
        let s = ScenarioSpec::from_json_str(
            r#"{"name": "j", "sweep": {"workload": "mnist", "method": ["fedavg", "fedbiad"]}}"#,
        )
        .unwrap();
        assert_eq!(s.sweep.methods.len(), 2);
    }

    #[test]
    fn sim_defaults_fill_policy_and_profile() {
        let s = ScenarioSpec::from_toml_str(
            "name = \"t\"\nmode = \"sim\"\n[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n",
        )
        .unwrap();
        assert_eq!(s.sweep.policies, vec![PolicyChoice::Sync]);
        assert_eq!(s.sweep.profiles, vec![ProfileChoice::Homogeneous]);
    }

    #[test]
    fn overrides_apply_and_revalidate() {
        let mut s = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        s.apply_overrides(&Overrides {
            rounds: Some(3),
            fraction: Some(0.5),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(s.run.rounds, 3);
        let bad = s.apply_overrides(&Overrides {
            fraction: Some(1.5),
            ..Default::default()
        });
        assert!(bad.unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn sim_only_overrides_are_rejected_on_lockstep_specs() {
        // Previously these flags were silently discarded by expansion;
        // the file-based equivalents were already rejected at load time.
        let mut s = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        let err = s
            .apply_overrides(&Overrides {
                policies: Some(vec![crate::simrun::PolicyChoice::FedBuff]),
                ..Default::default()
            })
            .unwrap_err();
        assert!(err.to_string().contains("require mode = \"sim\""), "{err}");
        let err = s
            .apply_overrides(&Overrides {
                target: Some(0.9),
                ..Default::default()
            })
            .unwrap_err();
        assert!(err.to_string().contains("virtual clock"), "{err}");
    }

    #[test]
    fn training_batch_size_is_an_explicit_opt_in() {
        // Omitted: the paper batch size stays in force.
        let s = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        assert_eq!(s.training.batch_size, None);
        // Set: decoded and range-checked.
        let s = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[training]\nbatch_size = 64\n"))
            .unwrap();
        assert_eq!(s.training.batch_size, Some(64));
        let err = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[training]\nbatch_size = 0\n"))
            .unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
        let err = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[training]\nbatchsize = 8\n"))
            .unwrap_err();
        assert!(
            err.to_string().contains("expected one of: batch_size"),
            "{err}"
        );
        // The knob feeds the canonical string (and therefore derived
        // per-run seeds): changing it must move the hash.
        let base = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        let with = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[training]\nbatch_size = 64\n"))
            .unwrap();
        assert_ne!(base.canonical_string(), with.canonical_string());
    }

    #[test]
    fn aggregation_section_is_validated_and_seed_transparent() {
        // Defaults: dense engine.
        let s = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        assert!(!s.aggregation.streaming);
        let resolved = s.aggregation.resolve();
        assert!(!resolved.streaming);
        // Enabled with a shard size.
        let s = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\nshard_kb = 16\n"
        ))
        .unwrap();
        assert!(s.aggregation.streaming);
        assert_eq!(s.aggregation.resolve().shard_kb, 16);
        // shard_kb without streaming is rejected.
        let err = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[aggregation]\nshard_kb = 4\n"))
            .unwrap_err();
        assert!(
            err.to_string().contains("requires streaming = true"),
            "{err}"
        );
        // Out-of-range / wrong-type values are rejected.
        let err = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\nshard_kb = 0\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
        let err = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[aggregation]\nstreaming = 1\n"))
            .unwrap_err();
        assert!(err.to_string().contains("boolean"), "{err}");
        let err = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[aggregation]\nshardkb = 4\n"))
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("expected one of: streaming, shard_kb, tree_fanin"),
            "{err}"
        );
        // The engine knob is bit-transparent, so — unlike [training] — it
        // must NOT move the canonical string (and therefore derived seeds).
        let base = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        let with = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\nshard_kb = 1\n"
        ))
        .unwrap();
        assert_eq!(base.canonical_string(), with.canonical_string());
    }

    #[test]
    fn population_section_is_validated_and_feeds_the_seed() {
        // Decode with defaults and with every field spelled.
        let s = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[population]\nclients = 100000\n"))
            .unwrap();
        let pop = s.population.expect("decoded");
        assert_eq!(pop.clients, 100_000);
        assert_eq!(pop.cohort, None);
        assert_eq!(pop.samples_per_client, 60);
        let s = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[population]\nclients = 1000000\ncohort = 64\nsamples_per_client = 16\n"
        ))
        .unwrap();
        let pop = s.population.expect("decoded");
        assert_eq!(
            (pop.clients, pop.cohort, pop.samples_per_client),
            (1_000_000, Some(64), 16)
        );
        // Text workloads have no synthetic image population to replace.
        let err = ScenarioSpec::from_toml_str(
            "name = \"t\"\n[sweep]\nworkload = \"ptb\"\nmethod = \"fedavg\"\n\
             [population]\nclients = 1000\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("image workloads only"), "{err}");
        // [population] supersedes the Dirichlet pool — the two can't coexist.
        let err = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[partition]\nkind = \"iid\"\n[population]\nclients = 1000\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // Cohort must fit inside the registered population.
        let err = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[population]\nclients = 10\ncohort = 11\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // A lazy population changes every client's data, so it must move
        // the canonical string (and therefore derived seeds); absent, the
        // string is byte-identical to the legacy spec.
        let base = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        let with = ScenarioSpec::from_toml_str(&format!("{MINIMAL}[population]\nclients = 1000\n"))
            .unwrap();
        assert_ne!(base.canonical_string(), with.canonical_string());
    }

    #[test]
    fn tree_fanin_is_gated_and_feeds_the_seed() {
        let s = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\nshard_kb = 4\ntree_fanin = 32\n"
        ))
        .unwrap();
        assert_eq!(s.aggregation.resolve().tree_fanin, 32);
        // Requires the streaming engine — there is no shard reduction to
        // layer a tree over in the dense path.
        let err =
            ScenarioSpec::from_toml_str(&format!("{MINIMAL}[aggregation]\ntree_fanin = 32\n"))
                .unwrap_err();
        assert!(
            err.to_string().contains("requires streaming = true"),
            "{err}"
        );
        // Degenerate fan-ins are rejected at both ends.
        let err = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\ntree_fanin = 1\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("at least 2"), "{err}");
        let err = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\ntree_fanin = 65537\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // Unlike streaming/shard_kb, the fan-in regroups f32 sums and is
        // NOT bit-transparent — it must move the canonical string.
        let base = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\nshard_kb = 4\n"
        ))
        .unwrap();
        let with = ScenarioSpec::from_toml_str(&format!(
            "{MINIMAL}[aggregation]\nstreaming = true\nshard_kb = 4\ntree_fanin = 32\n"
        ))
        .unwrap();
        assert_ne!(base.canonical_string(), with.canonical_string());
    }

    #[test]
    fn canonical_string_tracks_knobs_not_formatting() {
        let a = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        let b = ScenarioSpec::from_toml_str(
            "# comment\nname = \"t\"\n\n[sweep]\nworkload = [\"mnist\"]\nmethod = [\"fedavg\"]\n",
        )
        .unwrap();
        assert_eq!(a.canonical_string(), b.canonical_string());
        let mut c = a.clone();
        c.run.rounds += 1;
        assert_ne!(a.canonical_string(), c.canonical_string());
    }
}
