//! Grid expansion: turn a validated [`ScenarioSpec`] into the concrete
//! list of runs its sweep axes imply.
//!
//! Axis order is fixed — workload, method, compressor, policy, profile,
//! replicate — so run indices (and therefore derived seeds and output
//! file names) are stable properties of the spec, independent of thread
//! count or execution order.

use crate::methods::{CompressorChoice, Method, RunOpts};
use crate::simrun::PolicyChoice;
use crate::spec::{Mode, ProfileChoice, ScenarioSpec, SeedMode, SpecError};
use fedbiad_fl::workload::{Scale, Workload};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;

/// One concrete run of a scenario grid.
#[derive(Clone, Debug)]
pub struct MaterializedRun {
    /// Position in the expansion order (also the output-file index).
    pub index: usize,
    /// Replicate number within the grid cell (0-based).
    pub replicate: usize,
    /// Dataset/model pair.
    pub workload: Workload,
    /// Workload scale.
    pub scale: Scale,
    /// Registry method.
    pub method: Method,
    /// Extra sketched compressor composed onto the method.
    pub compressor: Option<CompressorChoice>,
    /// Which driver executes this run.
    pub mode: Mode,
    /// Server policy (sim mode).
    pub policy: Option<PolicyChoice>,
    /// Heterogeneity profile (sim mode).
    pub profile: Option<ProfileChoice>,
    /// Fully resolved run options (including this run's seed).
    pub opts: RunOpts,
    /// Human-readable cell label, e.g. `ptb-like/FedBIAD@fedbuff[stragglers]`.
    pub label: String,
}

/// FNV-1a over `bytes` (the spec-hash primitive; stable by construction).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The spec's content hash: every knob that defines the grid feeds the
/// per-run seed derivation; file formatting does not.
pub fn spec_hash(spec: &ScenarioSpec) -> u64 {
    fnv1a64(spec.canonical_string().as_bytes())
}

/// Derive the seed for run `index`/`replicate` of a spec with hash
/// `hash`, through the dedicated [`StreamTag::Scenario`] RNG stream.
pub fn derived_seed(base_seed: u64, hash: u64, index: usize, replicate: usize) -> u64 {
    stream(
        base_seed ^ hash,
        StreamTag::Scenario,
        index as u64,
        replicate as u64,
    )
    .gen()
}

/// Expand the sweep cross-product into concrete runs (validates first).
pub fn expand(spec: &ScenarioSpec) -> Result<Vec<MaterializedRun>, SpecError> {
    spec.validate()?;
    let hash = spec_hash(spec);
    let (policies, profiles): (Vec<Option<PolicyChoice>>, Vec<Option<ProfileChoice>>) =
        match spec.mode {
            Mode::Lockstep => (vec![None], vec![None]),
            Mode::Sim => (
                spec.sweep.policies.iter().map(|&p| Some(p)).collect(),
                spec.sweep.profiles.iter().map(|&p| Some(p)).collect(),
            ),
        };

    let mut runs = Vec::new();
    for &workload in &spec.sweep.workloads {
        for &method in &spec.sweep.methods {
            for &compressor in &spec.sweep.compressors {
                for &policy in &policies {
                    for &profile in &profiles {
                        for replicate in 0..spec.run.replicates {
                            let index = runs.len();
                            // Shared mode keeps replicate r *paired* across
                            // every grid cell (seed depends only on r), so
                            // methods stay comparable on identical data;
                            // per-run mode gives every cell its own draw.
                            let seed = match (spec.run.seed_mode, replicate) {
                                (SeedMode::Shared, 0) => spec.run.seed,
                                (SeedMode::Shared, r) => derived_seed(spec.run.seed, hash, 0, r),
                                (SeedMode::PerRun, r) => {
                                    derived_seed(spec.run.seed, hash, index, r)
                                }
                            };
                            let opts = RunOpts {
                                rounds: spec.run.rounds,
                                stage_boundary: spec
                                    .fedbiad
                                    .stage_boundary
                                    .unwrap_or_else(|| spec.run.rounds.saturating_sub(5).max(1)),
                                seed,
                                eval_every: spec.run.eval_every,
                                eval_max_samples: spec.run.eval_max,
                                client_fraction: spec.run.fraction,
                                dropout_override: spec.fedbiad.dropout_rate,
                                batch_size: spec.training.batch_size,
                                agg: spec.aggregation.resolve(),
                                cohort: spec.population.and_then(|p| p.cohort),
                                // A lazy population implies the O(cohort)
                                // sparse sampler: the whole point is never
                                // touching all K registered clients.
                                sampler: if spec.population.is_some() {
                                    fedbiad_fl::round::SamplerKind::Sparse
                                } else {
                                    fedbiad_fl::round::SamplerKind::Shuffle
                                },
                                adversary: spec.adversary,
                                churn: spec.churn,
                            };
                            let mut label = format!("{}/{}", workload.name(), method.name());
                            if let Some(c) = compressor {
                                label.push('+');
                                label.push_str(c.name());
                            }
                            if let Some(p) = policy {
                                label.push('@');
                                label.push_str(p.name());
                            }
                            if let Some(p) = profile {
                                label.push('[');
                                label.push_str(p.name());
                                label.push(']');
                            }
                            if spec.run.replicates > 1 {
                                label.push_str(&format!("#{replicate}"));
                            }
                            runs.push(MaterializedRun {
                                index,
                                replicate,
                                workload,
                                scale: spec.run.scale,
                                method,
                                compressor,
                                mode: spec.mode,
                                policy,
                                profile,
                                opts,
                                label,
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    #[test]
    fn shared_seed_mode_reuses_the_base_seed() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"t\"\n[run]\nseed = 7\n[sweep]\nworkload = \"mnist\"\n\
             method = [\"fedavg\", \"fedbiad\"]\n",
        )
        .unwrap();
        let runs = expand(&spec).unwrap();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.opts.seed == 7));
        assert_eq!(runs[0].label, "mnist-like/FedAvg");
        assert_eq!(runs[1].label, "mnist-like/FedBIAD");
    }

    #[test]
    fn replicates_get_distinct_derived_seeds_even_when_shared() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"t\"\n[run]\nseed = 7\nreplicates = 3\n[sweep]\n\
             workload = \"mnist\"\nmethod = [\"fedavg\", \"fedbiad\"]\n",
        )
        .unwrap();
        let runs = expand(&spec).unwrap();
        assert_eq!(runs.len(), 6);
        assert_eq!(runs[0].opts.seed, 7);
        assert_ne!(runs[1].opts.seed, runs[0].opts.seed);
        assert_ne!(runs[2].opts.seed, runs[1].opts.seed);
        assert!(runs[2].label.ends_with("#2"), "{}", runs[2].label);
        // Shared mode pairs replicate r across grid cells: fedavg and
        // fedbiad replicate r train on identical data and sampling.
        for r in 0..3 {
            assert_eq!(
                runs[r].opts.seed,
                runs[3 + r].opts.seed,
                "replicate {r} must be seed-paired across methods"
            );
        }
    }

    #[test]
    fn expansion_order_is_the_documented_axis_order() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"t\"\nmode = \"sim\"\n[sweep]\nworkload = \"mnist\"\n\
             method = \"fedavg\"\npolicy = [\"sync\", \"fedbuff\"]\n\
             profile = [\"homogeneous\", \"stragglers\"]\n",
        )
        .unwrap();
        let labels: Vec<String> = expand(&spec)
            .unwrap()
            .into_iter()
            .map(|r| r.label)
            .collect();
        assert_eq!(
            labels,
            vec![
                "mnist-like/FedAvg@sync[homogeneous]",
                "mnist-like/FedAvg@sync[stragglers]",
                "mnist-like/FedAvg@fedbuff[homogeneous]",
                "mnist-like/FedAvg@fedbuff[stragglers]",
            ]
        );
    }
}
