//! A minimal TOML reader for scenario specs.
//!
//! Parses the subset of TOML the spec schema uses — `[table]` headers
//! (dotted paths allowed), `key = value` pairs with basic/literal
//! strings, integers, floats, booleans, (multi-line) arrays and inline
//! tables, plus `#` comments — into the vendored serde shim's
//! [`Value`] tree, so TOML and JSON specs share one decoding path.
//!
//! Errors carry the 1-based line number and a message naming what was
//! expected:
//!
//! ```
//! use fedbiad_scenario::toml::parse_toml;
//! let v = parse_toml("x = 3\n[t]\ny = [1, 2]\n").unwrap();
//! assert!(parse_toml("x = \n").unwrap_err().to_string().contains("line 1"));
//! ```
//!
//! Unsupported TOML (array-of-tables, dates, multi-line strings) is
//! rejected with an explicit message rather than misparsed.

use serde::Value;

/// A TOML parse failure at a specific line.
#[derive(Clone, Debug)]
pub struct TomlError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong / what was expected.
    pub msg: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TOML parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

/// Parse TOML text into a [`Value::Object`] tree.
pub fn parse_toml(text: &str) -> Result<Value, TomlError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table currently being filled ([] = root).
    let mut current: Vec<String> = Vec::new();
    loop {
        p.skip_trivia(true);
        let Some(&c) = p.bytes.get(p.pos) else { break };
        if c == b'[' {
            if p.bytes.get(p.pos + 1) == Some(&b'[') {
                return Err(p.err("array-of-tables `[[...]]` is not supported in scenario specs"));
            }
            p.pos += 1;
            let path = p.parse_header_path()?;
            p.expect(b']')?;
            p.expect_eol()?;
            // Create the table now so empty sections still appear.
            insert_table(&mut root, &path).map_err(|msg| p.err(msg))?;
            current = path;
        } else {
            let key = p.parse_key()?;
            p.skip_inline_ws();
            if p.bytes.get(p.pos) == Some(&b'.') {
                return Err(p.err(format!(
                    "dotted key `{key}.…` is not supported; use a [table] header instead"
                )));
            }
            p.expect(b'=')?;
            let value = p.parse_value()?;
            p.expect_eol()?;
            let table = lookup_table(&mut root, &current).expect("current table exists");
            if table.iter().any(|(k, _)| *k == key) {
                return Err(p.err(format!("duplicate key `{key}`")));
            }
            table.push((key, value));
        }
    }
    Ok(Value::Object(root))
}

/// Create (or re-enter) the nested object at `path`, erroring on a
/// redefined leaf table or a path through a non-table value.
fn insert_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), String> {
    let mut cur = root;
    for (depth, seg) in path.iter().enumerate() {
        let leaf = depth + 1 == path.len();
        let idx = cur.iter().position(|(k, _)| k == seg);
        match idx {
            Some(i) => {
                if leaf {
                    return Err(format!("table `[{}]` defined twice", path.join(".")));
                }
                match &mut cur[i].1 {
                    Value::Object(_) => {}
                    _ => return Err(format!("`{seg}` is not a table")),
                }
                let Value::Object(inner) = &mut cur[i].1 else {
                    unreachable!()
                };
                cur = inner;
            }
            None => {
                cur.push((seg.clone(), Value::Object(Vec::new())));
                let last = cur.len() - 1;
                let Value::Object(inner) = &mut cur[last].1 else {
                    unreachable!()
                };
                cur = inner;
            }
        }
    }
    Ok(())
}

/// Borrow the table at `path` (must already exist).
fn lookup_table<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Option<&'a mut Vec<(String, Value)>> {
    let mut cur = root;
    for seg in path {
        let i = cur.iter().position(|(k, _)| k == seg)?;
        match &mut cur[i].1 {
            Value::Object(inner) => cur = inner,
            _ => return None,
        }
    }
    Some(cur)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn line(&self) -> usize {
        1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn err(&self, msg: impl Into<String>) -> TomlError {
        TomlError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn skip_inline_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skip spaces/tabs, comments and (when `newlines`) line breaks.
    fn skip_trivia(&mut self, newlines: bool) {
        loop {
            match self.bytes.get(self.pos) {
                Some(b' ' | b'\t' | b'\r') => self.pos += 1,
                Some(b'\n') if newlines => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), TomlError> {
        self.skip_inline_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                c as char,
                self.describe_here()
            )))
        }
    }

    /// Only whitespace / a comment may remain before the line break.
    fn expect_eol(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        if self.bytes.get(self.pos) == Some(&b'#') {
            while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.bytes.get(self.pos) {
            None => Ok(()),
            Some(b'\n') | Some(b'\r') => Ok(()),
            _ => Err(self.err(format!(
                "unexpected trailing content: {}",
                self.describe_here()
            ))),
        }
    }

    fn describe_here(&self) -> String {
        match self.bytes.get(self.pos) {
            None => "end of file".to_string(),
            Some(b'\n') => "end of line".to_string(),
            Some(&c) => format!("`{}`", c as char),
        }
    }

    fn parse_header_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            path.push(self.parse_key()?);
            self.skip_inline_ws();
            if self.bytes.get(self.pos) == Some(&b'.') {
                self.pos += 1;
            } else {
                return Ok(path);
            }
        }
    }

    /// A bare (`A-Za-z0-9_-`) or quoted key.
    fn parse_key(&mut self) -> Result<String, TomlError> {
        self.skip_inline_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(&c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while matches!(self.bytes.get(self.pos),
                    Some(&c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.pos += 1;
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ascii key")
                    .to_string())
            }
            _ => Err(self.err(format!("expected a key, found {}", self.describe_here()))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        self.skip_inline_ws();
        match self.bytes.get(self.pos) {
            None | Some(b'\n') => Err(self.err("expected a value, found end of line")),
            Some(b'"') => {
                if self.bytes[self.pos..].starts_with(b"\"\"\"") {
                    return Err(self.err("multi-line strings are not supported"));
                }
                Ok(Value::Str(self.parse_basic_string()?))
            }
            Some(b'\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Value::Bool(false))
            }
            _ => self.parse_number(),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, TomlError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid utf-8"),
                    );
                }
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, TomlError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'\''));
        self.pos += 1;
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'\'') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("valid utf-8")
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Arrays may span lines and carry comments between elements.
    fn parse_array(&mut self) -> Result<Value, TomlError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'['));
        self.pos += 1;
        let mut items = Vec::new();
        loop {
            self.skip_trivia(true);
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia(true);
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    /// A single-line `{ k = v, ... }` table.
    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'{'));
        self.pos += 1;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_inline_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            let key = self.parse_key()?;
            self.expect(b'=')?;
            let value = self.parse_value()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            pairs.push((key, value));
            self.skip_inline_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in inline table, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos),
            Some(&c) if c.is_ascii_digit() || matches!(c, b'+' | b'-' | b'.' | b'_' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if raw.is_empty() {
            return Err(self.err(format!("expected a value, found {}", self.describe_here())));
        }
        let text: String = raw.chars().filter(|&c| c != '_').collect();
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("malformed number `{raw}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: &Value) -> &Vec<(String, Value)> {
        v.as_object().expect("object")
    }

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let v = parse_toml(
            "# a comment\nname = \"demo\"   # trailing\ncount = 1_000\nratio = 0.5\nok = true\n\
             lit = 'raw\\n'\n[run]\nrounds = 3\nseeds = [1, 2,\n  3]  # multi-line\n[a.b]\nx = -2\n",
        )
        .unwrap();
        let root = obj(&v);
        assert_eq!(root[0], ("name".into(), Value::Str("demo".into())));
        assert_eq!(root[1], ("count".into(), Value::Int(1000)));
        assert_eq!(root[2], ("ratio".into(), Value::Float(0.5)));
        assert_eq!(root[3], ("ok".into(), Value::Bool(true)));
        assert_eq!(root[4], ("lit".into(), Value::Str("raw\\n".into())));
        let run = obj(&root[5].1);
        assert_eq!(run[0], ("rounds".into(), Value::Int(3)));
        assert_eq!(
            run[1].1,
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        let a = obj(&root[6].1);
        assert_eq!(obj(&a[0].1)[0], ("x".into(), Value::Int(-2)));
    }

    #[test]
    fn inline_tables_and_quoted_keys() {
        let v = parse_toml("net = { up = 14.0, down = 110.6 }\n\"k ey\" = 1\n").unwrap();
        let root = obj(&v);
        assert_eq!(obj(&root[0].1)[1], ("down".into(), Value::Float(110.6)));
        assert_eq!(root[1].0, "k ey");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_toml("a = 1\nb = \n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = parse_toml("a = 1\na = 2\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key `a`"), "{e}");
        let e = parse_toml("[t]\n[t]\n").unwrap_err();
        assert!(e.to_string().contains("defined twice"), "{e}");
        let e = parse_toml("x = 3 4\n").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }

    #[test]
    fn unsupported_toml_is_rejected_not_misparsed() {
        assert!(parse_toml("[[runs]]\n")
            .unwrap_err()
            .to_string()
            .contains("array-of-tables"));
        assert!(parse_toml("a.b = 1\n")
            .unwrap_err()
            .to_string()
            .contains("dotted key"));
        assert!(parse_toml("s = \"\"\"x\"\"\"\n")
            .unwrap_err()
            .to_string()
            .contains("multi-line"));
    }
}
