//! Method registry: build + run any algorithm of Tables I/II against a
//! workload, optionally composed with a sketched compressor.
//!
//! Moved here from `fedbiad-bench` so the declarative scenario engine and
//! the legacy harness binaries share one registry (`fedbiad-bench`
//! re-exports this module unchanged).

use fedbiad_compress::dgc::Dgc;
use fedbiad_compress::fedpaq::FedPaq;
use fedbiad_compress::signsgd::SignSgd;
use fedbiad_compress::stc::Stc;
use fedbiad_compress::Compressor;
use fedbiad_core::baselines::{Afd, FedAvg, FedDrop, FedMp, Fjord, HeteroFl};
use fedbiad_core::{FedBiad, FedBiadConfig};
use fedbiad_data::FedDataset;
use fedbiad_fl::algorithm::TrainConfig;
use fedbiad_fl::runner::{Experiment, ExperimentConfig};
use fedbiad_fl::workload::WorkloadBundle;
use fedbiad_fl::{ExperimentLog, FlAlgorithm};
use fedbiad_nn::Model;
use std::sync::Arc;

/// Every method appearing in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// FedAvg \[1\].
    FedAvg,
    /// FedDrop \[12\].
    FedDrop,
    /// AFD \[15\].
    Afd,
    /// FedMP \[27\].
    FedMp,
    /// FjORD \[14\].
    Fjord,
    /// HeteroFL \[43\].
    HeteroFl,
    /// FedBIAD (this paper).
    FedBiad,
    /// FedPAQ \[9\] (8-bit quantisation).
    FedPaq,
    /// signSGD \[11\] (1-bit).
    SignSgd,
    /// STC \[5\] (sparse ternary).
    Stc,
    /// DGC \[4\] (deep gradient compression).
    Dgc,
    /// AFD combined with DGC.
    AfdDgc,
    /// FjORD combined with DGC.
    FjordDgc,
    /// FedBIAD combined with DGC.
    FedBiadDgc,
}

impl Method {
    /// Table I row order.
    pub fn table1() -> [Method; 7] {
        [
            Method::FedAvg,
            Method::FedDrop,
            Method::Afd,
            Method::FedMp,
            Method::Fjord,
            Method::HeteroFl,
            Method::FedBiad,
        ]
    }

    /// Table II column order.
    pub fn table2() -> [Method; 7] {
        [
            Method::FedPaq,
            Method::SignSgd,
            Method::Stc,
            Method::Dgc,
            Method::AfdDgc,
            Method::FjordDgc,
            Method::FedBiadDgc,
        ]
    }

    /// Fig. 2 methods (the motivation experiment).
    pub fn fig2() -> [Method; 5] {
        [
            Method::FedAvg,
            Method::FedDrop,
            Method::Afd,
            Method::Fjord,
            Method::FedBiad,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::FedAvg => "FedAvg",
            Method::FedDrop => "FedDrop",
            Method::Afd => "AFD",
            Method::FedMp => "FedMP",
            Method::Fjord => "FjORD",
            Method::HeteroFl => "HeteroFL",
            Method::FedBiad => "FedBIAD",
            Method::FedPaq => "FedPAQ",
            Method::SignSgd => "SignSGD",
            Method::Stc => "STC",
            Method::Dgc => "DGC",
            Method::AfdDgc => "AFD+DGC",
            Method::FjordDgc => "Fjord+DGC",
            Method::FedBiadDgc => "FedBIAD+DGC",
        }
    }

    /// Does this registry entry already bundle a sketched compressor
    /// (Table II combos)? Such methods reject a further `compressor` axis.
    pub fn embeds_compressor(self) -> bool {
        matches!(
            self,
            Method::FedPaq
                | Method::SignSgd
                | Method::Stc
                | Method::Dgc
                | Method::AfdDgc
                | Method::FjordDgc
                | Method::FedBiadDgc
        )
    }

    /// Parse a CLI name (case-insensitive).
    ///
    /// ```
    /// use fedbiad_scenario::methods::Method;
    /// assert_eq!(Method::parse("fedbiad+dgc"), Some(Method::FedBiadDgc));
    /// assert_eq!(Method::parse("FedAvg"), Some(Method::FedAvg));
    /// assert_eq!(Method::parse("nope"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Method> {
        let all = [
            Method::FedAvg,
            Method::FedDrop,
            Method::Afd,
            Method::FedMp,
            Method::Fjord,
            Method::HeteroFl,
            Method::FedBiad,
            Method::FedPaq,
            Method::SignSgd,
            Method::Stc,
            Method::Dgc,
            Method::AfdDgc,
            Method::FjordDgc,
            Method::FedBiadDgc,
        ];
        let needle = s.to_ascii_lowercase().replace(['-', '_', '+'], "");
        all.into_iter()
            .find(|m| m.name().to_ascii_lowercase().replace('+', "") == needle)
    }
}

/// A sketched compressor that a scenario can compose onto any *base*
/// method (one without an embedded compressor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressorChoice {
    /// Deep gradient compression (paper settings).
    Dgc,
    /// 1-bit sign compression with error feedback.
    SignSgd,
    /// 8-bit uniform quantisation.
    FedPaq,
    /// Sparse ternary compression.
    Stc,
}

impl CompressorChoice {
    /// Parse a spec/CLI name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<CompressorChoice> {
        match s.to_ascii_lowercase().as_str() {
            "dgc" => Some(CompressorChoice::Dgc),
            "signsgd" | "sign-sgd" => Some(CompressorChoice::SignSgd),
            "fedpaq" => Some(CompressorChoice::FedPaq),
            "stc" => Some(CompressorChoice::Stc),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CompressorChoice::Dgc => "DGC",
            CompressorChoice::SignSgd => "SignSGD",
            CompressorChoice::FedPaq => "FedPAQ",
            CompressorChoice::Stc => "STC",
        }
    }

    /// Instantiate the compressor at its paper settings.
    pub fn build(self) -> Arc<dyn Compressor> {
        match self {
            CompressorChoice::Dgc => Arc::new(Dgc::paper()),
            CompressorChoice::SignSgd => Arc::new(SignSgd::default()),
            CompressorChoice::FedPaq => Arc::new(FedPaq::paper()),
            CompressorChoice::Stc => Arc::new(Stc::paper()),
        }
    }
}

/// Options shared by all harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Global rounds R.
    pub rounds: usize,
    /// Stage boundary R_b for FedBIAD (paper: R−5).
    pub stage_boundary: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Evaluate every k rounds.
    pub eval_every: usize,
    /// Cap evaluated test samples (0 = all).
    pub eval_max_samples: usize,
    /// Client participation fraction κ (paper: 0.1).
    pub client_fraction: f32,
    /// Override the workload's dropout rate p (scenario `[fedbiad]`
    /// section); `None` keeps the per-dataset paper rate.
    pub dropout_override: Option<f32>,
    /// Override the workload's mini-batch size (scenario `[training]`
    /// section); `None` keeps the paper batch size. Batch-vs-sequential
    /// SGD genuinely differ here, so this is an explicit opt-in knob.
    pub batch_size: Option<usize>,
    /// Aggregation-engine selection (scenario `[aggregation]` section).
    /// `streaming`/`shard_kb` are bit-identical and never feed the seed
    /// hash; `tree_fanin` changes the f32 association and does.
    pub agg: fedbiad_fl::AggSettings,
    /// Explicit per-round cohort override (scenario `[population]`
    /// section); `None` derives ⌊κK⌋ from `client_fraction`.
    pub cohort: Option<usize>,
    /// Cohort sampler: `Shuffle` is the legacy O(K) permutation,
    /// `Sparse` the O(cohort) draw for million-client populations.
    pub sampler: fedbiad_fl::round::SamplerKind,
    /// Byzantine adversary model (scenario `[adversary]` section);
    /// `None` means every client is honest.
    pub adversary: Option<fedbiad_fl::AdversarySpec>,
    /// Client churn model (scenario `[churn]` section); `None` means
    /// every selected client completes its round.
    pub churn: Option<fedbiad_fl::ChurnSpec>,
}

impl RunOpts {
    /// Paper-style defaults for `rounds` (R_b = R − 5, κ = 0.1).
    pub fn for_rounds(rounds: usize, seed: u64) -> Self {
        Self {
            rounds,
            stage_boundary: rounds.saturating_sub(5).max(1),
            seed,
            eval_every: 1,
            eval_max_samples: 2_000,
            client_fraction: 0.1,
            dropout_override: None,
            batch_size: None,
            agg: fedbiad_fl::AggSettings::default(),
            cohort: None,
            sampler: fedbiad_fl::round::SamplerKind::Shuffle,
            adversary: None,
            churn: None,
        }
    }
}

/// The workload's training config with the run's `[training]` overrides
/// applied — shared by the lock-step and simulator drivers.
pub(crate) fn train_config(bundle: &WorkloadBundle, opts: &RunOpts) -> TrainConfig {
    let mut train = bundle.train;
    if let Some(bs) = opts.batch_size {
        train.batch_size = bs;
    }
    train
}

/// Run `method` on `bundle` and return the log.
pub fn run_method(method: Method, bundle: &WorkloadBundle, opts: RunOpts) -> ExperimentLog {
    run_method_composed(method, bundle, opts, None)
}

/// Run `method`, optionally composed with an `extra` sketched compressor
/// (only valid on base methods — Table II combos already embed theirs).
pub fn run_method_composed(
    method: Method,
    bundle: &WorkloadBundle,
    opts: RunOpts,
    extra: Option<CompressorChoice>,
) -> ExperimentLog {
    let cfg = ExperimentConfig {
        rounds: opts.rounds,
        client_fraction: opts.client_fraction,
        seed: opts.seed,
        train: train_config(bundle, &opts),
        eval_topk: bundle.eval_topk,
        eval_every: opts.eval_every,
        eval_max_samples: opts.eval_max_samples,
        agg: opts.agg,
        cohort: opts.cohort,
        sampler: opts.sampler,
        adversary: opts.adversary,
        churn: opts.churn,
    };
    let p = opts.dropout_override.unwrap_or(bundle.dropout_rate);
    let driver = LockstepDriver {
        model: bundle.model.as_ref(),
        data: &bundle.data,
        cfg,
    };
    with_algorithm(method, p, opts.stage_boundary, extra, driver)
}

struct LockstepDriver<'a> {
    model: &'a dyn Model,
    data: &'a FedDataset,
    cfg: ExperimentConfig,
}

impl AlgorithmVisitor for LockstepDriver<'_> {
    type Out = ExperimentLog;

    fn visit<A: FlAlgorithm>(self, algo: A) -> ExperimentLog {
        Experiment::new(self.model, self.data, algo, self.cfg).run()
    }
}

/// A generic consumer of a constructed algorithm. The registry method →
/// algorithm mapping lives in **one** place ([`with_algorithm`]); the
/// lock-step driver (here) and the simulator driver (`simrun`) each
/// implement this trait to receive the concrete `FlAlgorithm` type and
/// run it — so the two drivers can never diverge on construction.
pub trait AlgorithmVisitor {
    /// What driving the algorithm produces.
    type Out;

    /// Consume the constructed algorithm.
    fn visit<A: FlAlgorithm>(self, algo: A) -> Self::Out;
}

/// Construct the algorithm for `method` — at dropout rate `p`, FedBIAD
/// stage boundary `stage_boundary`, optionally composed with an `extra`
/// sketch — and hand it to `visitor`.
pub fn with_algorithm<V: AlgorithmVisitor>(
    method: Method,
    p: f32,
    stage_boundary: usize,
    extra: Option<CompressorChoice>,
    visitor: V,
) -> V::Out {
    assert!(
        extra.is_none() || !method.embeds_compressor(),
        "method {} already embeds a compressor",
        method.name()
    );
    let v = visitor;
    let sketch = extra.map(CompressorChoice::build);
    let dgc = || Arc::new(Dgc::paper());
    match method {
        Method::FedAvg => match sketch {
            None => v.visit(FedAvg::new()),
            Some(c) => v.visit(FedAvg::with_sketch(c)),
        },
        Method::FedDrop => match sketch {
            None => v.visit(FedDrop::new(p)),
            Some(c) => v.visit(FedDrop::with_sketch(p, c)),
        },
        Method::Afd => match sketch {
            None => v.visit(Afd::new(p)),
            Some(c) => v.visit(Afd::with_sketch(p, c)),
        },
        Method::FedMp => match sketch {
            None => v.visit(FedMp::new(p)),
            Some(c) => v.visit(FedMp::with_sketch(p, c)),
        },
        Method::Fjord => match sketch {
            None => v.visit(Fjord::new(p)),
            Some(c) => v.visit(Fjord::with_sketch(p, c)),
        },
        Method::HeteroFl => match sketch {
            None => v.visit(HeteroFl::new(p)),
            Some(c) => v.visit(HeteroFl::with_sketch(p, c)),
        },
        Method::FedBiad => {
            let fb = FedBiadConfig::paper(p, stage_boundary);
            match sketch {
                None => v.visit(FedBiad::new(fb)),
                Some(c) => v.visit(FedBiad::with_sketch(fb, c)),
            }
        }
        Method::FedPaq => v.visit(FedAvg::with_sketch(Arc::new(FedPaq::paper()))),
        Method::SignSgd => v.visit(FedAvg::with_sketch(Arc::new(SignSgd::default()))),
        Method::Stc => v.visit(FedAvg::with_sketch(Arc::new(Stc::paper()))),
        Method::Dgc => v.visit(FedAvg::with_sketch(dgc())),
        Method::AfdDgc => v.visit(Afd::with_sketch(p, dgc())),
        Method::FjordDgc => v.visit(Fjord::with_sketch(p, dgc())),
        Method::FedBiadDgc => v.visit(FedBiad::with_sketch(
            FedBiadConfig::paper(p, stage_boundary),
            dgc(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_fl::workload::{build, Scale, Workload};

    #[test]
    fn parse_round_trips_names() {
        for m in Method::table1().into_iter().chain(Method::table2()) {
            assert_eq!(Method::parse(m.name()), Some(m), "{}", m.name());
        }
        assert_eq!(Method::parse("fedbiad+dgc"), Some(Method::FedBiadDgc));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn run_opts_sets_paper_stage_boundary() {
        let o = RunOpts::for_rounds(60, 1);
        assert_eq!(o.stage_boundary, 55);
        let tiny = RunOpts::for_rounds(3, 1);
        assert!(tiny.stage_boundary >= 1);
    }

    #[test]
    fn compressor_choice_parses_and_builds() {
        for (name, c) in [
            ("dgc", CompressorChoice::Dgc),
            ("SignSGD", CompressorChoice::SignSgd),
            ("fedpaq", CompressorChoice::FedPaq),
            ("stc", CompressorChoice::Stc),
        ] {
            assert_eq!(CompressorChoice::parse(name), Some(c));
            let _ = c.build(); // constructible at paper settings
        }
        assert_eq!(CompressorChoice::parse("none"), None);
        assert!(Method::Dgc.embeds_compressor());
        assert!(!Method::FedBiad.embeds_compressor());
    }

    #[test]
    fn composed_method_compresses_uploads() {
        // FedDrop+STC was previously unreachable through the registry:
        // composition must shrink the wire bytes below the plain method's.
        let bundle = build(Workload::MnistLike, Scale::Smoke, 3);
        let opts = RunOpts::for_rounds(2, 3);
        let plain = run_method(Method::FedDrop, &bundle, opts);
        let sketched =
            run_method_composed(Method::FedDrop, &bundle, opts, Some(CompressorChoice::Stc));
        assert!(sketched.mean_upload_bytes() < plain.mean_upload_bytes());
    }

    #[test]
    fn batch_size_override_reaches_local_training() {
        let bundle = build(Workload::MnistLike, Scale::Smoke, 3);
        let mut opts = RunOpts::for_rounds(1, 3);
        let base = run_method(Method::FedAvg, &bundle, opts);
        opts.batch_size = Some(4);
        let small = run_method(Method::FedAvg, &bundle, opts);
        // A different batch size draws different mini-batches, so the
        // training loss must move; identical logs would mean the knob
        // never reached TrainConfig.
        assert_ne!(
            base.records[0].train_loss.to_bits(),
            small.records[0].train_loss.to_bits()
        );
        // And the default (None) reproduces the paper configuration.
        let again = run_method(Method::FedAvg, &bundle, RunOpts::for_rounds(1, 3));
        assert_eq!(
            base.records[0].train_loss.to_bits(),
            again.records[0].train_loss.to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "already embeds a compressor")]
    fn composing_onto_combo_method_panics() {
        let bundle = build(Workload::MnistLike, Scale::Smoke, 3);
        let opts = RunOpts::for_rounds(1, 3);
        let _ = run_method_composed(Method::Dgc, &bundle, opts, Some(CompressorChoice::Stc));
    }
}
