//! # fedbiad-scenario
//!
//! The **declarative scenario engine**: experiment shapes as data
//! instead of code.
//!
//! A scenario is a TOML (or JSON) file that composes every layer of the
//! stack — dataset + partitioner (`fedbiad-data`), method and FedBIAD
//! hyper-parameters (`fedbiad-core`), sketched compressor
//! (`fedbiad-compress`), network model (`fedbiad-fl`), and server policy
//! × heterogeneity profile (`fedbiad-sim`) — and sweeps any axis by
//! listing several values:
//!
//! ```toml
//! name = "demo"
//! mode = "sim"
//!
//! [run]
//! rounds = 15
//! seed = 42
//! seed_mode = "per-run"           # distinct derived seed per grid cell
//!
//! [sweep]
//! workload = "mnist"
//! method = ["fedavg", "fedbiad"]  # any axis expands the grid
//! policy = ["sync", "fedbuff"]
//! profile = "stragglers"
//! ```
//!
//! * [`spec`] — the strict schema: unknown fields are rejected with the
//!   expected-field list, numbers are range-checked, and every name is
//!   resolved against the registries at load time;
//! * [`grid`] — cross-product expansion in a fixed axis order, with
//!   per-run seeds derived from the spec's content hash through the
//!   dedicated `StreamTag::Scenario` RNG stream;
//! * [`engine`] — parallel execution (deterministic across thread
//!   counts) returning one `ExperimentLog` per run, plus virtual-clock
//!   extras for `mode = "sim"`;
//! * [`methods`] / [`simrun`] — the method registry and the simulation
//!   runner (re-exported by `fedbiad-bench`, whose binaries are thin
//!   wrappers over bundled specs in `scenarios/`).
//!
//! ## End to end
//!
//! ```
//! use fedbiad_scenario::{execute, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml_str(
//!     "name = \"doc\"\n\
//!      [run]\nrounds = 1\nscale = \"smoke\"\nfraction = 0.5\n\
//!      [sweep]\nworkload = \"mnist\"\nmethod = [\"fedavg\", \"fedbiad\"]\n",
//! )
//! .unwrap();
//! let outcomes = execute(&spec).unwrap();
//! assert_eq!(outcomes.len(), 2); // one run per method
//! assert_eq!(outcomes[0].log.records.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod grid;
pub mod methods;
pub mod simrun;
pub mod spec;
pub mod toml;

pub use engine::{execute, execute_traced, RunOutcome, SimMeta};
pub use grid::{expand, spec_hash, MaterializedRun};
pub use methods::{run_method, run_method_composed, CompressorChoice, Method, RunOpts};
pub use simrun::{run_sim_method, run_sim_method_composed, PolicyChoice};
pub use spec::{Mode, Overrides, ProfileChoice, ScenarioSpec, SeedMode, SpecError};
