//! The execution engine: run every materialized run of a scenario and
//! collect the logs.
//!
//! Workload bundles are built once per distinct `(workload, seed)` pair
//! and shared across runs; the runs themselves execute in parallel
//! through the deterministic rayon shim (indexed result slots), so the
//! outcome vector is bit-identical across thread counts and always in
//! grid order.

use crate::grid::{expand, MaterializedRun};
use crate::methods::run_method_composed;
use crate::simrun::run_sim_method_composed;
use crate::spec::{Mode, ScenarioSpec, SpecError};
use fedbiad_fl::workload::{
    build_with, PopulationOverride, Workload, WorkloadBundle, WorkloadOverrides,
};
use fedbiad_fl::ExperimentLog;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// Virtual-clock extras attached to `mode = "sim"` outcomes.
#[derive(Clone, Debug, Serialize)]
pub struct SimMeta {
    /// Server-policy name.
    pub policy: String,
    /// Heterogeneity-profile name.
    pub profile: String,
    /// The TTA target accuracy this run was judged against.
    pub target_acc: f64,
    /// Virtual seconds to the target, `None` if never reached.
    pub tta_virtual_seconds: Option<f64>,
    /// Virtual time when the simulation stopped.
    pub total_virtual_seconds: f64,
    /// Virtual time at which each recorded round committed.
    pub round_end_seconds: Vec<f64>,
}

/// One executed run: the grid cell plus everything it produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The grid cell.
    pub run: MaterializedRun,
    /// The experiment log (identical in shape for both drivers).
    pub log: ExperimentLog,
    /// Virtual-clock extras (sim mode only).
    pub sim: Option<SimMeta>,
    /// This run's telemetry capture ([`execute_traced`] only; empty when
    /// the collector is not compiled in).
    pub capture: Option<fedbiad_telemetry::Capture>,
}

/// One bundle per distinct (workload, seed): in shared-seed mode every
/// method/policy cell reuses the same data, exactly like the legacy
/// binaries that build once per workload. Per-run seed mode can imply
/// as many bundles as runs, so assembly is parallel too (through the
/// same deterministic shim — build order cannot affect contents; each
/// bundle is a pure function of its key).
fn build_bundles(
    spec: &ScenarioSpec,
    runs: &[MaterializedRun],
) -> HashMap<(&'static str, u64), Arc<WorkloadBundle>> {
    let overrides = WorkloadOverrides {
        image_partition: spec.partition.clone(),
        population: spec.population.map(|p| PopulationOverride {
            clients: p.clients,
            samples_per_client: p.samples_per_client,
        }),
    };
    let mut distinct: Vec<(Workload, u64)> = Vec::new();
    for r in runs {
        if !distinct
            .iter()
            .any(|&(w, s)| w == r.workload && s == r.opts.seed)
        {
            distinct.push((r.workload, r.opts.seed));
        }
    }
    let built: Vec<Arc<WorkloadBundle>> = distinct
        .par_iter()
        .map(|&(w, seed)| Arc::new(build_with(w, spec.run.scale, seed, &overrides)))
        .collect();
    distinct
        .iter()
        .zip(built)
        .map(|(&(w, seed), b)| ((w.name(), seed), b))
        .collect()
}

/// Expand `spec` and execute every run; outcomes come back in grid
/// order regardless of scheduling.
pub fn execute(spec: &ScenarioSpec) -> Result<Vec<RunOutcome>, SpecError> {
    let runs = expand(spec)?;
    let bundles = build_bundles(spec, &runs);
    let outcomes: Vec<RunOutcome> = runs
        .par_iter()
        .map(|r| {
            let bundle = &bundles[&(r.workload.name(), r.opts.seed)];
            execute_one(spec, r, bundle)
        })
        .collect();
    Ok(outcomes)
}

/// Like [`execute`], but capture one telemetry trace per run.
///
/// Runs execute **serially** here: the normal parallel engine shares its
/// worker pool across runs, which would make per-run event attribution
/// impossible. Serial execution changes scheduling only — results are
/// bit-identical to [`execute`] by the workspace determinism contract —
/// and worker-thread spans recorded inside a run's window land in that
/// run's capture.
pub fn execute_traced(spec: &ScenarioSpec) -> Result<Vec<RunOutcome>, SpecError> {
    let runs = expand(spec)?;
    // Bundle assembly happens outside any capture window: it is shared
    // setup, not attributable to a single run.
    let bundles = build_bundles(spec, &runs);
    let mut outcomes = Vec::with_capacity(runs.len());
    for (i, r) in runs.iter().enumerate() {
        let bundle = &bundles[&(r.workload.name(), r.opts.seed)];
        fedbiad_telemetry::begin_capture();
        let mut out = {
            let _run_span = fedbiad_telemetry::span!("run", index = i);
            execute_one(spec, r, bundle)
        };
        out.capture = Some(fedbiad_telemetry::end_capture());
        outcomes.push(out);
    }
    Ok(outcomes)
}

fn execute_one(spec: &ScenarioSpec, run: &MaterializedRun, bundle: &WorkloadBundle) -> RunOutcome {
    match run.mode {
        Mode::Lockstep => RunOutcome {
            run: run.clone(),
            log: run_method_composed(run.method, bundle, run.opts, run.compressor),
            sim: None,
            capture: None,
        },
        Mode::Sim => {
            let policy = run.policy.expect("sim run has a policy");
            let profile = run.profile.expect("sim run has a profile");
            let report = run_sim_method_composed(
                run.method,
                bundle,
                run.opts,
                policy,
                profile.resolve(spec.network),
                run.compressor,
            );
            let target_acc = spec.target_acc.unwrap_or(bundle.target_acc);
            let sim = SimMeta {
                policy: report.policy.clone(),
                profile: report.profile.clone(),
                target_acc,
                tta_virtual_seconds: report.time_to_accuracy(target_acc),
                total_virtual_seconds: report.total_virtual_seconds,
                round_end_seconds: report.round_end_seconds.clone(),
            };
            RunOutcome {
                run: run.clone(),
                log: report.log,
                sim: Some(sim),
                capture: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    #[test]
    fn lockstep_and_sim_modes_both_execute() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"t\"\n[run]\nrounds = 2\nscale = \"smoke\"\nfraction = 0.5\n\
             [sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n",
        )
        .unwrap();
        let out = execute(&spec).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].log.records.len(), 2);
        assert!(out[0].sim.is_none());

        let spec = ScenarioSpec::from_toml_str(
            "name = \"t\"\nmode = \"sim\"\n[run]\nrounds = 2\nscale = \"smoke\"\n\
             fraction = 0.5\n[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n\
             policy = \"fedbuff\"\nprofile = \"stragglers\"\n",
        )
        .unwrap();
        let out = execute(&spec).unwrap();
        let sim = out[0].sim.as_ref().expect("sim meta");
        assert!(sim.total_virtual_seconds > 0.0);
        assert_eq!(sim.round_end_seconds.len(), out[0].log.records.len());
    }

    #[test]
    fn custom_network_reaches_the_virtual_clock() {
        let base = "name = \"t\"\nmode = \"sim\"\n[run]\nrounds = 2\nscale = \"smoke\"\n\
                    fraction = 0.5\n[sweep]\nworkload = \"mnist\"\nmethod = \"fedavg\"\n";
        let fast = ScenarioSpec::from_toml_str(base).unwrap();
        let slow =
            ScenarioSpec::from_toml_str(&format!("{base}[network]\nrtt_seconds = 5.0\n")).unwrap();
        let t_fast = execute(&fast).unwrap()[0]
            .sim
            .as_ref()
            .unwrap()
            .total_virtual_seconds;
        let t_slow = execute(&slow).unwrap()[0]
            .sim
            .as_ref()
            .unwrap()
            .total_virtual_seconds;
        // Each round pays ≥ 2·RTT on the virtual clock.
        assert!(t_slow > t_fast + 10.0, "{t_fast} vs {t_slow}");
    }
}
