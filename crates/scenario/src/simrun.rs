//! Discrete-event simulation runner: build + run any registry method
//! under any server policy × heterogeneity profile (the engine behind the
//! `sim_tta` binary and every `mode = "sim"` scenario).
//!
//! Moved here from `fedbiad-bench` so the declarative scenario engine and
//! the legacy harness binaries share one runner (`fedbiad-bench`
//! re-exports this module unchanged).

use crate::methods::{with_algorithm, AlgorithmVisitor, CompressorChoice, Method, RunOpts};
use fedbiad_data::FedDataset;
use fedbiad_fl::round::resolve_cohort;
use fedbiad_fl::runner::ExperimentConfig;
use fedbiad_fl::workload::WorkloadBundle;
use fedbiad_fl::FlAlgorithm;
use fedbiad_nn::Model;
use fedbiad_sim::{
    CostModel, DeadlineOverSelect, FedBuff, HeterogeneityProfile, ServerPolicy, SimConfig,
    SimReport, Simulator, SyncBarrier,
};

/// Which server policy to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Synchronous barrier (the lock-step runner).
    Sync,
    /// Deadline-based over-selection with straggler dropping.
    Deadline,
    /// FedBuff-style buffered asynchronous aggregation.
    FedBuff,
}

impl PolicyChoice {
    /// All three, sweep order.
    pub fn all() -> [PolicyChoice; 3] {
        [
            PolicyChoice::Sync,
            PolicyChoice::Deadline,
            PolicyChoice::FedBuff,
        ]
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<PolicyChoice> {
        match s.to_ascii_lowercase().as_str() {
            "sync" | "barrier" => Some(PolicyChoice::Sync),
            "deadline" | "overselect" => Some(PolicyChoice::Deadline),
            "fedbuff" | "buffered" | "async" => Some(PolicyChoice::FedBuff),
            _ => None,
        }
    }

    /// Canonical spec/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyChoice::Sync => "sync",
            PolicyChoice::Deadline => "deadline",
            PolicyChoice::FedBuff => "fedbuff",
        }
    }

    /// Instantiate the policy for a cohort of `cohort` clients and an
    /// estimated nominal round duration (used to place the deadline).
    pub fn build(self, cohort: usize, nominal_round_seconds: f64) -> Box<dyn ServerPolicy> {
        match self {
            PolicyChoice::Sync => Box::new(SyncBarrier),
            PolicyChoice::Deadline => {
                // Over-select 50 %, close the round at 2× the nominal
                // round time: fast clients make it, hard stragglers miss.
                Box::new(DeadlineOverSelect::new(1.5, 2.0 * nominal_round_seconds))
            }
            PolicyChoice::FedBuff => Box::new(FedBuff::new((cohort / 2).max(1), cohort.max(1))),
        }
    }
}

/// Parse a heterogeneity-profile CLI name. Delegates to
/// [`ProfileChoice`](crate::spec::ProfileChoice) so the name → cohort
/// mapping exists in exactly one place.
pub fn parse_profile(s: &str) -> Option<HeterogeneityProfile> {
    crate::spec::ProfileChoice::parse(s).map(|p| p.resolve(None))
}

/// A nominal (multiplier-1, 5G) round-duration estimate for deadline
/// placement: compute + full-model transmission both ways.
pub fn nominal_round_seconds(bundle: &WorkloadBundle, cost: &CostModel) -> f64 {
    let weights = bundle.model.arch().total_weights;
    let net = fedbiad_sim::LinkClass::FiveG.network();
    let model_bytes = (weights as u64) * 4;
    cost.local_seconds(weights, bundle.train.local_iters, 1.0)
        + net.download_message_seconds(model_bytes)
        + net.upload_message_seconds(model_bytes)
}

/// Run `method` on `bundle` under `policy` × `profile` and return the
/// simulation report.
pub fn run_sim_method(
    method: Method,
    bundle: &WorkloadBundle,
    opts: RunOpts,
    policy: PolicyChoice,
    profile: HeterogeneityProfile,
) -> SimReport {
    run_sim_method_composed(method, bundle, opts, policy, profile, None)
}

/// Run `method` under `policy` × `profile`, optionally composed with an
/// `extra` sketched compressor (only valid on base methods). Algorithm
/// construction is shared with the lock-step driver through
/// [`with_algorithm`], so the two can never diverge per method.
pub fn run_sim_method_composed(
    method: Method,
    bundle: &WorkloadBundle,
    opts: RunOpts,
    policy: PolicyChoice,
    profile: HeterogeneityProfile,
    extra: Option<CompressorChoice>,
) -> SimReport {
    let base = ExperimentConfig {
        rounds: opts.rounds,
        client_fraction: opts.client_fraction,
        seed: opts.seed,
        train: crate::methods::train_config(bundle, &opts),
        eval_topk: bundle.eval_topk,
        eval_every: opts.eval_every,
        eval_max_samples: opts.eval_max_samples,
        agg: opts.agg,
        cohort: opts.cohort,
        sampler: opts.sampler,
        adversary: opts.adversary,
        churn: opts.churn,
    };
    let cfg = SimConfig::new(base, profile);
    let cohort = resolve_cohort(bundle.data.num_clients(), base.client_fraction, base.cohort)
        .expect("cohort configuration invalid");
    let pol = policy.build(cohort, nominal_round_seconds(bundle, &cfg.cost));

    let p = opts.dropout_override.unwrap_or(bundle.dropout_rate);
    let driver = SimDriver {
        model: bundle.model.as_ref(),
        data: &bundle.data,
        pol,
        cfg,
    };
    with_algorithm(method, p, opts.stage_boundary, extra, driver)
}

struct SimDriver<'a> {
    model: &'a dyn Model,
    data: &'a FedDataset,
    pol: Box<dyn ServerPolicy>,
    cfg: SimConfig,
}

impl AlgorithmVisitor for SimDriver<'_> {
    type Out = SimReport;

    fn visit<A: FlAlgorithm>(self, algo: A) -> SimReport {
        Simulator::new(self.model, self.data, algo, self.pol, self.cfg).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_fl::workload::{build, Scale, Workload};

    #[test]
    fn policy_choice_parses() {
        assert_eq!(PolicyChoice::parse("SYNC"), Some(PolicyChoice::Sync));
        assert_eq!(PolicyChoice::parse("fedbuff"), Some(PolicyChoice::FedBuff));
        assert_eq!(
            PolicyChoice::parse("deadline"),
            Some(PolicyChoice::Deadline)
        );
        assert_eq!(PolicyChoice::parse("nope"), None);
        for pc in PolicyChoice::all() {
            assert_eq!(PolicyChoice::parse(pc.name()), Some(pc));
        }
    }

    #[test]
    fn profile_parses() {
        assert!(parse_profile("homogeneous").is_some());
        assert!(parse_profile("mixed").is_some());
        assert!(parse_profile("stragglers").is_some());
        assert!(parse_profile("nope").is_none());
    }

    #[test]
    fn sim_runs_every_policy_on_smoke_workload() {
        let bundle = build(Workload::MnistLike, Scale::Smoke, 3);
        let opts = RunOpts::for_rounds(2, 3);
        for policy in PolicyChoice::all() {
            let report = run_sim_method(
                Method::FedAvg,
                &bundle,
                opts,
                policy,
                parse_profile("stragglers").unwrap(),
            );
            assert_eq!(report.log.records.len(), 2, "{policy:?}");
            assert!(report.total_virtual_seconds > 0.0, "{policy:?}");
        }
    }
}
