//! Criterion micro-benches: the batched execution engine vs the
//! per-sample reference on the paper's two training architectures.
//!
//! `mlp/loss_grad_*/32` is the pair the perf contract is judged on: the
//! batch-32 MLP local step, per-sample vs batched (see BENCHMARKS.md and
//! `BENCH_kernels.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedbiad_nn::lstm_lm::LstmLmModel;
use fedbiad_nn::mlp::MlpModel;
use fedbiad_nn::{Batch, Model, ReferencePath};
use fedbiad_tensor::rng::{stream, StreamTag};
use fedbiad_tensor::Workspace;
use rand::Rng;

fn bench_mlp(c: &mut Criterion) {
    // Lab-scale MNIST shape: 784 → 128 → 10.
    let model = MlpModel::new(784, 128, 10);
    let params = model.init_params(&mut stream(7, StreamTag::Init, 0, 0));
    let mut rng = stream(7, StreamTag::Batch, 0, 0);
    let n = 32usize;
    let x: Vec<f32> = (0..n * 784).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10) as u32).collect();
    let batch = Batch::Dense {
        x: &x,
        y: &y,
        dim: 784,
    };

    let mut group = c.benchmark_group("mlp");
    group.throughput(Throughput::Elements(n as u64));
    let reference = ReferencePath(&model);
    let mut grads = params.zeros_like();
    let mut ws = Workspace::new();
    group.bench_with_input(BenchmarkId::new("loss_grad_per_sample", n), &(), |b, _| {
        b.iter(|| {
            grads.zero();
            reference.loss_grad_batched(&params, &batch, &mut grads, &mut ws)
        })
    });
    group.bench_with_input(BenchmarkId::new("loss_grad_batched", n), &(), |b, _| {
        b.iter(|| {
            grads.zero();
            model.loss_grad_batched(&params, &batch, &mut grads, &mut ws)
        })
    });
    group.bench_with_input(BenchmarkId::new("evaluate_per_sample", n), &(), |b, _| {
        b.iter(|| reference.evaluate_batched(&params, &batch, 1, &mut ws))
    });
    group.bench_with_input(BenchmarkId::new("evaluate_batched", n), &(), |b, _| {
        b.iter(|| model.evaluate_batched(&params, &batch, 1, &mut ws))
    });
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    // Lab-scale text shape: vocab 600, 48-dim embedding/hidden, 2 layers,
    // 16 windows × 8 steps.
    let model = LstmLmModel::new(600, 48, 48, 2);
    let params = model.init_params(&mut stream(9, StreamTag::Init, 0, 0));
    let mut rng = stream(9, StreamTag::Batch, 0, 0);
    let n = 16usize;
    let windows_data: Vec<Vec<u32>> = (0..n)
        .map(|_| (0..9).map(|_| rng.gen_range(0..600) as u32).collect())
        .collect();
    let windows: Vec<&[u32]> = windows_data.iter().map(|w| w.as_slice()).collect();
    let batch = Batch::Seq { windows: &windows };

    let mut group = c.benchmark_group("lstm_lm");
    group.throughput(Throughput::Elements(n as u64));
    let reference = ReferencePath(&model);
    let mut grads = params.zeros_like();
    let mut ws = Workspace::new();
    group.bench_with_input(BenchmarkId::new("loss_grad_per_sample", n), &(), |b, _| {
        b.iter(|| {
            grads.zero();
            reference.loss_grad_batched(&params, &batch, &mut grads, &mut ws)
        })
    });
    group.bench_with_input(BenchmarkId::new("loss_grad_batched", n), &(), |b, _| {
        b.iter(|| {
            grads.zero();
            model.loss_grad_batched(&params, &batch, &mut grads, &mut ws)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mlp, bench_lstm);
criterion_main!(benches);
