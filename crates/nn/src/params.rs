//! Parameter container with a droppable row-unit registry.
//!
//! FedBIAD's dropping pattern β ∈ {0,1}^J indexes *rows of weight matrices*
//! (paper §III-A: "J is the number of rows in all weight matrices", with the
//! j-th row denoted w_j). [`ParamSet`] owns all weight matrices of a model
//! plus their biases and exposes that global row index space:
//!
//! * a row unit `j` maps to `(entry, row)` via [`ParamSet::row_unit`];
//! * dropping a row unit zeroes the matrix row **and its bundled bias
//!   element** (the bias of unit `j` belongs to unit `j`);
//! * every entry carries a [`LayerKind`] so baseline algorithms can restrict
//!   where they are allowed to drop (FedDrop/AFD: dense hidden only; FjORD /
//!   HeteroFL: width dims; FedBIAD: everything — paper §II & §V-A).

use fedbiad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Semantic role of a weight matrix; decides which dropout baselines may act
/// on its rows and how "neuron dropout" couples consecutive layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Hidden fully-connected layer (rows = hidden units).
    DenseHidden,
    /// Output head (rows = classes / vocabulary words).
    DenseOutput,
    /// Embedding table (rows = vocabulary words).
    Embedding,
    /// LSTM input→gates matrix W_x (rows = 4·H gate pre-activations).
    LstmInput,
    /// LSTM hidden→gates matrix W_h — the *recurrent connections* that
    /// FedDrop/AFD cannot compress (paper §I) but FedBIAD can.
    LstmRecurrent,
}

impl LayerKind {
    /// `true` for the recurrent weight matrices of an RNN.
    pub fn is_recurrent(self) -> bool {
        matches!(self, LayerKind::LstmRecurrent)
    }
}

/// Metadata for one weight matrix (one "entry") of a [`ParamSet`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EntryMeta {
    /// Human-readable name, e.g. `"w1"`, `"lstm0.wx"`.
    pub name: String,
    /// Semantic role.
    pub kind: LayerKind,
    /// Whether each row bundles a bias element.
    pub has_bias: bool,
    /// Whether rows of this matrix participate in the global row-unit space
    /// (β acts on them). All weight matrices of the paper's models are
    /// droppable; set `false` for auxiliary parameters.
    pub droppable: bool,
    /// Interleaved gate blocks per droppable *unit*. 1 for ordinary
    /// matrices (unit = matrix row). 4 for LSTM gate matrices: unit `u`
    /// owns rows `{u, H+u, 2H+u, 3H+u}` so that dropping it silences the
    /// whole activation — "zeroing weight rows is equivalent to dropout of
    /// the corresponding activations" (paper §III-C), the row analogue of
    /// the paper's filter-wise grouping for CNNs.
    pub gate_groups: usize,
}

impl EntryMeta {
    /// Convenience constructor with `gate_groups = 1`.
    pub fn new(name: impl Into<String>, kind: LayerKind, has_bias: bool, droppable: bool) -> Self {
        Self {
            name: name.into(),
            kind,
            has_bias,
            droppable,
            gate_groups: 1,
        }
    }
}

/// Architecture descriptor consumed by the Theorem-1 calculator
/// (`fedbiad-core::theory`): the paper characterises a model by `(S, L, D)`
/// plus the input dimension `d`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ArchInfo {
    /// Total number of weights N (S equals `(1-p)·N` once a rate is fixed).
    pub total_weights: usize,
    /// Number of layers L.
    pub depth: usize,
    /// Hidden width D.
    pub width: usize,
    /// Input dimension d.
    pub input_dim: usize,
}

/// A model's full parameter state: weight matrices + biases + metadata +
/// the row-unit registry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamSet {
    mats: Vec<Matrix>,
    /// Bias vectors; empty `Vec` when the entry has no bias.
    biases: Vec<Vec<f32>>,
    meta: Vec<EntryMeta>,
    /// Prefix sums: `row_offsets[i]` = global row index of entry i's row 0
    /// (only droppable entries contribute); last element = J.
    row_offsets: Vec<usize>,
}

impl ParamSet {
    /// Build an empty set; add entries with [`ParamSet::push_entry`].
    pub fn new() -> Self {
        Self {
            mats: Vec::new(),
            biases: Vec::new(),
            meta: Vec::new(),
            row_offsets: vec![0],
        }
    }

    /// Append a weight matrix (with optional bias) and return its entry
    /// index. Bias length must equal the row count when present; the row
    /// count must be divisible by `meta.gate_groups`.
    pub fn push_entry(&mut self, w: Matrix, bias: Option<Vec<f32>>, meta: EntryMeta) -> usize {
        let idx = self.mats.len();
        let rows = w.rows();
        assert!(meta.gate_groups >= 1, "gate_groups must be ≥ 1");
        assert_eq!(
            rows % meta.gate_groups,
            0,
            "rows must divide into gate groups"
        );
        if let Some(b) = &bias {
            assert_eq!(b.len(), rows, "bias length must equal rows");
            assert!(meta.has_bias, "bias provided but has_bias=false");
        } else {
            assert!(!meta.has_bias, "has_bias=true but no bias provided");
        }
        let units = rows / meta.gate_groups;
        let prev = *self.row_offsets.last().expect("offsets nonempty");
        self.row_offsets
            .push(prev + if meta.droppable { units } else { 0 });
        self.mats.push(w);
        self.biases.push(bias.unwrap_or_default());
        self.meta.push(meta);
        idx
    }

    /// Number of droppable units of entry `e`: `rows / gate_groups`.
    pub fn entry_units(&self, e: usize) -> usize {
        self.mats[e].rows() / self.meta[e].gate_groups
    }

    /// The matrix rows owned by unit `u` of entry `e`:
    /// `{g·stride + u | g < gate_groups}` with `stride = rows/gate_groups`.
    pub fn unit_rows(&self, e: usize, u: usize) -> impl Iterator<Item = usize> + '_ {
        let gg = self.meta[e].gate_groups;
        let stride = self.mats[e].rows() / gg;
        debug_assert!(u < stride);
        (0..gg).map(move |g| g * stride + u)
    }

    /// Number of entries (weight matrices).
    pub fn num_entries(&self) -> usize {
        self.mats.len()
    }

    /// Weight matrix of entry `i`.
    pub fn mat(&self, i: usize) -> &Matrix {
        &self.mats[i]
    }

    /// Mutable weight matrix of entry `i`.
    pub fn mat_mut(&mut self, i: usize) -> &mut Matrix {
        &mut self.mats[i]
    }

    /// Bias of entry `i` (empty slice when absent).
    pub fn bias(&self, i: usize) -> &[f32] {
        &self.biases[i]
    }

    /// Mutable bias of entry `i`.
    pub fn bias_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.biases[i]
    }

    /// Simultaneous mutable access to entry `i`'s matrix and bias.
    pub fn mat_bias_mut(&mut self, i: usize) -> (&mut Matrix, &mut [f32]) {
        let (m, b) = (&mut self.mats[i], &mut self.biases[i]);
        (m, b)
    }

    /// Simultaneous mutable access to two distinct entries' matrices and
    /// biases — the split borrow BPTT needs to accumulate `dW_x`/`db` and
    /// `dW_h` in one pass. Panics when `i == j`.
    #[allow(clippy::type_complexity)]
    pub fn entries_mut2(
        &mut self,
        i: usize,
        j: usize,
    ) -> ((&mut Matrix, &mut [f32]), (&mut Matrix, &mut [f32])) {
        assert_ne!(i, j, "entries must be distinct");
        let hi = i.max(j);
        let lo = i.min(j);
        let (m1, m2) = self.mats.split_at_mut(hi);
        let (b1, b2) = self.biases.split_at_mut(hi);
        let first = (&mut m1[lo], b1[lo].as_mut_slice());
        let second = (&mut m2[0], b2[0].as_mut_slice());
        if i < j {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Metadata of entry `i`.
    pub fn meta(&self, i: usize) -> &EntryMeta {
        &self.meta[i]
    }

    /// Entry index by name; panics if absent (programmer error).
    pub fn entry_index(&self, name: &str) -> usize {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .unwrap_or_else(|| panic!("no entry named {name}"))
    }

    // ---- row-unit registry (the J-dimensional space β acts on) ----
    //
    // A "row unit" is one droppable activation's worth of weight rows:
    // a single matrix row for ordinary entries, the 4 interleaved gate
    // rows for LSTM entries (gate_groups = 4).

    /// Total number of droppable row units J.
    pub fn num_row_units(&self) -> usize {
        *self.row_offsets.last().expect("offsets nonempty")
    }

    /// Map a global row-unit index `j ∈ [0, J)` to `(entry, unit)`.
    pub fn row_unit(&self, j: usize) -> (usize, usize) {
        assert!(j < self.num_row_units(), "row unit {j} out of range");
        // Binary search over prefix sums; J is small (≤ tens of thousands)
        // but this is called per-row in aggregation, so keep it O(log E).
        let entry = match self.row_offsets.binary_search(&j) {
            Ok(mut e) => {
                // Exact hits can land on an empty (non-droppable) entry
                // boundary; advance to the entry that actually owns rows.
                while self.row_offsets[e + 1] == self.row_offsets[e] {
                    e += 1;
                }
                e
            }
            Err(e) => e - 1,
        };
        (entry, j - self.row_offsets[entry])
    }

    /// Global row-unit index of `(entry, unit)`; `None` when the entry is
    /// not droppable.
    pub fn row_unit_index(&self, entry: usize, unit: usize) -> Option<usize> {
        if !self.meta[entry].droppable {
            return None;
        }
        debug_assert!(unit < self.entry_units(entry));
        Some(self.row_offsets[entry] + unit)
    }

    /// Number of parameters carried by row unit `j`
    /// (gate_groups × (cols + bundled bias element)).
    pub fn row_unit_params(&self, j: usize) -> usize {
        let (e, _) = self.row_unit(j);
        self.meta[e].gate_groups * (self.mats[e].cols() + usize::from(self.meta[e].has_bias))
    }

    /// Zero row unit `j` (all its gate rows and bias elements) — the
    /// `β_j = 0` case of eq. (4).
    pub fn zero_row_unit(&mut self, j: usize) {
        self.scale_row_unit(j, 0.0);
    }

    /// Scale row unit `j`'s weights and bias by `f` — used for the
    /// spike-and-slab posterior mean E[β∘w] = keep-prob·µ at evaluation.
    pub fn scale_row_unit(&mut self, j: usize, f: f32) {
        let (e, u) = self.row_unit(j);
        let rows: Vec<usize> = self.unit_rows(e, u).collect();
        let has_bias = self.meta[e].has_bias;
        for r in rows {
            if f == 0.0 {
                self.mats[e].zero_row(r);
            } else {
                for v in self.mats[e].row_mut(r) {
                    *v *= f;
                }
            }
            if has_bias {
                self.biases[e][r] *= f;
            }
        }
    }

    /// [`LayerKind`] owning row unit `j`.
    pub fn row_unit_kind(&self, j: usize) -> LayerKind {
        let (e, _) = self.row_unit(j);
        self.meta[e].kind
    }

    // ---- whole-set arithmetic (aggregation / optimiser substrate) ----

    /// Total number of scalar parameters (weights + biases) — the paper's N.
    pub fn total_params(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Uncompressed wire size in bytes (4 B per parameter) — FedAvg's
    /// per-round upload.
    pub fn total_bytes(&self) -> u64 {
        self.total_params() as u64 * 4
    }

    /// Zero everything in place (gradient reset; reuses allocations).
    pub fn zero(&mut self) {
        for m in &mut self.mats {
            m.zero();
        }
        for b in &mut self.biases {
            b.fill(0.0);
        }
    }

    /// Clone the shapes/metadata with zeroed values (gradient buffer).
    pub fn zeros_like(&self) -> ParamSet {
        let mut out = self.clone();
        out.zero();
        out
    }

    /// `self += alpha * other`, entry-wise. Shapes must match.
    pub fn axpy(&mut self, alpha: f32, other: &ParamSet) {
        assert_eq!(self.mats.len(), other.mats.len(), "entry count mismatch");
        for (m, om) in self.mats.iter_mut().zip(&other.mats) {
            m.axpy_assign(alpha, om);
        }
        for (b, ob) in self.biases.iter_mut().zip(&other.biases) {
            fedbiad_tensor::ops::axpy(alpha, ob, b);
        }
    }

    /// Scale every parameter by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for m in &mut self.mats {
            m.scale(alpha);
        }
        for b in &mut self.biases {
            for v in b {
                *v *= alpha;
            }
        }
    }

    /// Global L2 norm over all parameters.
    pub fn l2_norm(&self) -> f32 {
        let mut s = 0.0f32;
        for m in &self.mats {
            s += fedbiad_tensor::ops::norm_sq(m.as_slice());
        }
        for b in &self.biases {
            s += fedbiad_tensor::ops::norm_sq(b);
        }
        s.sqrt()
    }

    /// Scale all parameters so the global norm is ≤ `max_norm`; returns the
    /// applied scale (0.0 when a non-finite gradient was dropped). Used
    /// for clipped-gradient-norm SGD (§V-A).
    ///
    /// Mirrors `fedbiad_tensor::ops::clip_norm`: a NaN/Inf norm fails
    /// every `>` comparison, so the old code silently skipped clipping
    /// and let the optimiser step on a poisoned gradient. Non-finite
    /// norms now zero the set (the step becomes a no-op).
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.l2_norm();
        if !norm.is_finite() {
            self.zero();
            return 0.0;
        }
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.scale(s);
            s
        } else {
            1.0
        }
    }

    /// Flatten all parameters into one `Vec<f32>` (matrices first in entry
    /// order, then that entry's bias). Used by sketched compressors.
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total_params());
        for (m, b) in self.mats.iter().zip(&self.biases) {
            out.extend_from_slice(m.as_slice());
            out.extend_from_slice(b);
        }
        out
    }

    /// Inverse of [`ParamSet::flatten`]; panics on length mismatch.
    pub fn unflatten_from(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.total_params(), "flat length mismatch");
        let mut off = 0;
        for (m, b) in self.mats.iter_mut().zip(&mut self.biases) {
            let n = m.len();
            m.as_mut_slice().copy_from_slice(&flat[off..off + n]);
            off += n;
            let bl = b.len();
            b.copy_from_slice(&flat[off..off + bl]);
            off += bl;
        }
    }

    /// Copy the flat slice `[start, start + out.len())` (in
    /// [`ParamSet::flatten`] order) into `out` without materialising the
    /// full flat vector — the sharded aggregation path reads snapshots
    /// one shard at a time through this.
    pub fn copy_flat_range(&self, start: usize, out: &mut [f32]) {
        assert!(
            start + out.len() <= self.total_params(),
            "flat range out of bounds"
        );
        let mut need = out;
        let mut pos = start; // position within the remaining flat space
        let mut off = 0usize; // flat offset of the current section
        for (m, b) in self.mats.iter().zip(&self.biases) {
            for section in [m.as_slice(), b.as_slice()] {
                if need.is_empty() {
                    return;
                }
                let sec_start = off;
                off += section.len();
                if pos >= off {
                    continue;
                }
                let local = pos - sec_start;
                let take = (section.len() - local).min(need.len());
                need[..take].copy_from_slice(&section[local..local + take]);
                need = &mut need[take..];
                pos += take;
            }
        }
        debug_assert!(need.is_empty());
    }

    /// Maximum |parameter| — the paper's Assumption 2 bound B.
    pub fn max_abs(&self) -> f32 {
        let mut m = 0.0f32;
        for mat in &self.mats {
            for &v in mat.as_slice() {
                m = m.max(v.abs());
            }
        }
        for b in &self.biases {
            for &v in b {
                m = m.max(v.abs());
            }
        }
        m
    }
}

impl Default for ParamSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(3, 2, 1.0),
            Some(vec![0.5; 3]),
            EntryMeta::new("w1", LayerKind::DenseHidden, true, true),
        );
        p.push_entry(
            Matrix::full(4, 3, 2.0),
            None,
            EntryMeta::new("emb", LayerKind::Embedding, false, true),
        );
        p.push_entry(
            Matrix::full(2, 2, 3.0),
            None,
            EntryMeta::new("aux", LayerKind::DenseOutput, false, false),
        );
        p
    }

    #[test]
    fn row_unit_space_counts_only_droppable() {
        let p = sample_set();
        assert_eq!(p.num_row_units(), 3 + 4);
        assert_eq!(p.row_unit(0), (0, 0));
        assert_eq!(p.row_unit(2), (0, 2));
        assert_eq!(p.row_unit(3), (1, 0));
        assert_eq!(p.row_unit(6), (1, 3));
        assert_eq!(p.row_unit_index(0, 1), Some(1));
        assert_eq!(p.row_unit_index(1, 2), Some(5));
        assert_eq!(p.row_unit_index(2, 0), None);
    }

    #[test]
    fn zero_row_unit_zeros_weight_and_bias() {
        let mut p = sample_set();
        p.zero_row_unit(1);
        assert_eq!(p.mat(0).row(1), &[0.0, 0.0]);
        assert_eq!(p.bias(0)[1], 0.0);
        assert_eq!(p.bias(0)[0], 0.5);
        p.zero_row_unit(4); // embedding row 1, no bias
        assert_eq!(p.mat(1).row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn row_unit_params_counts_bias() {
        let p = sample_set();
        assert_eq!(p.row_unit_params(0), 3); // 2 weights + bias
        assert_eq!(p.row_unit_params(3), 3); // embedding row: 3 weights
    }

    #[test]
    fn totals_and_flatten_round_trip() {
        let p = sample_set();
        assert_eq!(p.total_params(), 6 + 3 + 12 + 4);
        assert_eq!(p.total_bytes(), 25 * 4);
        let flat = p.flatten();
        assert_eq!(flat.len(), 25);
        let mut q = p.zeros_like();
        q.unflatten_from(&flat);
        assert_eq!(q.flatten(), flat);
    }

    #[test]
    fn copy_flat_range_matches_flatten_slices() {
        let p = sample_set();
        let flat = p.flatten();
        for start in 0..flat.len() {
            for len in [0, 1, 3, flat.len() - start] {
                if start + len > flat.len() {
                    continue;
                }
                let mut out = vec![f32::NAN; len];
                p.copy_flat_range(start, &mut out);
                assert_eq!(out, &flat[start..start + len], "start {start} len {len}");
            }
        }
    }

    #[test]
    fn axpy_scale_norm() {
        let mut p = sample_set();
        let q = p.clone();
        p.axpy(1.0, &q);
        assert_eq!(p.mat(0).get(0, 0), 2.0);
        assert_eq!(p.bias(0)[0], 1.0);
        p.scale(0.5);
        assert_eq!(p.mat(1).get(0, 0), 2.0);
        assert!(p.l2_norm() > 0.0);
    }

    #[test]
    fn clip_global_norm_bounds_norm() {
        let mut p = sample_set();
        let s = p.clip_global_norm(1.0);
        assert!(s < 1.0);
        assert!((p.l2_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_global_norm_drops_non_finite_gradients() {
        // Regression: NaN/Inf norms used to fall through the clip branch
        // and return 1.0, letting SGD apply a poisoned gradient.
        let mut p = sample_set();
        p.mat_mut(0).set(0, 0, f32::NAN);
        assert_eq!(p.clip_global_norm(1.0), 0.0);
        assert!(p.flatten().iter().all(|&v| v == 0.0));

        let mut p = sample_set();
        p.bias_mut(0)[1] = f32::INFINITY;
        assert_eq!(p.clip_global_norm(1.0), 0.0);
        assert!(p.flatten().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_abs_sees_biases() {
        let mut p = sample_set();
        p.bias_mut(0)[2] = -9.0;
        assert_eq!(p.max_abs(), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_unit_oob_panics() {
        let p = sample_set();
        let _ = p.row_unit(7);
    }
}
