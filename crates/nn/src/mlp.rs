//! The paper's image-classification model (§V-A): a fully connected network
//! with one hidden ReLU layer and a softmax output — 128 hidden units for
//! MNIST, 256 for FMNIST.

use crate::activation::Activation;
use crate::dense;
use crate::model::{Batch, EvalAccum, Model};
use crate::params::{ArchInfo, EntryMeta, LayerKind, ParamSet};
use crate::softmax;
use fedbiad_tensor::{init, stats, Matrix};
use rand::rngs::StdRng;

/// One-hidden-layer MLP classifier.
#[derive(Clone, Debug)]
pub struct MlpModel {
    /// Input feature dimension (784 for 28×28 images).
    pub input_dim: usize,
    /// Hidden width D.
    pub hidden: usize,
    /// Number of classes.
    pub classes: usize,
}

impl MlpModel {
    /// Convenience constructor.
    pub fn new(input_dim: usize, hidden: usize, classes: usize) -> Self {
        Self {
            input_dim,
            hidden,
            classes,
        }
    }

    fn forward(&self, params: &ParamSet, x: &[f32], h: &mut [f32], logits: &mut [f32]) {
        dense::forward(params.mat(0), params.bias(0), x, Activation::Relu, h);
        dense::forward(params.mat(1), params.bias(1), h, Activation::Linear, logits);
    }
}

impl Model for MlpModel {
    fn name(&self) -> &str {
        "mlp"
    }

    fn arch(&self) -> ArchInfo {
        ArchInfo {
            total_weights: self.hidden * self.input_dim
                + self.hidden
                + self.classes * self.hidden
                + self.classes,
            depth: 2,
            width: self.hidden,
            input_dim: self.input_dim,
        }
    }

    fn init_params(&self, rng: &mut StdRng) -> ParamSet {
        let mut p = ParamSet::new();
        let mut w1 = Matrix::zeros(self.hidden, self.input_dim);
        init::xavier(&mut w1, self.input_dim, self.hidden, rng);
        p.push_entry(
            w1,
            Some(vec![0.0; self.hidden]),
            EntryMeta::new("w1", LayerKind::DenseHidden, true, true),
        );
        let mut w2 = Matrix::zeros(self.classes, self.hidden);
        init::xavier(&mut w2, self.hidden, self.classes, rng);
        p.push_entry(
            w2,
            Some(vec![0.0; self.classes]),
            EntryMeta::new("w2", LayerKind::DenseOutput, true, true),
        );
        p
    }

    fn loss_grad(&self, params: &ParamSet, batch: &Batch<'_>, grads: &mut ParamSet) -> f32 {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("MlpModel expects Batch::Dense"),
        };
        assert_eq!(dim, self.input_dim, "feature dim mismatch");
        let n = y.len();
        assert!(n > 0, "empty batch");
        let inv_n = 1.0 / n as f32;

        // Workhorse buffers reused across the batch.
        let mut h = vec![0.0f32; self.hidden];
        let mut logits = vec![0.0f32; self.classes];
        let mut dh = vec![0.0f32; self.hidden];
        let mut loss_sum = 0.0f32;

        for (s, &label) in y.iter().enumerate() {
            let xs = &x[s * dim..(s + 1) * dim];
            self.forward(params, xs, &mut h, &mut logits);
            loss_sum += softmax::softmax_xent_grad(&mut logits, label as usize);
            // Mean-reduce: scale the per-sample gradient by 1/n here so the
            // accumulation below needs no extra pass.
            for g in logits.iter_mut() {
                *g *= inv_n;
            }
            {
                // Output layer is Linear, so `logits` already holds the
                // pre-activation delta; accumulate directly.
                let (w2g, b2g) = grads.mat_bias_mut(1);
                fedbiad_tensor::ops::ger(w2g, 1.0, &logits, &h);
                fedbiad_tensor::ops::axpy(1.0, &logits, b2g);
            }
            fedbiad_tensor::ops::gemv_t(params.mat(1), &logits, &mut dh);
            let (w1g, b1g) = grads.mat_bias_mut(0);
            dense::backward(
                params.mat(0),
                xs,
                &h,
                Activation::Relu,
                &mut dh,
                w1g,
                b1g,
                None,
            );
        }
        loss_sum * inv_n
    }

    fn evaluate(&self, params: &ParamSet, batch: &Batch<'_>, k: usize) -> EvalAccum {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("MlpModel expects Batch::Dense"),
        };
        let mut h = vec![0.0f32; self.hidden];
        let mut logits = vec![0.0f32; self.classes];
        let mut acc = EvalAccum::default();
        for (s, &label) in y.iter().enumerate() {
            let xs = &x[s * dim..(s + 1) * dim];
            self.forward(params, xs, &mut h, &mut logits);
            if stats::in_top_k(&logits, label as usize, k) {
                acc.correct += 1;
            }
            acc.loss_sum += softmax::softmax_xent_loss(&mut logits, label as usize) as f64;
            acc.count += 1;
        }
        acc
    }

    fn loss_grad_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        grads: &mut ParamSet,
        ws: &mut fedbiad_tensor::Workspace,
    ) -> f32 {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("MlpModel expects Batch::Dense"),
        };
        assert_eq!(dim, self.input_dim, "feature dim mismatch");
        let n = y.len();
        assert!(n > 0, "empty batch");
        let _gemm_span = fedbiad_telemetry::span!("nn.batch.loss_grad", n = n);
        fedbiad_telemetry::gauge!("nn.ws_churn", ws.churn());
        let inv_n = 1.0 / n as f32;

        // Whole-batch forward: two GEMMs instead of 2n GEMVs.
        let mut h = ws.take(n * self.hidden);
        let mut logits = ws.take(n * self.classes);
        dense::forward_batch(
            params.mat(0),
            params.bias(0),
            x,
            n,
            Activation::Relu,
            &mut h,
        );
        dense::forward_batch(
            params.mat(1),
            params.bias(1),
            &h,
            n,
            Activation::Linear,
            &mut logits,
        );

        // Per-row softmax + mean-reduce scaling; loss accumulates in
        // sample order, matching the reference's running sum bit for bit.
        let mut loss_sum = 0.0f32;
        for (s, &label) in y.iter().enumerate() {
            let row = &mut logits[s * self.classes..(s + 1) * self.classes];
            loss_sum += softmax::softmax_xent_grad(row, label as usize);
            for g in row.iter_mut() {
                *g *= inv_n;
            }
        }

        {
            // Output layer (Linear): delta is `logits` itself.
            let (w2g, b2g) = grads.mat_bias_mut(1);
            fedbiad_tensor::ops::gemm_tn_acc(&logits, &h, n, w2g);
            fedbiad_tensor::ops::add_row_sums(&logits, n, b2g);
        }
        let mut dh = ws.take(n * self.hidden);
        fedbiad_tensor::ops::gemm_nn(&logits, params.mat(1), n, &mut dh);
        {
            let (w1g, b1g) = grads.mat_bias_mut(0);
            dense::backward_batch(
                params.mat(0),
                x,
                &h,
                n,
                Activation::Relu,
                &mut dh,
                w1g,
                b1g,
                None,
            );
        }

        ws.give(dh);
        ws.give(logits);
        ws.give(h);
        loss_sum * inv_n
    }

    fn evaluate_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        k: usize,
        ws: &mut fedbiad_tensor::Workspace,
    ) -> EvalAccum {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("MlpModel expects Batch::Dense"),
        };
        assert_eq!(dim, self.input_dim, "feature dim mismatch");
        let n = y.len();
        let _gemm_span = fedbiad_telemetry::span!("nn.batch.eval", n = n);
        fedbiad_telemetry::gauge!("nn.ws_churn", ws.churn());
        let mut h = ws.take(n * self.hidden);
        let mut logits = ws.take(n * self.classes);
        dense::forward_batch(
            params.mat(0),
            params.bias(0),
            x,
            n,
            Activation::Relu,
            &mut h,
        );
        dense::forward_batch(
            params.mat(1),
            params.bias(1),
            &h,
            n,
            Activation::Linear,
            &mut logits,
        );
        let mut acc = EvalAccum::default();
        for (s, &label) in y.iter().enumerate() {
            let row = &mut logits[s * self.classes..(s + 1) * self.classes];
            if stats::in_top_k(row, label as usize, k) {
                acc.correct += 1;
            }
            acc.loss_sum += softmax::softmax_xent_loss(row, label as usize) as f64;
            acc.count += 1;
        }
        ws.give(logits);
        ws.give(h);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};

    fn toy() -> (MlpModel, ParamSet) {
        let m = MlpModel::new(4, 6, 3);
        let mut rng = stream(11, StreamTag::Init, 0, 0);
        let p = m.init_params(&mut rng);
        (m, p)
    }

    #[test]
    fn params_layout_matches_arch() {
        let (m, p) = toy();
        assert_eq!(p.num_entries(), 2);
        assert_eq!(p.total_params(), m.arch().total_weights);
        assert_eq!(p.num_row_units(), 6 + 3);
    }

    #[test]
    fn loss_grad_matches_finite_difference() {
        let (m, p) = toy();
        let x = vec![0.5, -0.2, 0.8, 0.1, -0.9, 0.4, 0.0, 0.3];
        let y = vec![2u32, 0u32];
        let batch = Batch::Dense {
            x: &x,
            y: &y,
            dim: 4,
        };

        let mut grads = p.zeros_like();
        let _ = m.loss_grad(&p, &batch, &mut grads);

        let eps = 1e-2;
        // Spot-check entries across both matrices and biases.
        for (e, r, c) in [(0usize, 0usize, 1usize), (0, 5, 3), (1, 0, 0), (1, 2, 4)] {
            let mut pp = p.clone();
            let v = pp.mat(e).get(r, c);
            pp.mat_mut(e).set(r, c, v + eps);
            let mut pm = p.clone();
            pm.mat_mut(e).set(r, c, v - eps);
            let mut g = p.zeros_like();
            let fp = m.loss_grad(&pp, &batch, &mut g);
            g.zero();
            let fm = m.loss_grad(&pm, &batch, &mut g);
            let fd = (fp - fm) / (2.0 * eps);
            let got = grads.mat(e).get(r, c);
            assert!(
                (got - fd).abs() < 2e-2,
                "entry {e} [{r},{c}]: {got} vs {fd}"
            );
        }
        for (e, r) in [(0usize, 3usize), (1, 1)] {
            let mut pp = p.clone();
            pp.bias_mut(e)[r] += eps;
            let mut pm = p.clone();
            pm.bias_mut(e)[r] -= eps;
            let mut g = p.zeros_like();
            let fp = m.loss_grad(&pp, &batch, &mut g);
            g.zero();
            let fm = m.loss_grad(&pm, &batch, &mut g);
            let fd = (fp - fm) / (2.0 * eps);
            let got = grads.bias(e)[r];
            assert!((got - fd).abs() < 2e-2, "bias {e}[{r}]: {got} vs {fd}");
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let (m, mut p) = toy();
        // Two linearly separable clusters.
        let x = vec![
            1.0, 1.0, 0.0, 0.0, //
            0.9, 1.1, 0.0, 0.1, //
            0.0, 0.0, 1.0, 1.0, //
            0.1, 0.0, 0.9, 1.0,
        ];
        let y = vec![0u32, 0, 1, 1];
        let batch = Batch::Dense {
            x: &x,
            y: &y,
            dim: 4,
        };
        let mut grads = p.zeros_like();
        let first = m.loss_grad(&p, &batch, &mut grads);
        for _ in 0..200 {
            grads.zero();
            let _ = m.loss_grad(&p, &batch, &mut grads);
            p.axpy(-0.5, &grads);
        }
        grads.zero();
        let last = m.loss_grad(&p, &batch, &mut grads);
        assert!(last < first * 0.2, "no learning: {first} -> {last}");
        let acc = m.evaluate(&p, &batch, 1);
        assert_eq!(acc.correct, 4);
    }

    #[test]
    fn batched_engine_is_bit_identical_to_reference() {
        use fedbiad_tensor::Workspace;
        let (m, p) = toy();
        // 7 samples: exercises the 4-row dot4 blocks *and* the remainder.
        let n = 7;
        let x: Vec<f32> = (0..n * 4)
            .map(|i| ((i * 13) % 9) as f32 * 0.23 - 1.0)
            .collect();
        let y: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let batch = Batch::Dense {
            x: &x,
            y: &y,
            dim: 4,
        };
        let mut gr = p.zeros_like();
        let lr = m.loss_grad(&p, &batch, &mut gr);
        let mut ws = Workspace::new();
        let mut gb = p.zeros_like();
        let lb = m.loss_grad_batched(&p, &batch, &mut gb, &mut ws);
        assert_eq!(lr.to_bits(), lb.to_bits(), "loss must match bitwise");
        let (fr, fb) = (gr.flatten(), gb.flatten());
        for (i, (a, b)) in fr.iter().zip(&fb).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad[{i}]: {a} vs {b}");
        }
        let er = m.evaluate(&p, &batch, 2);
        let eb = m.evaluate_batched(&p, &batch, 2, &mut ws);
        assert_eq!(er.loss_sum.to_bits(), eb.loss_sum.to_bits());
        assert_eq!((er.correct, er.count), (eb.correct, eb.count));
    }

    #[test]
    fn evaluate_topk_is_monotone_in_k() {
        let (m, p) = toy();
        let x = vec![0.3; 8];
        let y = vec![1u32, 2u32];
        let batch = Batch::Dense {
            x: &x,
            y: &y,
            dim: 4,
        };
        let a1 = m.evaluate(&p, &batch, 1).accuracy();
        let a3 = m.evaluate(&p, &batch, 3).accuracy();
        assert!(a3 >= a1);
        assert!((a3 - 1.0).abs() < 1e-12, "k = classes ⇒ accuracy 1");
    }
}
