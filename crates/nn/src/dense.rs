//! Fully-connected layer math as free functions over [`Matrix`] weights.
//!
//! Layers do not own parameters — the [`crate::params::ParamSet`] does —
//! so models compose these kernels over their entries. This keeps the
//! server-side aggregation entirely architecture-agnostic.

use crate::activation::Activation;
use fedbiad_tensor::{ops, Matrix};

/// `y = act(W x + b)`.
pub fn forward(w: &Matrix, b: &[f32], x: &[f32], act: Activation, y: &mut [f32]) {
    ops::gemv(w, x, b, y);
    act.forward(y);
}

/// Batched `Y = act(X·Wᵀ + b)`: `x: n×in` (row per sample, row-major),
/// `y: n×out`. Row `i` is bit-identical to [`forward`] on sample `i`
/// (same dots, commutative bias add, same element-wise activation).
pub fn forward_batch(w: &Matrix, b: &[f32], x: &[f32], n: usize, act: Activation, y: &mut [f32]) {
    ops::gemm_nt(x, w, n, y);
    ops::add_bias_cols(y, b);
    act.forward(y);
}

/// Batched backward through `Y = act(X·Wᵀ + b)` for a whole mini-batch.
///
/// * `dy` holds ∂L/∂Y (post-activation, `n×out`); consumed in place.
/// * `y` is the batched forward output.
/// * Accumulates `dw += Σ_s δ_s ⊗ x_s` **in sample-ascending order** (the
///   per-sample [`backward`]'s GER sequence), `db += Σ_s δ_s`, and
///   optionally writes `dx = δ·W` (`n×in`).
///
/// Same BLAS-style argument shape as the per-sample [`backward`].
#[allow(clippy::too_many_arguments)]
pub fn backward_batch(
    w: &Matrix,
    x: &[f32],
    y: &[f32],
    n: usize,
    act: Activation,
    dy: &mut [f32],
    dw: &mut Matrix,
    db: &mut [f32],
    dx: Option<&mut [f32]>,
) {
    act.backward_from_output(y, dy);
    ops::gemm_tn_acc(dy, x, n, dw);
    if !db.is_empty() {
        ops::add_row_sums(dy, n, db);
    }
    if let Some(dx) = dx {
        ops::gemm_nn(dy, w, n, dx);
    }
}

/// Backward through `y = act(W x + b)`.
///
/// * `dy` on entry holds ∂L/∂y (post-activation); it is consumed (turned
///   into the pre-activation delta in place).
/// * `y` must be the forward output (activation derivative is computed
///   from outputs).
/// * Accumulates `dw += δ ⊗ x`, `db += δ` and optionally writes
///   `dx = Wᵀ δ`.
///
/// The argument list mirrors the BLAS-style call shape of the forward pass;
/// bundling them into a struct would only obscure the dataflow.
#[allow(clippy::too_many_arguments)]
pub fn backward(
    w: &Matrix,
    x: &[f32],
    y: &[f32],
    act: Activation,
    dy: &mut [f32],
    dw: &mut Matrix,
    db: &mut [f32],
    dx: Option<&mut [f32]>,
) {
    act.backward_from_output(y, dy);
    ops::ger(dw, 1.0, dy, x);
    if !db.is_empty() {
        ops::axpy(1.0, dy, db);
    }
    if let Some(dx) = dx {
        ops::gemv_t(w, dy, dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check of a single dense layer under a
    /// squared loss L = ½‖y‖².
    #[test]
    fn dense_gradcheck() {
        let w0 = Matrix::from_rows(&[&[0.2, -0.4, 0.1], &[0.5, 0.3, -0.2]]);
        let b0 = vec![0.05, -0.1];
        let x = vec![0.3, -0.7, 0.9];
        let act = Activation::Tanh;

        let loss_of = |w: &Matrix, b: &[f32]| -> f32 {
            let mut y = vec![0.0; 2];
            forward(w, b, &x, act, &mut y);
            0.5 * (y[0] * y[0] + y[1] * y[1])
        };

        // Analytic gradients.
        let mut y = vec![0.0; 2];
        forward(&w0, &b0, &x, act, &mut y);
        let mut dy = y.clone(); // dL/dy = y for the squared loss
        let mut dw = Matrix::zeros(2, 3);
        let mut db = vec![0.0; 2];
        let mut dx = vec![0.0; 3];
        backward(&w0, &x, &y, act, &mut dy, &mut dw, &mut db, Some(&mut dx));

        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut wp = w0.clone();
                wp.set(r, c, wp.get(r, c) + eps);
                let mut wm = w0.clone();
                wm.set(r, c, wm.get(r, c) - eps);
                let fd = (loss_of(&wp, &b0) - loss_of(&wm, &b0)) / (2.0 * eps);
                assert!((dw.get(r, c) - fd).abs() < 1e-3, "dw[{r},{c}]");
            }
            let mut bp = b0.clone();
            bp[r] += eps;
            let mut bm = b0.clone();
            bm[r] -= eps;
            let fd = (loss_of(&w0, &bp) - loss_of(&w0, &bm)) / (2.0 * eps);
            assert!((db[r] - fd).abs() < 1e-3, "db[{r}]");
        }
        // dx check.
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let f = |xv: &[f32]| {
                let mut y = vec![0.0; 2];
                forward(&w0, &b0, xv, act, &mut y);
                0.5 * (y[0] * y[0] + y[1] * y[1])
            };
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((dx[i] - fd).abs() < 1e-3, "dx[{i}]");
        }
    }

    #[test]
    fn zeroed_row_produces_inert_unit() {
        // Dropping row 0 (weights + bias) must make y[0] = act(0).
        let mut w = Matrix::from_rows(&[&[0.9, 0.9], &[0.1, 0.2]]);
        let mut b = vec![0.7, 0.1];
        w.zero_row(0);
        b[0] = 0.0;
        let mut y = vec![0.0; 2];
        forward(&w, &b, &[1.0, 1.0], Activation::Relu, &mut y);
        assert_eq!(y[0], 0.0);
        assert!(y[1] > 0.0);
    }
}
